"""Cluster scale-out: aggregate predictions/sec, 4 workers vs 1.

The artefact guarded here is the cluster PR's claim: putting N worker
processes behind the shard router multiplies aggregate prediction
throughput (one Python process is GIL-bound; the fleet is not), while
keeping tail latency and the error budget intact.

Method: both fleets are driven by the *same* client harness — one load
process per client slot (``multiprocessing``, because a single client
process would itself be GIL-bound and under-report the fleet) — against

* a 1-worker fleet (the single-process baseline), then
* a 4-worker fleet, measured both direct-to-workers (fleet capacity)
  and through the router (the proxy users actually hit).

Workers warm-start from a pre-seeded artifact store, so calibration
never pollutes the throughput window.

``cluster_speedup`` is hardware-honest: the ≥3x scale-out assertion is
made only where it is physically possible (``cpu_count >= 4``); on
smaller hosts the benchmark still runs, records the measured ratio, and
asserts only sanity (the fleet must not collapse).  The recorded
environment block carries ``cpu_count`` so a baseline taken on a small
host is read accordingly.

A final deliberate-overload phase chokes one worker down to
``max_concurrency=1`` and drives the full client harness at it: the
shedding path (503 back-pressure) must engage, sheds must never turn
into failures, and both facts are recorded as exact-band metrics so the
gate notices if back-pressure ever silently stops working.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor

from repro.bench import SweepConfig
from repro.cluster import (
    ClusterRouter,
    LoadReport,
    OverloadTarget,
    PredictWorkload,
    Supervisor,
    run_load,
)
from repro.evaluation import run_platform_experiment

PLATFORM = "occigen"
SEED = 0
TOTAL_PER_PHASE = 320
CLIENT_PROCS = 4
STREAMS_PER_CLIENT = 4
CLUSTER_WORKERS = 4
REPLICATION = 2


class _RouterThread:
    """The router on its own event-loop thread, as `cluster serve` runs it."""

    def __init__(self, supervisor: Supervisor) -> None:
        self._supervisor = supervisor
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.router: ClusterRouter | None = None
        self.loop: asyncio.AbstractEventLoop | None = None

    def start(self) -> "_RouterThread":
        self._thread.start()
        assert self._ready.wait(timeout=30), "router did not start"
        return self

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self.router = ClusterRouter(self._supervisor, port=0)
        await self.router.start()
        self.loop = asyncio.get_running_loop()
        self._ready.set()
        await self.router.run_until_shutdown()
        await self.router.shutdown()

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.router.request_shutdown)
        self._thread.join(10)


def _noop(_: int) -> None:
    return None


def _run_one(args: tuple[PredictWorkload, int, int]) -> LoadReport:
    workload, total, concurrency = args
    return run_load(workload, total=total, concurrency=concurrency)


def _drive(pool: ProcessPoolExecutor, ports: list[int]) -> LoadReport:
    """The one measured harness: CLIENT_PROCS load processes, round-robin
    over ``ports``, wall-clocked from the parent."""
    jobs = [
        (
            PredictWorkload(
                port=ports[i % len(ports)], platform=PLATFORM, seed=SEED
            ),
            TOTAL_PER_PHASE // CLIENT_PROCS,
            STREAMS_PER_CLIENT,
        )
        for i in range(CLIENT_PROCS)
    ]
    started = time.perf_counter()
    reports = list(pool.map(_run_one, jobs))
    wall = time.perf_counter() - started
    combined = LoadReport()
    for report in reports:
        combined.merge(report)
    combined.duration_s = wall
    return combined


def collect(recorder, benchmark=None) -> None:
    cpu_count = os.cpu_count() or 1
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as cache_dir:
        # Seed the shared store once: every worker warm-starts from it.
        run_platform_experiment(
            PLATFORM, config=SweepConfig(seed=SEED), cache_dir=cache_dir
        )

        with ProcessPoolExecutor(CLIENT_PROCS) as pool:
            # Spawn + numpy imports of the client processes happen here,
            # outside every timing window.
            list(pool.map(_noop, range(CLIENT_PROCS)))

            # Phase 1: the single-process baseline.
            single = Supervisor(
                workers=1,
                replication=1,
                cache_dir=cache_dir,
                preload=[(PLATFORM, SEED)],
            )
            single.start()
            try:
                single.wait_ready()
                single_report = _drive(
                    pool, [single.handle("w0").port]
                )
            finally:
                single.stop()

            # Phase 2: the 4-worker fleet, direct and through the router.
            fleet = Supervisor(
                workers=CLUSTER_WORKERS,
                replication=REPLICATION,
                cache_dir=cache_dir,
                preload=[(PLATFORM, SEED)],
            )
            fleet.start()
            router_thread = None
            try:
                fleet.wait_ready()
                ports = [h.port for _, h in sorted(fleet.handles.items())]
                direct_report = _drive(pool, ports)
                router_thread = _RouterThread(fleet).start()
                router_report = _drive(pool, [router_thread.router.port])
            finally:
                if router_thread is not None:
                    router_thread.stop()
                fleet.stop()

            # Phase 3: deliberate overload.  One worker choked to a
            # single in-flight request, hammered by the full harness
            # (CLIENT_PROCS x STREAMS_PER_CLIENT streams): back-pressure
            # must engage, and sheds must stay sheds.
            choked = Supervisor(
                workers=1,
                replication=1,
                cache_dir=cache_dir,
                preload=[(PLATFORM, SEED)],
                max_concurrency=1,
            )
            choked.start()
            try:
                choked.wait_ready()
                overload_report = _drive(
                    pool, [choked.handle("w0").port]
                )
            finally:
                choked.stop()

    overload_verdict = overload_report.overload_verdict(OverloadTarget())
    speedup = (
        direct_report.qps / single_report.qps if single_report.qps else 0.0
    )
    # Wide bands: throughput depends on the host's core count, and the
    # committed baseline may come from a smaller machine than CI (the
    # environment block records cpu_count).  The gate still catches a
    # collapse (order-of-magnitude) while tolerating hardware spread.
    recorder.metric(
        "single_qps", single_report.qps, unit="requests/s",
        direction="higher", band=9.0,
    )
    recorder.metric(
        "cluster_direct_qps", direct_report.qps, unit="requests/s",
        direction="higher", band=9.0,
    )
    recorder.metric(
        "cluster_router_qps", router_report.qps, unit="requests/s",
        direction="higher", band=9.0,
    )
    recorder.metric(
        "cluster_speedup", speedup, unit="x", direction="higher", band=9.0,
    )
    recorder.metric(
        "router_p50_ms", router_report.latency_ms(50), unit="ms",
        direction="lower", band=6.0,
    )
    recorder.metric(
        "router_p99_ms", router_report.latency_ms(99), unit="ms",
        direction="lower", band=6.0,
    )
    # Deterministic health contract: nothing may fail or shed at this
    # load level, on any hardware.  Exact comparison (band 0).
    failed_total = (
        single_report.failed + direct_report.failed + router_report.failed
    )
    shed_total = single_report.shed + direct_report.shed + router_report.shed
    recorder.metric(
        "failed_requests", float(failed_total), unit="count",
        direction="lower", band=0.0,
    )
    recorder.metric(
        "shed_requests", float(shed_total), unit="count",
        direction="lower", band=0.0,
    )
    # The overload contract.  The shed *rate* is hardware-dependent
    # (wide band); whether shedding engaged at all and whether anything
    # failed outright are binary facts (band 0) — a 0-vs-positive
    # indicator is needed because a zero slips through any
    # multiplicative band on the rate alone.
    recorder.metric(
        "overload_shed_rate", overload_report.shed_rate, unit="ratio",
        direction="higher", band=9.0,
    )
    recorder.metric(
        "overload_shed_happened",
        1.0 if overload_report.shed > 0 else 0.0,
        unit="bool", direction="higher", band=0.0,
    )
    recorder.metric(
        "overload_failed_requests", float(overload_report.failed),
        unit="count", direction="lower", band=0.0,
    )
    recorder.context(
        platform=PLATFORM,
        cluster_workers=CLUSTER_WORKERS,
        replication=REPLICATION,
        total_per_phase=TOTAL_PER_PHASE,
        client_processes=CLIENT_PROCS,
        streams_per_client=STREAMS_PER_CLIENT,
        cpu_count=cpu_count,
        single_p99_ms=round(single_report.latency_ms(99), 3),
        direct_p99_ms=round(direct_report.latency_ms(99), 3),
        overload=overload_report.summary(),
        overload_verdict=overload_verdict,
    )
    if benchmark is not None:
        # One representative unit for pytest-benchmark's own table: a
        # router-path load slice against the (now stopped) fleet is not
        # re-runnable, so stash the numbers instead.
        benchmark.extra_info.update(
            {
                "single_qps": round(single_report.qps),
                "cluster_direct_qps": round(direct_report.qps),
                "cluster_router_qps": round(router_report.qps),
                "speedup": round(speedup, 2),
            }
        )


def test_cluster_scales_out(benchmark):
    from repro.benchtrack import BenchRecorder

    recorder = BenchRecorder()
    # pytest-benchmark needs at least one timed round; time a trivial
    # closure around the full collection so the fixture stays satisfied
    # without re-running the multi-minute fleet workload.
    benchmark.pedantic(lambda: collect(recorder), rounds=1, iterations=1)
    values = recorder.values()

    # Zero client-visible failures, always, everywhere.
    assert values["failed_requests"] == 0.0
    assert values["shed_requests"] == 0.0

    # The overload phase must actually overload: back-pressure engaged,
    # and none of it leaked through as a failure.
    assert values["overload_shed_happened"] == 1.0, (
        "choked worker shed nothing — the overload phase proved nothing"
    )
    assert values["overload_failed_requests"] == 0.0, (
        f"{values['overload_failed_requests']:.0f} requests failed "
        "outright under overload; sheds must stay sheds"
    )

    # The scale-out claim is asserted only where it is physically
    # possible: 4 workers cannot beat 1 on a single core.
    if (os.cpu_count() or 1) >= 4:
        assert values["cluster_speedup"] >= 3.0, (
            f"4-worker fleet only {values['cluster_speedup']:.2f}x over "
            "single-process"
        )
    else:
        assert values["cluster_speedup"] > 0.3, (
            "fleet collapsed: "
            f"{values['cluster_speedup']:.2f}x of single-process"
        )
    benchmark.extra_info.update(
        {name: round(value, 2) for name, value in values.items()}
    )
