"""Shared helpers for the per-figure benchmarks."""

from __future__ import annotations

import numpy as np

from repro.bench import SweepConfig
from repro.bench.sweep import sample_placements
from repro.benchtrack import best_of, percentile, timed
from repro.evaluation import ExperimentResult, mape, run_platform_experiment

__all__ = [
    "run_figure_pipeline",
    "comm_errors_by_group",
    "comp_errors_by_group",
    "stash_errors",
    # The one timing discipline (repro.benchtrack) every timed
    # benchmark publishes through — no per-module _best_of/_timed.
    "best_of",
    "percentile",
    "timed",
]


def run_figure_pipeline(
    platform_name: str,
    seed: int = 1,
    *,
    cache_dir=None,
    jobs: int = 1,
) -> ExperimentResult:
    """The timed unit of every figure benchmark: the full §IV pipeline.

    ``cache_dir`` and ``jobs`` pass straight through to the staged
    pipeline, so benchmarks can time warm-cache and parallel runs.
    """
    return run_platform_experiment(
        platform_name,
        config=SweepConfig(seed=seed),
        cache_dir=cache_dir,
        jobs=jobs,
    )


def _errors_by_group(result: ExperimentResult, *, comm: bool):
    samples = set(sample_placements(result.platform))
    grouped: dict[str, list[float]] = {"samples": [], "non_samples": []}
    for key in result.dataset.sweep:
        curves = result.dataset.sweep[key]
        pred = result.predictions[key]
        if comm:
            err = mape(curves.comm_parallel, pred.comm_parallel)
        else:
            err = mape(curves.comp_parallel, pred.comp_parallel)
        grouped["samples" if key in samples else "non_samples"].append(err)
    # Both keys are always emitted — an empty group reads as None (JSON
    # null), never a missing key, so baseline diffs cannot KeyError on a
    # run-dependent schema.
    return {
        k: float(np.mean(v)) if v else None for k, v in grouped.items()
    }


def comm_errors_by_group(result: ExperimentResult) -> dict[str, float | None]:
    return _errors_by_group(result, comm=True)


def comp_errors_by_group(result: ExperimentResult) -> dict[str, float | None]:
    return _errors_by_group(result, comm=False)


def stash_errors(benchmark, result: ExperimentResult) -> None:
    """Record the regenerated error row in the benchmark report."""
    e = result.errors
    benchmark.extra_info.update(
        {
            "comm_samples_pct": round(e.comm_samples, 2),
            "comm_non_samples_pct": round(e.comm_non_samples, 2),
            "comp_all_pct": round(e.comp_all, 2),
            "average_pct": round(e.average, 2),
            "local_model": result.model.local.summary(),
            "remote_model": result.model.remote.summary(),
        }
    )
