"""Figure 8 — dahu (Intel + Omni-Path).

Paper shape claims checked here: dahu behaves like henri (clear
contention, accurate model) but over an Omni-Path fabric, showing the
model is fabric-agnostic.  Table II row: 2.57 % comm / 2.92 % comp.
"""

import numpy as np

from _common import comm_errors_by_group, run_figure_pipeline, stash_errors


def test_fig8_dahu(benchmark):
    result = benchmark.pedantic(
        run_figure_pipeline, args=("dahu",), rounds=1, iterations=1
    )
    sweep = result.dataset.sweep

    # Omni-Path nominal (~11 GB/s) rather than InfiniBand EDR.
    assert 10.0 < float(np.median(sweep[(0, 0)].comm_alone)) < 12.0

    # Contention shape as on henri: the local/local placement throttles
    # communications to the guaranteed floor at full socket.
    local = sweep[(0, 0)]
    floor_ratio = local.comm_parallel[-1] / float(np.median(local.comm_alone))
    assert 0.3 < floor_ratio < 0.65

    # Model accuracy in the paper's band.
    comm = comm_errors_by_group(result)
    assert comm["samples"] < 6.0
    assert comm["non_samples"] < 6.0
    assert result.errors.comp_all < 3.0
    assert result.errors.average < 4.0

    stash_errors(benchmark, result)
