"""Extension — the paper's own model-limit claims, validated (ext4/ext5).

Two §IV-C1 statements get their experiment here:

* **many NUMA nodes**: "On machines with many NUMA nodes (more than 4),
  network performances under memory contention depend on data locality
  and the heuristic given by formula 6 is not sufficiently accurate
  anymore."  We build an 8-node machine whose NIC bandwidth varies per
  destination node (as real many-node machines show) and verify the
  placement model's communication error on non-sample placements grows
  well beyond the 2-node testbed's.

* **unstable input data**: "Higher prediction errors come most often
  from unstable input data."  We sweep the measurement-noise level and
  verify the overall prediction error grows with it.
"""

import numpy as np

from repro.bench import SweepConfig, run_placement_grid
from repro.bench.sweep import sample_placements
from repro.core import calibrate_placement_model
from repro.evaluation import placement_errors
from repro.memsim import ContentionProfile
from repro.topology import MachineBuilder, validate_machine
from repro.topology.platforms import Platform
from repro.units import GiB


def build_many_node_platform() -> Platform:
    """An 8-NUMA-node machine with per-node NIC locality variation."""
    machine = validate_machine(
        MachineBuilder("manynodes")
        .processor("Many-node CPU", cores_per_socket=16, sockets=2)
        .numa(nodes_per_socket=4, memory_bytes=16 * GiB, controller_gbps=24.0)
        .interconnect(gbps=42.0)
        .network("edr", line_rate_gbps=12.3, pcie_gbps=13.8, socket=0)
        .cache(level=3, size_bytes=24 * 2**20, shared_by=16)
        .build()
    )
    profile = ContentionProfile(
        core_stream_local_gbps=6.8,
        core_stream_remote_gbps=2.7,
        nic_min_fraction=0.42,
        sag_onset=0.78,
        sag_span=0.24,
        interference_core_gbps=0.3,
        interference_mixed_gbps=0.7,
        remote_capacity_fraction=0.5,
        # Per-node NIC bandwidth variation that locality alone cannot
        # explain: equation 6 collapses all of it onto two nominals.
        nic_locality_gbps={
            0: 12.3, 1: 11.0, 2: 10.2, 3: 11.6,
            4: 9.8, 5: 11.1, 6: 8.9, 7: 10.4,
        },
        comp_noise_sigma=0.004,
        comm_noise_sigma=0.008,
    )
    return Platform(machine=machine, profile=profile)


def run_many_nodes():
    platform = build_many_node_platform()
    dataset = run_placement_grid(platform, config=SweepConfig(seed=1))
    model = calibrate_placement_model(dataset, platform)
    return placement_errors(dataset, model, sample_placements(platform))


def test_extension_many_numa_nodes(benchmark, experiment_cache):
    errors = benchmark.pedantic(run_many_nodes, rounds=1, iterations=1)
    henri = experiment_cache("henri").errors

    # Samples remain reasonably predicted: the failure is the formula-6
    # extrapolation, not the calibration.
    assert errors.comm_samples < 6.0
    # Non-sample communication errors blow past the 2-node testbed's.
    assert errors.comm_non_samples > 2.0 * henri.comm_non_samples
    assert errors.comm_non_samples > 5.0
    # Computations on non-sample placements stay fine (equation 7 is
    # unaffected by the NIC locality variation).  On the *samples*, the
    # tiny per-node controller (the node saturates at ~4 of 16 cores)
    # amplifies the paper's §IV-C1 observation that the pre-threshold
    # split is "more in favour of computations as in reality" — another
    # disclosed limit, reproduced rather than hidden.
    assert errors.comp_non_samples < 4.0
    assert errors.comp_samples > errors.comp_non_samples

    benchmark.extra_info["many_nodes_comm_ns_pct"] = round(
        errors.comm_non_samples, 2
    )
    benchmark.extra_info["henri_comm_ns_pct"] = round(
        henri.comm_non_samples, 2
    )


def run_noise_sweep():
    from repro.topology import get_platform

    results = {}
    for sigma in (0.0, 0.01, 0.03):
        platform = get_platform("henri")
        noisy = Platform(
            machine=platform.machine,
            profile=platform.profile.with_overrides(
                comp_noise_sigma=sigma, comm_noise_sigma=sigma
            ),
        )
        dataset = run_placement_grid(noisy, config=SweepConfig(seed=5))
        model = calibrate_placement_model(dataset, noisy)
        errors = placement_errors(dataset, model, sample_placements(noisy))
        results[sigma] = errors.average
    return results


def test_extension_noise_sensitivity(benchmark):
    results = benchmark.pedantic(run_noise_sweep, rounds=1, iterations=1)
    sigmas = sorted(results)
    averages = [results[s] for s in sigmas]

    # Error grows with measurement instability.
    assert averages[0] < averages[-1]
    assert averages[-1] > 2.0 * averages[0]
    # Even the noisy end stays usable (the paper's errors are a few %).
    assert averages[-1] < 15.0

    benchmark.extra_info["avg_error_pct_by_sigma"] = {
        str(s): round(a, 2) for s, a in zip(sigmas, averages)
    }
