"""Ablations of the contention hypotheses (DESIGN.md abl1/abl2).

The paper's §II-A hypotheses are arbitration *policies* in the
simulator, so they can be switched off individually:

* **abl1 — no minimum guarantee**: without the anti-starvation floor,
  communications starve under full computation pressure;
* **abl2 — no CPU priority**: with plain proportional sharing,
  communications keep far more bandwidth (and computations lose more)
  than the paper observes on real machines.

Both ablations change the local/local contention curve in the direction
the hypotheses predict — evidence the hypotheses are load-bearing.
"""

import numpy as np

from repro.bench import SweepConfig, measure_curves
from repro.topology import get_platform


def _henri_curves(**profile_overrides):
    platform = get_platform("henri")
    profile = platform.profile.with_overrides(
        comp_noise_sigma=0.0, comm_noise_sigma=0.0, **profile_overrides
    )
    return measure_curves(
        platform.machine,
        profile,
        m_comp=0,
        m_comm=0,
        config=SweepConfig(noiseless=True),
    )


def test_ablation_no_min_guarantee(benchmark):
    """abl1: drop the floor to (nearly) zero -> communications starve."""
    baseline = _henri_curves()
    ablated = benchmark.pedantic(
        _henri_curves,
        kwargs={"nic_min_fraction": 0.02},
        rounds=1,
        iterations=1,
    )
    # Same behaviour before saturation...
    assert np.allclose(
        ablated.comm_parallel[:8], baseline.comm_parallel[:8], rtol=0.02
    )
    # ...but at full socket, communications collapse toward starvation.
    assert ablated.comm_parallel[-1] < 0.15 * baseline.comm_parallel[-1]
    # Computations pick up the released bandwidth.
    assert ablated.comp_parallel[-1] > baseline.comp_parallel[-1]
    benchmark.extra_info["comm_at_full_socket"] = {
        "with_floor": round(float(baseline.comm_parallel[-1]), 2),
        "without_floor": round(float(ablated.comm_parallel[-1]), 2),
    }


def test_ablation_no_cpu_priority(benchmark):
    """abl2: proportional sharing instead of CPU-priority + sag."""
    baseline = _henri_curves()
    ablated = benchmark.pedantic(
        _henri_curves,
        kwargs={"cpu_priority": False},
        rounds=1,
        iterations=1,
    )
    # Without priority, communications keep much more bandwidth under
    # contention than the real (priority-based) hardware allows.
    assert ablated.comm_parallel[-1] > 1.4 * baseline.comm_parallel[-1]
    # And computations end up slower.
    assert ablated.comp_parallel[-1] < baseline.comp_parallel[-1]
    benchmark.extra_info["comm_at_full_socket"] = {
        "cpu_priority": round(float(baseline.comm_parallel[-1]), 2),
        "proportional": round(float(ablated.comm_parallel[-1]), 2),
    }
