"""Figure 3 — henri (Intel, InfiniBand): 4 placements, measured vs model.

Paper shape claims checked here (§IV-B a):

* contention impacts both computations and communications;
* the model is accurate on the remote/remote sample;
* on local/local the real communication drop starts *before* the model
  predicts (the model "reflects the correct impact on communications
  too late");
* cross placements show the same flaw but comparable overall accuracy.
"""

import numpy as np

from repro.evaluation import mape
from _common import comm_errors_by_group, run_figure_pipeline, stash_errors, timed


def collect(recorder, benchmark=None) -> None:
    """Perf-trajectory hook: one full henri figure pipeline, timed.

    Joins the figure benchmarks to the versioned ``BENCH_*.json``
    trajectory: wall time with a wide band (shared-runner noise), and
    the regenerated Table II error row with a tight band — accuracy is
    deterministic for a fixed seed, but BLAS/CPU variation across hosts
    keeps exact float comparison off the table.
    """
    holder: dict = {}
    duration_s = timed(
        lambda: holder.setdefault("result", run_figure_pipeline("henri"))
    )
    result = holder["result"]
    recorder.metric(
        "pipeline_wall_ms", duration_s * 1e3, unit="ms", direction="lower",
        band=2.5,
    )
    grouped = comm_errors_by_group(result)
    errors = result.errors
    recorder.metric(
        "comm_samples_err_pct", grouped["samples"], unit="%",
        direction="lower", band=0.05,
    )
    recorder.metric(
        "comm_non_samples_err_pct", grouped["non_samples"], unit="%",
        direction="lower", band=0.05,
    )
    recorder.metric(
        "comp_all_err_pct", errors.comp_all, unit="%", direction="lower",
        band=0.05,
    )
    recorder.metric(
        "average_err_pct", errors.average, unit="%", direction="lower",
        band=0.05,
    )
    recorder.context(
        platform="henri",
        seed=1,
        placements=len(result.dataset.sweep),
        local_model=result.model.local.summary(),
        remote_model=result.model.remote.summary(),
    )


def test_fig3_henri(benchmark):
    result = benchmark.pedantic(
        run_figure_pipeline, args=("henri",), rounds=1, iterations=1
    )
    sweep = result.dataset.sweep

    # Contention exists: at full socket, local/local comm is well below
    # nominal and comp below its alone curve.
    local = sweep[(0, 0)]
    assert local.comm_parallel[-1] < 0.6 * local.comm_alone[-1]
    assert local.comp_parallel[-1] < local.comp_alone[-1]

    # The model errs on the *onset* of the communication drop: the real
    # curve starts dropping earlier than the prediction.
    pred = result.predictions[(0, 0)]
    meas_drop = int(
        local.core_counts[
            np.argmax(local.comm_parallel < 0.97 * local.comm_alone[0])
        ]
    )
    model_drop = int(
        local.core_counts[
            np.argmax(pred.comm_parallel < 0.97 * pred.comm_alone)
        ]
    )
    assert meas_drop <= model_drop

    # Overall accuracy in the paper's band (Table II row: ~2-4 %).
    errors = comm_errors_by_group(result)
    assert errors["samples"] < 5.0
    assert errors["non_samples"] < 6.0
    for key in sweep:
        comp_err = mape(
            sweep[key].comp_parallel, result.predictions[key].comp_parallel
        )
        assert comp_err < 4.0

    stash_errors(benchmark, result)
