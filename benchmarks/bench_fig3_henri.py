"""Figure 3 — henri (Intel, InfiniBand): 4 placements, measured vs model.

Paper shape claims checked here (§IV-B a):

* contention impacts both computations and communications;
* the model is accurate on the remote/remote sample;
* on local/local the real communication drop starts *before* the model
  predicts (the model "reflects the correct impact on communications
  too late");
* cross placements show the same flaw but comparable overall accuracy.
"""

import numpy as np

from repro.evaluation import mape
from _common import comm_errors_by_group, run_figure_pipeline, stash_errors


def test_fig3_henri(benchmark):
    result = benchmark.pedantic(
        run_figure_pipeline, args=("henri",), rounds=1, iterations=1
    )
    sweep = result.dataset.sweep

    # Contention exists: at full socket, local/local comm is well below
    # nominal and comp below its alone curve.
    local = sweep[(0, 0)]
    assert local.comm_parallel[-1] < 0.6 * local.comm_alone[-1]
    assert local.comp_parallel[-1] < local.comp_alone[-1]

    # The model errs on the *onset* of the communication drop: the real
    # curve starts dropping earlier than the prediction.
    pred = result.predictions[(0, 0)]
    meas_drop = int(
        local.core_counts[
            np.argmax(local.comm_parallel < 0.97 * local.comm_alone[0])
        ]
    )
    model_drop = int(
        local.core_counts[
            np.argmax(pred.comm_parallel < 0.97 * pred.comm_alone)
        ]
    )
    assert meas_drop <= model_drop

    # Overall accuracy in the paper's band (Table II row: ~2-4 %).
    errors = comm_errors_by_group(result)
    assert errors["samples"] < 5.0
    assert errors["non_samples"] < 6.0
    for key in sweep:
        comp_err = mape(
            sweep[key].comp_parallel, result.predictions[key].comp_parallel
        )
        assert comp_err < 4.0

    stash_errors(benchmark, result)
