"""Figure 7 — pyxis (ARM ThunderX2): the model's worst platform.

Paper shape claims checked here (§IV-B e):

* computation bandwidth "does not scale well when it gets closer to the
  threshold" — a soft knee the piecewise-linear model misses;
* network performance is unstable and entangled with locality in a way
  equation 6 cannot capture: communication predictions on non-sample
  placements show a double-digit error while samples stay accurate;
* computation predictions remain good (paper: 2.37 % overall).
"""

import numpy as np

from _common import (
    comm_errors_by_group,
    comp_errors_by_group,
    run_figure_pipeline,
    stash_errors,
)


def test_fig7_pyxis(benchmark):
    result = benchmark.pedantic(
        run_figure_pipeline, args=("pyxis",), rounds=1, iterations=1
    )
    sweep = result.dataset.sweep

    # Soft saturation: well below the peak, per-core efficiency already
    # degrades (no perfect scaling into the knee).
    local = sweep[(0, 0)]
    n = local.core_counts
    peak_idx = int(np.argmax(local.comp_alone))
    probe = max(0, peak_idx - 4)
    perfect = local.comp_alone[0] / n[0] * n[probe]
    assert local.comp_alone[probe] < 0.97 * perfect

    # The signature of Table II: communication errors explode on
    # non-sample placements but not on samples.
    comm = comm_errors_by_group(result)
    assert comm["non_samples"] >= 10.0
    assert comm["samples"] < 5.0
    assert comm["non_samples"] > 2.5 * comm["samples"]

    # Computations remain well predicted.
    comp = comp_errors_by_group(result)
    assert comp["samples"] < 4.0
    assert comp["non_samples"] < 4.0

    stash_errors(benchmark, result)
