"""Microbenchmark: vectorized model evaluation vs the scalar loop.

The artefact guarded here is the evaluation-layer PR's claim: a full
16-placement × 64-core model-prediction grid through the memoized array
layer is at least 10× faster than the original per-``n`` scalar loop,
while producing bit-for-bit identical numbers.

The scalar baseline replays the pre-vectorization implementation
exactly: three :class:`ScalarOracle` instantiations (local, remote,
local-with-remote-nominal) queried one core count at a time through the
selection rules of equations 6 and 7, re-deriving the saturation
frontier inside every saturated ``comm_parallel`` call — the O(n²)
behaviour the evaluation layer removes.

The compiled-kernel layer stacks on top: the same grid read back out of
a :class:`~repro.core.compiled.CompiledModel` table must again be
bit-identical to the scalar oracle while beating even the vectorized
evaluator (no per-call piecewise evaluation at all, just indexing).
"""

from __future__ import annotations

import numpy as np

from _common import best_of

from repro.core.compiled import CompiledModel
from repro.core.oracle import ScalarOracle
from repro.core.parameters import ModelParameters
from repro.core.placement import PlacementModel

N_CORES = 64
NODES_PER_SOCKET = 2
N_NUMA_NODES = 4  # 4 x 4 = 16 placements

LOCAL = ModelParameters(
    n_par_max=24,
    t_par_max=120.0,
    n_seq_max=48,
    t_seq_max=110.0,
    t_par_max2=100.0,
    delta_l=0.8,
    delta_r=0.4,
    b_comp_seq=4.0,
    b_comm_seq=12.0,
    alpha=0.35,
)
REMOTE = ModelParameters(
    n_par_max=20,
    t_par_max=80.0,
    n_seq_max=44,
    t_seq_max=75.0,
    t_par_max2=66.0,
    delta_l=0.6,
    delta_r=0.3,
    b_comp_seq=2.5,
    b_comm_seq=9.0,
    alpha=0.3,
)


def _placements() -> list[tuple[int, int]]:
    nodes = range(N_NUMA_NODES)
    return [(mc, mm) for mc in nodes for mm in nodes]


def scalar_grid(ns: np.ndarray) -> dict[tuple[int, int], dict[str, np.ndarray]]:
    """The pre-PR code path: scalar oracle calls, one ``n`` at a time."""
    local = ScalarOracle(LOCAL)
    remote = ScalarOracle(REMOTE)
    local_remote_nominal = ScalarOracle(
        LOCAL.with_comm_nominal(REMOTE.b_comm_seq)
    )

    def is_remote(m: int) -> bool:
        return m >= NODES_PER_SOCKET

    grid = {}
    for m_comp, m_comm in _placements():
        comp, comm, alone = [], [], []
        for n in ns:
            n = int(n)
            # Equation 6.
            if is_remote(m_comp) and m_comp == m_comm:
                comm.append(remote.comm_parallel(n))
            elif is_remote(m_comm):
                comm.append(local_remote_nominal.comm_parallel(n))
            else:
                comm.append(local.comm_parallel(n))
            # Equation 7.
            side = remote if is_remote(m_comp) else local
            comp.append(
                side.comp_parallel(n) if m_comp == m_comm else side.comp_alone(n)
            )
            alone.append(side.comp_alone(n))
        grid[(m_comp, m_comm)] = {
            "comp_par": np.array(comp),
            "comm_par": np.array(comm),
            "comp_alone": np.array(alone),
        }
    return grid


def vectorized_grid(
    model: PlacementModel, ns: np.ndarray
) -> dict[tuple[int, int], dict[str, np.ndarray]]:
    return {
        key: {
            "comp_par": pred.comp_parallel,
            "comm_par": pred.comm_parallel,
            "comp_alone": pred.comp_alone,
        }
        for key, pred in model.predict_grid(ns, _placements()).items()
    }


def compiled_grid(
    compiled: CompiledModel, ns: np.ndarray
) -> dict[tuple[int, int], dict[str, np.ndarray]]:
    return {
        key: {
            "comp_par": pred.comp_parallel,
            "comm_par": pred.comm_parallel,
            "comp_alone": pred.comp_alone,
        }
        for key, pred in compiled.predict_grid(ns, _placements()).items()
    }


ROUNDS_SCALAR = 3
ROUNDS_VECTORIZED = 10
ROUNDS_COMPILED = 10


def collect(recorder) -> None:
    """The timed workload, publishing through one recorder.

    Shared verbatim by the pytest benchmark below and by ``repro bench
    run`` (the BENCH_model_eval.json trajectory).
    """
    ns = np.arange(1, N_CORES + 1)
    model = PlacementModel(
        LOCAL, REMOTE,
        nodes_per_socket=NODES_PER_SOCKET, n_numa_nodes=N_NUMA_NODES,
    )

    compiled = CompiledModel.compile(model, n_max=N_CORES)

    # Identical outputs first: the speed means nothing otherwise.  The
    # compiled table is held to the same witness as the evaluator: the
    # scalar oracle replay of equations 6 and 7.
    reference = scalar_grid(ns)
    vectorized = vectorized_grid(model, ns)
    tabulated = compiled_grid(compiled, ns)
    assert set(reference) == set(vectorized) == set(tabulated)
    for key in reference:
        for curve in ("comp_par", "comm_par", "comp_alone"):
            assert np.array_equal(reference[key][curve], vectorized[key][curve])
            assert np.array_equal(reference[key][curve], tabulated[key][curve])

    t_scalar = best_of(lambda: scalar_grid(ns), rounds=ROUNDS_SCALAR)
    t_vectorized = best_of(
        lambda: vectorized_grid(model, ns), rounds=ROUNDS_VECTORIZED
    )
    t_compiled = best_of(
        lambda: compiled_grid(compiled, ns), rounds=ROUNDS_COMPILED
    )
    # Raw ms timings drift heavily across process invocations on busy
    # or single-core hosts; the speedup ratio (both sides measured in
    # the same process) is the tighter trajectory signal.
    recorder.metric(
        "grid_scalar_ms", t_scalar * 1e3, unit="ms", direction="lower",
        band=1.5,
    )
    recorder.metric(
        "grid_vectorized_ms", t_vectorized * 1e3, unit="ms",
        direction="lower", band=1.5,
    )
    recorder.metric(
        "grid_speedup", t_scalar / t_vectorized, unit="x",
        direction="higher", band=1.0,
    )
    recorder.metric(
        "grid_compiled_ms", t_compiled * 1e3, unit="ms",
        direction="lower", band=1.5,
    )
    recorder.metric(
        # Compiled table vs the vectorized evaluator (both in-process,
        # same run); wide band — both sides are sub-millisecond.
        "compiled_vs_vectorized", t_vectorized / t_compiled, unit="x",
        direction="higher", band=4.0,
    )
    recorder.context(
        grid=f"{len(_placements())} placements x {N_CORES} cores",
        rounds_scalar=ROUNDS_SCALAR,
        rounds_vectorized=ROUNDS_VECTORIZED,
        rounds_compiled=ROUNDS_COMPILED,
        compiled_table_bytes=compiled.table_bytes,
    )


def test_vectorized_grid_speedup(benchmark):
    from repro.benchtrack import BenchRecorder

    recorder = BenchRecorder()
    collect(recorder)
    values = recorder.values()
    speedup = values["grid_speedup"]
    assert speedup >= 10.0, (
        f"vectorized sweep only {speedup:.1f}x faster than the scalar loop "
        f"({values['grid_scalar_ms']:.2f} ms vs "
        f"{values['grid_vectorized_ms']:.2f} ms)"
    )

    benchmark.extra_info.update(
        {
            "grid": f"{len(_placements())} placements x {N_CORES} cores",
            "scalar_ms": round(values["grid_scalar_ms"], 3),
            "vectorized_ms": round(values["grid_vectorized_ms"], 3),
            "speedup": round(speedup, 1),
        }
    )
    ns = np.arange(1, N_CORES + 1)
    model = PlacementModel(
        LOCAL, REMOTE,
        nodes_per_socket=NODES_PER_SOCKET, n_numa_nodes=N_NUMA_NODES,
    )
    benchmark.pedantic(
        vectorized_grid, args=(model, ns), rounds=10, iterations=1
    )
