"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artefact (table or figure) from
scratch — benchmark → calibrate → predict — and asserts the paper's
*shape* claims on the result.  Experiment results are cached per
session so shape assertions do not re-run the pipeline outside the
timed section.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.bench import SweepConfig
from repro.evaluation import run_platform_experiment

#: Seed used by every benchmark (deterministic artefacts).
BENCH_SEED = 1


@pytest.fixture(scope="session")
def bench_config():
    return SweepConfig(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def experiment_cache():
    """Memoised platform experiments for shape assertions."""
    cache: dict[str, object] = {}

    def get(name: str):
        if name not in cache:
            cache[name] = run_platform_experiment(
                name, config=SweepConfig(seed=BENCH_SEED)
            )
        return cache[name]

    return get
