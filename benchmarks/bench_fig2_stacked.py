"""Figure 2 — the stacked memory-bandwidth view of a calibrated model.

The paper's Figure 2 is the stacked version of the henri-subnuma
local/local subplot: computation bandwidth stacked under communication
bandwidth, with the annotated points (1, B_comp_seq), (N_par_max,
T_par_max), (N_seq_max, T_seq_max) and (N_seq_max, T_par_max2).
"""

import numpy as np

from repro.core import stacked_view
from _common import run_figure_pipeline


def test_fig2_stacked_view(benchmark):
    result = benchmark.pedantic(
        run_figure_pipeline, args=("henri-subnuma",), rounds=1, iterations=1
    )
    view = stacked_view(result.model.local)

    # The four annotated points exist and are consistent.
    p = result.model.local
    assert view.points["(1, Bcomp_seq)"] == (1.0, p.b_comp_seq)
    assert view.points["(Npar_max, Tpar_max)"][1] >= view.points[
        "(Nseq_max, Tpar_max2)"
    ][1]

    # Paper shape: the stacked total rises, peaks at N_par_max, then
    # declines with a slope change at N_seq_max.
    top = view.stacked_top()
    peak_idx = int(np.argmax(top))
    assert view.core_counts[peak_idx] == p.n_par_max
    tail = view.core_counts > p.n_seq_max
    assert np.all(np.diff(top[tail]) <= 1e-9)

    # Computation-alone (green curve) scales perfectly up to its peak.
    rising = view.core_counts <= p.n_seq_max
    perfect = view.core_counts[rising] * p.b_comp_seq
    assert np.all(view.comp_alone[rising] <= perfect + 1e-9)

    benchmark.extra_info["points"] = {
        k: (float(x), round(float(y), 2)) for k, (x, y) in view.points.items()
    }
