"""Extension — contention vs arithmetic intensity (DESIGN.md ext1).

The paper's §IV-C1 scopes its results: "the computation kernels and
message size were chosen here to maximise the contention ... other
kernels or message size should produce less contention".  This
benchmark regenerates the intensity curve that statement predicts:
as kernels get more compute-bound, the communication bandwidth that
survives the overlap climbs back to nominal.
"""

import numpy as np

from repro.kernels import intensity_sweep
from repro.topology import get_platform

INTENSITIES = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]


def run_sweep():
    platform = get_platform("henri")
    return intensity_sweep(
        platform,
        intensities=INTENSITIES,
        n_cores=platform.cores_per_socket,
        core_gflops=20.0,
    )


def test_extension_intensity(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    comm_retained = np.array([p.comm_retained for p in points])
    comp_retained = np.array([p.comp_retained for p in points])

    # Memory-bound end (the paper's memset): maximal contention.
    assert comm_retained[0] < 0.6
    # Compute-bound end: contention vanishes.
    assert comm_retained[-1] > 0.97
    assert comp_retained[-1] > 0.99
    # Communication contention eases monotonically with intensity.
    assert np.all(np.diff(comm_retained) >= -1e-9)
    # Computation impact stays small throughout and vanishes at the end
    # (not strictly monotone: near the roofline crossover the parallel
    # run trades a little mixed-traffic interference for NIC headroom).
    assert float(comp_retained.min()) > 0.9
    assert comp_retained[-1] >= comp_retained[0]
    # The transition happens at the roofline crossover: with 20 GFLOP/s
    # cores and ~6.8 GB/s streams, demand starts shrinking near
    # 20/6.8 ~ 2.9 flops/byte.
    crossover_idx = int(np.argmax(comm_retained > 0.6))
    assert 2.0 <= INTENSITIES[crossover_idx] <= 16.0

    benchmark.extra_info["comm_retained_pct"] = {
        str(i): round(float(r) * 100, 1)
        for i, r in zip(INTENSITIES, comm_retained)
    }
