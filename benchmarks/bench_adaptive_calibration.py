"""Extension — the paper's footnote-2 calibration optimisation (ext2).

"Once the maxima of bandwidth T_par_max and T_seq_max are found, one
can skip executions with number of computing cores greater than
N_seq_max, except the execution with all cores of the first socket."

Checks that the adaptive sweep (a) saves a meaningful share of the
measurements and (b) calibrates a model whose predictions match the
full sweep's.
"""

import numpy as np

from repro.bench import SweepConfig, run_adaptive_calibration
from repro.bench.runner import measure_curves
from repro.core import ContentionModel, calibrate
from repro.topology import get_platform


PLATFORM = "henri-subnuma"  # early saturation knee: most to save


def run_adaptive():
    platform = get_platform(PLATFORM)
    return run_adaptive_calibration(
        platform.machine,
        platform.profile,
        m_comp=0,
        m_comm=0,
        config=SweepConfig(seed=1),
        # Tolerance above the measurement noise so random wiggles do not
        # masquerade as new maxima.
        tolerance=0.02,
    )


def test_adaptive_calibration(benchmark):
    result = benchmark.pedantic(run_adaptive, rounds=1, iterations=1)
    platform = get_platform(PLATFORM)

    # (a) The optimisation skips a meaningful share of the sweep.
    assert result.measurements_saved >= 2
    fraction_saved = result.measurements_saved / result.full_sweep_size
    assert fraction_saved > 0.2

    # (b) Predictions from the sparse model match the full-sweep model.
    full = measure_curves(
        platform.machine,
        platform.profile,
        m_comp=0,
        m_comm=0,
        config=SweepConfig(seed=1),
    )
    sparse_model = ContentionModel(calibrate(result.curves))
    full_model = ContentionModel(calibrate(full))
    ns = np.arange(1, platform.cores_per_socket + 1)
    sparse_comm = np.array([sparse_model.comm_parallel(int(n)) for n in ns])
    full_comm = np.array([full_model.comm_parallel(int(n)) for n in ns])
    rel = np.abs(sparse_comm - full_comm) / full_comm
    assert float(rel.mean()) < 0.03

    benchmark.extra_info.update(
        {
            "measured_core_counts": list(result.measured_core_counts),
            "measurements_saved": result.measurements_saved,
            "comm_prediction_divergence_pct": round(float(rel.mean()) * 100, 2),
        }
    )
