"""Extension — heuristic vs optimised calibration (ext7).

The paper prefers a cheap parameter extraction ("few application runs",
"parameters with a physical meaning") over heavier fitting machinery.
This benchmark quantifies the trade: a Nelder-Mead least-squares fit of
the same model family is the accuracy upper bound on each calibration
placement; the heuristic must land within a small margin of it.
"""

from repro.bench import SweepConfig
from repro.bench.runner import measure_curves
from repro.core import calibrate
from repro.core.fitting import fit_quality, refine_parameters
from repro.topology import get_platform


def run_comparison():
    out = {}
    for name in ("henri", "occigen"):
        platform = get_platform(name)
        curves = measure_curves(
            platform.machine,
            platform.profile,
            m_comp=0,
            m_comm=0,
            config=SweepConfig(seed=1),
        )
        heuristic = calibrate(curves)
        refined = refine_parameters(curves, knee_radius=1, maxiter=200)
        out[name] = (
            fit_quality(heuristic, curves),
            fit_quality(refined, curves),
        )
    return out


def test_extension_fitting(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    for name, (heuristic_q, refined_q) in results.items():
        # The optimiser is an upper bound by construction.
        assert refined_q <= heuristic_q + 1e-12, name
        # The paper's judgement: the cheap extraction is close enough —
        # within 1.5 percentage points of mean relative error.
        assert heuristic_q - refined_q < 0.015, (
            f"{name}: heuristic {heuristic_q:.4f} vs refined {refined_q:.4f}"
        )
        # Both calibrations describe the curves well (< 6 % mean error).
        assert heuristic_q < 0.06, name

    benchmark.extra_info["mean_rel_error"] = {
        name: {
            "heuristic": round(h, 4),
            "refined": round(r, 4),
        }
        for name, (h, r) in results.items()
    }
