"""Figure 4 — henri-subnuma: 16 placements, the controller-vs-link lesson.

Paper shape claims checked here (§IV-B b, §IV-C2):

* machine symmetry: equivalent remote placements measure identically;
* the most disturbed placements are the diagonal (same NUMA node);
* computations are almost not impacted off-diagonal;
* different remote nodes show no contention → the bottleneck is the
  memory controller, **not** the inter-socket link;
* two calibration samples suffice to predict all 16 combinations.
"""

import numpy as np

from repro.evaluation import mape
from _common import run_figure_pipeline, stash_errors


def test_fig4_henri_subnuma(benchmark):
    result = benchmark.pedantic(
        run_figure_pipeline, args=("henri-subnuma",), rounds=1, iterations=1
    )
    sweep = result.dataset.sweep
    assert len(sweep) == 16

    # Symmetry: both remote nodes behave the same (up to noise).
    a, b = sweep[(2, 2)], sweep[(3, 3)]
    assert np.allclose(a.comp_parallel, b.comp_parallel, rtol=0.05)

    # Diagonal placements are the most disturbed for computations.
    def comp_impact(key):
        curves = sweep[key]
        return float(
            np.mean(1.0 - curves.comp_parallel / np.maximum(curves.comp_alone, 1e-9))
        )

    diag_local = comp_impact((0, 0))
    diag_remote = comp_impact((2, 2))
    off_diag = [comp_impact(k) for k in sweep if k[0] != k[1]]
    assert diag_local > max(off_diag)
    assert diag_remote > max(off_diag)

    # Off-diagonal computations are almost untouched (< 1 % impact).
    assert max(off_diag) < 0.01

    # The controller lesson: computations targeting remote node 2 are
    # unaffected by communications targeting remote node 3, although
    # both cross the same inter-socket link.
    assert comp_impact((2, 3)) < 0.01

    # Two samples predict all 16 placements within the paper's band.
    comm_errs = [
        mape(sweep[k].comm_parallel, result.predictions[k].comm_parallel)
        for k in sweep
    ]
    assert float(np.mean(comm_errs)) < 6.0

    stash_errors(benchmark, result)
