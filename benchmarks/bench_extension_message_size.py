"""Extension — contention vs message size (ext8).

Completes the trio of contention factors from the paper's prior study
([1], recalled in §I): data placement (Figures 3-8), arithmetic
intensity (ext1), and message size — "big messages are exchanged (thus
moving big messages through memory buses)".  The paper picked 64 MB to
maximise contention (§IV-C1); this benchmark verifies that choice on
the simulated testbed.
"""

from repro.bench.message_size import message_size_contention
from repro.topology import get_platform
from repro.units import KiB, MB

SIZES = [2 * KiB, 32 * KiB, 256 * KiB, 2 * MB, 16 * MB, 64 * MB]


def run_study():
    platform = get_platform("henri")
    return message_size_contention(platform, sizes=SIZES, n_cores=12)


def test_extension_message_size(benchmark):
    points = benchmark.pedantic(run_study, rounds=1, iterations=1)

    comp_retained = [p.comp_retained for p in points]
    comm_retained = [p.comm_retained for p in points]

    # The paper's 64 MB choice maximises both impacts.
    assert comp_retained[-1] == min(comp_retained)
    assert comm_retained[-1] == min(comm_retained)
    # Tiny messages are effectively contention-free in both directions.
    assert comp_retained[0] > 0.999
    assert comm_retained[0] > 0.999
    # Impact grows monotonically with size.
    for a, b in zip(comp_retained, comp_retained[1:]):
        assert b <= a + 1e-9
    for a, b in zip(comm_retained, comm_retained[1:]):
        assert b <= a + 1e-9
    # Diminishing returns: 16 MB already behaves like 64 MB (within 2 %),
    # i.e. "large enough" messages saturate the effect, which is why the
    # paper's single message size generalises.
    assert abs(comm_retained[-2] - comm_retained[-1]) < 0.02

    benchmark.extra_info["retained_by_size"] = {
        f"{p.nbytes // 1024} KiB": {
            "comp": round(p.comp_retained, 4),
            "comm": round(p.comm_retained, 4),
        }
        for p in points
    }
