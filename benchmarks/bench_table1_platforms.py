"""Table I — characteristics of testbed platforms.

Regenerates the platform table and checks it against the published
row contents.
"""

from repro.evaluation import render_table1
from repro.topology import get_platform, platform_names


def build_table1() -> str:
    return render_table1()


def test_table1_platforms(benchmark):
    table = benchmark(build_table1)

    # Every published row appears with its processor/core-count text.
    published = {
        "henri": "INTEL Xeon Gold 6140 with 18 cores",
        "henri-subnuma": "4 NUMA nodes",
        "dahu": "INTEL Xeon Gold 6130 with 16 cores",
        "diablo": "AMD EPYC 7452 with 32 cores",
        "pyxis": "CAVIUM-ARM ThunderX2 99xx with 32 cores",
        "occigen": "INTEL Xeon E5 2690v4 with 14 cores",
    }
    for name, fragment in published.items():
        row = next(line for line in table.splitlines() if line.startswith(name))
        assert fragment in row, f"{name}: expected {fragment!r} in {row!r}"

    # Memory sizes as published.
    for name, mem in [
        ("henri", "96 GB"),
        ("dahu", "192 GB"),
        ("diablo", "256 GB"),
        ("pyxis", "256 GB"),
        ("occigen", "64 GB"),
    ]:
        platform = get_platform(name)
        assert mem in platform.machine.metadata["memory"]

    assert len(platform_names()) == 6
    benchmark.extra_info["table"] = table
