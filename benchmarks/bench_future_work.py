"""Future-work experiments from the paper's §VI (DESIGN.md abl4).

* **ping-pong**: "communications with bidirectional data movements
  (i.e. ping-pongs instead of only pongs)" — a send and a receive in
  flight simultaneously while cores compute;
* **copy kernel**: "copying an array into another instead of just
  initializing an array with a single value" — twice the memory
  traffic per element, so saturation arrives at half the core count.
"""

import pytest

from repro.kernels import ComputeTeam, copy_kernel, memset_nt
from repro.memsim import Engine
from repro.mpi import SimBuffer, SimMPI
from repro.topology import get_platform
from repro.units import MB, MiB


def run_pingpong(n_threads: int):
    """Overlap compute with a simultaneous send + receive."""
    platform = get_platform("henri")
    world = SimMPI(platform)
    team = ComputeTeam(
        platform.machine,
        platform.profile,
        n_threads=n_threads,
        data_node=0,
        kernel=memset_nt(),
    )
    team.run(world.engine, elements_per_thread=8 * MiB)
    rx = world.irecv(SimBuffer(64 * MB, numa_node=0), computing_on=0)
    tx = world.isend(SimBuffer(64 * MB, numa_node=0))
    world.waitall([rx, tx])
    world.engine.run()
    return rx.observed_gbps(), tx.observed_gbps()


def test_future_work_pingpong(benchmark):
    rx_gbps, tx_gbps = benchmark.pedantic(
        run_pingpong, args=(14,), rounds=1, iterations=1
    )
    # Both directions make progress under contention...
    assert rx_gbps > 1.0 and tx_gbps > 1.0
    # ...but the receive direction is slower than a pong-only run at the
    # same core count (two DMA streams share the guaranteed bandwidth).
    rx_only, _ = _pong_only(14)
    assert rx_gbps <= rx_only + 1e-9
    benchmark.extra_info["pingpong_gbps"] = {
        "recv": round(rx_gbps, 2),
        "send": round(tx_gbps, 2),
        "pong_only_recv": round(rx_only, 2),
    }


def _pong_only(n_threads: int):
    platform = get_platform("henri")
    world = SimMPI(platform)
    team = ComputeTeam(
        platform.machine,
        platform.profile,
        n_threads=n_threads,
        data_node=0,
        kernel=memset_nt(),
    )
    team.run(world.engine, elements_per_thread=8 * MiB)
    rx = world.irecv(SimBuffer(64 * MB, numa_node=0), computing_on=0)
    world.wait(rx)
    world.engine.run()
    return rx.observed_gbps(), None


def run_kernel_comparison():
    """Aggregate bandwidth of memset vs copy teams at full socket."""
    platform = get_platform("henri")
    out = {}
    for kernel in (memset_nt(), copy_kernel()):
        engine = Engine(platform.machine, platform.profile)
        team = ComputeTeam(
            platform.machine,
            platform.profile,
            n_threads=platform.cores_per_socket,
            data_node=0,
            kernel=kernel,
        )
        run = team.run(engine, elements_per_thread=4 * MiB)
        engine.run()
        out[kernel.name] = (run.total_bandwidth_gbps(), run.makespan_seconds)
    return out


def test_future_work_copy_kernel(benchmark):
    results = benchmark.pedantic(run_kernel_comparison, rounds=1, iterations=1)
    memset_bw, memset_t = results["memset_nt"]
    copy_bw, copy_t = results["copy"]
    # Both kernels saturate the same controller: similar aggregate GB/s.
    assert copy_bw == pytest.approx(memset_bw, rel=0.1)
    # But copy moves 2x the bytes per element: ~2x the makespan.
    assert copy_t > 1.7 * memset_t
    benchmark.extra_info["full_socket"] = {
        "memset_gbps": round(memset_bw, 1),
        "copy_gbps": round(copy_bw, 1),
        "copy_slowdown": round(copy_t / memset_t, 2),
    }
