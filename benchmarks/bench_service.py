"""Service throughput: batched vs unbatched 64-query streams.

The artefact guarded here is the service PR's claim: answering a
64-query prediction stream through the batched path (one request
carrying the whole stream, answered by one ``predict_batch`` pass over
the memoized tables) beats the unbatched path (64 scalar HTTP round
trips) — i.e. the service's batching layer actually amortizes the
vectorized evaluation core instead of just adding plumbing.

Also reported (untimed assertion-free): the same stream issued by 8
concurrent clients against the coalescing batcher, the deployment shape
the server-side batcher exists for.

The compiled-kernel PR adds its claim on top: the same 64-query stream
answered straight out of a :class:`~repro.core.compiled.CompiledModel`
table (the in-process hot path ``/predict`` bulk requests now take) is
at least 10x the batched HTTP throughput measured in the same run, and
bit-identical to the answers the service returns over the wire.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

from _common import best_of, percentile, timed

from repro.bench import SweepConfig
from repro.core.compiled import CompiledModel
from repro.evaluation import run_platform_experiment
from repro.service.client import ServiceClient
from repro.service.server import ContentionService

PLATFORM = "occigen"
N_QUERIES = 64
N_CONCURRENT_CLIENTS = 8
#: Table lookups are microseconds; repeat the stream so each timed
#: round is long enough for the wall clock to resolve.
KERNEL_REPS = 200


class _ServerThread:
    """A service on its own event-loop thread (as ``repro serve`` runs it)."""

    def __init__(self) -> None:
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.service: ContentionService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None

    def start(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=10), "service did not start"
        return self

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self.service = ContentionService(port=0)
        await self.service.start()
        self.loop = asyncio.get_running_loop()
        self._ready.set()
        await self.service.run_until_shutdown()

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        ).result(10)
        self._thread.join(10)


def _queries(n_nodes: int) -> list[tuple[int, int, int]]:
    return [
        (i % 14 + 1, i % n_nodes, (i + 1) % n_nodes)
        for i in range(N_QUERIES)
    ]


TIMED_ROUNDS = 3


def collect(recorder, benchmark=None) -> None:
    """The timed stream workload, publishing through one recorder.

    Shared verbatim by the pytest benchmark below (which passes its
    ``benchmark`` fixture for the pedantic rounds) and by ``repro bench
    run`` (the BENCH_service.json trajectory).
    """
    reference = run_platform_experiment(PLATFORM, config=SweepConfig(seed=0))
    n_nodes = reference.model.n_numa_nodes
    queries = _queries(n_nodes)

    server = _ServerThread().start()
    try:
        client = ServiceClient("127.0.0.1", server.service.port)
        client.calibrate(PLATFORM)  # keep calibration out of the timings

        def unbatched() -> list[dict]:
            return [
                client.predict(PLATFORM, n=n, m_comp=mc, m_comm=mm)
                for n, mc, mm in queries
            ]

        def batched() -> list[dict]:
            return client.predict_many(PLATFORM, queries)

        def coalesced() -> list[dict]:
            chunk = N_QUERIES // N_CONCURRENT_CLIENTS
            with ThreadPoolExecutor(N_CONCURRENT_CLIENTS) as pool:
                parts = pool.map(
                    lambda i: [
                        client.predict(PLATFORM, n=n, m_comp=mc, m_comm=mm)
                        for n, mc, mm in queries[i * chunk:(i + 1) * chunk]
                    ],
                    range(N_CONCURRENT_CLIENTS),
                )
                return [row for part in parts for row in part]

        # The compiled kernel the server's bulk path reads from — built
        # from the same calibrated model, so identical by construction.
        compiled = CompiledModel.compile(reference.model)

        def compiled_kernel() -> dict:
            for _ in range(KERNEL_REPS - 1):
                compiled.predict_columns(queries)
            return compiled.predict_columns(queries)

        # Identical answers first: the throughput means nothing otherwise.
        columns = compiled.predict_columns(queries)
        for i, ((n, mc, mm), row) in enumerate(zip(queries, batched())):
            assert row["comp_parallel"] == reference.model.comp_parallel(
                n, mc, mm
            )
            assert row["comm_parallel"] == reference.model.comm_parallel(
                n, mc, mm
            )
            assert row["comp_parallel"] == columns["comp_parallel"][i]
            assert row["comm_parallel"] == columns["comm_parallel"][i]
        assert [r["comp_parallel"] for r in unbatched()] == [
            r["comp_parallel"] for r in batched()
        ]

        # The identity pass above warmed every path; time from here.
        t_unbatched = best_of(unbatched, rounds=TIMED_ROUNDS, warmup=0)
        t_batched = best_of(batched, rounds=TIMED_ROUNDS, warmup=0)
        t_coalesced = best_of(coalesced, rounds=TIMED_ROUNDS, warmup=0)
        t_compiled = (
            best_of(compiled_kernel, rounds=TIMED_ROUNDS, warmup=1)
            / KERNEL_REPS
        )
        latencies_ms = [
            timed(
                lambda q=q: client.predict(
                    PLATFORM, n=q[0], m_comp=q[1], m_comm=q[2]
                )
            ) * 1e3
            for q in queries
        ]

        recorder.metric(
            "unbatched_qps", N_QUERIES / t_unbatched, unit="queries/s",
            direction="higher", band=1.0,
        )
        recorder.metric(
            "batched_qps", N_QUERIES / t_batched, unit="queries/s",
            direction="higher", band=1.0,
        )
        recorder.metric(
            "coalesced_qps", N_QUERIES / t_coalesced, unit="queries/s",
            direction="higher", band=1.0,
        )
        recorder.metric(
            "batched_speedup", t_unbatched / t_batched, unit="x",
            direction="higher", band=1.0,
        )
        recorder.metric(
            # In-process table throughput; wide band — microsecond-scale
            # timings swing hard with host load, the 10x floor below is
            # the real contract.
            "compiled_kernel_qps", N_QUERIES / t_compiled, unit="queries/s",
            direction="higher", band=4.0,
        )
        recorder.metric(
            "compiled_kernel_speedup", t_batched / t_compiled, unit="x",
            direction="higher", band=4.0,
        )
        recorder.metric(
            "predict_p50_ms", percentile(latencies_ms, 50), unit="ms",
            direction="lower", band=1.5,
        )
        recorder.metric(
            # p99 of a 64-sample pass is nearly the max: widest band.
            "predict_p99_ms", percentile(latencies_ms, 99), unit="ms",
            direction="lower", band=2.5,
        )
        recorder.context(
            stream=f"{N_QUERIES} scalar queries",
            concurrent_clients=N_CONCURRENT_CLIENTS,
            timed_rounds=TIMED_ROUNDS,
            kernel_reps=KERNEL_REPS,
            compiled_table_bytes=compiled.table_bytes,
            batch_size_distribution=client.metrics()["batching"]["sizes"],
        )
        if benchmark is not None:
            benchmark.pedantic(batched, rounds=5, iterations=1)
    finally:
        server.stop()


def test_batched_stream_beats_unbatched(benchmark):
    from repro.benchtrack import BenchRecorder

    recorder = BenchRecorder()
    collect(recorder, benchmark)
    values = recorder.values()
    assert values["batched_qps"] > values["unbatched_qps"], (
        f"batched stream slower than unbatched: "
        f"{values['batched_qps']:.0f} vs {values['unbatched_qps']:.0f} "
        "queries/s"
    )
    # The compiled-kernel contract: both sides measured in this run, on
    # this host, so the floor is host-independent.
    assert values["compiled_kernel_qps"] >= 10.0 * values["batched_qps"], (
        f"compiled kernel only "
        f"{values['compiled_kernel_qps'] / values['batched_qps']:.1f}x the "
        f"batched HTTP path ({values['compiled_kernel_qps']:.0f} vs "
        f"{values['batched_qps']:.0f} queries/s); want >= 10x"
    )
    benchmark.extra_info.update(
        {
            "stream": f"{N_QUERIES} scalar queries",
            "unbatched_qps": round(values["unbatched_qps"]),
            "batched_qps": round(values["batched_qps"]),
            "coalesced_qps": round(values["coalesced_qps"]),
            "compiled_kernel_qps": round(values["compiled_kernel_qps"]),
            "speedup": round(values["batched_speedup"], 1),
            "compiled_speedup": round(values["compiled_kernel_speedup"], 1),
            "predict_p50_ms": round(values["predict_p50_ms"], 3),
            "predict_p99_ms": round(values["predict_p99_ms"], 3),
        }
    )
