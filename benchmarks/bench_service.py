"""Service throughput: batched vs unbatched 64-query streams.

The artefact guarded here is the service PR's claim: answering a
64-query prediction stream through the batched path (one request
carrying the whole stream, answered by one ``predict_batch`` pass over
the memoized tables) beats the unbatched path (64 scalar HTTP round
trips) — i.e. the service's batching layer actually amortizes the
vectorized evaluation core instead of just adding plumbing.

Also reported (untimed assertion-free): the same stream issued by 8
concurrent clients against the coalescing batcher, the deployment shape
the server-side batcher exists for.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench import SweepConfig
from repro.evaluation import run_platform_experiment
from repro.service.client import ServiceClient
from repro.service.server import ContentionService

PLATFORM = "occigen"
N_QUERIES = 64
N_CONCURRENT_CLIENTS = 8


class _ServerThread:
    """A service on its own event-loop thread (as ``repro serve`` runs it)."""

    def __init__(self) -> None:
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.service: ContentionService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None

    def start(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=10), "service did not start"
        return self

    def _run(self) -> None:
        asyncio.run(self._amain())

    async def _amain(self) -> None:
        self.service = ContentionService(port=0)
        await self.service.start()
        self.loop = asyncio.get_running_loop()
        self._ready.set()
        await self.service.run_until_shutdown()

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        ).result(10)
        self._thread.join(10)


def _queries(n_nodes: int) -> list[tuple[int, int, int]]:
    return [
        (i % 14 + 1, i % n_nodes, (i + 1) % n_nodes)
        for i in range(N_QUERIES)
    ]


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_batched_stream_beats_unbatched(benchmark):
    reference = run_platform_experiment(PLATFORM, config=SweepConfig(seed=0))
    n_nodes = reference.model.n_numa_nodes
    queries = _queries(n_nodes)

    server = _ServerThread().start()
    try:
        client = ServiceClient("127.0.0.1", server.service.port)
        client.calibrate(PLATFORM)  # keep calibration out of the timings

        def unbatched() -> list[dict]:
            return [
                client.predict(PLATFORM, n=n, m_comp=mc, m_comm=mm)
                for n, mc, mm in queries
            ]

        def batched() -> list[dict]:
            return client.predict_many(PLATFORM, queries)

        def coalesced() -> list[dict]:
            chunk = N_QUERIES // N_CONCURRENT_CLIENTS
            with ThreadPoolExecutor(N_CONCURRENT_CLIENTS) as pool:
                parts = pool.map(
                    lambda i: [
                        client.predict(PLATFORM, n=n, m_comp=mc, m_comm=mm)
                        for n, mc, mm in queries[i * chunk:(i + 1) * chunk]
                    ],
                    range(N_CONCURRENT_CLIENTS),
                )
                return [row for part in parts for row in part]

        # Identical answers first: the throughput means nothing otherwise.
        for (n, mc, mm), row in zip(queries, batched()):
            assert row["comp_parallel"] == reference.model.comp_parallel(
                n, mc, mm
            )
            assert row["comm_parallel"] == reference.model.comm_parallel(
                n, mc, mm
            )
        assert [r["comp_parallel"] for r in unbatched()] == [
            r["comp_parallel"] for r in batched()
        ]

        t_unbatched = min(_timed(unbatched) for _ in range(3))
        t_batched = min(_timed(batched) for _ in range(3))
        t_coalesced = min(_timed(coalesced) for _ in range(3))

        qps_unbatched = N_QUERIES / t_unbatched
        qps_batched = N_QUERIES / t_batched
        assert qps_batched > qps_unbatched, (
            f"batched stream slower than unbatched: "
            f"{qps_batched:.0f} vs {qps_unbatched:.0f} queries/s"
        )

        batch_sizes = client.metrics()["batching"]["sizes"]
        benchmark.extra_info.update(
            {
                "stream": f"{N_QUERIES} scalar queries",
                "unbatched_qps": round(qps_unbatched),
                "batched_qps": round(qps_batched),
                "coalesced_qps": round(N_QUERIES / t_coalesced),
                "speedup": round(qps_batched / qps_unbatched, 1),
                "batch_size_distribution": batch_sizes,
            }
        )
        benchmark.pedantic(batched, rounds=5, iterations=1)
    finally:
        server.stop()
