"""Extension — sender-side contention on a two-machine cluster (ext6).

The paper's benchmark keeps the sender idle ("computations and
communications use different data, making them completely
independent") and models the receive side only.  With both machines in
one arbitration domain, the excluded experiment becomes runnable: how
does the achieved transfer bandwidth depend on *which side* computes?

Expected shape: contention from either side throttles the message
(both memory systems sit on its path); computing on both sides is at
least as bad as the worse single side; and the wire itself is never
the bottleneck on this testbed (the paper's premise that memory, not
the network, is the scarce resource).
"""

from repro.memsim import Arbiter
from repro.net import FABRICS
from repro.net.cluster import (
    WIRE_ID,
    Cluster,
    build_cluster_resources,
    compute_streams,
    transfer_stream,
)
from repro.topology import get_platform


def run_sender_receiver_study():
    cluster = Cluster(
        node0=get_platform("henri"),
        node1=get_platform("henri"),
        fabric=FABRICS["infiniband-edr"],
    )
    arbiter = Arbiter(build_cluster_resources(cluster), cluster.node0.profile)
    n = cluster.node0.cores_per_socket

    def measure(*, sender_cores: int, receiver_cores: int):
        streams = [
            transfer_stream(
                cluster, stream_id="msg", src_rank=0, src_node=0, dst_node=0
            )
        ]
        if sender_cores:
            streams += compute_streams(
                cluster, rank=0, n_cores=sender_cores, data_node=0
            )
        if receiver_cores:
            streams += compute_streams(
                cluster, rank=1, n_cores=receiver_cores, data_node=0
            )
        allocation = arbiter.solve(streams)
        return allocation.rate("msg"), allocation

    idle, _ = measure(sender_cores=0, receiver_cores=0)
    rx_busy, _ = measure(sender_cores=0, receiver_cores=n)
    tx_busy, _ = measure(sender_cores=n, receiver_cores=0)
    both_busy, allocation = measure(sender_cores=n, receiver_cores=n)
    return idle, rx_busy, tx_busy, both_busy, allocation


def test_extension_sender_side_contention(benchmark):
    idle, rx_busy, tx_busy, both_busy, allocation = benchmark.pedantic(
        run_sender_receiver_study, rounds=1, iterations=1
    )

    # Idle cluster: the wire-limited nominal.
    assert idle > 12.0
    # Either busy side alone throttles the transfer substantially.
    assert rx_busy < 0.6 * idle
    assert tx_busy < 0.6 * idle
    # Both busy is at least as bad as the worse single side.
    assert both_busy <= min(rx_busy, tx_busy) + 1e-9
    # The anti-starvation floor still holds end to end.
    assert both_busy > 0.2 * idle
    # The wire is never the bottleneck (memory is, per the paper's premise).
    assert allocation.resource_usage[WIRE_ID] < 0.99 * 12.5

    benchmark.extra_info["transfer_gbps"] = {
        "idle": round(idle, 2),
        "receiver_busy": round(rx_busy, 2),
        "sender_busy": round(tx_busy, 2),
        "both_busy": round(both_busy, 2),
    }
