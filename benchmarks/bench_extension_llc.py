"""Extension — LLC filtering (ext3): contention vs working-set size.

The paper bypasses the LLC to isolate true memory traffic (§II-C) and
defers cache modelling to future work (§VI).  This benchmark runs the
deferred experiment: a *temporal* copy kernel with a growing per-thread
working set, overlapped with communications on the same NUMA node.

Expected shape: while the working set fits in the LLC, almost no DRAM
traffic is produced and the NIC keeps its nominal bandwidth; as the
working set outgrows the cache, the contention of the paper's
benchmark re-emerges and converges to the non-temporal behaviour.
"""

import dataclasses

import numpy as np

from repro.kernels import CacheModel, copy_kernel
from repro.memsim import Scenario, solve_scenario
from repro.topology import get_platform
from repro.units import MiB


def run_working_set_sweep():
    platform = get_platform("henri")
    n = platform.cores_per_socket
    cache = CacheModel(machine=platform.machine, n_threads=n)
    kernel = dataclasses.replace(copy_kernel(), non_temporal=False)

    working_sets = [
        cache.llc_share_bytes // 4,
        cache.llc_share_bytes,
        4 * cache.llc_share_bytes,
        16 * cache.llc_share_bytes,
        256 * MiB,
    ]
    points = []
    for ws in working_sets:
        demand = cache.effective_demand_gbps(
            kernel,
            working_set_bytes=ws,
            stream_gbps=platform.profile.core_stream_local_gbps,
        )
        result = solve_scenario(
            platform.machine,
            platform.profile,
            Scenario(n, 0, 0, comp_demand_gbps=demand, comp_issue_gbps=demand),
        )
        points.append((ws, demand, result.comm_gbps))
    baseline = solve_scenario(
        platform.machine, platform.profile, Scenario(n, 0, 0)
    )
    return points, baseline.comm_gbps


def test_extension_llc_working_set(benchmark):
    points, nt_comm = benchmark.pedantic(
        run_working_set_sweep, rounds=1, iterations=1
    )
    comm = np.array([p[2] for p in points])
    demands = np.array([p[1] for p in points])

    # Cache-resident working set: no DRAM pressure, NIC at nominal.
    assert comm[0] > 0.97 * 12.3
    # Cache-overflowing working set: the paper's contention returns.
    assert comm[-1] < 0.6 * 12.3
    # Convergence to the non-temporal (bypass) behaviour.
    np.testing.assert_allclose(comm[-1], nt_comm, rtol=0.05)
    # Monotone: more DRAM traffic, less network bandwidth.
    assert np.all(np.diff(comm) <= 1e-9)
    assert np.all(np.diff(demands) >= -1e-9)

    benchmark.extra_info["comm_gbps_by_working_set"] = {
        f"{ws // MiB} MiB": round(float(c), 2) for ws, _, c in points
    }
