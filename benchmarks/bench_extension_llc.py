"""Extension — LLC filtering (ext3): contention vs working-set size.

The paper bypasses the LLC to isolate true memory traffic (§II-C) and
defers cache modelling to future work (§VI).  This benchmark runs the
deferred experiment on the simulator's first-class LLC resource: a
*temporal* tenant with a growing per-core working set shares the
machine with a communication-bound tenant on the same NUMA node, and
the arbiter's LLC capacity pass decides how much of the computation
traffic actually reaches DRAM.

Expected shape: while the working set fits in the LLC, almost no DRAM
traffic is produced and the NIC keeps its nominal bandwidth; as the
working set outgrows the cache, the contention of the paper's
benchmark re-emerges and converges to the non-temporal behaviour.
"""

import numpy as np

from _common import timed
from repro.memsim import Tenant, TenantScenario, solve_tenant_scenario
from repro.topology import get_platform
from repro.units import MiB

#: NUMA node holding both the computation and communication data.
_NODE = 0


def _solve(platform, working_set_bytes):
    """Victim comm bandwidth + app bandwidths for one working set.

    ``working_set_bytes=None`` runs the paper's non-temporal baseline
    (stores bypass the cache entirely).
    """
    n = platform.cores_per_socket
    scenario = TenantScenario(
        (
            Tenant(
                name="app",
                n_cores=n,
                m_comp=_NODE,
                working_set_bytes=working_set_bytes,
            ),
            Tenant(name="victim", m_comm=_NODE),
        )
    )
    result = solve_tenant_scenario(platform.machine, platform.profile, scenario)
    return result.tenant("app"), result.tenant("victim")


def run_working_set_sweep():
    platform = get_platform("henri")
    n = platform.cores_per_socket
    llc = max(platform.machine.sockets[0].caches, key=lambda c: c.level)
    share = llc.size_bytes // n

    working_sets = [share // 4, share, 4 * share, 16 * share, 256 * MiB]
    points = []
    for ws in working_sets:
        app, victim = _solve(platform, ws)
        points.append((ws, app.comp_dram_gbps, app.comp_gbps, victim.comm_gbps))
    _, nt_victim = _solve(platform, None)
    return points, nt_victim.comm_gbps


def collect(recorder, benchmark=None) -> None:
    """Perf-trajectory hook: the working-set sweep, timed and pinned.

    The sweep itself is deterministic (a noiseless arbiter solve), so
    the bandwidth metrics carry tight bands; only the wall time gets a
    wide one (shared-runner noise).
    """
    holder: dict = {}
    duration_s = timed(
        lambda: holder.setdefault("result", run_working_set_sweep())
    )
    points, nt_comm = holder["result"]
    recorder.metric(
        "sweep_wall_ms", duration_s * 1e3, unit="ms", direction="lower",
        band=2.5,
    )
    recorder.metric(
        "comm_cache_resident_gbps", points[0][3], unit="GB/s",
        direction="higher", band=0.01,
    )
    recorder.metric(
        "comm_overflow_gbps", points[-1][3], unit="GB/s",
        direction="higher", band=0.01,
    )
    recorder.metric(
        "comm_nt_baseline_gbps", nt_comm, unit="GB/s", direction="higher",
        band=0.01,
    )
    recorder.metric(
        "dram_cache_resident_gbps", points[0][1], unit="GB/s",
        direction="lower", band=0.01,
    )
    recorder.metric(
        "comp_processed_resident_gbps", points[0][2], unit="GB/s",
        direction="higher", band=0.01,
    )
    platform = get_platform("henri")
    recorder.context(
        platform="henri",
        n_cores=platform.cores_per_socket,
        working_sets_mib=[round(p[0] / MiB, 3) for p in points],
    )


def test_extension_llc_working_set(benchmark):
    points, nt_comm = benchmark.pedantic(
        run_working_set_sweep, rounds=1, iterations=1
    )
    comm = np.array([p[3] for p in points])
    dram = np.array([p[1] for p in points])

    # Cache-resident working set: no DRAM pressure, NIC at nominal.
    assert comm[0] > 0.97 * 12.3
    # Cache-overflowing working set: the paper's contention returns.
    assert comm[-1] < 0.6 * 12.3
    # Convergence to the non-temporal (bypass) behaviour.
    np.testing.assert_allclose(comm[-1], nt_comm, rtol=0.05)
    # Monotone: a growing working set never *recovers* network bandwidth.
    assert np.all(np.diff(comm) <= 1e-9)
    # Cache-resident points draw almost no DRAM bandwidth; overflowing
    # ones draw the bulk of the socket (the arbitrated DRAM rate is not
    # strictly monotone past the knee — contention feedback nibbles at
    # it — so the assertion is resident-vs-overflow, not pointwise).
    assert dram[0] < 0.05 * dram[-1] and dram[1] < 0.05 * dram[-1]
    assert dram[1] < dram[2]

    benchmark.extra_info["comm_gbps_by_working_set"] = {
        f"{ws // MiB} MiB": round(float(c), 2) for ws, _, _, c in points
    }
