"""Figure 6 — occigen (older Xeon): only computations are impacted.

Paper shape claims checked here (§IV-B d):

* communications always run at their nominal bandwidth (the hardware
  fully protects the NIC: α = 1);
* computations are impacted only when both activities make remote
  accesses to the same node;
* occigen is the platform where the model is the most accurate.
"""

import numpy as np

from _common import run_figure_pipeline, stash_errors


def test_fig6_occigen(benchmark):
    result = benchmark.pedantic(
        run_figure_pipeline, args=("occigen",), rounds=1, iterations=1
    )
    sweep = result.dataset.sweep

    # Communications never impacted, on any placement.
    for key in sweep:
        curves = sweep[key]
        assert np.allclose(
            curves.comm_parallel, np.median(curves.comm_alone), rtol=0.02
        ), f"communications impacted at {key}"

    # The calibrated worst-case factor is (essentially) one.
    assert result.model.local.alpha > 0.97
    assert result.model.remote.alpha > 0.97

    # Computations: impacted on remote/remote, untouched elsewhere.
    remote = sweep[(1, 1)]
    assert remote.comp_parallel[-1] < 0.97 * remote.comp_alone[-1]
    for key in [(0, 0), (0, 1), (1, 0)]:
        curves = sweep[key]
        assert np.all(curves.comp_parallel >= 0.98 * curves.comp_alone), (
            f"unexpected computation impact at {key}"
        )

    # Most accurate platform of the testbed (paper: 0.20 % average).
    assert result.errors.average < 0.5

    stash_errors(benchmark, result)
