"""Figure 5 — diablo (AMD EPYC): locality-sensitive NIC, ~no contention.

Paper shape claims checked here (§IV-B c):

* network bandwidth depends strongly on the destination node: ~12.1
  GB/s to node 0 versus ~22.4 GB/s to node 1 (where the NIC is
  plugged);
* there is almost no contention anywhere;
* the model still predicts accurately thanks to equation 6's nominal
  substitution (diablo is a best-case for it).
"""

import numpy as np

from _common import run_figure_pipeline, stash_errors


def test_fig5_diablo(benchmark):
    result = benchmark.pedantic(
        run_figure_pipeline, args=("diablo",), rounds=1, iterations=1
    )
    sweep = result.dataset.sweep

    # NIC locality asymmetry (note: on diablo node 1 is the NIC node).
    to_node0 = float(np.median(sweep[(0, 0)].comm_alone))
    to_node1 = float(np.median(sweep[(1, 1)].comm_alone))
    np.testing.assert_allclose(to_node0, 12.1, rtol=0.05)
    np.testing.assert_allclose(to_node1, 22.4, rtol=0.05)
    assert to_node1 / to_node0 > 1.7

    # Almost no contention: parallel curves within a few percent of the
    # alone curves, everywhere.
    for key in sweep:
        curves = sweep[key]
        assert np.all(
            curves.comp_parallel >= 0.93 * curves.comp_alone
        ), f"unexpected computation impact at {key}"
        assert np.all(
            curves.comm_parallel >= 0.90 * np.median(curves.comm_alone)
        ), f"unexpected communication impact at {key}"

    # The model's nominal-substitution rule captures the asymmetry:
    # predictions for comm toward node 1 use the ~22.4 GB/s nominal.
    pred_to_nic_node = result.predictions[(1, 1)]
    assert pred_to_nic_node.comm_alone > 20.0
    pred_to_far_node = result.predictions[(0, 0)]
    assert pred_to_far_node.comm_alone < 14.0

    # diablo sits near the bottom of Table II.
    assert result.errors.average < 1.5

    stash_errors(benchmark, result)
