"""Table II — model errors on all testbed platforms.

The headline artefact: runs the full pipeline on every platform and
checks the paper's quantitative claims:

* overall average error below the "lower than 4 %" headline band;
* computations predicted better than communications;
* communication errors larger on non-sample placements (on average);
* occigen the most accurate platform, pyxis the worst;
* pyxis' non-sample communication error is double-digit.
"""

import numpy as np

from repro.bench import SweepConfig
from repro.evaluation import render_table2, run_all_experiments


def build_table2():
    return run_all_experiments(config=SweepConfig(seed=1))


def test_table2_errors(benchmark):
    results = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    rows = {name: r.errors for name, r in results.items()}

    averages = {name: row.average for name, row in rows.items()}
    overall = float(np.mean(list(averages.values())))

    # Headline: "a prediction error in average lower than 4 %".
    assert overall < 4.0

    # Computations beat communications overall.
    comm_all = float(np.mean([row.comm_all for row in rows.values()]))
    comp_all = float(np.mean([row.comp_all for row in rows.values()]))
    assert comp_all < comm_all

    # Samples beat non-samples for communications, on average.
    comm_s = float(np.mean([row.comm_samples for row in rows.values()]))
    comm_ns = float(np.mean([row.comm_non_samples for row in rows.values()]))
    assert comm_s < comm_ns

    # Platform ordering: occigen best, pyxis worst.
    assert min(averages, key=averages.get) == "occigen"
    assert max(averages, key=averages.get) == "pyxis"

    # The pyxis outlier: double-digit non-sample communication error
    # (paper: 13.32 %), while every other platform stays single-digit.
    assert rows["pyxis"].comm_non_samples >= 10.0
    for name, row in rows.items():
        if name != "pyxis":
            assert row.comm_non_samples < 10.0

    benchmark.extra_info["table"] = render_table2(results)
    benchmark.extra_info["overall_average_pct"] = round(overall, 2)
