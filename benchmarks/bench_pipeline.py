"""Macrobenchmark: the cached, parallel pipeline layer.

Two artefacts are guarded here:

* **Warm-cache speedup** — a warm run of the full §IV pipeline serves
  the sweep and calibration from the artifact store instead of
  recomputing them, so it must be substantially faster than a cold run
  while staying bit-identical.
* **Parallel bit-identity** — ``run_all_pipelines(jobs=N)`` fans the
  platforms out across workers and must reproduce the serial output bit
  for bit.  A wall-clock speedup is asserted only on multi-core hosts
  (single-core CI still checks identity).
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from _common import best_of

from repro.bench import SweepConfig
from repro.pipeline import ArtifactStore, run_all_pipelines, run_platform_pipeline

CONFIG = SweepConfig(seed=1)
PLATFORM = "henri-subnuma"  # 16 placements: the largest per-platform grid

#: Conservative floor: the warm path replaces the whole sweep +
#: calibration with file reads and memoized lookups.
MIN_WARM_SPEEDUP = 3.0


def _identical(a, b) -> None:
    assert a.dataset.to_csv(full_precision=True) == b.dataset.to_csv(
        full_precision=True
    )
    assert a.model.local.to_json() == b.model.local.to_json()
    assert a.model.remote.to_json() == b.model.remote.to_json()
    for key in a.predictions:
        assert np.array_equal(
            a.predictions[key].comm_parallel, b.predictions[key].comm_parallel
        )
        assert np.array_equal(
            a.predictions[key].comp_parallel, b.predictions[key].comp_parallel
        )
    assert a.errors == b.errors


WARM_ROUNDS = 5


def collect(recorder) -> None:
    """The timed cold/warm workload, publishing through one recorder.

    Shared verbatim by the pytest benchmark below and by ``repro bench
    run`` (the BENCH_pipeline.json trajectory).
    """
    with tempfile.TemporaryDirectory() as cache_dir:
        store = ArtifactStore(cache_dir)
        cold_start = time.perf_counter()
        cold = run_platform_pipeline(PLATFORM, config=CONFIG, store=store)
        t_cold = time.perf_counter() - cold_start
        assert cold.stats.computed_stages == ("measure", "calibrate")

        # Identity first: a fast wrong answer is worthless.
        warm = run_platform_pipeline(PLATFORM, config=CONFIG, store=store)
        assert warm.stats.cached_stages == ("measure", "calibrate")
        _identical(cold.result, warm.result)

        # The run above is the warmup; best_of only times from here.
        t_warm = best_of(
            lambda: run_platform_pipeline(PLATFORM, config=CONFIG, store=store),
            rounds=WARM_ROUNDS,
            warmup=0,
        )
        stats = store.stats.as_dict()
        recorder.metric(
            "cold_ms", t_cold * 1e3, unit="ms", direction="lower", band=1.5
        )
        recorder.metric(
            "warm_ms", t_warm * 1e3, unit="ms", direction="lower", band=1.5
        )
        recorder.metric(
            "warm_speedup", t_cold / t_warm, unit="x", direction="higher",
            band=1.5,
        )
        # Deterministic for the fixed round count: exact-match band.
        recorder.metric(
            "cache_hit_rate",
            stats["hits"] / (stats["hits"] + stats["misses"]),
            unit="ratio", direction="higher", band=0.0,
        )
        recorder.context(
            platform=PLATFORM, warm_rounds=WARM_ROUNDS, store_stats=stats
        )


def test_warm_cache_speedup(benchmark):
    from repro.benchtrack import BenchRecorder

    recorder = BenchRecorder()
    collect(recorder)
    values = recorder.values()
    speedup = values["warm_speedup"]
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"warm run only {speedup:.1f}x faster than cold "
        f"({values['cold_ms']:.1f} ms vs {values['warm_ms']:.1f} ms)"
    )

    benchmark.extra_info.update(
        {
            "platform": PLATFORM,
            "cold_ms": round(values["cold_ms"], 1),
            "warm_ms": round(values["warm_ms"], 1),
            "warm_speedup": round(speedup, 1),
            "cache_hit_rate": round(values["cache_hit_rate"], 3),
        }
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        store = ArtifactStore(cache_dir)
        run_platform_pipeline(PLATFORM, config=CONFIG, store=store)  # prime
        benchmark.pedantic(
            run_platform_pipeline,
            args=(PLATFORM,),
            kwargs={"config": CONFIG, "store": store},
            rounds=5,
            iterations=1,
        )


def test_parallel_all_platforms(benchmark):
    t_serial_start = time.perf_counter()
    serial = run_all_pipelines(config=CONFIG)
    t_serial = time.perf_counter() - t_serial_start

    jobs = min(4, os.cpu_count() or 1)
    t_parallel_start = time.perf_counter()
    parallel = run_all_pipelines(config=CONFIG, jobs=jobs)
    t_parallel = time.perf_counter() - t_parallel_start

    assert list(serial) == list(parallel)
    for name in serial:
        _identical(serial[name].result, parallel[name].result)

    speedup = t_serial / t_parallel
    if (os.cpu_count() or 1) >= 2 and jobs >= 2:
        # Process start-up costs a fixed slice; any net win proves the
        # fan-out works.  Single-core hosts only check bit-identity.
        assert speedup >= 1.0, (
            f"jobs={jobs} slower than serial "
            f"({t_parallel:.2f} s vs {t_serial:.2f} s)"
        )

    benchmark.extra_info.update(
        {
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "serial_s": round(t_serial, 2),
            "parallel_s": round(t_parallel, 2),
            "parallel_speedup": round(speedup, 2),
        }
    )
    benchmark.pedantic(
        run_all_pipelines,
        kwargs={"config": CONFIG, "jobs": jobs},
        rounds=2,
        iterations=1,
    )
