"""Baselines vs the paper's model (DESIGN.md abl3).

Scores the §II-D / §V alternatives against the same ground truth:

* **naive** (no contention at all),
* **queueing-ps** (single processor-sharing queue, no priorities),
* **langguth-threadfair** (equal per-thread sharing).

The paper's model should beat all three on communication prediction for
contended platforms, and the margin should shrink on diablo where there
is almost nothing to model.
"""

import numpy as np

from repro.baselines import LangguthModel, NaiveModel, QueueingModel, calibrate_baseline
from repro.evaluation import mape
from _common import run_figure_pipeline, timed

BASELINES = {
    "naive": NaiveModel,
    "queueing-ps": QueueingModel,
    "langguth-threadfair": LangguthModel,
}


def collect(recorder, benchmark=None) -> None:
    """Perf-trajectory hook: baseline-vs-model accuracy on two platforms.

    The trajectory watches the *margins*, not just the wall time: the
    paper model's communication MAPE per predictor on contended henri
    (tight band — deterministic for a fixed seed) and the near
    contention-free diablo, where every predictor converges.  A model
    change that silently erodes the henri margin fails the gate.
    """
    holder: dict = {}
    duration_s = timed(
        lambda: holder.setdefault("henri", score_platform("henri"))
    )
    henri = holder["henri"]
    recorder.metric(
        "henri_wall_ms", duration_s * 1e3, unit="ms", direction="lower",
        band=2.5,
    )
    for name, value in sorted(henri.items()):
        slug = name.replace("-", "_")
        recorder.metric(
            f"henri_{slug}_comm_mape_pct", value, unit="%",
            direction="lower", band=0.05,
        )
    diablo = score_platform("diablo")
    recorder.metric(
        "diablo_paper_model_comm_mape_pct", diablo["paper-model"],
        unit="%", direction="lower", band=0.05,
    )
    recorder.metric(
        "diablo_naive_comm_mape_pct", diablo["naive"], unit="%",
        direction="lower", band=0.05,
    )
    recorder.context(
        platforms=["henri", "diablo"],
        predictors=sorted([*BASELINES, "paper-model"]),
        seed=1,
    )


def score_platform(platform_name: str) -> dict[str, float]:
    """Mean communication MAPE over all placements, per predictor."""
    result = run_figure_pipeline(platform_name)
    scores: dict[str, list[float]] = {name: [] for name in BASELINES}
    scores["paper-model"] = []
    for key in result.dataset.sweep:
        curves = result.dataset.sweep[key]
        scores["paper-model"].append(
            mape(curves.comm_parallel, result.predictions[key].comm_parallel)
        )
        inputs = calibrate_baseline(curves)
        for name, cls in BASELINES.items():
            swept = cls(inputs).sweep(curves.core_counts)
            scores[name].append(mape(curves.comm_parallel, swept["comm_par"]))
    return {name: float(np.mean(vals)) for name, vals in scores.items()}


def test_baselines_henri(benchmark):
    scores = benchmark.pedantic(
        score_platform, args=("henri",), rounds=1, iterations=1
    )
    # The paper's model wins on a contended platform.
    for name in BASELINES:
        assert scores["paper-model"] < scores[name], (
            f"paper model ({scores['paper-model']:.2f}%) should beat "
            f"{name} ({scores[name]:.2f}%)"
        )
    # The naive baseline is far off: contention is a real, large effect.
    assert scores["naive"] > 3.0 * scores["paper-model"]
    benchmark.extra_info["comm_mape_pct"] = {
        k: round(v, 2) for k, v in scores.items()
    }


def test_baselines_diablo(benchmark):
    scores = benchmark.pedantic(
        score_platform, args=("diablo",), rounds=1, iterations=1
    )
    # Nearly contention-free: even the naive baseline is decent here,
    # but the full model must not be (much) worse than any baseline.
    for name in BASELINES:
        assert scores["paper-model"] <= scores[name] + 0.5
    assert scores["naive"] < 5.0
    benchmark.extra_info["comm_mape_pct"] = {
        k: round(v, 2) for k, v in scores.items()
    }
