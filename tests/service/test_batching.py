"""PredictBatcher: coalescing, bit-identical results, error isolation."""

import asyncio

import pytest

from repro.core.placement import PlacementModel
from repro.core.parameters import ModelParameters
from repro.errors import PlacementError
from repro.service.batching import PredictBatcher
from repro.service.metrics import ServiceMetrics
from repro.service.registry import ModelEntry, ModelKey

LOCAL = ModelParameters(
    n_par_max=8,
    t_par_max=60.0,
    n_seq_max=12,
    t_seq_max=58.0,
    t_par_max2=56.0,
    delta_l=1.0,
    delta_r=0.5,
    b_comp_seq=5.0,
    b_comm_seq=10.0,
    alpha=0.4,
)
REMOTE = ModelParameters(
    n_par_max=6,
    t_par_max=30.0,
    n_seq_max=10,
    t_seq_max=28.0,
    t_par_max2=27.0,
    delta_l=0.75,
    delta_r=0.3,
    b_comp_seq=2.5,
    b_comm_seq=9.0,
    alpha=0.4,
)


@pytest.fixture
def entry():
    model = PlacementModel(LOCAL, REMOTE, nodes_per_socket=2, n_numa_nodes=4)
    return ModelEntry(
        key=ModelKey("testbed", 0), platform=None, model=model
    )


class TestCoalescing:
    def test_concurrent_queries_form_one_batch(self, entry):
        metrics = ServiceMetrics()
        batcher = PredictBatcher(metrics=metrics)
        queries = [(n, n % 4, (n + 1) % 4) for n in range(1, 13)]

        async def go():
            return await asyncio.gather(
                *(batcher.predict(entry, *q) for q in queries)
            )

        results = asyncio.run(go())
        assert len(results) == len(queries)
        # All twelve arrived within one event-loop tick -> one batch.
        assert metrics.batches_total == 1
        assert metrics.batched_queries_total == len(queries)
        assert metrics.batch_sizes == {len(queries): 1}

    def test_batched_results_bit_identical_to_direct_predict(self, entry):
        """Acceptance (b): batching must not change a single bit."""
        batcher = PredictBatcher()
        queries = [(n, mc, mm) for n in (1, 4, 9, 12) for mc in range(4)
                   for mm in range(4)]

        async def go():
            return await asyncio.gather(
                *(batcher.predict(entry, *q) for q in queries)
            )

        results = asyncio.run(go())
        model = entry.model
        for (n, mc, mm), point in zip(queries, results):
            assert point.comp_parallel == model.comp_parallel(n, mc, mm)
            assert point.comm_parallel == model.comm_parallel(n, mc, mm)
            assert point.comp_alone == model.comp_alone(n, mc)
            assert point.comm_alone == model.comm_alone(mm)

    def test_sequential_queries_do_not_wait_for_each_other(self, entry):
        metrics = ServiceMetrics()
        batcher = PredictBatcher(metrics=metrics)

        async def go():
            first = await batcher.predict(entry, 4, 0, 0)
            second = await batcher.predict(entry, 8, 0, 1)
            return first, second

        first, second = asyncio.run(go())
        assert first.n == 4 and second.n == 8
        assert metrics.batches_total == 2
        assert metrics.batch_sizes == {1: 2}

    def test_max_batch_flushes_immediately(self, entry):
        metrics = ServiceMetrics()
        batcher = PredictBatcher(max_batch=4, metrics=metrics)
        queries = [(n, 0, 0) for n in range(1, 11)]  # 10 queries

        async def go():
            return await asyncio.gather(
                *(batcher.predict(entry, *q) for q in queries)
            )

        results = asyncio.run(go())
        assert [r.n for r in results] == list(range(1, 11))
        assert metrics.batches_total == 3  # 4 + 4 + 2
        assert metrics.batch_sizes == {4: 2, 2: 1}


class TestErrorIsolation:
    def test_bad_query_fails_alone(self, entry):
        batcher = PredictBatcher()

        async def go():
            return await asyncio.gather(
                batcher.predict(entry, 4, 0, 0),
                batcher.predict(entry, 4, 0, 99),  # out of range
                batcher.predict(entry, 8, 1, 1),
                return_exceptions=True,
            )

        good, bad, also_good = asyncio.run(go())
        assert good.comp_parallel == entry.model.comp_parallel(4, 0, 0)
        assert isinstance(bad, PlacementError)
        assert "out of range" in str(bad)
        assert also_good.comp_parallel == entry.model.comp_parallel(8, 1, 1)

    def test_drain_flushes_pending(self, entry):
        batcher = PredictBatcher(window_s=60.0)  # would park for a minute

        async def go():
            task = asyncio.ensure_future(batcher.predict(entry, 4, 0, 0))
            await asyncio.sleep(0)  # let the query enqueue
            await batcher.drain()
            return await asyncio.wait_for(task, timeout=1.0)

        result = asyncio.run(go())
        assert result.n == 4
