"""ServiceClient retry: capped backoff over transient connection failures."""

import json
import socket
import struct
import threading

import pytest

from repro.errors import ServiceError
from repro.service.client import ServiceClient


class FlakyListener:
    """A TCP listener that kills the first ``failures`` connections.

    Killed connections are closed before any HTTP bytes are written —
    the client sees the connection-reset signature of a worker dying
    mid-restart.  Subsequent connections get a real 200 JSON response.
    """

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.connections = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._stopping = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                self.connections += 1
                if self.connections <= self.failures:
                    # RST, not FIN: reliably ConnectionResetError client-side.
                    conn.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                    continue
                conn.recv(65536)
                body = json.dumps({"status": "ok"}).encode()
                conn.sendall(
                    b"HTTP/1.1 200 OK\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                    b"Connection: close\r\n\r\n" + body
                )

    def stop(self) -> None:
        self._stopping.set()
        self._sock.close()
        self._thread.join(5)


@pytest.fixture
def flaky_listener():
    started = []

    def start(failures: int) -> FlakyListener:
        listener = FlakyListener(failures)
        started.append(listener)
        return listener

    yield start
    for listener in started:
        listener.stop()


class TestRetry:
    def test_off_by_default(self, flaky_listener):
        listener = flaky_listener(failures=1)
        client = ServiceClient("127.0.0.1", listener.port)
        with pytest.raises(ServiceError, match="after 1 attempt"):
            client.healthz()
        assert listener.connections == 1

    def test_retries_recover_from_transient_resets(self, flaky_listener):
        listener = flaky_listener(failures=2)
        client = ServiceClient(
            "127.0.0.1", listener.port, retries=3, backoff_s=0.001
        )
        assert client.healthz() == {"status": "ok"}
        assert listener.connections == 3

    def test_budget_exhaustion_raises_with_attempt_count(
        self, flaky_listener
    ):
        listener = flaky_listener(failures=10)
        client = ServiceClient(
            "127.0.0.1", listener.port, retries=2, backoff_s=0.001
        )
        with pytest.raises(ServiceError, match="after 3 attempt"):
            client.healthz()
        assert listener.connections == 3

    def test_connection_refused_is_retried(self, monkeypatch):
        # An unbound port refuses every attempt; count the sleeps.
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        client = ServiceClient("127.0.0.1", port, retries=3, backoff_s=0.05)
        with pytest.raises(ServiceError, match="after 4 attempt"):
            client.healthz()
        assert sleeps == [0.05, 0.1, 0.2]

    def test_backoff_is_capped(self, monkeypatch):
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        sleeps: list[float] = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        client = ServiceClient(
            "127.0.0.1",
            port,
            retries=5,
            backoff_s=0.3,
            backoff_cap_s=0.5,
        )
        with pytest.raises(ServiceError):
            client.healthz()
        assert sleeps == [0.3, 0.5, 0.5, 0.5, 0.5]

    def test_negative_retries_rejected(self):
        with pytest.raises(ServiceError, match="retries"):
            ServiceClient(retries=-1)

    def test_http_errors_are_not_retried(self, server):
        # A structured 4xx answer must surface immediately even with a
        # retry budget: it is an answer, not a transport failure.
        client = server.client(retries=5)
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/nope")
