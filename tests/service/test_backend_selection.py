"""`backend=` selection over HTTP: explicit backends, the tournament
router, per-backend metrics, and the structured failure modes."""

from __future__ import annotations

import pytest

from repro.core.parameters import ModelParameters
from repro.core.placement import PlacementModel
from repro.errors import ServiceError
from repro.service.registry import ModelEntry, ModelRegistry

RESULT_KEYS = {"comp_parallel", "comm_parallel", "comp_alone", "comm_alone"}


class TestPredictBackends:
    def test_default_counts_under_threshold(self, server):
        client = server.client()
        client.predict("henri", n=8, m_comp=0, m_comm=1)
        queries = client.metrics()["backends"]["queries"]
        assert queries.get("threshold", 0) >= 1

    def test_explicit_threshold_is_the_default_path(self, server):
        client = server.client()
        default = client.predict("henri", n=8, m_comp=0, m_comm=1)
        explicit = client.predict(
            "henri", n=8, m_comp=0, m_comm=1, backend="threshold"
        )
        for key in RESULT_KEYS:
            assert explicit[key] == default[key]

    def test_named_backend_answers_and_echoes(self, server):
        client = server.client()
        answer = client.predict(
            "henri", n=12, m_comp=0, m_comm=0, backend="naive"
        )
        assert answer["backend"] == "naive"
        assert RESULT_KEYS <= set(answer)
        # The naive baseline denies contention: its parallel curves are
        # its alone curves, unlike the threshold default on a contended
        # placement.
        assert answer["comp_parallel"] == answer["comp_alone"]
        default = client.predict("henri", n=12, m_comp=0, m_comm=0)
        assert answer["comm_parallel"] != default["comm_parallel"]
        queries = client.metrics()["backends"]["queries"]
        assert queries["naive"] == 1

    def test_bulk_backend(self, server):
        client = server.client()
        queries = [(n, 0, 0) for n in range(1, 9)]
        results = client.predict_many(
            "henri", queries, backend="langguth-threadfair"
        )
        assert len(results) == 8
        assert [r["n"] for r in results] == [q[0] for q in queries]
        counts = client.metrics()["backends"]["queries"]
        assert counts["langguth-threadfair"] == 8

    def test_tournament_routes_and_counts_winners(self, server):
        client = server.client()
        answer = client.predict(
            "henri", n=4, m_comp=0, m_comm=0, backend="tournament"
        )
        assert answer["backend"] == "tournament"
        counts = client.metrics()["backends"]["queries"]
        assert counts["tournament"] == 1
        routed = {
            k: v for k, v in counts.items() if k.startswith("tournament:")
        }
        assert sum(routed.values()) == 1
        # The routed winner is a concrete registered backend.
        (winner_key,) = routed
        assert winner_key.split(":", 1)[1] != "tournament"

    def test_tournament_agrees_with_its_winner(self, server):
        """A routed answer is bit-identical to asking the winning
        backend directly."""
        client = server.client()
        routed = client.predict(
            "henri", n=6, m_comp=1, m_comm=1, backend="tournament"
        )
        counts = client.metrics()["backends"]["queries"]
        winners = [
            k.split(":", 1)[1]
            for k in counts
            if k.startswith("tournament:")
        ]
        assert len(winners) == 1
        direct = client.predict(
            "henri", n=6, m_comp=1, m_comm=1, backend=winners[0]
        )
        for key in RESULT_KEYS:
            assert routed[key] == direct[key]

    def test_unknown_backend_is_a_structured_400(self, server):
        client = server.client()
        with pytest.raises(ServiceError) as err:
            client.predict(
                "henri", n=4, m_comp=0, m_comm=0, backend="alexnet"
            )
        assert err.value.status == 400
        assert "tournament" in str(err.value)  # lists what is available

    def test_backend_must_be_a_nonempty_string(self, server):
        client = server.client()
        with pytest.raises(ServiceError) as err:
            client.predict("henri", n=4, m_comp=0, m_comm=0, backend="")
        assert err.value.status == 400


class TestAdviseBackends:
    def test_advise_with_backend_echoes_it(self, server):
        client = server.client()
        answer = client.advise(
            "henri",
            comp_bytes=4e10,
            comm_bytes=6e9,
            backend="queueing-ps",
        )
        assert answer["backend"] == "queueing-ps"
        assert answer["recommendations"]
        counts = client.metrics()["backends"]["queries"]
        assert counts["queueing-ps"] == 1

    def test_advise_tournament(self, server):
        client = server.client()
        answer = client.advise(
            "henri", comp_bytes=4e10, comm_bytes=6e9, backend="tournament"
        )
        assert answer["backend"] == "tournament"
        best = answer["recommendations"][0]
        assert best["n_cores"] >= 1
        counts = client.metrics()["backends"]["queries"]
        assert counts["tournament"] == 1
        assert any(k.startswith("tournament:") for k in counts)

    def test_advise_default_has_no_backend_field(self, server):
        client = server.client()
        answer = client.advise("henri", comp_bytes=4e10, comm_bytes=6e9)
        assert "backend" not in answer


class TestEntriesWithoutBackends:
    def test_custom_calibrator_entry_is_a_structured_400(
        self, server_factory
    ):
        """Registry entries built by custom calibrators carry no
        calibrated backends; selecting one must be a client error, not
        a 500."""
        local = ModelParameters(
            n_par_max=8,
            t_par_max=60.0,
            n_seq_max=12,
            t_seq_max=58.0,
            t_par_max2=56.0,
            delta_l=1.0,
            delta_r=0.5,
            b_comp_seq=5.0,
            b_comm_seq=10.0,
            alpha=0.4,
        )
        remote = ModelParameters(
            n_par_max=6,
            t_par_max=30.0,
            n_seq_max=10,
            t_seq_max=28.0,
            t_par_max2=27.0,
            delta_l=0.75,
            delta_r=0.3,
            b_comp_seq=2.5,
            b_comm_seq=9.0,
            alpha=0.4,
        )

        def bare_calibrator(key):
            model = PlacementModel(
                local, remote, nodes_per_socket=1, n_numa_nodes=2
            )
            return ModelEntry(key=key, platform=None, model=model)

        server = server_factory(
            registry=ModelRegistry(calibrator=bare_calibrator)
        )
        client = server.client()
        with pytest.raises(ServiceError) as err:
            client.predict(
                "henri", n=4, m_comp=0, m_comm=0, backend="tournament"
            )
        assert err.value.status == 400
        assert "no calibrated backends" in str(err.value)
        # The default path still answers.
        assert "comp_parallel" in client.predict(
            "henri", n=4, m_comp=0, m_comm=0
        )
