"""Wire-format parsing and the error -> HTTP status mapping."""

import pytest

from repro.errors import (
    AdvisorError,
    ArbitrationError,
    CalibrationError,
    PlacementError,
    ReproError,
    ServiceError,
    TopologyError,
)
from repro.service import protocol


class TestStatusMapping:
    @pytest.mark.parametrize(
        "exc,status",
        [
            (ServiceError("bad"), 400),
            (TopologyError("unknown platform"), 404),
            (PlacementError("node"), 422),
            (AdvisorError("zero"), 422),
            (CalibrationError("fit"), 422),
            (ArbitrationError("infeasible"), 500),  # SimulationError family
            (ReproError("generic"), 500),
            (RuntimeError("not ours"), 500),
        ],
    )
    def test_status(self, exc, status):
        assert protocol.http_status_for(exc) == status

    def test_error_payload_shape(self):
        payload = protocol.error_payload(PlacementError("node 9 out of range"))
        assert payload == {
            "error": {
                "type": "PlacementError",
                "message": "node 9 out of range",
                "status": 422,
            }
        }


class TestParsePredict:
    def test_inline_query(self):
        platform, seed, queries, bulk, backend = protocol.parse_predict(
            {"platform": "henri", "n": 4, "m_comp": 0, "m_comm": 1}
        )
        assert (platform, seed, bulk, backend) == ("henri", 0, False, None)
        assert queries[0].as_tuple() == (4, 0, 1)

    def test_bulk_queries(self):
        platform, seed, queries, bulk, backend = protocol.parse_predict(
            {
                "platform": "henri",
                "seed": 3,
                "queries": [
                    {"n": 4, "m_comp": 0, "m_comm": 0},
                    {"n": 8, "m_comp": 1, "m_comm": 0},
                ],
            }
        )
        assert (platform, seed, bulk, backend) == ("henri", 3, True, None)
        assert [q.as_tuple() for q in queries] == [(4, 0, 0), (8, 1, 0)]

    def test_backend_selector(self):
        *_, backend = protocol.parse_predict(
            {
                "platform": "henri",
                "n": 4,
                "m_comp": 0,
                "m_comm": 1,
                "backend": "tournament",
            }
        )
        assert backend == "tournament"

    @pytest.mark.parametrize("bad", [7, "", ["overlap"]])
    def test_backend_must_be_nonempty_string(self, bad):
        with pytest.raises(ServiceError, match="backend"):
            protocol.parse_predict(
                {
                    "platform": "henri",
                    "n": 4,
                    "m_comp": 0,
                    "m_comm": 1,
                    "backend": bad,
                }
            )

    def test_mixed_forms_rejected(self):
        with pytest.raises(ServiceError, match="not both"):
            protocol.parse_predict(
                {"platform": "henri", "n": 4, "queries": []}
            )

    @pytest.mark.parametrize(
        "body,match",
        [
            (None, "JSON object"),
            ([1, 2], "JSON object"),
            ({}, "platform"),
            ({"platform": 7}, "string"),
            ({"platform": "henri"}, "missing required field 'n'"),
            ({"platform": "henri", "n": "four"}, "integer"),
            ({"platform": "henri", "n": True}, "integer"),
            ({"platform": "henri", "queries": []}, "non-empty"),
            ({"platform": "henri", "queries": [42]}, r"queries\[0\]"),
        ],
    )
    def test_malformed(self, body, match):
        with pytest.raises(ServiceError, match=match):
            protocol.parse_predict(body)

    def test_integral_float_accepted(self):
        _, _, queries, _, _ = protocol.parse_predict(
            {"platform": "henri", "n": 4.0, "m_comp": 0, "m_comm": 0}
        )
        assert queries[0].n == 4


class TestParseOthers:
    def test_calibrate_defaults_seed(self):
        assert protocol.parse_calibrate({"platform": "dahu"}) == ("dahu", 0)

    def test_predict_grid(self):
        platform, seed, ns, placements = protocol.parse_predict_grid(
            {
                "platform": "dahu",
                "core_counts": [1, 2, 3],
                "placements": [[0, 0], [0, 1]],
            }
        )
        assert (platform, seed) == ("dahu", 0)
        assert ns == [1, 2, 3]
        assert placements == [(0, 0), (0, 1)]

    def test_predict_grid_default_placements(self):
        *_, placements = protocol.parse_predict_grid(
            {"platform": "dahu", "core_counts": [1]}
        )
        assert placements is None

    def test_predict_grid_bad_placement_pair(self):
        with pytest.raises(ServiceError, match=r"placements\[1\]"):
            protocol.parse_predict_grid(
                {
                    "platform": "dahu",
                    "core_counts": [1],
                    "placements": [[0, 0], [1]],
                }
            )

    def test_advise(self):
        parsed = protocol.parse_advise(
            {
                "platform": "dahu",
                "comp_bytes": 1e9,
                "comm_bytes": 2e8,
                "top": 3,
            }
        )
        assert parsed == ("dahu", 0, 1e9, 2e8, 3, None)

    def test_advise_backend(self):
        parsed = protocol.parse_advise(
            {
                "platform": "dahu",
                "comp_bytes": 1e9,
                "comm_bytes": 2e8,
                "backend": "overlap-afzal",
            }
        )
        assert parsed == ("dahu", 0, 1e9, 2e8, 5, "overlap-afzal")

    def test_advise_requires_numbers(self):
        with pytest.raises(ServiceError, match="number"):
            protocol.parse_advise(
                {"platform": "dahu", "comp_bytes": "lots", "comm_bytes": 0}
            )
