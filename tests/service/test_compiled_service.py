"""The compiled kernel wired through the serving tier.

Covers the compiled-prediction PR end to end at the service layer:
calibration produces a compiled table (persisted when a cache dir is
configured, in-memory otherwise), the server answers bulk and scalar
queries out of it bit-identically to the live model, and the
``compiled`` metrics block counts table hits vs evaluator fallbacks.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bench import SweepConfig
from repro.core import load_compiled
from repro.evaluation import run_platform_experiment
from repro.pipeline import ArtifactStore, config_fingerprint
from repro.service.registry import ModelRegistry

PLATFORM = "occigen"


class TestRegistryCompiles:
    def test_default_calibrator_attaches_compiled_model(self):
        registry = ModelRegistry()
        entry = asyncio.run(registry.get(PLATFORM))
        assert entry.compiled is not None
        assert entry.compiled.n_max >= 64
        assert entry.compiled.predict(8, 0, 1) == entry.model.predict_batch(
            [(8, 0, 1)]
        )[0]

    def test_cache_dir_persists_the_compiled_artifact(self, tmp_path):
        registry = ModelRegistry(cache_dir=tmp_path)
        entry = asyncio.run(registry.get(PLATFORM))
        assert entry.compiled is not None
        fingerprint = config_fingerprint(SweepConfig(seed=0))
        stored = load_compiled(
            ArtifactStore(tmp_path), PLATFORM, fingerprint
        )
        assert stored is not None
        assert stored.predict(8, 0, 1) == entry.compiled.predict(8, 0, 1)

    def test_second_registry_warm_starts_from_the_store(self, tmp_path):
        first = ModelRegistry(cache_dir=tmp_path)
        asyncio.run(first.get(PLATFORM))
        # A fresh registry sharing the store loads the compiled table
        # instead of recompiling (same answers either way; the store
        # copy must at least be valid and complete).
        second = ModelRegistry(cache_dir=tmp_path)
        entry = asyncio.run(second.get(PLATFORM))
        assert entry.compiled is not None
        assert entry.compiled.predict(12, 1, 0) == entry.model.predict_batch(
            [(12, 1, 0)]
        )[0]


class TestServedFromTheTable:
    @pytest.fixture(scope="class")
    def reference(self):
        return run_platform_experiment(PLATFORM, config=SweepConfig(seed=0))

    def test_bulk_answers_come_from_the_compiled_table(
        self, server, reference
    ):
        client = server.client()
        client.calibrate(PLATFORM)
        queries = [(n, n % 2, (n + 1) % 2) for n in range(1, 17)]
        rows = client.predict_many(PLATFORM, queries)
        for (n, mc, mm), row in zip(queries, rows):
            assert row["comp_parallel"] == reference.model.comp_parallel(
                n, mc, mm
            )
            assert row["comm_parallel"] == reference.model.comm_parallel(
                n, mc, mm
            )
        compiled = client.metrics()["compiled"]
        assert compiled["table_queries"] >= len(queries)
        assert compiled["evaluator_queries"] == 0

    def test_scalar_answers_come_from_the_compiled_table(
        self, server, reference
    ):
        client = server.client()
        client.calibrate(PLATFORM)
        row = client.predict(PLATFORM, n=8, m_comp=0, m_comm=1)
        assert row["comp_parallel"] == reference.model.comp_parallel(8, 0, 1)
        compiled = client.metrics()["compiled"]
        assert compiled["table_queries"] >= 1

    def test_grid_matches_library(self, server, reference):
        client = server.client()
        client.calibrate(PLATFORM)
        grid = client.predict_grid(PLATFORM, [1, 4, 8], placements=[(0, 1)])
        expected = reference.model.predict_grid([1, 4, 8], [(0, 1)])[(0, 1)]
        cell = grid["grid"][0]
        assert cell["comp_parallel"] == expected.comp_parallel.tolist()
        assert cell["comm_parallel"] == expected.comm_parallel.tolist()
