"""ModelRegistry: LRU bound, hit accounting, single-flight calibration."""

import asyncio
import threading
import time

import pytest

from repro.core.placement import PlacementModel
from repro.core.parameters import ModelParameters
from repro.errors import ServiceError, TopologyError
from repro.service.metrics import ServiceMetrics
from repro.service.registry import ModelEntry, ModelKey, ModelRegistry

LOCAL = ModelParameters(
    n_par_max=8,
    t_par_max=60.0,
    n_seq_max=12,
    t_seq_max=58.0,
    t_par_max2=56.0,
    delta_l=1.0,
    delta_r=0.5,
    b_comp_seq=5.0,
    b_comm_seq=10.0,
    alpha=0.4,
)
REMOTE = ModelParameters(
    n_par_max=6,
    t_par_max=30.0,
    n_seq_max=10,
    t_seq_max=28.0,
    t_par_max2=27.0,
    delta_l=0.75,
    delta_r=0.3,
    b_comp_seq=2.5,
    b_comm_seq=9.0,
    alpha=0.4,
)


class CountingCalibrator:
    """Stand-in calibrator: counts invocations, optionally stalls."""

    def __init__(self, delay_s: float = 0.0):
        self.calls = 0
        self.delay_s = delay_s
        self._lock = threading.Lock()

    def __call__(self, key: ModelKey) -> ModelEntry:
        with self._lock:
            self.calls += 1
        if self.delay_s:
            time.sleep(self.delay_s)
        model = PlacementModel(
            LOCAL, REMOTE, nodes_per_socket=1, n_numa_nodes=2
        )
        return ModelEntry(key=key, platform=None, model=model)


class TestBasics:
    def test_miss_then_hits(self):
        calibrator = CountingCalibrator()
        metrics = ServiceMetrics()
        registry = ModelRegistry(metrics=metrics, calibrator=calibrator)

        async def go():
            first = await registry.get("henri")
            second = await registry.get("henri")
            assert first is second

        asyncio.run(go())
        assert calibrator.calls == 1
        assert metrics.registry_misses == 1
        assert metrics.registry_hits == 1
        assert metrics.calibrations_total == 1

    def test_seed_is_part_of_the_key(self):
        calibrator = CountingCalibrator()
        registry = ModelRegistry(calibrator=calibrator)

        async def go():
            await registry.get("henri", seed=0)
            await registry.get("henri", seed=1)

        asyncio.run(go())
        assert calibrator.calls == 2
        assert registry.cached("henri", 0) and registry.cached("henri", 1)

    def test_unknown_platform_rejected_without_calibration(self):
        calibrator = CountingCalibrator()
        registry = ModelRegistry(calibrator=calibrator)
        with pytest.raises(TopologyError, match="unknown platform"):
            asyncio.run(registry.get("bogus"))
        assert calibrator.calls == 0

    def test_max_entries_validated(self):
        with pytest.raises(ServiceError):
            ModelRegistry(max_entries=0)

    def test_lru_eviction(self):
        calibrator = CountingCalibrator()
        metrics = ServiceMetrics()
        registry = ModelRegistry(
            max_entries=2, metrics=metrics, calibrator=calibrator
        )

        async def go():
            await registry.get("henri")
            await registry.get("dahu")
            await registry.get("henri")  # refresh henri's recency
            await registry.get("pyxis")  # evicts dahu, not henri
            assert registry.cached("henri")
            assert registry.cached("pyxis")
            assert not registry.cached("dahu")

        asyncio.run(go())
        assert metrics.registry_evictions == 1
        assert len(registry) == 2

    def test_real_default_calibrator(self):
        """No injected calibrator: a real platform calibrates end to end."""
        registry = ModelRegistry()
        entry = asyncio.run(registry.get("occigen"))
        assert entry.platform.name == "occigen"
        value = entry.model.comp_parallel(8, 0, 1)
        assert value > 0


class TestSingleFlight:
    def test_concurrent_requests_calibrate_exactly_once(self):
        """Acceptance (a): N parallel requests -> one calibration."""
        calibrator = CountingCalibrator(delay_s=0.05)
        metrics = ServiceMetrics()
        registry = ModelRegistry(metrics=metrics, calibrator=calibrator)
        n_clients = 16

        async def go():
            entries = await asyncio.gather(
                *(registry.get("henri") for _ in range(n_clients))
            )
            assert all(e is entries[0] for e in entries)

        asyncio.run(go())
        assert calibrator.calls == 1
        assert metrics.registry_misses == 1
        assert metrics.registry_waits == n_clients - 1
        assert metrics.registry_hits == 0

    def test_failure_is_shared_then_retried(self):
        calls = []

        def flaky(key: ModelKey) -> ModelEntry:
            calls.append(key)
            if len(calls) == 1:
                raise ServiceError("transient calibration failure")
            return CountingCalibrator()(key)

        registry = ModelRegistry(calibrator=flaky)

        async def go():
            results = await asyncio.gather(
                *(registry.get("henri") for _ in range(4)),
                return_exceptions=True,
            )
            # All concurrent callers see the one failure...
            assert all(isinstance(r, ServiceError) for r in results)
            # ...and the failure is not cached: the next call retries.
            entry = await registry.get("henri")
            assert entry.key == ModelKey("henri", 0)

        asyncio.run(go())
        assert len(calls) == 2


class TestPreload:
    def test_preload_hydrates_synchronously(self):
        calibrator = CountingCalibrator()
        metrics = ServiceMetrics()
        registry = ModelRegistry(metrics=metrics, calibrator=calibrator)
        loaded = registry.preload([("henri", 0), ("dahu", 1)])
        assert [e.key for e in loaded] == [
            ModelKey("henri", 0),
            ModelKey("dahu", 1),
        ]
        assert calibrator.calls == 2
        assert metrics.preloads_total == 2
        assert metrics.calibrations_total == 2
        assert registry.cached("henri", 0) and registry.cached("dahu", 1)

    def test_preload_accepts_model_keys(self):
        registry = ModelRegistry(calibrator=CountingCalibrator())
        loaded = registry.preload([ModelKey("henri", 3)])
        assert len(loaded) == 1 and registry.cached("henri", 3)

    def test_preloaded_entry_is_served_without_recalibration(self):
        calibrator = CountingCalibrator()
        registry = ModelRegistry(calibrator=calibrator)
        registry.preload([("henri", 0)])

        async def go():
            return await registry.get("henri", 0)

        entry = asyncio.run(go())
        assert entry.key == ModelKey("henri", 0)
        assert calibrator.calls == 1  # the get() was a pure cache hit

    def test_preload_skips_already_cached_keys(self):
        calibrator = CountingCalibrator()
        metrics = ServiceMetrics()
        registry = ModelRegistry(metrics=metrics, calibrator=calibrator)
        registry.preload([("henri", 0)])
        loaded = registry.preload([("henri", 0), ("dahu", 0)])
        assert [e.key.platform for e in loaded] == ["dahu"]
        assert calibrator.calls == 2
        assert metrics.preloads_total == 2

    def test_preload_respects_the_lru_bound(self):
        metrics = ServiceMetrics()
        registry = ModelRegistry(
            max_entries=2, metrics=metrics, calibrator=CountingCalibrator()
        )
        registry.preload([("henri", 0), ("dahu", 0), ("pyxis", 0)])
        assert len(registry) == 2
        assert not registry.cached("henri", 0)  # oldest evicted
        assert metrics.registry_evictions == 1

    def test_preload_validates_platform_names(self):
        calibrator = CountingCalibrator()
        registry = ModelRegistry(calibrator=calibrator)
        with pytest.raises(TopologyError, match="unknown platform"):
            registry.preload([("bogus", 0)])
        assert calibrator.calls == 0
