"""Fixtures for the prediction-service tests.

The server runs on its own event loop in a background thread — exactly
how ``python -m repro serve`` deploys it — while the tests drive it
with the blocking client over real TCP sockets.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ContentionService


class ServerThread:
    """A ContentionService running on a dedicated event-loop thread."""

    def __init__(self, **kwargs) -> None:
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.service: ContentionService | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("service did not start within 10s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        service = ContentionService(port=0, **self._kwargs)
        await service.start()
        self.service = service
        self.loop = asyncio.get_running_loop()
        self.port = service.port
        self._ready.set()
        await service.run_until_shutdown()

    def run(self, coro, timeout: float = 30.0):
        """Run a coroutine on the server's loop from the test thread."""
        assert self.loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    def stop(self, timeout: float = 10.0) -> None:
        if self.loop is None or not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.service.shutdown(), self.loop
        ).result(timeout)
        self._thread.join(timeout)

    def client(self, **kwargs) -> ServiceClient:
        assert self.port is not None
        return ServiceClient("127.0.0.1", self.port, **kwargs)


@pytest.fixture
def server_factory():
    """Start servers with custom options; all stopped at teardown."""
    started: list[ServerThread] = []

    def start(**kwargs) -> ServerThread:
        server = ServerThread(**kwargs).__enter__()
        started.append(server)
        return server

    yield start
    for server in started:
        server.stop()


@pytest.fixture
def server(server_factory):
    """One default server instance."""
    return server_factory()
