"""End-to-end service tests over real TCP sockets.

Covers the PR's acceptance criteria: (a) N parallel ``predict``
requests for one platform trigger exactly one calibration, (b) batched
scalar queries return bit-identical results to direct
``PlacementModel.predict``, and (c) ``/metrics`` reports consistent
request/hit/batch counters — plus timeouts, load shedding, error
envelopes and graceful shutdown.
"""

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bench import SweepConfig
from repro.errors import ServiceError
from repro.evaluation import run_platform_experiment
from repro.service.client import ServiceResponseError
from repro.service.registry import ModelEntry, ModelKey, ModelRegistry

from tests.service.test_registry import CountingCalibrator

PLATFORM = "occigen"


class TestRoundTrip:
    def test_healthz(self, server):
        health = server.client().healthz()
        assert health["status"] == "ok"
        assert health["models_cached"] == 0
        assert health["batching"] is True

    def test_calibrate_then_predict_matches_library(self, server):
        client = server.client()
        calibration = client.calibrate(PLATFORM)
        assert calibration["cached"] is False
        assert client.calibrate(PLATFORM)["cached"] is True

        result = run_platform_experiment(PLATFORM, config=SweepConfig(seed=0))
        assert calibration["local"] == result.model.local.to_dict()
        assert calibration["remote"] == result.model.remote.to_dict()

        served = client.predict(PLATFORM, n=8, m_comp=0, m_comm=1)
        assert served["comp_parallel"] == result.model.comp_parallel(8, 0, 1)
        assert served["comm_parallel"] == result.model.comm_parallel(8, 0, 1)

    def test_predict_grid(self, server):
        client = server.client()
        grid = client.predict_grid(
            PLATFORM, [1, 2, 4], placements=[(0, 0), (0, 1)]
        )
        result = run_platform_experiment(PLATFORM, config=SweepConfig(seed=0))
        reference = result.model.predict_grid([1, 2, 4], [(0, 0), (0, 1)])
        by_key = {(g["m_comp"], g["m_comm"]): g for g in grid["grid"]}
        assert set(by_key) == set(reference)
        for key, pred in reference.items():
            assert by_key[key]["comp_parallel"] == pred.comp_parallel.tolist()
            assert by_key[key]["comm_parallel"] == pred.comm_parallel.tolist()

    def test_advise(self, server):
        recs = server.client().advise(
            PLATFORM, comp_bytes=1e9, comm_bytes=1e8, top=3
        )["recommendations"]
        assert len(recs) == 3
        assert recs[0]["makespan_s"] <= recs[-1]["makespan_s"]

    def test_advise_victim_matches_library(self, server):
        """Victim mode runs on the simulator: no calibration required."""
        from repro.advisor import advise_victim_placement
        from repro.topology import get_platform

        result = server.client().advise(PLATFORM, victim=True, top=2)
        assert result["victim"] is True
        placements = result["placements"]
        assert len(placements) == 2
        assert (
            placements[0]["degradation"] <= placements[1]["degradation"]
        )
        spec = get_platform(PLATFORM)
        expected = advise_victim_placement(spec.machine, spec.profile, top=2)
        assert placements[0]["m_comm"] == expected[0].m_comm
        assert placements[0]["worst_gbps"] == expected[0].worst_gbps
        assert placements[0]["worst_stressor"] == expected[0].worst_stressor
        # And no calibration was paid for it.
        assert server.client().healthz()["models_cached"] == 0

    def test_advise_victim_rejects_workload_fields(self, server):
        client = server.client()
        with pytest.raises(ServiceResponseError) as excinfo:
            client._request(
                "POST",
                "/advise",
                {"platform": PLATFORM, "victim": True, "comp_bytes": 1.0},
            )
        assert excinfo.value.status == 400
        assert "comp_bytes" in excinfo.value.remote_message

    def test_advise_without_bytes_fails_before_the_wire(self, server):
        with pytest.raises(ServiceError, match="comp_bytes"):
            server.client().advise(PLATFORM)

    def test_error_envelope(self, server):
        client = server.client()
        with pytest.raises(ServiceResponseError) as excinfo:
            client.predict(PLATFORM, n=8, m_comp=42, m_comm=0)
        assert excinfo.value.status == 422
        assert excinfo.value.error_type == "PlacementError"

        with pytest.raises(ServiceResponseError) as excinfo:
            client.calibrate("not-a-platform")
        assert excinfo.value.status == 404
        assert excinfo.value.error_type == "TopologyError"

    def test_unknown_endpoint_and_method(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("GET", "/nope")
        response = conn.getresponse()
        assert response.status == 404
        conn.close()

        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("GET", "/predict")
        response = conn.getresponse()
        assert response.status == 405
        conn.close()

    def test_invalid_json_body(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request(
            "POST", "/predict", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert payload["error"]["type"] == "ServiceError"
        conn.close()


class TestAcceptance:
    def test_concurrent_predicts_single_calibration_and_metrics(
        self, server_factory
    ):
        """Acceptance (a) + (b) + (c) in one concurrent client scenario."""
        calibrator = CountingCalibrator(delay_s=0.05)
        registry = ModelRegistry(calibrator=calibrator)
        server = server_factory(registry=registry)
        client = server.client()
        n_clients = 12
        queries = [(n % 7 + 1, 0, n % 2) for n in range(n_clients)]

        with ThreadPoolExecutor(max_workers=n_clients) as pool:
            results = list(
                pool.map(
                    lambda q: client.predict(
                        "henri", n=q[0], m_comp=q[1], m_comm=q[2]
                    ),
                    queries,
                )
            )

        # (a) single-flight: one calibration despite 12 parallel firsts.
        assert calibrator.calls == 1

        # (b) batched answers are bit-identical to the direct model.
        model = registry._entries[ModelKey("henri", 0)].model
        for (n, mc, mm), served in zip(queries, results):
            assert served["comp_parallel"] == model.comp_parallel(n, mc, mm)
            assert served["comm_parallel"] == model.comm_parallel(n, mc, mm)
            assert served["comp_alone"] == model.comp_alone(n, mc)

        # (c) /metrics is consistent with what we just did.
        metrics = client.metrics()
        predict_requests = [
            row
            for row in metrics["requests"]["by_endpoint"]
            if row["endpoint"] == "predict"
        ]
        assert sum(r["count"] for r in predict_requests) == n_clients
        assert all(r["status"] == 200 for r in predict_requests)
        registry_stats = metrics["registry"]
        assert registry_stats["calibrations"] == 1
        assert registry_stats["misses"] == 1
        # Every other first request either joined the in-flight
        # calibration or hit the cache afterwards.
        assert (
            registry_stats["hits"] + registry_stats["waits"]
            == n_clients - 1
        )
        batching = metrics["batching"]
        assert batching["queries"] == n_clients
        assert batching["batches"] <= n_clients
        assert (
            sum(int(s) * c for s, c in batching["sizes"].items())
            == batching["queries"]
        )
        latency = metrics["latency"]["predict"]
        assert latency["count"] == n_clients

    def test_batched_bulk_equals_direct_model(self, server):
        client = server.client()
        queries = [(n, mc, mm) for n in (1, 5, 9) for mc in (0, 1)
                   for mm in (0, 1)]
        served = client.predict_many(PLATFORM, queries)
        result = run_platform_experiment(PLATFORM, config=SweepConfig(seed=0))
        for (n, mc, mm), row in zip(queries, served):
            assert row["comp_parallel"] == result.model.comp_parallel(n, mc, mm)
            assert row["comm_parallel"] == result.model.comm_parallel(n, mc, mm)


class TestOperational:
    def test_request_timeout_maps_to_504(self, server_factory):
        calibrator = CountingCalibrator(delay_s=2.0)
        registry = ModelRegistry(calibrator=calibrator)
        server = server_factory(registry=registry, request_timeout_s=0.2)
        with pytest.raises(ServiceResponseError) as excinfo:
            server.client().calibrate("henri")
        assert excinfo.value.status == 504
        metrics = server.client().metrics()
        assert metrics["requests"]["timeouts"] == 1

    def test_concurrency_limit_sheds_load(self, server_factory):
        calibrator = CountingCalibrator(delay_s=0.8)
        registry = ModelRegistry(calibrator=calibrator)
        server = server_factory(registry=registry, max_concurrency=1)
        client = server.client()

        statuses = []

        def slow_calibrate():
            try:
                client.calibrate("henri")
                statuses.append(200)
            except ServiceResponseError as exc:
                statuses.append(exc.status)

        first = threading.Thread(target=slow_calibrate)
        first.start()
        time.sleep(0.3)  # let the slow request occupy the only slot
        with pytest.raises(ServiceResponseError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        first.join(10)
        assert statuses == [200]
        metrics = server.client().metrics()
        assert metrics["requests"]["rejected"] == 1

    def test_graceful_shutdown_drains_in_flight(self, server_factory):
        calibrator = CountingCalibrator(delay_s=0.6)
        registry = ModelRegistry(calibrator=calibrator)
        server = server_factory(registry=registry)
        client = server.client()

        outcome = {}

        def slow_request():
            try:
                outcome["result"] = client.calibrate("henri")
            except ServiceError as exc:  # pragma: no cover - failure path
                outcome["error"] = exc

        worker = threading.Thread(target=slow_request)
        worker.start()
        time.sleep(0.2)  # request is now in flight
        server.stop()  # graceful: must drain, not sever
        worker.join(10)
        assert "error" not in outcome
        assert outcome["result"]["platform"] == "henri"

        # The socket is actually closed afterwards.
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()

    def test_cli_query_roundtrip(self, server, capsys):
        """`python -m repro query ...` drives a live server end to end."""
        from repro.cli import main

        remote = ["--port", str(server.port)]
        assert main(["query", "healthz"] + remote) == 0
        assert '"status": "ok"' in capsys.readouterr().out

        assert main(["query", "calibrate", PLATFORM] + remote) == 0
        assert '"b_comm_seq"' in capsys.readouterr().out

        assert main(
            ["query", "predict", PLATFORM, "-n", "8", "--comp", "0",
             "--comm", "1"] + remote
        ) == 0
        assert "predicted computation bandwidth" in capsys.readouterr().out

        assert main(
            ["query", "advise", PLATFORM, "--comp-bytes", "1e9",
             "--comm-bytes", "1e8", "--top", "2"] + remote
        ) == 0
        assert "Top 2 configurations" in capsys.readouterr().out

        assert main(
            ["query", "advise", PLATFORM, "--victim", "--top", "1"] + remote
        ) == 0
        out = capsys.readouterr().out
        assert f"Victim placements for {PLATFORM}" in out
        assert "worst case" in out

        assert main(
            ["query", "advise", PLATFORM, "--victim", "--comp-bytes", "1"]
            + remote
        ) == 11  # rejected client-side as a ServiceError
        assert "do not apply" in capsys.readouterr().err

        assert main(["query", "metrics"] + remote) == 0
        assert '"registry"' in capsys.readouterr().out

    def test_cli_query_error_exit_code(self, server, capsys):
        from repro.cli import main

        code = main(
            ["query", "predict", PLATFORM, "-n", "8", "--comp", "42",
             "--comm", "0", "--port", str(server.port)]
        )
        assert code == 11  # ServiceResponseError is a ServiceError
        assert "PlacementError" in capsys.readouterr().err

    def test_batching_disabled_still_serves(self, server_factory):
        server = server_factory(batching=False)
        client = server.client()
        assert client.healthz()["batching"] is False
        served = client.predict(PLATFORM, n=4, m_comp=0, m_comm=0)
        result = run_platform_experiment(PLATFORM, config=SweepConfig(seed=0))
        assert served["comp_parallel"] == result.model.comp_parallel(4, 0, 0)
        assert client.metrics()["batching"]["batches"] == 0
