"""ClusterRouter: shard routing, replica failover, fleet introspection."""

import json
import time

import pytest

from repro.cluster.shardmap import ShardMap
from repro.service.client import ServiceResponseError


class TestRouting:
    def test_requests_reach_the_primary_owner(self, stub_fleet, router_factory):
        supervisor, workers = stub_fleet
        thread = router_factory()
        client = thread.client()
        for seed in range(8):
            result = client.predict(
                "occigen", n=4, m_comp=0, m_comm=0, seed=seed
            )
            assert result["worker"] == supervisor.shardmap.primary(
                "occigen", seed
            )

    def test_worker_response_is_relayed_verbatim(
        self, stub_fleet, router_factory
    ):
        supervisor, workers = stub_fleet
        thread = router_factory()
        client = thread.client()
        result = client.predict("occigen", n=4, m_comp=0, m_comm=1, seed=3)
        assert result["echo"]["n"] == 4
        assert result["echo"]["platform"] == "occigen"

    def test_worker_error_envelope_passes_through(
        self, stub_fleet, router_factory
    ):
        supervisor, workers = stub_fleet
        primary = supervisor.shardmap.primary("occigen", 0)
        workers[primary].responses["/predict"] = (
            422,
            {
                "error": {
                    "type": "PlacementError",
                    "message": "bad placement",
                    "status": 422,
                }
            },
        )
        client = router_factory().client()
        with pytest.raises(ServiceResponseError) as excinfo:
            client.predict("occigen", n=4, m_comp=0, m_comm=0, seed=0)
        # An HTTP-level worker error is an answer: no failover happened.
        assert excinfo.value.status == 422
        assert excinfo.value.error_type == "PlacementError"

    def test_missing_platform_rejected_at_the_router(
        self, stub_fleet, router_factory
    ):
        client = router_factory().client()
        with pytest.raises(ServiceResponseError) as excinfo:
            client._request("POST", "/predict", {"n": 4})
        assert excinfo.value.status == 400

    def test_unknown_path_and_bad_method(self, stub_fleet, router_factory):
        client = router_factory().client()
        with pytest.raises(ServiceResponseError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceResponseError) as excinfo:
            client._request("POST", "/healthz", {})
        assert excinfo.value.status == 405


class TestFailover:
    def test_dead_primary_fails_over_to_replica(
        self, stub_fleet, router_factory
    ):
        supervisor, workers = stub_fleet
        owners = supervisor.shardmap.owners("occigen", 0)
        workers[owners[0]].stop()
        thread = router_factory()
        client = thread.client()
        result = client.predict("occigen", n=4, m_comp=0, m_comm=0, seed=0)
        assert result["worker"] == owners[1]
        assert thread.router.metrics.failovers_total >= 1

    def test_all_replicas_dead_yields_503(self, stub_fleet, router_factory):
        supervisor, workers = stub_fleet
        owners = supervisor.shardmap.owners("occigen", 0)
        for worker_id in owners:
            workers[worker_id].stop()
        thread = router_factory()
        client = thread.client()
        with pytest.raises(ServiceResponseError) as excinfo:
            client.predict("occigen", n=4, m_comp=0, m_comm=0, seed=0)
        assert excinfo.value.status == 503
        assert excinfo.value.error_type == "ClusterError"
        assert thread.router.metrics.unroutable_total == 1

    def test_known_dead_worker_is_tried_last(self, stub_fleet, router_factory):
        supervisor, workers = stub_fleet
        owners = supervisor.shardmap.owners("occigen", 0)
        supervisor.down.add(owners[0])  # poll says dead; routing reorders
        client = router_factory().client()
        result = client.predict("occigen", n=4, m_comp=0, m_comm=0, seed=0)
        assert result["worker"] == owners[1]
        # The reordered walk never touched the dead primary.
        assert all(
            path != "/predict"
            for _, path, _ in workers[owners[0]].requests
        )


class TestHealthLoop:
    def test_dead_worker_is_respawned(self, stub_fleet, router_factory):
        supervisor, workers = stub_fleet
        thread = router_factory(health_interval_s=0.05)
        supervisor.down.add("w1")
        deadline = time.monotonic() + 5
        while "w1" not in supervisor.respawned:
            assert time.monotonic() < deadline, "health loop never respawned"
            time.sleep(0.02)
        assert thread.router.metrics.worker_restarts >= 1


class TestIntrospection:
    def test_healthz_summarizes_the_fleet(self, stub_fleet, router_factory):
        supervisor, workers = stub_fleet
        client = router_factory().client()
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers_alive"] == 3
        assert {w["worker_id"] for w in health["workers"]} == {
            "w0",
            "w1",
            "w2",
        }
        supervisor.down.add("w2")
        assert client.healthz()["status"] == "degraded"

    def test_shards_table_rebuilds_identically(
        self, stub_fleet, router_factory
    ):
        supervisor, workers = stub_fleet
        client = router_factory().client()
        table = client._request("GET", "/shards")
        rebuilt = ShardMap.from_spec(table["shardmap"])
        for seed in range(32):
            assert rebuilt.owners("henri", seed) == supervisor.shardmap.owners(
                "henri", seed
            )
        assert table["workers"]["w0"]["port"] == workers["w0"].port

    def test_metrics_scrapes_and_merges_workers(
        self, stub_fleet, router_factory
    ):
        supervisor, workers = stub_fleet
        for i, stub in enumerate(workers.values()):
            stub.responses["/metrics"] = (
                200,
                {
                    "tracing": {
                        "enabled": True,
                        "spans": 2,
                        "by_name": {
                            "service.request": {"count": 2, "total_ms": 1.5}
                        },
                        "counters": {"batch.coalesced": 1},
                    }
                },
            )
        client = router_factory().client()
        client.healthz()  # one observed request before the snapshot
        snapshot = client.metrics()
        assert set(snapshot["workers"]) == {"w0", "w1", "w2"}
        tracing = snapshot["tracing"]
        assert tracing["workers_enabled"] == 3
        assert tracing["by_name"]["service.request"]["count"] == 6
        assert tracing["counters"]["batch.coalesced"] == 3
        assert snapshot["router"]["requests"]["total"] >= 1
        # Pool health rides along in the router block.  The stub
        # workers are plain HTTP/1.0 closers, so nothing is reusable —
        # but every scrape went through the pool.
        pool = snapshot["router"]["connection_pool"]
        assert pool["opens"] >= 3
        assert set(pool) == {
            "idle", "opens", "reuses", "discards", "evictions",
            "stale_retries",
        }
