"""The router's keep-alive worker pool and the HTTP/1.1 framing under it.

The pool is tested against the *real* service (the server loop it
reuses streams against) and against scripted asyncio servers for the
failure shapes a pool adds: a parked stream the worker closed (stale
retry), capacity eviction, and non-keep-alive peers.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster.pool import WorkerPool
from repro.service.http11 import encode_response

from tests.service.conftest import ServerThread


def run(coro):
    return asyncio.run(coro)


class TestAgainstTheRealService:
    def test_streams_are_reused_across_requests(self):
        with ServerThread() as server:
            pool = WorkerPool()

            async def go():
                for _ in range(4):
                    status, raw = await pool.request(
                        "127.0.0.1", server.port, "GET", "/healthz"
                    )
                    assert status == 200
                    assert b'"status"' in raw
                await pool.aclose()

            run(go())
            assert pool.opens == 1
            assert pool.reuses == 3
            assert pool.idle_count() == 0

    def test_one_shot_clients_still_work(self):
        """The blocking client (Connection: close) is untouched by the
        server's keep-alive loop."""
        with ServerThread() as server:
            health = server.client().healthz()
            assert health["status"] == "ok"

    def test_pool_and_plain_clients_share_a_server(self):
        with ServerThread() as server:
            pool = WorkerPool()

            async def go():
                status, _ = await pool.request(
                    "127.0.0.1", server.port, "GET", "/healthz"
                )
                assert status == 200
                await pool.aclose()

            run(go())
            assert server.client().healthz()["status"] == "ok"


class _ScriptedServer:
    """An asyncio server answering canned responses, one per connection
    slot, closing each connection after ``exchanges_per_conn`` answers."""

    def __init__(self, *, keep_alive: bool, exchanges_per_conn: int = 10**9):
        self.keep_alive = keep_alive
        self.exchanges_per_conn = exchanges_per_conn
        self.connections = 0
        self.server: asyncio.AbstractServer | None = None

    async def start(self) -> int:
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self.server.sockets[0].getsockname()[1]

    async def _handle(self, reader, writer):
        self.connections += 1
        try:
            for _ in range(self.exchanges_per_conn):
                line = await reader.readline()
                if not line:
                    return
                while True:
                    header = await reader.readline()
                    if header in (b"\r\n", b"\n", b""):
                        break
                writer.write(
                    encode_response(
                        200, b'{"ok": true}', keep_alive=self.keep_alive
                    )
                )
                await writer.drain()
        finally:
            writer.close()

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()


class TestFailureShapes:
    def test_stale_parked_stream_is_retried_on_a_fresh_connection(self):
        async def go():
            scripted = _ScriptedServer(keep_alive=True, exchanges_per_conn=1)
            port = await scripted.start()
            pool = WorkerPool()
            status, _ = await pool.request("127.0.0.1", port, "GET", "/x")
            assert status == 200
            assert pool.idle_count() == 1
            # The server closed after one exchange; the parked stream is
            # dead.  The next request must absorb that silently.
            status, _ = await pool.request("127.0.0.1", port, "GET", "/x")
            assert status == 200
            assert pool.stale_retries == 1
            assert scripted.connections == 2
            await pool.aclose()
            await scripted.stop()

        run(go())

    def test_non_keep_alive_server_is_never_pooled(self):
        async def go():
            scripted = _ScriptedServer(keep_alive=False, exchanges_per_conn=1)
            port = await scripted.start()
            pool = WorkerPool()
            for _ in range(3):
                status, _ = await pool.request("127.0.0.1", port, "GET", "/x")
                assert status == 200
            assert pool.idle_count() == 0
            assert pool.reuses == 0
            assert pool.opens == 3
            await pool.aclose()
            await scripted.stop()

        run(go())

    def test_dead_worker_raises_for_failover(self):
        async def go():
            scripted = _ScriptedServer(keep_alive=True)
            port = await scripted.start()
            await scripted.stop()
            pool = WorkerPool()
            with pytest.raises(OSError):
                await pool.request("127.0.0.1", port, "GET", "/x")
            await pool.aclose()

        run(go())

    def test_eviction_beyond_max_idle(self):
        async def go():
            scripted = _ScriptedServer(keep_alive=True)
            port = await scripted.start()
            pool = WorkerPool(max_idle_per_worker=1)
            # Two concurrent requests force two opens; only one stream
            # fits the idle stash when both finish.
            await asyncio.gather(
                pool.request("127.0.0.1", port, "GET", "/x"),
                pool.request("127.0.0.1", port, "GET", "/x"),
            )
            assert pool.opens == 2
            assert pool.idle_count() == 1
            assert pool.evictions == 1
            await pool.aclose()
            await scripted.stop()

        run(go())

    def test_snapshot_shape(self):
        pool = WorkerPool()
        snap = pool.snapshot()
        assert snap == {
            "idle": 0,
            "opens": 0,
            "reuses": 0,
            "discards": 0,
            "evictions": 0,
            "stale_retries": 0,
        }
