"""Fixtures for the cluster tests.

The router is exercised over real TCP against *stub* workers — tiny
threaded HTTP servers that answer canned JSON and record what they saw
— so routing, failover, and scraping are tested without paying for
real calibrations or subprocess spawns.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.cluster.router import ClusterRouter
from repro.cluster.shardmap import ShardMap
from repro.cluster.supervisor import WorkerStatus
from repro.service.client import ServiceClient


class StubWorker:
    """A worker-shaped HTTP server: echoes its name, records requests."""

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.requests: list[tuple[str, str, dict | None]] = []
        #: Per-path canned (status, payload) overrides.
        self.responses: dict[str, tuple[int, dict]] = {}
        stub = self

        class Handler(BaseHTTPRequestHandler):
            def _answer(self, method: str) -> None:
                length = int(self.headers.get("Content-Length", 0))
                raw = self.rfile.read(length) if length else b""
                body = json.loads(raw) if raw else None
                stub.requests.append((method, self.path, body))
                status, payload = stub.responses.get(
                    self.path,
                    (200, {"worker": stub.worker_id, "echo": body}),
                )
                data = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def do_GET(self) -> None:
                self._answer("GET")

            def do_POST(self) -> None:
                self._answer("POST")

            def log_message(self, *args) -> None:
                pass

        self.server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self.server.server_address[1]
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(5)


class FakeHandle:
    def __init__(self, worker_id: str, port: int) -> None:
        self.worker_id = worker_id
        self.host = "127.0.0.1"
        self.port = port


class FakeSupervisor:
    """Duck-typed supervisor over stub workers (no subprocesses)."""

    def __init__(self, workers: dict[str, StubWorker], replication: int = 2):
        self.shardmap = ShardMap(list(workers), replication=replication)
        self._handles = {
            wid: FakeHandle(wid, stub.port) for wid, stub in workers.items()
        }
        #: Workers the liveness poll reports as dead.
        self.down: set[str] = set()
        self.respawned: list[str] = []

    def handle(self, worker_id: str) -> FakeHandle:
        return self._handles[worker_id]

    def alive_workers(self) -> set[str]:
        return set(self._handles) - self.down

    def poll(self) -> dict[str, bool]:
        return {wid: wid not in self.down for wid in self._handles}

    def respawn(self, worker_id: str) -> bool:
        self.respawned.append(worker_id)
        self.down.discard(worker_id)
        return True

    def statuses(self) -> list[WorkerStatus]:
        return [
            WorkerStatus(
                worker_id=wid,
                host=handle.host,
                port=handle.port,
                pid=1000,
                alive=wid not in self.down,
                restarts=0,
                retired=False,
            )
            for wid, handle in sorted(self._handles.items())
        ]


class RouterThread:
    """A ClusterRouter on its own event-loop thread, like deployment."""

    def __init__(self, supervisor, **kwargs) -> None:
        self._supervisor = supervisor
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.router: ClusterRouter | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "RouterThread":
        self._thread.start()
        if not self._ready.wait(timeout=10):
            raise RuntimeError("router did not start within 10s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._startup_error = exc
            self._ready.set()

    async def _amain(self) -> None:
        router = ClusterRouter(self._supervisor, port=0, **self._kwargs)
        await router.start()
        self.router = router
        self.loop = asyncio.get_running_loop()
        self.port = router.port
        self._ready.set()
        await router.run_until_shutdown()
        await router.shutdown()

    def stop(self, timeout: float = 10.0) -> None:
        if self.loop is None or not self._thread.is_alive():
            return
        self.loop.call_soon_threadsafe(self.router.request_shutdown)
        self._thread.join(timeout)

    def client(self, **kwargs) -> ServiceClient:
        assert self.port is not None
        return ServiceClient("127.0.0.1", self.port, **kwargs)


@pytest.fixture
def stub_fleet():
    """Three stub workers plus a FakeSupervisor; stopped at teardown."""
    workers = {wid: StubWorker(wid) for wid in ("w0", "w1", "w2")}
    yield FakeSupervisor(workers, replication=2), workers
    for stub in workers.values():
        stub.stop()


@pytest.fixture
def router_factory(stub_fleet):
    """Start routers over the stub fleet; all stopped at teardown."""
    supervisor, workers = stub_fleet
    started: list[RouterThread] = []

    def start(**kwargs) -> RouterThread:
        # Health loop off by default: tests drive it explicitly.
        kwargs.setdefault("health_interval_s", 0)
        thread = RouterThread(supervisor, **kwargs).__enter__()
        started.append(thread)
        return thread

    yield start
    for thread in started:
        thread.stop()
