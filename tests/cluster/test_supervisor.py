"""Supervisor: command building, preload assignment, respawn, retire.

Process-lifecycle tests monkeypatch :meth:`Supervisor.worker_command`
to a cheap sleeper so no real service (and no calibration) is paid for.
"""

import sys
import time

import pytest

from repro.errors import ClusterError
from repro.cluster.supervisor import Supervisor

SLEEPER = [sys.executable, "-c", "import time; time.sleep(60)"]


@pytest.fixture
def cheap_supervisor(tmp_path, monkeypatch):
    """A 3-worker supervisor whose workers are inert sleeper processes."""
    supervisor = Supervisor(
        workers=3, replication=2, cache_dir=tmp_path, max_restarts=2
    )
    monkeypatch.setattr(
        supervisor, "worker_command", lambda handle: list(SLEEPER)
    )
    yield supervisor
    supervisor.stop(drain_timeout_s=2)


class TestConfiguration:
    def test_validation(self, tmp_path):
        with pytest.raises(ClusterError, match="at least 1"):
            Supervisor(workers=0, cache_dir=tmp_path)
        with pytest.raises(ClusterError, match="replication"):
            Supervisor(workers=2, replication=3, cache_dir=tmp_path)
        with pytest.raises(ClusterError, match="max_restarts"):
            Supervisor(workers=1, replication=1, cache_dir=tmp_path,
                       max_restarts=-1)
        with pytest.raises(ClusterError, match="cache_dir"):
            Supervisor(workers=1, replication=1, cache_dir=None)

    def test_worker_command_carries_the_service_flags(self, tmp_path):
        supervisor = Supervisor(
            workers=2,
            replication=1,
            cache_dir=tmp_path,
            request_timeout_s=5.0,
            max_concurrency=7,
            preload=[("occigen", 0)],
        )
        handle = supervisor.handle("w0")
        command = supervisor.worker_command(handle)
        assert command[:4] == [sys.executable, "-m", "repro", "serve"]
        assert str(handle.port) in command
        assert str(tmp_path) in command
        assert "7" in command  # --max-concurrency
        text = " ".join(command)
        assert "--timeout 5.0" in text

    def test_preload_keys_land_on_their_owners(self, tmp_path):
        keys = [("occigen", s) for s in range(10)]
        supervisor = Supervisor(
            workers=3, replication=2, cache_dir=tmp_path, preload=keys
        )
        assignments = {
            wid: supervisor.preload_keys_for(wid) for wid in ("w0", "w1", "w2")
        }
        for key in keys:
            owners = supervisor.shardmap.owners(*key)
            for wid in ("w0", "w1", "w2"):
                if wid in owners:
                    assert key in assignments[wid]
                else:
                    assert key not in assignments[wid]
            # Replication factor 2: exactly two copies fleet-wide.
            assert sum(key in a for a in assignments.values()) == 2
        command = supervisor.worker_command(supervisor.handle("w0"))
        preload_flags = [
            command[i + 1]
            for i, c in enumerate(command)
            if c == "--preload"
        ]
        assert preload_flags == [f"{p}:{s}" for p, s in assignments["w0"]]

    def test_ports_are_distinct(self, tmp_path):
        supervisor = Supervisor(workers=4, replication=1, cache_dir=tmp_path)
        ports = [h.port for h in supervisor.handles.values()]
        assert len(set(ports)) == 4


class TestLifecycle:
    def test_start_poll_stop(self, cheap_supervisor):
        cheap_supervisor.start()
        assert all(cheap_supervisor.poll().values())
        assert cheap_supervisor.alive_workers() == {"w0", "w1", "w2"}
        cheap_supervisor.stop(drain_timeout_s=2)
        assert not any(cheap_supervisor.poll().values())

    def test_respawn_revives_a_dead_worker(self, cheap_supervisor):
        cheap_supervisor.start()
        handle = cheap_supervisor.handle("w1")
        handle.process.kill()
        handle.process.wait()
        assert not cheap_supervisor.poll()["w1"]
        assert cheap_supervisor.respawn("w1") is True
        assert handle.restarts == 1
        assert cheap_supervisor.poll()["w1"]
        # Same identity, same port: the shard map never noticed.
        assert "w1" in cheap_supervisor.shardmap.workers

    def test_crash_looper_is_retired_and_rebalanced(self, cheap_supervisor):
        cheap_supervisor.start()
        handle = cheap_supervisor.handle("w2")
        for _ in range(2):  # burn the max_restarts=2 budget
            handle.process.kill()
            handle.process.wait()
            assert cheap_supervisor.respawn("w2") is True
        handle.process.kill()
        handle.process.wait()
        assert cheap_supervisor.respawn("w2") is False
        assert handle.retired
        assert "w2" not in cheap_supervisor.shardmap.workers
        assert cheap_supervisor.shardmap.workers == ("w0", "w1")
        # Retired workers drop out of liveness polling and respawns.
        assert "w2" not in cheap_supervisor.poll()
        assert cheap_supervisor.respawn("w2") is False

    def test_statuses_report_pid_and_restarts(self, cheap_supervisor):
        cheap_supervisor.start()
        statuses = {s.worker_id: s for s in cheap_supervisor.statuses()}
        assert statuses["w0"].alive
        assert statuses["w0"].pid is not None
        assert statuses["w0"].restarts == 0

    def test_worker_logs_are_written(self, cheap_supervisor):
        cheap_supervisor.start()
        log_dir = cheap_supervisor.cache_dir / "worker-logs"
        assert sorted(p.name for p in log_dir.iterdir()) == [
            "w0.log",
            "w1.log",
            "w2.log",
        ]

    def test_unknown_worker_rejected(self, cheap_supervisor):
        with pytest.raises(ClusterError, match="unknown worker"):
            cheap_supervisor.respawn("w9")


class TestWaitReady:
    def test_early_exit_is_reported(self, tmp_path, monkeypatch):
        supervisor = Supervisor(workers=1, replication=1, cache_dir=tmp_path)
        monkeypatch.setattr(
            supervisor,
            "worker_command",
            lambda handle: [sys.executable, "-c", "raise SystemExit(3)"],
        )
        supervisor.start()
        deadline = time.monotonic() + 5
        while supervisor.poll()["w0"] and time.monotonic() < deadline:
            time.sleep(0.02)
        with pytest.raises(ClusterError, match="exited with code 3"):
            supervisor.wait_ready(timeout_s=5)
        supervisor.stop(drain_timeout_s=1)

    def test_not_up_yet_errors_poll_into_a_timeout(
        self, tmp_path, monkeypatch
    ):
        """ServiceError/OSError mean "not listening yet": retried until
        the deadline, then reported as a readiness timeout."""
        from repro.cluster import supervisor as supervisor_module
        from repro.errors import ServiceError

        supervisor = Supervisor(workers=1, replication=1, cache_dir=tmp_path)

        def refused(self):
            raise ServiceError("cannot reach service")

        monkeypatch.setattr(
            supervisor_module.ServiceClient, "healthz", refused
        )
        with pytest.raises(ClusterError, match="did not become ready"):
            supervisor.wait_ready(timeout_s=0.2)

    def test_unexpected_healthz_error_propagates_immediately(
        self, tmp_path, monkeypatch
    ):
        """A genuine bug in the health probe must not be retried into a
        misleading "did not become ready" timeout."""
        from repro.cluster import supervisor as supervisor_module

        supervisor = Supervisor(workers=1, replication=1, cache_dir=tmp_path)

        def broken(self):
            raise ValueError("a bug, not a connection problem")

        monkeypatch.setattr(
            supervisor_module.ServiceClient, "healthz", broken
        )
        start = time.monotonic()
        with pytest.raises(ValueError, match="a bug"):
            supervisor.wait_ready(timeout_s=30.0)
        assert time.monotonic() - start < 5.0  # no retry loop


class TestBackendPrefetchHints:
    """Shard-map prefetch hints: each worker is told the store entry
    ids of its shard-assigned backend calibrations and tournament
    tables so a warm start faults the tournament winners in too."""

    @pytest.fixture
    def preloaded(self, tmp_path):
        keys = [("occigen", 0), ("henri", 1)]
        return Supervisor(
            workers=3, replication=2, cache_dir=tmp_path, preload=keys
        )

    def test_entry_ids_cover_roster_and_tournament(self, preloaded):
        from repro.backends import BACKENDS

        for wid in ("w0", "w1", "w2"):
            owned = preloaded.preload_keys_for(wid)
            entry_ids = preloaded.backend_artifacts_for(wid)
            # One entry per registered backend plus the winner table,
            # per owned preload key.
            assert len(entry_ids) == len(owned) * (len(BACKENDS) + 1)
            for platform, _seed in owned:
                mine = [e for e in entry_ids if e.startswith(f"{platform}/")]
                stages = [e.split("/", 1)[1] for e in mine]
                for backend_id in BACKENDS:
                    assert any(
                        s.startswith(f"backend-{backend_id}-v") for s in stages
                    ), (wid, platform, backend_id)
                assert any(s.startswith("tournament-v") for s in stages)

    def test_hints_follow_the_shard_map(self, preloaded):
        for wid in ("w0", "w1", "w2"):
            owned_platforms = {p for p, _ in preloaded.preload_keys_for(wid)}
            hinted_platforms = {
                e.split("/", 1)[0]
                for e in preloaded.backend_artifacts_for(wid)
            }
            assert hinted_platforms == owned_platforms

    def test_seed_changes_the_hinted_fingerprints(self, tmp_path):
        by_seed = {}
        for seed in (0, 1):
            supervisor = Supervisor(
                workers=1,
                replication=1,
                cache_dir=tmp_path,
                preload=[("occigen", seed)],
            )
            by_seed[seed] = set(supervisor.backend_artifacts_for("w0"))
        # Same platform, different sweep seed: every artifact address
        # differs (the config fingerprint is part of each entry id).
        assert not (by_seed[0] & by_seed[1])

    def test_worker_command_carries_the_hints(self, preloaded):
        owner = next(
            wid
            for wid in ("w0", "w1", "w2")
            if preloaded.preload_keys_for(wid)
        )
        command = preloaded.worker_command(preloaded.handle(owner))
        hints = [
            command[i + 1]
            for i, c in enumerate(command)
            if c == "--prefetch-artifact"
        ]
        assert hints == preloaded.backend_artifacts_for(owner)
        # Hints come before the preloads they warm up.
        assert command.index("--prefetch-artifact") < command.index(
            "--preload"
        )

    def test_no_preload_means_no_hints(self, tmp_path):
        supervisor = Supervisor(workers=2, replication=1, cache_dir=tmp_path)
        assert supervisor.backend_artifacts_for("w0") == []
        assert "--prefetch-artifact" not in supervisor.worker_command(
            supervisor.handle("w0")
        )
