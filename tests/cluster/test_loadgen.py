"""Load harness: latency stats, shed classification, SLO verdicts."""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import ClusterError
from repro.cluster.loadgen import (
    LoadReport,
    OverloadTarget,
    PredictWorkload,
    SloTarget,
    run_load,
)


class ScriptedService:
    """An HTTP stub whose answer pattern is scripted per request index."""

    def __init__(self, script):
        #: script(i) -> (status, payload) for the i-th request.
        self._script = script
        self._count = 0
        self._lock = threading.Lock()
        stub = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self) -> None:
                length = int(self.headers.get("Content-Length", 0))
                self.rfile.read(length)
                with stub._lock:
                    index = stub._count
                    stub._count += 1
                status, payload = stub._script(index)
                data = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *args) -> None:
                pass

        self.server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self.server.server_address[1]
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(5)


OK_PAYLOAD = {"comp_parallel": 1.0, "comm_parallel": 1.0, "comp_alone": 1.0}
SHED_PAYLOAD = {
    "error": {"type": "ServiceError", "message": "shedding", "status": 503}
}
FAIL_PAYLOAD = {
    "error": {"type": "ModelError", "message": "boom", "status": 422}
}


@pytest.fixture
def scripted():
    started = []

    def start(script) -> ScriptedService:
        service = ScriptedService(script)
        started.append(service)
        return service

    yield start
    for service in started:
        service.stop()


class TestRunLoad:
    def test_all_ok_run(self, scripted):
        service = scripted(lambda i: (200, OK_PAYLOAD))
        report = run_load(
            PredictWorkload(port=service.port), total=20, concurrency=4
        )
        assert report.requests == 20
        assert report.ok == 20
        assert report.failed == 0 and report.shed == 0
        assert len(report.latencies_ms) == 20
        assert report.qps > 0
        assert report.latency_ms(50) <= report.latency_ms(99)

    def test_sheds_and_failures_classified_separately(self, scripted):
        def script(i):
            if i % 5 == 0:
                return 503, SHED_PAYLOAD
            if i % 5 == 1:
                return 422, FAIL_PAYLOAD
            return 200, OK_PAYLOAD

        service = scripted(script)
        report = run_load(
            PredictWorkload(port=service.port), total=20, concurrency=2
        )
        assert report.shed == 4
        assert report.failed == 4
        assert report.ok == 12
        assert report.shed_rate == pytest.approx(0.2)
        assert report.error_rate == pytest.approx(0.2)

    def test_unreachable_target_counts_as_failed(self):
        # Grab a free port and leave it unbound.
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        report = run_load(
            PredictWorkload(port=port, timeout_s=2), total=4, concurrency=2
        )
        assert report.failed == 4
        assert report.error_rate == 1.0

    def test_validation(self):
        with pytest.raises(ClusterError, match="total"):
            run_load(PredictWorkload(), total=0)
        with pytest.raises(ClusterError, match="concurrency"):
            run_load(PredictWorkload(), total=1, concurrency=0)


class TestReport:
    def test_merge_keeps_wall_clock_semantics(self):
        a = LoadReport(
            requests=10, ok=9, failed=1, shed=0, duration_s=2.0,
            latencies_ms=[1.0] * 10,
        )
        b = LoadReport(
            requests=10, ok=8, failed=0, shed=2, duration_s=3.0,
            latencies_ms=[2.0] * 10,
        )
        a.merge(b)
        assert a.requests == 20 and a.ok == 17
        assert a.duration_s == 3.0  # overlapped streams: max, not sum
        assert a.qps == pytest.approx(20 / 3.0)
        assert len(a.latencies_ms) == 20

    def test_empty_report_is_safe(self):
        report = LoadReport()
        assert report.qps == 0.0
        assert report.error_rate == 0.0
        assert report.latency_ms(99) == 0.0
        assert report.summary()["requests"] == 0

    def test_slo_verdict(self):
        report = LoadReport(
            requests=100, ok=97, failed=1, shed=2, duration_s=1.0,
            latencies_ms=[10.0] * 90 + [500.0] * 10,
        )
        good = report.slo_verdict(
            SloTarget(p99_ms=1000.0, error_budget=0.02, max_shed_rate=0.05)
        )
        assert good["ok"]
        bad = report.slo_verdict(
            SloTarget(p99_ms=50.0, error_budget=0.001, max_shed_rate=0.01)
        )
        assert not bad["ok"]
        assert not bad["checks"]["p99_ms"]["ok"]
        assert not bad["checks"]["error_rate"]["ok"]
        assert not bad["checks"]["shed_rate"]["ok"]

    def test_overload_verdict_requires_shedding(self):
        # A run where back-pressure engaged and nothing failed: passes.
        overloaded = LoadReport(
            requests=100, ok=60, failed=0, shed=40, duration_s=1.0,
            latencies_ms=[5.0] * 100,
        )
        verdict = overloaded.overload_verdict(OverloadTarget())
        assert verdict["ok"]
        assert verdict["checks"]["shed_rate"]["measured"] == 0.4

    def test_overload_verdict_fails_when_nothing_shed(self):
        idle = LoadReport(
            requests=100, ok=100, failed=0, shed=0, duration_s=1.0,
            latencies_ms=[5.0] * 100,
        )
        verdict = idle.overload_verdict(OverloadTarget(min_shed_rate=0.01))
        assert not verdict["ok"]
        assert not verdict["checks"]["shed_rate"]["ok"]
        assert verdict["checks"]["error_rate"]["ok"]

    def test_overload_verdict_fails_on_outright_failures(self):
        melting = LoadReport(
            requests=100, ok=50, failed=10, shed=40, duration_s=1.0,
            latencies_ms=[5.0] * 100,
        )
        verdict = melting.overload_verdict(OverloadTarget())
        assert not verdict["ok"]
        assert not verdict["checks"]["error_rate"]["ok"]
        assert verdict["checks"]["shed_rate"]["ok"]

    def test_summary_is_json_encodable(self):
        report = LoadReport(
            requests=2, ok=2, duration_s=0.5, latencies_ms=[1.0, 2.0]
        )
        json.dumps(report.summary())
        json.dumps(report.slo_verdict(SloTarget()))
        json.dumps(report.overload_verdict(OverloadTarget()))
