"""ShardMap: stability, replication, determinism of the consistent ring.

The load-bearing claims (ISSUE acceptance): adding or removing one
worker moves only ~1/N of keys, replica sets never collapse onto one
worker, and a spec round trip reproduces every owner.
"""

import pytest

from repro.errors import ClusterError
from repro.cluster.shardmap import ShardMap

#: A synthetic keyspace large enough for stable movement statistics.
KEYS = [("occigen", seed) for seed in range(300)] + [
    ("henri", seed) for seed in range(300)
]


def primaries(shardmap: ShardMap) -> dict:
    return {key: shardmap.primary(*key) for key in KEYS}


class TestMembershipStability:
    def test_add_worker_moves_about_one_nth(self):
        for n in (3, 4, 5):
            shardmap = ShardMap([f"w{i}" for i in range(n)])
            before = primaries(shardmap)
            shardmap.add_worker("wnew")
            after = primaries(shardmap)
            moved = [k for k in KEYS if before[k] != after[k]]
            # Ideal movement is 1/(n+1); allow 2x for hash variance.
            assert len(moved) / len(KEYS) < 2.0 / (n + 1)
            assert len(moved) > 0
            # Every moved key moved TO the new worker, never between
            # survivors — the definition of consistent hashing.
            assert all(after[k] == "wnew" for k in moved)

    def test_remove_worker_moves_only_its_keys(self):
        shardmap = ShardMap(["w0", "w1", "w2", "w3"])
        before = primaries(shardmap)
        shardmap.remove_worker("w2")
        after = primaries(shardmap)
        for key in KEYS:
            if before[key] == "w2":
                assert after[key] != "w2"
            else:
                assert after[key] == before[key]

    def test_version_bumps_on_change(self):
        shardmap = ShardMap(["w0", "w1"])
        v = shardmap.version
        shardmap.add_worker("w2")
        assert shardmap.version == v + 1
        shardmap.remove_worker("w2")
        assert shardmap.version == v + 2


class TestReplication:
    def test_replica_sets_are_distinct(self):
        shardmap = ShardMap(["w0", "w1", "w2", "w3"], replication=3)
        for key in KEYS:
            owners = shardmap.owners(*key)
            assert len(owners) == 3
            assert len(set(owners)) == 3

    def test_replication_capped_by_fleet_size(self):
        shardmap = ShardMap(["w0", "w1"], replication=3)
        owners = shardmap.owners("occigen", 0)
        assert sorted(owners) == ["w0", "w1"]

    def test_alive_set_reorders_live_first(self):
        shardmap = ShardMap(["w0", "w1", "w2"], replication=3)
        owners = shardmap.owners("occigen", 7)
        primary = owners[0]
        reordered = shardmap.owners(
            "occigen", 7, alive=set(owners) - {primary}
        )
        assert set(reordered) == set(owners)
        assert reordered[-1] == primary  # dead primary tried last

    def test_balance_is_reasonable(self):
        shardmap = ShardMap(["w0", "w1", "w2", "w3"])
        counts: dict[str, int] = {}
        for key in KEYS:
            counts[shardmap.primary(*key)] = (
                counts.get(shardmap.primary(*key), 0) + 1
            )
        assert len(counts) == 4
        assert max(counts.values()) < 3 * min(counts.values())


class TestSpec:
    def test_round_trip_reproduces_every_owner(self):
        shardmap = ShardMap(["alpha", "beta", "gamma"], replication=2)
        rebuilt = ShardMap.from_spec(shardmap.spec())
        for key in KEYS:
            assert rebuilt.owners(*key) == shardmap.owners(*key)

    def test_spec_is_json_stable(self):
        import json

        shardmap = ShardMap(["w0", "w1"])
        assert (
            ShardMap.from_spec(json.loads(json.dumps(shardmap.spec()))).spec()[
                "workers"
            ]
            == shardmap.spec()["workers"]
        )

    def test_malformed_spec_rejected(self):
        with pytest.raises(ClusterError, match="malformed"):
            ShardMap.from_spec({"workers": ["w0"]})
        with pytest.raises(ClusterError, match="list"):
            ShardMap.from_spec(
                {"workers": "w0", "replication": 1, "vnodes": 8}
            )


class TestValidation:
    def test_duplicate_worker_rejected(self):
        shardmap = ShardMap(["w0"])
        with pytest.raises(ClusterError, match="already"):
            shardmap.add_worker("w0")

    def test_unknown_removal_rejected(self):
        with pytest.raises(ClusterError, match="not in"):
            ShardMap(["w0"]).remove_worker("w9")

    def test_empty_map_cannot_route(self):
        with pytest.raises(ClusterError, match="no workers"):
            ShardMap([]).owners("occigen", 0)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ClusterError):
            ShardMap(["w0"], replication=0)
        with pytest.raises(ClusterError):
            ShardMap(["w0"], vnodes=0)
        with pytest.raises(ClusterError):
            ShardMap([""])
