"""Benchmark result containers and CSV round-trip."""

import numpy as np
import pytest

from repro.bench import ModeCurves, PlacementSweep, PlatformDataset
from repro.errors import BenchmarkError


def curves(n=5):
    ns = np.arange(1, n + 1)
    return ModeCurves(
        core_counts=ns,
        comp_alone=ns * 5.0,
        comm_alone=np.full(n, 10.0),
        comp_parallel=ns * 4.5,
        comm_parallel=np.linspace(10.0, 4.0, n),
    )


class TestModeCurves:
    def test_valid(self):
        c = curves()
        assert c.n_points == 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(BenchmarkError, match="share a length"):
            ModeCurves(
                core_counts=np.array([1, 2]),
                comp_alone=np.array([5.0]),
                comm_alone=np.array([10.0, 10.0]),
                comp_parallel=np.array([4.0, 8.0]),
                comm_parallel=np.array([10.0, 9.0]),
            )

    def test_non_increasing_cores_rejected(self):
        with pytest.raises(BenchmarkError, match="increasing"):
            ModeCurves(
                core_counts=np.array([2, 1]),
                comp_alone=np.array([5.0, 5.0]),
                comm_alone=np.array([10.0, 10.0]),
                comp_parallel=np.array([4.0, 4.0]),
                comm_parallel=np.array([10.0, 10.0]),
            )

    def test_zero_core_count_rejected(self):
        with pytest.raises(BenchmarkError, match=">= 1"):
            ModeCurves(
                core_counts=np.array([0, 1]),
                comp_alone=np.array([5.0, 5.0]),
                comm_alone=np.array([10.0, 10.0]),
                comp_parallel=np.array([4.0, 4.0]),
                comm_parallel=np.array([10.0, 10.0]),
            )

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(BenchmarkError, match="negative"):
            ModeCurves(
                core_counts=np.array([1, 2]),
                comp_alone=np.array([5.0, -5.0]),
                comm_alone=np.array([10.0, 10.0]),
                comp_parallel=np.array([4.0, 4.0]),
                comm_parallel=np.array([10.0, 10.0]),
            )

    def test_total_parallel(self):
        c = curves()
        assert np.allclose(c.total_parallel(), c.comp_parallel + c.comm_parallel)

    def test_at_lookup(self):
        c = curves()
        point = c.at(3)
        assert point["comp_alone"] == 15.0

    def test_at_missing_core_count(self):
        with pytest.raises(BenchmarkError, match="no measurement"):
            curves().at(99)


class TestPlacementSweep:
    def test_lookup_and_iteration(self):
        sweep = PlacementSweep(curves={(0, 0): curves(), (1, 1): curves()})
        assert (0, 0) in sweep
        assert (0, 1) not in sweep
        assert list(sweep) == [(0, 0), (1, 1)]
        assert len(sweep) == 2
        assert sweep.placements() == ((0, 0), (1, 1))

    def test_missing_placement_error_lists_keys(self):
        sweep = PlacementSweep(curves={(0, 0): curves()})
        with pytest.raises(BenchmarkError, match=r"\(0, 0\)"):
            sweep[(3, 3)]

    def test_empty_rejected(self):
        with pytest.raises(BenchmarkError, match="at least one"):
            PlacementSweep(curves={})


class TestCsvRoundTrip:
    def test_roundtrip_preserves_everything(self):
        dataset = PlatformDataset(
            platform_name="toy",
            sweep=PlacementSweep(curves={(0, 0): curves(), (0, 1): curves(4)}),
        )
        restored = PlatformDataset.from_csv(dataset.to_csv())
        assert restored.platform_name == "toy"
        assert restored.sweep.placements() == ((0, 0), (0, 1))
        for key in dataset.sweep:
            a, b = dataset.sweep[key], restored.sweep[key]
            assert np.allclose(a.comp_alone, b.comp_alone)
            assert np.allclose(a.comm_parallel, b.comm_parallel)
            assert np.array_equal(a.core_counts, b.core_counts)

    def test_bad_header_rejected(self):
        with pytest.raises(BenchmarkError, match="header"):
            PlatformDataset.from_csv("a,b,c\n1,2,3\n")

    def test_empty_csv_rejected(self):
        header = ",".join(PlatformDataset._FIELDS)
        with pytest.raises(BenchmarkError, match="no data"):
            PlatformDataset.from_csv(header + "\n")

    def test_mixed_platforms_rejected(self):
        dataset = PlatformDataset(
            platform_name="toy",
            sweep=PlacementSweep(curves={(0, 0): curves()}),
        )
        text = dataset.to_csv()
        lines = text.strip().splitlines()
        corrupted = lines[1].replace("toy", "other")
        with pytest.raises(BenchmarkError, match="mixed"):
            PlatformDataset.from_csv("\n".join([lines[0], lines[1], corrupted]))

    def test_csv_rows_unordered_ok(self):
        """Rows may arrive shuffled; parsing sorts by core count."""
        dataset = PlatformDataset(
            platform_name="toy",
            sweep=PlacementSweep(curves={(0, 0): curves()}),
        )
        lines = dataset.to_csv().strip().splitlines()
        shuffled = [lines[0]] + list(reversed(lines[1:]))
        restored = PlatformDataset.from_csv("\n".join(shuffled))
        assert np.array_equal(
            restored.sweep[(0, 0)].core_counts, dataset.sweep[(0, 0)].core_counts
        )


class TestRealDatasetRoundTrip:
    def test_full_platform_roundtrip(self, henri_experiment):
        dataset = henri_experiment.dataset
        restored = PlatformDataset.from_csv(dataset.to_csv())
        for key in dataset.sweep:
            assert np.allclose(
                dataset.sweep[key].comm_parallel,
                restored.sweep[key].comm_parallel,
                atol=1e-5,
            )
