"""Placement-grid sweeps."""

import pytest

from repro.bench import SweepConfig, run_placement_grid, run_sample_sweeps
from repro.bench.sweep import sample_placements


class TestSamplePlacements:
    def test_henri(self, henri):
        assert sample_placements(henri) == ((0, 0), (1, 1))

    def test_subnuma_uses_first_nodes(self, henri_subnuma):
        """§IV-A2: first NUMA node of each socket."""
        assert sample_placements(henri_subnuma) == ((0, 0), (2, 2))


class TestSampleSweeps:
    def test_only_two_placements(self, henri, noiseless_config):
        dataset = run_sample_sweeps(henri, config=noiseless_config)
        assert dataset.sweep.placements() == ((0, 0), (1, 1))
        assert dataset.config["samples_only"] is True

    def test_subset_core_counts(self, henri, noiseless_config):
        dataset = run_sample_sweeps(
            henri, config=noiseless_config, core_counts=[1, 9, 18]
        )
        assert dataset.sweep[(0, 0)].n_points == 3


class TestPlacementGrid:
    def test_full_grid_two_nodes(self, henri, noiseless_config):
        dataset = run_placement_grid(henri, config=noiseless_config)
        assert len(dataset.sweep) == 4
        assert dataset.config["samples_only"] is False

    def test_full_grid_subnuma(self, henri_subnuma, noiseless_config):
        dataset = run_placement_grid(
            henri_subnuma, config=noiseless_config, core_counts=[4, 12]
        )
        assert len(dataset.sweep) == 16

    def test_grid_contains_samples(self, henri, noiseless_config):
        dataset = run_placement_grid(
            henri, config=noiseless_config, core_counts=[4]
        )
        for key in sample_placements(henri):
            assert key in dataset.sweep

    def test_symmetric_remote_placements_equal(self, henri_subnuma):
        """Machine symmetry: placements on equivalent remote nodes give
        identical measurements (noiseless)."""
        dataset = run_placement_grid(
            henri_subnuma,
            config=SweepConfig(noiseless=True),
            core_counts=[6, 14],
        )
        a = dataset.sweep[(2, 2)]
        b = dataset.sweep[(3, 3)]
        assert a.comp_parallel == pytest.approx(b.comp_parallel)
        assert a.comm_parallel == pytest.approx(b.comm_parallel)
