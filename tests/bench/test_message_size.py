"""Message-size contention study tests."""

import pytest

from repro.bench.message_size import (
    effective_message_bandwidth,
    message_size_contention,
)
from repro.errors import BenchmarkError
from repro.net import FABRICS
from repro.units import KiB, MB


class TestEffectiveBandwidth:
    def test_large_messages_reach_line_rate(self):
        bw = effective_message_bandwidth(64 * MB, fabric=FABRICS["infiniband-edr"])
        assert bw == pytest.approx(12.5, rel=0.01)

    def test_small_messages_latency_bound(self):
        bw = effective_message_bandwidth(4 * KiB, fabric=FABRICS["infiniband-edr"])
        assert bw < 5.0

    def test_monotone_in_size(self):
        fabric = FABRICS["infiniband-edr"]
        sizes = [KiB, 8 * KiB, 64 * KiB, MB, 16 * MB, 64 * MB]
        bws = [effective_message_bandwidth(s, fabric=fabric) for s in sizes]
        assert bws == sorted(bws)

    def test_rendezvous_handshake_costs(self):
        """Crossing the eager threshold adds the handshake delay."""
        fabric = FABRICS["infiniband-edr"]
        below = effective_message_bandwidth(32 * KiB, fabric=fabric)
        above = effective_message_bandwidth(32 * KiB + 1, fabric=fabric)
        assert above < below

    def test_invalid_size(self):
        with pytest.raises(BenchmarkError):
            effective_message_bandwidth(0, fabric=FABRICS["infiniband-edr"])


class TestContentionVsMessageSize:
    @pytest.fixture(scope="class")
    def points(self, henri):
        # n = 12: the transition region, where demand differences show.
        return message_size_contention(
            henri,
            sizes=[2 * KiB, 8 * KiB, 256 * KiB, 64 * MB],
            n_cores=12,
        )

    def test_paper_choice_maximises_contention(self, points):
        """64 MB messages (the paper's) hurt computations the most."""
        comp_retained = [p.comp_retained for p in points]
        assert comp_retained[-1] == min(comp_retained)

    def test_small_messages_barely_contend(self, points):
        tiny = points[0]  # 2 KiB: demand below the guaranteed floor
        assert tiny.comp_retained > 0.999
        assert tiny.comm_retained == pytest.approx(1.0, abs=1e-6)

    def test_computation_impact_monotone_in_size(self, points):
        comp_retained = [p.comp_retained for p in points]
        for a, b in zip(comp_retained, comp_retained[1:]):
            assert b <= a + 1e-9

    def test_comm_impact_monotone_in_size(self, points):
        comm_retained = [p.comm_retained for p in points]
        for a, b in zip(comm_retained, comm_retained[1:]):
            assert b <= a + 1e-9

    def test_floor_in_absolute_terms_at_full_socket(self, henri):
        """At full socket the hardware floor (alpha x platform nominal)
        holds for every message size whose demand exceeds it."""
        points = message_size_contention(
            henri,
            sizes=[8 * KiB, 256 * KiB, 64 * MB],
            n_cores=henri.cores_per_socket,
        )
        floor = henri.profile.nic_min_fraction * 12.3
        for p in points:
            expected = min(floor, p.effective_demand_gbps)
            assert p.comm_parallel_gbps >= expected - 1e-6

    def test_empty_sizes_rejected(self, henri):
        with pytest.raises(BenchmarkError):
            message_size_contention(henri, sizes=[], n_cores=4)
