"""Property-based tests on benchmark containers (CSV round-trips)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import ModeCurves, PlacementSweep, PlatformDataset


@st.composite
def mode_curves(draw):
    n = draw(st.integers(3, 24))
    start = draw(st.integers(1, 3))
    ns = np.arange(start, start + n)
    bandwidth = st.floats(0.0, 500.0)
    return ModeCurves(
        core_counts=ns,
        comp_alone=np.array(draw(st.lists(bandwidth, min_size=n, max_size=n))),
        comm_alone=np.array(draw(st.lists(bandwidth, min_size=n, max_size=n))),
        comp_parallel=np.array(draw(st.lists(bandwidth, min_size=n, max_size=n))),
        comm_parallel=np.array(draw(st.lists(bandwidth, min_size=n, max_size=n))),
    )


@st.composite
def platform_datasets(draw):
    n_placements = draw(st.integers(1, 6))
    keys = draw(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)),
            min_size=n_placements,
            max_size=n_placements,
            unique=True,
        )
    )
    curves = {key: draw(mode_curves()) for key in keys}
    return PlatformDataset(
        platform_name=draw(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll",)),
                min_size=1,
                max_size=12,
            )
        ),
        sweep=PlacementSweep(curves=curves),
    )


@settings(max_examples=60, deadline=None)
@given(dataset=platform_datasets())
def test_csv_roundtrip_any_dataset(dataset):
    restored = PlatformDataset.from_csv(dataset.to_csv())
    assert restored.platform_name == dataset.platform_name
    assert restored.sweep.placements() == dataset.sweep.placements()
    for key in dataset.sweep:
        original = dataset.sweep[key]
        copy = restored.sweep[key]
        assert np.array_equal(original.core_counts, copy.core_counts)
        # 6-decimal serialisation.
        assert np.allclose(original.comp_alone, copy.comp_alone, atol=1e-5)
        assert np.allclose(original.comm_parallel, copy.comm_parallel, atol=1e-5)


@settings(max_examples=60, deadline=None)
@given(curves=mode_curves())
def test_total_parallel_is_sum(curves):
    assert np.allclose(
        curves.total_parallel(), curves.comp_parallel + curves.comm_parallel
    )


@settings(max_examples=60, deadline=None)
@given(curves=mode_curves())
def test_at_matches_arrays(curves):
    for i, n in enumerate(curves.core_counts):
        point = curves.at(int(n))
        assert point["comp_parallel"] == float(curves.comp_parallel[i])
        assert point["comm_alone"] == float(curves.comm_alone[i])
