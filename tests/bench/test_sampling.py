"""Adaptive calibration sweeps (the paper's footnote 2)."""

import pytest

from repro.bench import SweepConfig, run_adaptive_calibration
from repro.core import calibrate
from repro.core.calibration import calibrate_placement_model
from repro.errors import BenchmarkError


class TestAdaptiveSweep:
    def test_saves_measurements_on_henri(self, henri, noiseless_config):
        result = run_adaptive_calibration(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=noiseless_config,
        )
        assert result.measurements_saved > 0
        # It must cover the rising part plus the full-socket point.
        assert result.measured_core_counts[0] == 1
        assert result.measured_core_counts[-1] == henri.cores_per_socket

    def test_sparse_calibration_close_to_full(self, henri, noiseless_config):
        """The optimised sweep calibrates (nearly) the same model."""
        from repro.bench.runner import measure_curves

        sparse = run_adaptive_calibration(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=noiseless_config,
        )
        full = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=noiseless_config,
        )
        a = calibrate(sparse.curves)
        b = calibrate(full)
        assert a.b_comp_seq == pytest.approx(b.b_comp_seq, rel=0.01)
        assert a.b_comm_seq == pytest.approx(b.b_comm_seq, rel=0.01)
        assert a.alpha == pytest.approx(b.alpha, rel=0.05)
        assert a.t_par_max == pytest.approx(b.t_par_max, rel=0.02)
        assert abs(a.n_seq_max - b.n_seq_max) <= 1

    def test_skips_only_past_the_maxima(self, henri, noiseless_config):
        """Per the footnote, nothing before N_seq_max may be skipped."""
        result = run_adaptive_calibration(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=noiseless_config,
        )
        fitted = calibrate(result.curves)
        measured = set(result.measured_core_counts)
        for n in range(1, fitted.n_seq_max + 1):
            assert n in measured, f"core count {n} (before the peak) skipped"

    def test_no_contention_platform_still_terminates(self, diablo, noiseless_config):
        result = run_adaptive_calibration(
            diablo.machine, diablo.profile, m_comp=0, m_comm=0,
            config=noiseless_config, patience=2,
        )
        assert result.measured_core_counts[-1] == diablo.cores_per_socket

    def test_invalid_patience(self, henri):
        with pytest.raises(BenchmarkError):
            run_adaptive_calibration(
                henri.machine, henri.profile, m_comp=0, m_comm=0, patience=0
            )

    def test_invalid_tolerance(self, henri):
        with pytest.raises(BenchmarkError):
            run_adaptive_calibration(
                henri.machine, henri.profile, m_comp=0, m_comm=0, tolerance=-0.1
            )

    def test_noise_does_not_break_adaptivity(self, henri):
        result = run_adaptive_calibration(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=SweepConfig(seed=3),
        )
        assert result.measured_core_counts[-1] == henri.cores_per_socket
