"""Benchmark runners: steady-state and engine-based measurement."""

import numpy as np
import pytest

import repro.bench.runner as runner_module
from repro.bench import SweepConfig, measure_curves, measure_curves_engine
from repro.bench.runner import default_core_counts
from repro.errors import BenchmarkError
from repro.units import MB, MiB


class TestConfig:
    def test_defaults_match_paper(self):
        config = SweepConfig()
        assert config.message_bytes == 64 * MB
        assert config.repetitions == 1

    def test_invalid_values(self):
        with pytest.raises(BenchmarkError):
            SweepConfig(message_bytes=0)
        with pytest.raises(BenchmarkError):
            SweepConfig(bytes_per_core=-1)
        with pytest.raises(BenchmarkError):
            SweepConfig(repetitions=0)


class TestSteadyState:
    def test_default_core_counts(self, henri):
        assert np.array_equal(default_core_counts(henri.machine), np.arange(1, 19))

    def test_curve_shapes(self, henri, noiseless_config):
        curves = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0, config=noiseless_config
        )
        assert curves.n_points == 18
        # Perfect scaling at the start.
        assert curves.comp_alone[0] == pytest.approx(6.8)
        assert curves.comp_alone[3] == pytest.approx(4 * 6.8)
        # Communication starts at nominal, ends at the floor.
        assert curves.comm_parallel[0] == pytest.approx(12.3)
        assert curves.comm_parallel[-1] == pytest.approx(
            henri.profile.nic_min_fraction * 12.3, rel=0.02
        )

    def test_subset_core_counts(self, henri, noiseless_config):
        curves = measure_curves(
            henri.machine,
            henri.profile,
            m_comp=0,
            m_comm=0,
            config=noiseless_config,
            core_counts=[2, 6, 10],
        )
        assert list(curves.core_counts) == [2, 6, 10]

    def test_empty_core_counts_rejected(self, henri, noiseless_config):
        with pytest.raises(BenchmarkError, match="non-empty"):
            measure_curves(
                henri.machine,
                henri.profile,
                m_comp=0,
                m_comm=0,
                config=noiseless_config,
                core_counts=[],
            )

    def test_fractional_core_counts_rejected(self, henri, noiseless_config):
        # Regression: these used to be silently truncated (2.7 -> 2).
        with pytest.raises(BenchmarkError, match="integral"):
            measure_curves(
                henri.machine,
                henri.profile,
                m_comp=0,
                m_comm=0,
                config=noiseless_config,
                core_counts=[1, 2.7],
            )
        with pytest.raises(BenchmarkError, match="integral"):
            measure_curves_engine(
                henri.machine,
                henri.profile,
                m_comp=0,
                m_comm=0,
                config=noiseless_config,
                core_counts=[1, 2.7],
            )

    def test_noise_is_seeded(self, henri):
        a = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=SweepConfig(seed=3), core_counts=[4, 8],
        )
        b = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=SweepConfig(seed=3), core_counts=[4, 8],
        )
        c = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=SweepConfig(seed=4), core_counts=[4, 8],
        )
        assert np.array_equal(a.comp_parallel, b.comp_parallel)
        assert not np.array_equal(a.comp_parallel, c.comp_parallel)

    def test_noise_small_relative_to_signal(self, henri, noiseless_config):
        noisy = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=SweepConfig(seed=5), core_counts=[8],
        )
        clean = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=noiseless_config, core_counts=[8],
        )
        assert noisy.comp_parallel[0] == pytest.approx(
            clean.comp_parallel[0], rel=0.05
        )

    def test_repetitions_median_tightens_noise(self, pyxis):
        single = measure_curves(
            pyxis.machine, pyxis.profile, m_comp=0, m_comm=0,
            config=SweepConfig(seed=6, repetitions=1), core_counts=[16],
        )
        many = measure_curves(
            pyxis.machine, pyxis.profile, m_comp=0, m_comm=0,
            config=SweepConfig(seed=6, repetitions=9), core_counts=[16],
        )
        clean = measure_curves(
            pyxis.machine, pyxis.profile, m_comp=0, m_comm=0,
            config=SweepConfig(noiseless=True), core_counts=[16],
        )
        err_single = abs(single.comm_parallel[0] - clean.comm_parallel[0])
        err_many = abs(many.comm_parallel[0] - clean.comm_parallel[0])
        # The median of several noisy runs is (statistically) closer;
        # with fixed seeds this is deterministic.
        assert err_many <= err_single + 0.05


class TestEngineRunner:
    """The duration-derived measurement agrees with the steady state."""

    def test_engine_matches_steady_state(self, henri, noiseless_config):
        ns = [1, 8, 13, 18]
        steady = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=noiseless_config, core_counts=ns,
        )
        # Small working set keeps the test fast; messages still repeat.
        config = SweepConfig(
            noiseless=True, bytes_per_core=192 * MiB, message_bytes=16 * MB
        )
        engine = measure_curves_engine(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=config, core_counts=ns,
        )
        assert np.allclose(engine.comp_alone, steady.comp_alone, rtol=0.02)
        assert np.allclose(engine.comm_alone, steady.comm_alone, rtol=0.02)
        # Parallel curves include realistic edge effects (the last
        # message outliving the computation): looser tolerance.
        assert np.allclose(engine.comp_parallel, steady.comp_parallel, rtol=0.08)
        assert np.allclose(engine.comm_parallel, steady.comm_parallel, rtol=0.15)

    def test_engine_runner_cross_placement(self, henri):
        config = SweepConfig(
            noiseless=True, bytes_per_core=96 * MiB, message_bytes=16 * MB
        )
        curves = measure_curves_engine(
            henri.machine, henri.profile, m_comp=0, m_comm=1,
            config=config, core_counts=[4, 12],
        )
        # Computations on node 0, messages to node 1: no comp impact.
        assert curves.comp_parallel[0] == pytest.approx(
            curves.comp_alone[0], rel=0.02
        )

    def test_idle_engine_raises_instead_of_spinning(self, henri, monkeypatch):
        """Regression: the message loop used a break condition that was
        always false, so an engine going idle with unfinished computation
        flows spun forever.  It must raise instead."""

        class _StuckFlow:
            def __init__(self, stream):
                self.stream = stream
                self.done = False
                self.finished_at = None

        class _IdleEngine:
            def __init__(self, machine, profile, **kwargs):
                self.active_count = 0

            def submit(self, stream, total_bytes):
                return _StuckFlow(stream)

            def step(self):
                return ()

        monkeypatch.setattr(runner_module, "Engine", _IdleEngine)
        with pytest.raises(BenchmarkError, match="idle"):
            runner_module._engine_parallel(
                henri.machine, henri.profile, 4, 0, 0, SweepConfig(noiseless=True)
            )
