"""Shared fixtures.

Expensive artefacts (full platform experiments) are session-scoped:
many test modules assert different properties of the same pipeline run,
so it is computed once per platform.
"""

from __future__ import annotations

import pytest

from repro.bench import SweepConfig
from repro.evaluation import run_platform_experiment
from repro.topology import get_platform, platform_names


@pytest.fixture(scope="session")
def henri():
    return get_platform("henri")


@pytest.fixture(scope="session")
def henri_subnuma():
    return get_platform("henri-subnuma")


@pytest.fixture(scope="session")
def diablo():
    return get_platform("diablo")


@pytest.fixture(scope="session")
def occigen():
    return get_platform("occigen")


@pytest.fixture(scope="session")
def pyxis():
    return get_platform("pyxis")


@pytest.fixture(scope="session")
def noiseless_config():
    return SweepConfig(noiseless=True)


@pytest.fixture(scope="session")
def seeded_config():
    return SweepConfig(seed=1)


@pytest.fixture(scope="session")
def henri_experiment(seeded_config):
    """Full pipeline run on henri (benchmark -> calibrate -> predict)."""
    return run_platform_experiment("henri", config=seeded_config)


@pytest.fixture(scope="session")
def all_experiments(seeded_config):
    """Full pipeline run on every testbed platform (Table II)."""
    return {
        name: run_platform_experiment(name, config=seeded_config)
        for name in platform_names()
    }
