"""Topology → resource mapping and stream path resolution."""

import pytest

from repro.errors import SimulationError
from repro.memsim import StreamKind, build_resources, stream_path
from repro.memsim.resource import ResourceKind


class TestBuildResources:
    def test_henri_resource_set(self, henri):
        rmap = build_resources(henri.machine, henri.profile)
        ids = rmap.ids()
        assert "ctrl:0" in ids and "ctrl:1" in ids
        assert "mesh:0" in ids and "mesh:1" in ids
        assert "link:0->1" in ids and "link:1->0" in ids
        assert "pcie:0" in ids and "nic:0" in ids
        assert "pcie-tx:0" in ids and "nic-tx:0" in ids  # full duplex
        assert "llc:0" in ids and "llc:1" in ids
        assert len(rmap) == 12

    def test_llc_resources_carry_cache_size(self, henri):
        rmap = build_resources(henri.machine, henri.profile)
        llc = rmap["llc:0"]
        assert llc.kind is ResourceKind.LLC
        assert llc.socket == 0
        assert llc.size_bytes == henri.machine.sockets[0].caches[-1].size_bytes
        # Capacity resources never appear in stream paths, so their
        # byte bandwidth is unconstrained.
        assert llc.capacity_gbps == float("inf")

    def test_controller_capacities(self, henri):
        rmap = build_resources(henri.machine, henri.profile)
        ctrl = rmap["ctrl:0"]
        assert ctrl.capacity_gbps == pytest.approx(88.0)
        assert ctrl.remote_capacity_gbps == pytest.approx(
            88.0 * henri.profile.remote_capacity_fraction
        )

    def test_default_mesh_budget(self, henri):
        rmap = build_resources(henri.machine, henri.profile)
        mesh = rmap["mesh:0"]
        expected = 1.08 * 88.0 + henri.machine.nic.line_rate_gbps
        assert mesh.capacity_gbps == pytest.approx(expected)
        assert mesh.kind is ResourceKind.SOCKET_MESH

    def test_explicit_mesh_override(self, henri):
        profile = henri.profile.with_overrides(mesh_gbps=123.0)
        rmap = build_resources(henri.machine, profile)
        assert rmap["mesh:0"].capacity_gbps == 123.0

    def test_unknown_resource_raises_with_known_list(self, henri):
        rmap = build_resources(henri.machine, henri.profile)
        with pytest.raises(SimulationError, match="ctrl:0"):
            rmap["bogus"]

    def test_contains(self, henri):
        rmap = build_resources(henri.machine, henri.profile)
        assert "ctrl:1" in rmap
        assert "ctrl:9" not in rmap

    def test_diablo_nic_resources_on_socket1(self, diablo):
        rmap = build_resources(diablo.machine, diablo.profile)
        assert "pcie:1" in rmap and "nic:1" in rmap
        assert "pcie:0" not in rmap


class TestStreamPath:
    def test_cpu_local(self, henri):
        path = stream_path(
            henri.machine, StreamKind.CPU, origin_socket=0, target_numa=0
        )
        assert path == ("mesh:0", "ctrl:0")

    def test_cpu_remote_crosses_link(self, henri):
        path = stream_path(
            henri.machine, StreamKind.CPU, origin_socket=0, target_numa=1
        )
        assert path == ("mesh:0", "link:0->1", "ctrl:1")

    def test_dma_local(self, henri):
        path = stream_path(
            henri.machine, StreamKind.DMA, origin_socket=0, target_numa=0
        )
        assert path == ("nic:0", "pcie:0", "mesh:0", "ctrl:0")

    def test_dma_remote(self, henri):
        path = stream_path(
            henri.machine, StreamKind.DMA, origin_socket=0, target_numa=1
        )
        assert path == ("nic:0", "pcie:0", "mesh:0", "link:0->1", "ctrl:1")

    def test_diablo_dma_to_node0_crosses_reverse_link(self, diablo):
        """NIC on socket 1 writing to node 0: opposite link direction."""
        path = stream_path(
            diablo.machine, StreamKind.DMA, origin_socket=1, target_numa=0
        )
        assert path == ("nic:1", "pcie:1", "mesh:1", "link:1->0", "ctrl:0")

    def test_dma_from_wrong_socket_rejected(self, henri):
        with pytest.raises(SimulationError, match="NIC socket"):
            stream_path(
                henri.machine, StreamKind.DMA, origin_socket=1, target_numa=0
            )

    def test_controllers_are_terminal(self, henri_subnuma):
        """The cascade solver requires controllers last on every path."""
        machine = henri_subnuma.machine
        for kind in (StreamKind.CPU, StreamKind.DMA):
            origin = machine.nic.socket if kind is StreamKind.DMA else 0
            for node in range(machine.n_numa_nodes):
                path = stream_path(
                    machine, kind, origin_socket=origin, target_numa=node
                )
                assert path[-1] == f"ctrl:{node}"
                assert all(not p.startswith("ctrl") for p in path[:-1])

    def test_directional_links_disjoint(self, diablo):
        """Comp 0->1 and NIC 1->0 must not share a link resource."""
        cpu = stream_path(
            diablo.machine, StreamKind.CPU, origin_socket=0, target_numa=1
        )
        dma = stream_path(
            diablo.machine, StreamKind.DMA, origin_socket=1, target_numa=0
        )
        assert set(cpu) & set(dma) == set()
