"""The LLC capacity resource: unit maths, stream filtering, solver laws.

Three properties anchor the model (and the paper's §VI deferral):

* cache-resident working sets press DRAM only through the compulsory
  floor — a victim sharing the node keeps its bandwidth;
* overflowing working sets converge back to the paper's non-temporal
  behaviour, so the LLC pass is a refinement, not a fork;
* streams that declare no working set pass through bit-identically
  (the arbiter's pre-existing single-tenant path is untouched).
"""

import dataclasses
import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.memsim import (
    Arbiter,
    Scenario,
    Tenant,
    TenantScenario,
    build_resources,
    build_tenant_streams,
    solve_tenant_scenario,
)
from repro.memsim.scenario import build_streams
from repro.memsim.llc import (
    COMPULSORY_FLOOR,
    dram_factor,
    filter_dram_demand,
    llc_by_socket,
    occupancy_shares,
)
from repro.memsim.resource import Resource, ResourceKind
from repro.topology import get_platform
from repro.units import MiB

HENRI = get_platform("henri")


def henri_llc_share():
    """One core's fair share of henri's socket-0 LLC, in bytes."""
    llc = max(HENRI.machine.sockets[0].caches, key=lambda c: c.level)
    return llc.size_bytes // HENRI.machine.cores_per_socket


# ---- dram_factor -------------------------------------------------------------


class TestDramFactor:
    def test_fully_resident_hits_the_floor(self):
        assert dram_factor(1000, 1000.0) == COMPULSORY_FLOOR
        assert dram_factor(1000, 5000.0) == COMPULSORY_FLOOR

    def test_no_share_means_full_traffic(self):
        assert dram_factor(1000, 0.0) == 1.0

    def test_half_resident(self):
        assert dram_factor(1000, 500.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(SimulationError, match="working_set_bytes"):
            dram_factor(0, 10.0)
        with pytest.raises(SimulationError, match="share_bytes"):
            dram_factor(10, -1.0)
        with pytest.raises(SimulationError, match="floor"):
            dram_factor(10, 5.0, floor=0.0)
        with pytest.raises(SimulationError, match="floor"):
            dram_factor(10, 5.0, floor=1.5)

    @given(
        ws=st.integers(1, 10**12),
        share=st.floats(0.0, 1e12),
    )
    def test_bounded_and_monotone(self, ws, share):
        factor = dram_factor(ws, share)
        assert COMPULSORY_FLOOR <= factor <= 1.0
        # More cache can only reduce the DRAM traffic.
        assert dram_factor(ws, share * 2.0) <= factor


# ---- occupancy_shares --------------------------------------------------------


class TestOccupancyShares:
    def test_everything_fits(self):
        assert occupancy_shares(100, [10, 20, 30]) == [10.0, 20.0, 30.0]

    def test_uniform_overflow_is_egalitarian(self):
        assert occupancy_shares(90, [100, 100, 100]) == [30.0, 30.0, 30.0]

    def test_small_set_frees_capacity_for_the_rest(self):
        shares = occupancy_shares(100, [10, 1000])
        assert shares[0] == 10.0
        assert shares[1] == pytest.approx(90.0)

    def test_empty(self):
        assert occupancy_shares(100, []) == []

    def test_validation(self):
        with pytest.raises(SimulationError, match="llc_size_bytes"):
            occupancy_shares(0, [10])
        with pytest.raises(SimulationError, match="working sets"):
            occupancy_shares(100, [10, 0])

    @given(
        size=st.integers(1, 10**9),
        sets=st.lists(st.integers(1, 10**9), min_size=1, max_size=12),
    )
    def test_conserves_capacity_and_caps_at_working_set(self, size, sets):
        shares = occupancy_shares(size, sets)
        assert len(shares) == len(sets)
        for share, ws in zip(shares, sets):
            assert 0.0 <= share <= ws + 1e-6
        assert sum(shares) <= size + 1e-6


# ---- llc_by_socket -----------------------------------------------------------


class TestLlcBySocket:
    def test_archived_platform_declares_one_llc_per_socket(self):
        resources = build_resources(HENRI.machine, HENRI.profile)
        llc = llc_by_socket(resources.resources)
        assert sorted(llc) == list(range(HENRI.machine.n_sockets))
        for socket, resource in llc.items():
            assert resource.kind is ResourceKind.LLC
            assert resource.socket == socket
            assert resource.size_bytes and resource.size_bytes > 0

    def test_empty_map(self):
        assert llc_by_socket({}) == {}

    def test_llc_resource_validation(self):
        with pytest.raises(SimulationError, match="size_bytes"):
            Resource(
                resource_id="llc:0", kind=ResourceKind.LLC,
                capacity_gbps=math.inf, socket=0,
            )
        with pytest.raises(SimulationError, match="socket"):
            Resource(
                resource_id="llc:0", kind=ResourceKind.LLC,
                capacity_gbps=math.inf, size_bytes=1024,
            )
        with pytest.raises(SimulationError, match="only LLC"):
            Resource(
                resource_id="ctrl:0", kind=ResourceKind.MEMORY_CONTROLLER,
                capacity_gbps=10.0, socket=0, size_bytes=1024,
            )


# ---- Stream.working_set_bytes validation -------------------------------------


class TestStreamWorkingSet:
    def test_non_positive_rejected(self):
        scenario = Scenario(n_cores=1, m_comp=0, m_comm=None)
        core = build_streams(HENRI.machine, HENRI.profile, scenario)[0]
        with pytest.raises(SimulationError, match="working set"):
            dataclasses.replace(core, working_set_bytes=0)

    def test_dma_streams_cannot_declare_one(self):
        scenario = Scenario(n_cores=0, m_comp=None, m_comm=0)
        nic = build_streams(HENRI.machine, HENRI.profile, scenario)[0]
        with pytest.raises(SimulationError, match="CPU"):
            dataclasses.replace(nic, working_set_bytes=64 * MiB)


# ---- filter_dram_demand ------------------------------------------------------


class TestFilterDramDemand:
    def test_no_working_sets_is_the_identity(self):
        """The paper's setting returns the *same* sequence object."""
        scenario = Scenario(n_cores=4, m_comp=0, m_comm=1)
        streams = build_streams(HENRI.machine, HENRI.profile, scenario)
        resources = build_resources(HENRI.machine, HENRI.profile)
        filtered, factors = filter_dram_demand(
            llc_by_socket(resources.resources), streams
        )
        assert filtered is streams
        assert factors == {}

    def test_resident_stream_scales_to_the_floor(self):
        tenant = Tenant(
            name="app", n_cores=2, m_comp=0,
            working_set_bytes=henri_llc_share() // 4,
        )
        streams = build_tenant_streams(
            HENRI.machine, HENRI.profile, TenantScenario((tenant,))
        )
        resources = build_resources(HENRI.machine, HENRI.profile)
        filtered, factors = filter_dram_demand(
            llc_by_socket(resources.resources), streams
        )
        for before, after in zip(streams, filtered):
            factor = factors[before.stream_id]
            assert factor == COMPULSORY_FLOOR
            assert after.demand_gbps == before.demand_gbps * factor
            assert after.working_set_bytes is None

    def test_missing_llc_resource_is_an_error(self):
        tenant = Tenant(
            name="app", n_cores=1, m_comp=0, working_set_bytes=1024,
        )
        streams = build_tenant_streams(
            HENRI.machine, HENRI.profile, TenantScenario((tenant,))
        )
        with pytest.raises(SimulationError, match="no LLC resource"):
            filter_dram_demand({}, streams)


# ---- solver-level properties -------------------------------------------------


def solve_pair(working_set_bytes):
    """App (temporal cores) + victim (comm) on henri's node 0."""
    n = HENRI.machine.cores_per_socket
    scenario = TenantScenario(
        (
            Tenant(
                name="app", n_cores=n, m_comp=0,
                working_set_bytes=working_set_bytes,
            ),
            Tenant(name="victim", m_comm=0),
        )
    )
    result = solve_tenant_scenario(HENRI.machine, HENRI.profile, scenario)
    return result.tenant("app"), result.tenant("victim")


class TestSolverProperties:
    def test_cache_resident_app_draws_no_dram_and_spares_the_victim(self):
        app, victim = solve_pair(henri_llc_share() // 4)
        nt_app, nt_victim = solve_pair(None)
        assert app.comp_dram_gbps < 0.05 * nt_app.comp_dram_gbps
        # The victim keeps (almost) its uncontended NIC bandwidth.
        baseline = solve_tenant_scenario(
            HENRI.machine,
            HENRI.profile,
            TenantScenario((Tenant(name="victim", m_comm=0),)),
        ).tenant("victim").comm_gbps
        assert victim.comm_gbps > 0.97 * baseline
        assert nt_victim.comm_gbps < 0.6 * baseline

    def test_overflowing_working_set_converges_to_non_temporal(self):
        app, victim = solve_pair(1024 * MiB)
        nt_app, nt_victim = solve_pair(None)
        assert victim.comm_gbps == pytest.approx(nt_victim.comm_gbps, rel=1e-3)
        assert app.comp_dram_gbps == pytest.approx(
            nt_app.comp_dram_gbps, rel=5e-3
        )

    def test_processed_rate_scales_dram_rate_by_the_factor(self):
        app, _ = solve_pair(henri_llc_share() // 4)
        assert app.comp_gbps == pytest.approx(
            app.comp_dram_gbps / COMPULSORY_FLOOR
        )

    def test_idle_tenant_is_bit_identical_to_absence(self):
        """N tenants with one idle solve exactly like the N-1 others."""
        from repro.memsim import LoadEnvelope

        app = Tenant(
            name="app", n_cores=4, m_comp=0,
            working_set_bytes=4 * henri_llc_share(),
        )
        victim = Tenant(name="victim", m_comm=0)
        idle = Tenant(
            name="idle", n_cores=8, m_comp=1, socket=1,
            envelope=LoadEnvelope.steady(0.0),
        )
        with_idle = solve_tenant_scenario(
            HENRI.machine, HENRI.profile,
            TenantScenario((app, victim, idle)),
        )
        without = solve_tenant_scenario(
            HENRI.machine, HENRI.profile, TenantScenario((app, victim))
        )
        assert with_idle.tenant("app") == without.tenant("app")
        assert with_idle.tenant("victim") == without.tenant("victim")
        assert with_idle.tenant("idle").total_gbps == 0.0
        for i in range(app.n_cores):
            sid = f"app/core{i}"
            assert with_idle.phases[0].allocation.rate(sid) == (
                without.phases[0].allocation.rate(sid)
            )


@given(ws_quarter_shares=st.integers(1, 64))
def test_filtering_helps_the_victim_and_processed_dominates_dram(
    ws_quarter_shares,
):
    """Across working-set sizes: the processed rate is never below the
    DRAM rate (cache hits only add), and a temporal neighbour never
    hurts the victim more than the paper's non-temporal one (the
    arbitrated DRAM rate itself is *not* pointwise monotone — contention
    feedback — so the invariant lives on the victim side)."""
    ws = max(1, ws_quarter_shares * henri_llc_share() // 4)
    app, victim = solve_pair(ws)
    _, nt_victim = solve_pair(None)
    assert app.comp_gbps >= app.comp_dram_gbps - 1e-9
    assert victim.comm_gbps >= nt_victim.comm_gbps - 1e-6
