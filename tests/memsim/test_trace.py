"""Bottleneck analysis (memsim.trace)."""

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.memsim import (
    Scenario,
    binding_resources,
    bottleneck_report,
    most_contended,
    resource_loads,
    solve_scenario,
)
from repro.memsim.trace import ResourceLoad


class TestResourceLoads:
    def test_loads_cover_touched_resources(self, henri):
        result = solve_scenario(henri.machine, henri.profile, Scenario(4, 0, 0))
        loads = resource_loads(result)
        assert {"mesh:0", "ctrl:0", "nic:0", "pcie:0"} <= set(loads)

    def test_utilisation_math(self):
        load = ResourceLoad(resource_id="x", usage_gbps=49.0, capacity_gbps=50.0)
        assert load.utilisation == pytest.approx(0.98)
        assert load.saturated

    def test_zero_capacity_rejected(self):
        load = ResourceLoad(resource_id="x", usage_gbps=1.0, capacity_gbps=0.0)
        with pytest.raises(SimulationError):
            load.utilisation


class TestMostContended:
    def test_unsaturated_scenario_returns_none(self, henri):
        result = solve_scenario(henri.machine, henri.profile, Scenario(2, 0, 0))
        assert most_contended(result) is None

    def test_local_contention_is_at_the_controller_or_mesh(self, henri):
        result = solve_scenario(henri.machine, henri.profile, Scenario(16, 0, 0))
        top = most_contended(result)
        assert top is not None
        assert top.resource_id in ("ctrl:0", "mesh:0")

    def test_remote_contention_at_remote_controller(self, henri_subnuma):
        p = henri_subnuma
        result = solve_scenario(p.machine, p.profile, Scenario(14, 2, 2))
        top = most_contended(result)
        assert top is not None
        assert top.resource_id == "ctrl:2"


class TestBindingResources:
    def test_demand_bound_streams_map_to_none(self, henri):
        result = solve_scenario(henri.machine, henri.profile, Scenario(2, 0, 1))
        bindings = binding_resources(result)
        assert bindings["core0"] is None
        assert bindings["nic"] is None

    def test_contended_cores_bound_by_their_controller(self, henri):
        result = solve_scenario(henri.machine, henri.profile, Scenario(16, 0, None))
        bindings = binding_resources(result)
        assert bindings["core0"] == "ctrl:0"

    def test_nic_binding_differs_from_cores_in_cross_placement(self, henri):
        """Comp saturates ctrl:0; the NIC (writing to node 1) is sagged
        at the mesh — different bottlenecks for different streams."""
        result = solve_scenario(henri.machine, henri.profile, Scenario(16, 0, 1))
        bindings = binding_resources(result)
        assert bindings["core0"] == "ctrl:0"
        assert bindings["nic"] in ("mesh:0", None)

    def test_requires_streams(self, henri):
        result = solve_scenario(henri.machine, henri.profile, Scenario(4, 0, 0))
        stripped = dataclasses.replace(result, streams=())
        with pytest.raises(SimulationError, match="streams"):
            binding_resources(stripped)


class TestReport:
    def test_report_mentions_everything(self, henri):
        result = solve_scenario(henri.machine, henri.profile, Scenario(16, 0, 0))
        text = bottleneck_report(result)
        assert "n=16" in text
        assert "resource utilisation" in text
        assert "bottleneck:" in text
        assert "saturated" in text

    def test_contention_free_report(self, diablo):
        result = solve_scenario(diablo.machine, diablo.profile, Scenario(4, 0, 1))
        text = bottleneck_report(result)
        assert "contention-free" in text
