"""ContentionProfile validation and helpers."""

import pytest

from repro.errors import SimulationError
from repro.memsim import ContentionProfile


def make_profile(**overrides):
    base = dict(core_stream_local_gbps=6.0, core_stream_remote_gbps=2.5)
    base.update(overrides)
    return ContentionProfile(**base)


class TestValidation:
    def test_defaults_are_valid(self):
        make_profile()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("core_stream_local_gbps", 0.0),
            ("core_stream_remote_gbps", -1.0),
            ("nic_min_fraction", 0.0),
            ("nic_min_fraction", 1.5),
            ("sag_onset", 0.0),
            ("sag_span", 0.0),
            ("interference_core_gbps", -0.1),
            ("remote_capacity_fraction", 0.0),
            ("remote_capacity_fraction", 1.2),
            ("comp_noise_sigma", -0.1),
            ("saturation_sharpness", 0.0),
            ("nic_cross_penalty", -0.1),
            ("nic_cross_penalty", 1.0),
            ("mesh_gbps", 0.0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(SimulationError):
            make_profile(**{field: value})

    def test_nic_locality_override_must_be_positive(self):
        with pytest.raises(SimulationError, match="locality"):
            make_profile(nic_locality_gbps={0: 0.0})


class TestHelpers:
    def test_core_stream_selects_locality(self):
        profile = make_profile()
        assert profile.core_stream_gbps(local=True) == 6.0
        assert profile.core_stream_gbps(local=False) == 2.5

    def test_nic_nominal_uses_override(self):
        profile = make_profile(nic_locality_gbps={1: 22.4})
        assert profile.nic_nominal_gbps(1, 25.0) == 22.4
        assert profile.nic_nominal_gbps(0, 25.0) == 25.0

    def test_with_overrides_returns_modified_copy(self):
        profile = make_profile()
        changed = profile.with_overrides(cpu_priority=False)
        assert changed.cpu_priority is False
        assert profile.cpu_priority is True
        assert changed.core_stream_local_gbps == profile.core_stream_local_gbps

    def test_with_overrides_still_validates(self):
        with pytest.raises(SimulationError):
            make_profile().with_overrides(nic_min_fraction=2.0)
