"""Stream and Resource invariants."""

import pytest

from repro.errors import SimulationError
from repro.memsim import Resource, ResourceKind, Stream, StreamKind


def make_stream(**overrides):
    base = dict(
        stream_id="s",
        kind=StreamKind.CPU,
        demand_gbps=5.0,
        path=("mesh:0", "ctrl:0"),
        target_numa=0,
        origin_socket=0,
    )
    base.update(overrides)
    return Stream(**base)


class TestStream:
    def test_valid_stream(self):
        s = make_stream()
        assert s.is_cpu and not s.is_dma

    def test_empty_id_rejected(self):
        with pytest.raises(SimulationError):
            make_stream(stream_id="")

    def test_zero_demand_rejected(self):
        with pytest.raises(SimulationError, match="demand"):
            make_stream(demand_gbps=0.0)

    def test_empty_path_rejected(self):
        with pytest.raises(SimulationError, match="path"):
            make_stream(path=())

    def test_duplicate_path_rejected(self):
        with pytest.raises(SimulationError, match="twice"):
            make_stream(path=("ctrl:0", "ctrl:0"))

    def test_cpu_stream_cannot_carry_guarantee(self):
        with pytest.raises(SimulationError, match="DMA"):
            make_stream(min_guarantee_gbps=1.0)

    def test_dma_stream_carries_guarantee(self):
        s = make_stream(kind=StreamKind.DMA, min_guarantee_gbps=2.0)
        assert s.min_guarantee_gbps == 2.0

    def test_pressure_defaults_to_demand(self):
        assert make_stream().pressure_gbps == 5.0

    def test_pressure_uses_issue_rate(self):
        assert make_stream(issue_gbps=7.0).pressure_gbps == 7.0

    def test_negative_issue_rejected(self):
        with pytest.raises(SimulationError, match="issue"):
            make_stream(issue_gbps=-1.0)


class TestResource:
    def test_valid_controller(self):
        r = Resource(
            resource_id="ctrl:0",
            kind=ResourceKind.MEMORY_CONTROLLER,
            capacity_gbps=80.0,
            remote_capacity_gbps=40.0,
            socket=0,
        )
        assert r.is_controller and not r.is_mesh

    def test_controller_requires_socket(self):
        with pytest.raises(SimulationError, match="socket"):
            Resource(
                resource_id="ctrl:0",
                kind=ResourceKind.MEMORY_CONTROLLER,
                capacity_gbps=80.0,
            )

    def test_remote_capacity_cannot_exceed_local(self):
        with pytest.raises(SimulationError, match="exceed"):
            Resource(
                resource_id="ctrl:0",
                kind=ResourceKind.MEMORY_CONTROLLER,
                capacity_gbps=80.0,
                remote_capacity_gbps=90.0,
                socket=0,
            )

    def test_base_capacity_blends_linearly(self):
        r = Resource(
            resource_id="ctrl:0",
            kind=ResourceKind.MEMORY_CONTROLLER,
            capacity_gbps=80.0,
            remote_capacity_gbps=40.0,
            socket=0,
        )
        assert r.base_capacity(0.0) == 80.0
        assert r.base_capacity(1.0) == 40.0
        assert r.base_capacity(0.5) == pytest.approx(60.0)

    def test_base_capacity_without_remote_ignores_mix(self):
        r = Resource(
            resource_id="link",
            kind=ResourceKind.SOCKET_LINK,
            capacity_gbps=42.0,
        )
        assert r.base_capacity(0.7) == 42.0

    def test_base_capacity_rejects_bad_fraction(self):
        r = Resource(
            resource_id="ctrl:0",
            kind=ResourceKind.MEMORY_CONTROLLER,
            capacity_gbps=80.0,
            remote_capacity_gbps=40.0,
            socket=0,
        )
        with pytest.raises(SimulationError):
            r.base_capacity(1.5)

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            Resource(
                resource_id="x",
                kind=ResourceKind.PCIE,
                capacity_gbps=0.0,
            )
