"""Fluid engine tests."""

import pytest

from repro.errors import SimulationError
from repro.memsim import Engine, Scenario
from repro.memsim.scenario import build_streams
from repro.units import GB, MB


def cpu_streams(platform, n, node=0):
    return [
        s
        for s in build_streams(platform.machine, platform.profile, Scenario(n, node, None))
    ]


def nic_stream(platform, node=0):
    (s,) = build_streams(platform.machine, platform.profile, Scenario(0, None, node))
    return s


class TestSingleFlow:
    def test_transfer_time_matches_rate(self, henri):
        engine = Engine(henri.machine, henri.profile)
        (stream,) = cpu_streams(henri, 1)
        flow = engine.submit(stream, 1 * GB)
        engine.run()
        assert flow.done
        # 1 GB at 6.8 GB/s.
        assert flow.finished_at == pytest.approx(1.0 / 6.8, rel=1e-6)
        assert flow.observed_gbps() == pytest.approx(6.8, rel=1e-6)

    def test_zero_bytes_rejected(self, henri):
        engine = Engine(henri.machine, henri.profile)
        (stream,) = cpu_streams(henri, 1)
        with pytest.raises(SimulationError, match="positive"):
            engine.submit(stream, 0)

    def test_duplicate_inflight_id_rejected(self, henri):
        engine = Engine(henri.machine, henri.profile)
        (stream,) = cpu_streams(henri, 1)
        engine.submit(stream, MB)
        with pytest.raises(SimulationError, match="already in flight"):
            engine.submit(stream, MB)

    def test_past_scheduling_rejected(self, henri):
        engine = Engine(henri.machine, henri.profile)
        (stream,) = cpu_streams(henri, 1)
        engine.submit(stream, MB)
        engine.run()
        with pytest.raises(SimulationError, match="past"):
            engine.submit(stream, MB, at=-1.0)

    def test_unfinished_flow_refuses_bandwidth(self, henri):
        engine = Engine(henri.machine, henri.profile)
        (stream,) = cpu_streams(henri, 1)
        flow = engine.submit(stream, GB)
        with pytest.raises(SimulationError, match="not finished"):
            flow.observed_gbps()


class TestConcurrentFlows:
    def test_equal_flows_finish_together(self, henri):
        engine = Engine(henri.machine, henri.profile)
        flows = [engine.submit(s, 100 * MB) for s in cpu_streams(henri, 4)]
        engine.run()
        ends = {round(f.finished_at, 12) for f in flows}
        assert len(ends) == 1

    def test_contended_flows_slower_than_alone(self, henri):
        engine = Engine(henri.machine, henri.profile)
        flows = [engine.submit(s, 100 * MB) for s in cpu_streams(henri, 18)]
        engine.run()
        per_core = flows[0].observed_gbps()
        assert per_core < henri.profile.core_stream_local_gbps

    def test_staggered_start(self, henri):
        engine = Engine(henri.machine, henri.profile)
        streams = cpu_streams(henri, 2)
        first = engine.submit(streams[0], 100 * MB)
        second = engine.submit(streams[1], 100 * MB, at=0.005)
        engine.run()
        assert first.started_at == 0.0
        assert second.started_at == pytest.approx(0.005)
        assert first.finished_at < second.finished_at

    def test_run_until_freezes_time(self, henri):
        engine = Engine(henri.machine, henri.profile)
        (stream,) = cpu_streams(henri, 1)
        flow = engine.submit(stream, GB)
        t = engine.run(until=0.01)
        assert t == pytest.approx(0.01)
        assert not flow.done
        engine.run()
        assert flow.done

    def test_step_returns_completions(self, henri):
        engine = Engine(henri.machine, henri.profile)
        streams = cpu_streams(henri, 2)
        engine.submit(streams[0], 10 * MB)
        engine.submit(streams[1], 20 * MB)
        completed = engine.step()
        assert [f.stream.stream_id for f in completed] == ["core0"]
        completed = engine.step()
        assert [f.stream.stream_id for f in completed] == ["core1"]
        assert engine.step() == ()


class TestOverlap:
    def test_message_slowed_by_computation(self, henri):
        # Communication alone.
        engine = Engine(henri.machine, henri.profile)
        flow = engine.submit(nic_stream(henri), 64 * MB)
        engine.run()
        alone_gbps = flow.observed_gbps()

        # Communication against 18 computing cores on the same node.
        engine = Engine(henri.machine, henri.profile)
        for s in cpu_streams(henri, 18):
            engine.submit(s, GB)
        msg = engine.submit(nic_stream(henri), 64 * MB)
        engine.run()
        assert msg.observed_gbps() < 0.6 * alone_gbps

    def test_computation_recovers_after_message(self, henri):
        """Fluid rates change at events: after the message finishes the
        cores speed back up, so their average exceeds the contended rate."""
        engine = Engine(henri.machine, henri.profile)
        comp_flows = [engine.submit(s, GB) for s in cpu_streams(henri, 14)]
        engine.submit(nic_stream(henri), 64 * MB)
        engine.run()
        contended_total = 14 * 6.8  # demand; actual is bounded by capacity
        assert sum(f.observed_gbps() for f in comp_flows) <= contended_total
