"""Noise model and scenario construction tests."""

import math

import pytest

from repro.errors import SimulationError
from repro.memsim import NoiseModel, Scenario
from repro.memsim.scenario import build_streams, solve_scenario


class TestNoise:
    def test_deterministic_per_key(self):
        noise = NoiseModel(seed=7)
        assert noise.factor(0.05, "a", 1) == noise.factor(0.05, "a", 1)

    def test_different_keys_decorrelate(self):
        noise = NoiseModel(seed=7)
        assert noise.factor(0.05, "a", 1) != noise.factor(0.05, "a", 2)

    def test_different_seeds_differ(self):
        assert NoiseModel(1).factor(0.05, "k") != NoiseModel(2).factor(0.05, "k")

    def test_zero_sigma_exact(self):
        assert NoiseModel(0).factor(0.0, "k") == 1.0
        assert NoiseModel(0).perturb(42.0, 0.0, "k") == 42.0

    def test_negative_sigma_rejected(self):
        with pytest.raises(SimulationError):
            NoiseModel(0).factor(-0.1, "k")

    def test_negative_value_rejected(self):
        with pytest.raises(SimulationError):
            NoiseModel(0).perturb(-1.0, 0.1, "k")

    def test_factor_is_lognormal_unit_mean(self):
        noise = NoiseModel(seed=3)
        sigma = 0.05
        samples = [noise.factor(sigma, "k", i) for i in range(4000)]
        mean = sum(samples) / len(samples)
        assert math.isclose(mean, 1.0, rel_tol=0.01)

    def test_small_sigma_small_perturbation(self):
        noise = NoiseModel(seed=9)
        for i in range(100):
            assert abs(noise.factor(0.01, i) - 1.0) < 0.06


class TestScenario:
    def test_negative_cores_rejected(self):
        with pytest.raises(SimulationError):
            Scenario(-1, 0, 0)

    def test_computing_needs_node(self):
        with pytest.raises(SimulationError, match="m_comp"):
            Scenario(2, None, 0)

    def test_flags(self):
        assert Scenario(2, 0, None).computing
        assert not Scenario(2, 0, None).communicating
        assert Scenario(0, None, 1).communicating

    def test_build_streams_counts(self, henri):
        streams = build_streams(henri.machine, henri.profile, Scenario(3, 0, 1))
        assert len(streams) == 4
        assert sum(s.is_dma for s in streams) == 1

    def test_too_many_cores_rejected(self, henri):
        with pytest.raises(SimulationError, match="only"):
            build_streams(henri.machine, henri.profile, Scenario(19, 0, None))

    def test_remote_demand_lower(self, henri):
        local = build_streams(henri.machine, henri.profile, Scenario(1, 0, None))
        remote = build_streams(henri.machine, henri.profile, Scenario(1, 1, None))
        assert remote[0].demand_gbps < local[0].demand_gbps
        # Issue pressure stays at the local rate regardless of target.
        assert remote[0].issue_gbps == local[0].demand_gbps

    def test_nic_floor_set_from_profile(self, henri):
        streams = build_streams(henri.machine, henri.profile, Scenario(0, None, 0))
        (nic,) = streams
        assert nic.min_guarantee_gbps == pytest.approx(
            henri.profile.nic_min_fraction * nic.demand_gbps
        )

    def test_pyxis_cross_penalty_applied(self, pyxis):
        same = build_streams(pyxis.machine, pyxis.profile, Scenario(4, 0, 0))
        cross = build_streams(pyxis.machine, pyxis.profile, Scenario(4, 1, 0))
        nic_same = next(s for s in same if s.is_dma)
        nic_cross = next(s for s in cross if s.is_dma)
        assert nic_cross.demand_gbps == pytest.approx(
            nic_same.demand_gbps * (1.0 - pyxis.profile.nic_cross_penalty)
        )

    def test_cross_penalty_not_applied_without_computation(self, pyxis):
        silent = build_streams(pyxis.machine, pyxis.profile, Scenario(0, None, 0))
        (nic,) = silent
        assert nic.demand_gbps == pytest.approx(
            pyxis.profile.nic_nominal_gbps(0, pyxis.machine.nic.line_rate_gbps)
        )

    def test_solve_scenario_total(self, henri):
        result = solve_scenario(henri.machine, henri.profile, Scenario(2, 0, 0))
        assert result.total_gbps == pytest.approx(
            result.comp_total_gbps + result.comm_gbps
        )
        assert len(result.comp_per_core_gbps) == 2
