"""The tenant layer: envelopes, composition, attribution — and the PR's
central regression: a single steady tenant must reproduce the paper's
single-job :func:`solve_scenario` *bit for bit* on every archived
platform, placement and core count."""

import math

import pytest

from repro.errors import SimulationError
from repro.memsim import (
    LoadEnvelope,
    LoadPhase,
    Scenario,
    Tenant,
    TenantScenario,
    build_tenant_streams,
    solve_scenario,
    solve_tenant_scenario,
)
from repro.topology import get_platform, platform_names

HENRI = get_platform("henri")


# ---- Scenario override validation (the NaN/inf bugfix) ------------------------


class TestScenarioOverrideValidation:
    @pytest.mark.parametrize(
        "fieldname",
        ["comp_demand_gbps", "comp_issue_gbps", "comm_demand_gbps"],
    )
    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf"), 0.0, -5.0]
    )
    def test_non_finite_or_non_positive_overrides_rejected(
        self, fieldname, bad
    ):
        """NaN used to sail through the ``<= 0`` check and poison the
        solver with NaN rates; now every bad override names its field."""
        kwargs = {fieldname: bad}
        with pytest.raises(SimulationError, match=fieldname):
            Scenario(n_cores=2, m_comp=0, m_comm=0, **kwargs)

    def test_valid_overrides_still_accepted(self):
        scenario = Scenario(
            n_cores=2, m_comp=0, m_comm=0,
            comp_demand_gbps=5.0, comp_issue_gbps=7.0, comm_demand_gbps=3.0,
        )
        assert scenario.comp_demand_gbps == 5.0

    @pytest.mark.parametrize(
        "fieldname",
        ["comp_demand_gbps", "comp_issue_gbps", "comm_demand_gbps"],
    )
    def test_tenant_overrides_validated_too(self, fieldname):
        with pytest.raises(SimulationError) as excinfo:
            Tenant(name="job", n_cores=1, m_comp=0, m_comm=0,
                   **{fieldname: float("nan")})
        assert fieldname in str(excinfo.value)
        assert "'job'" in str(excinfo.value)


# ---- solved transmit bandwidth (bidirectional) --------------------------------


class TestCommTx:
    def test_unidirectional_reports_zero(self):
        result = solve_scenario(
            HENRI.machine, HENRI.profile,
            Scenario(n_cores=0, m_comp=None, m_comm=0),
        )
        assert result.comm_tx_gbps == 0.0

    def test_bidirectional_tx_is_solved_not_assumed(self):
        result = solve_scenario(
            HENRI.machine, HENRI.profile,
            Scenario(n_cores=0, m_comp=None, m_comm=0, bidirectional=True),
        )
        assert result.comm_tx_gbps > 0.0
        assert result.comm_tx_gbps == result.allocation.rate("nic-tx")

    def test_tx_respects_its_anti_starvation_floor_under_load(self):
        machine, profile = HENRI.machine, HENRI.profile
        n = machine.cores_per_socket
        result = solve_scenario(
            machine, profile,
            Scenario(n_cores=n, m_comp=0, m_comm=0, bidirectional=True),
        )
        nominal = profile.nic_nominal_gbps(0, machine.nic.line_rate_gbps)
        assert result.comm_tx_gbps >= 0.5 * profile.nic_min_fraction * nominal - 1e-9
        # Full-socket computation load: the transmit side is contended.
        assert result.comm_tx_gbps < nominal

    def test_total_includes_both_directions(self):
        result = solve_scenario(
            HENRI.machine, HENRI.profile,
            Scenario(n_cores=4, m_comp=0, m_comm=0, bidirectional=True),
        )
        assert result.total_gbps == (
            result.comp_total_gbps + result.comm_gbps + result.comm_tx_gbps
        )


# ---- load envelopes ------------------------------------------------------------


class TestLoadEnvelope:
    def test_phase_validation(self):
        with pytest.raises(SimulationError, match="duration"):
            LoadPhase(0.0, 1.0)
        with pytest.raises(SimulationError, match="duration"):
            LoadPhase(float("nan"), 1.0)
        with pytest.raises(SimulationError, match="level"):
            LoadPhase(1.0, -0.1)
        with pytest.raises(SimulationError, match="level"):
            LoadPhase(1.0, float("inf"))

    def test_envelope_needs_a_phase(self):
        with pytest.raises(SimulationError, match="at least one phase"):
            LoadEnvelope(())

    def test_default_is_steady_full_load(self):
        env = LoadEnvelope()
        assert env.duration_s == 1.0
        assert env.level_at(0.5) == 1.0

    def test_steady(self):
        env = LoadEnvelope.steady(0.25, duration_s=3.0)
        assert env.duration_s == 3.0
        assert env.level_at(2.9) == 0.25

    def test_bursty_square_wave(self):
        env = LoadEnvelope.bursty(period_s=2.0, duty=0.25, cycles=3)
        assert env.duration_s == pytest.approx(6.0)
        assert env.level_at(0.1) == 1.0
        assert env.level_at(1.0) == 0.0
        assert env.boundaries() == pytest.approx(
            (0.5, 2.0, 2.5, 4.0, 4.5, 6.0)
        )

    def test_bursty_validation(self):
        with pytest.raises(SimulationError, match="duty"):
            LoadEnvelope.bursty(duty=0.0)
        with pytest.raises(SimulationError, match="duty"):
            LoadEnvelope.bursty(duty=1.0)
        with pytest.raises(SimulationError, match="cycles"):
            LoadEnvelope.bursty(cycles=0)

    def test_diurnal_stays_within_bounds_and_peaks_mid_cycle(self):
        env = LoadEnvelope.diurnal(day_s=24.0, samples=8, low=0.2, high=1.0)
        levels = [p.level for p in env.phases]
        assert all(0.2 <= lv <= 1.0 for lv in levels)
        assert max(levels) > 0.9 and min(levels) < 0.3
        # Raised cosine: the trough sits at the cycle edges.
        assert levels[0] == min(levels)

    def test_diurnal_validation(self):
        with pytest.raises(SimulationError, match="samples"):
            LoadEnvelope.diurnal(samples=1)
        with pytest.raises(SimulationError, match="low"):
            LoadEnvelope.diurnal(low=0.9, high=0.5)

    def test_level_at_holds_last_level_past_the_end(self):
        env = LoadEnvelope((LoadPhase(1.0, 0.8), LoadPhase(1.0, 0.3)))
        assert env.level_at(0.5) == 0.8
        assert env.level_at(1.5) == 0.3
        assert env.level_at(99.0) == 0.3
        with pytest.raises(SimulationError, match=">= 0"):
            env.level_at(-1.0)


# ---- tenant and scenario validation --------------------------------------------


class TestTenantValidation:
    def test_name_must_be_non_empty_and_slash_free(self):
        with pytest.raises(SimulationError, match="slash-free"):
            Tenant(name="")
        with pytest.raises(SimulationError, match="slash-free"):
            Tenant(name="a/b", m_comm=0)

    def test_computing_needs_a_data_node(self):
        with pytest.raises(SimulationError, match="m_comp"):
            Tenant(name="job", n_cores=2)

    def test_negative_cores_and_socket_rejected(self):
        with pytest.raises(SimulationError, match="n_cores"):
            Tenant(name="job", n_cores=-1, m_comp=0)
        with pytest.raises(SimulationError, match="socket"):
            Tenant(name="job", m_comm=0, socket=-1)

    def test_working_set_must_be_positive(self):
        with pytest.raises(SimulationError, match="working set"):
            Tenant(name="job", n_cores=1, m_comp=0, working_set_bytes=0)

    def test_scenario_needs_tenants_with_unique_names(self):
        with pytest.raises(SimulationError, match="at least one tenant"):
            TenantScenario(())
        with pytest.raises(SimulationError, match="duplicate"):
            TenantScenario(
                (Tenant(name="a", m_comm=0), Tenant(name="a", m_comm=1))
            )

    def test_horizon_is_the_longest_envelope(self):
        scenario = TenantScenario(
            (
                Tenant(name="a", m_comm=0,
                       envelope=LoadEnvelope.steady(1.0, duration_s=2.0)),
                Tenant(name="b", m_comm=1,
                       envelope=LoadEnvelope.steady(1.0, duration_s=5.0)),
            )
        )
        assert scenario.horizon_s == 5.0

    def test_socket_out_of_range(self):
        scenario = TenantScenario(
            (Tenant(name="a", n_cores=1, m_comp=0, socket=7),)
        )
        with pytest.raises(SimulationError, match="out of range"):
            build_tenant_streams(HENRI.machine, HENRI.profile, scenario)

    def test_core_budget_is_per_socket(self):
        n = HENRI.machine.cores_per_socket
        scenario = TenantScenario(
            (
                Tenant(name="a", n_cores=n, m_comp=0),
                Tenant(name="b", n_cores=1, m_comp=0),
            )
        )
        with pytest.raises(SimulationError, match="only"):
            build_tenant_streams(HENRI.machine, HENRI.profile, scenario)
        # The same total spread over both sockets fits.
        ok = TenantScenario(
            (
                Tenant(name="a", n_cores=n, m_comp=0),
                Tenant(name="b", n_cores=1, m_comp=1, socket=1),
            )
        )
        streams = build_tenant_streams(HENRI.machine, HENRI.profile, ok)
        assert len(streams) == n + 1

    def test_stream_ids_are_namespaced(self):
        scenario = TenantScenario(
            (Tenant(name="web", n_cores=2, m_comp=0, m_comm=1,
                    bidirectional=True),)
        )
        streams = build_tenant_streams(HENRI.machine, HENRI.profile, scenario)
        assert sorted(s.stream_id for s in streams) == [
            "web/core0", "web/core1", "web/nic", "web/nic-tx",
        ]

    def test_unknown_tenant_lookup_names_the_known_ones(self):
        result = solve_tenant_scenario(
            HENRI.machine, HENRI.profile,
            TenantScenario((Tenant(name="a", m_comm=0),)),
        )
        with pytest.raises(SimulationError, match="'a'"):
            result.tenant("nope")


# ---- the acceptance-criterion regression ---------------------------------------


@pytest.mark.parametrize("platform_name", platform_names())
def test_single_tenant_is_bit_identical_to_solve_scenario(platform_name):
    """One steady tenant == the paper's single-job solver, exactly.

    Float-exact equality (no tolerance) over every archived platform,
    every placement of its NUMA grid, and three core counts — the
    tenant layer must be a pure superset, not a reimplementation that
    drifts by an ulp.
    """
    spec = get_platform(platform_name)
    machine, profile = spec.machine, spec.profile
    n_max = machine.cores_per_socket
    for m_comp, m_comm in machine.placements():
        for n in (1, n_max // 2, n_max):
            single = solve_scenario(
                machine, profile, Scenario(n_cores=n, m_comp=m_comp,
                                           m_comm=m_comm)
            )
            tenant = Tenant(name="job", n_cores=n, m_comp=m_comp,
                            m_comm=m_comm)
            multi = solve_tenant_scenario(
                machine, profile, TenantScenario((tenant,))
            )
            bw = multi.tenant("job")
            assert bw.comp_gbps == single.comp_total_gbps
            assert bw.comp_dram_gbps == single.comp_total_gbps
            assert bw.comm_gbps == single.comm_gbps
            assert bw.comm_tx_gbps == single.comm_tx_gbps == 0.0
            allocation = multi.phases[0].allocation
            for i, rate in enumerate(single.comp_per_core_gbps):
                assert allocation.rate(f"job/core{i}") == rate
            assert allocation.rate("job/nic") == single.comm_gbps


def test_single_bidirectional_tenant_matches_too():
    single = solve_scenario(
        HENRI.machine, HENRI.profile,
        Scenario(n_cores=4, m_comp=0, m_comm=1, bidirectional=True),
    )
    multi = solve_tenant_scenario(
        HENRI.machine, HENRI.profile,
        TenantScenario(
            (Tenant(name="job", n_cores=4, m_comp=0, m_comm=1,
                    bidirectional=True),)
        ),
    )
    bw = multi.tenant("job")
    assert bw.comm_gbps == single.comm_gbps
    assert bw.comm_tx_gbps == single.comm_tx_gbps > 0.0


# ---- multi-tenant behaviour -----------------------------------------------------


class TestMultiTenant:
    def test_attacker_degrades_the_victims_bandwidth(self):
        """The PR's end-to-end criterion: measurable comm degradation."""
        machine, profile = HENRI.machine, HENRI.profile
        baseline = solve_tenant_scenario(
            machine, profile,
            TenantScenario((Tenant(name="victim", m_comm=0),)),
        ).tenant("victim").comm_gbps
        contended = solve_tenant_scenario(
            machine, profile,
            TenantScenario(
                (
                    Tenant(name="attacker",
                           n_cores=machine.cores_per_socket, m_comp=0),
                    Tenant(name="victim", m_comm=0),
                )
            ),
        ).tenant("victim").comm_gbps
        assert contended < 0.7 * baseline
        assert contended > 0.0

    def test_comm_floor_is_split_among_communicating_tenants(self):
        """Two NIC tenants cannot both claim the full hardware floor."""
        machine, profile = HENRI.machine, HENRI.profile
        n = machine.cores_per_socket
        nominal = profile.nic_nominal_gbps(0, machine.nic.line_rate_gbps)
        floor = profile.nic_min_fraction * nominal
        result = solve_tenant_scenario(
            machine, profile,
            TenantScenario(
                (
                    Tenant(name="hog", n_cores=n, m_comp=0),
                    Tenant(name="a", m_comm=0),
                    Tenant(name="b", m_comm=0),
                )
            ),
        )
        a = result.tenant("a").comm_gbps
        b = result.tenant("b").comm_gbps
        assert a == b  # symmetric tenants, symmetric split
        assert a >= floor / 2 - 1e-9
        assert a + b <= nominal + 1e-9

    def test_bursty_tenant_averages_by_time(self):
        """duty=0.5 alone on the machine ⇒ exactly half the steady rate."""
        machine, profile = HENRI.machine, HENRI.profile
        steady = solve_tenant_scenario(
            machine, profile,
            TenantScenario((Tenant(name="job", m_comm=0),)),
        ).tenant("job").comm_gbps
        bursty = solve_tenant_scenario(
            machine, profile,
            TenantScenario(
                (
                    Tenant(
                        name="job", m_comm=0,
                        envelope=LoadEnvelope.bursty(
                            period_s=1.0, duty=0.5, cycles=2
                        ),
                    ),
                )
            ),
        )
        assert bursty.tenant("job").comm_gbps == pytest.approx(0.5 * steady)
        # Off phases contribute zero-rate segments, not missing ones.
        assert bursty.horizon_s == pytest.approx(2.0)
        assert len(bursty.phases) == 4

    def test_segments_cut_at_the_union_of_phase_boundaries(self):
        machine, profile = HENRI.machine, HENRI.profile
        scenario = TenantScenario(
            (
                Tenant(name="a", m_comm=0,
                       envelope=LoadEnvelope.steady(1.0, duration_s=2.0)),
                Tenant(
                    name="b", m_comm=1,
                    envelope=LoadEnvelope(
                        (LoadPhase(0.5, 1.0), LoadPhase(0.5, 0.25))
                    ),
                ),
            )
        )
        result = solve_tenant_scenario(machine, profile, scenario)
        cuts = [(p.start_s, p.end_s) for p in result.phases]
        assert cuts == [(0.0, 0.5), (0.5, 1.0), (1.0, 2.0)]
        # B's envelope ends at 1s: it holds its last level (0.25) after.
        assert result.phases[2].levels["b"] == 0.25

    def test_diurnal_average_sits_between_trough_and_peak(self):
        machine, profile = HENRI.machine, HENRI.profile
        lo, hi = 0.2, 1.0
        steady = solve_tenant_scenario(
            machine, profile,
            TenantScenario((Tenant(name="job", m_comm=0),)),
        ).tenant("job").comm_gbps
        diurnal = solve_tenant_scenario(
            machine, profile,
            TenantScenario(
                (
                    Tenant(
                        name="job", m_comm=0,
                        envelope=LoadEnvelope.diurnal(low=lo, high=hi),
                    ),
                )
            ),
        ).tenant("job").comm_gbps
        assert lo * steady < diurnal < hi * steady
