"""Property-based tests (hypothesis) on the simulator's core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    Arbiter,
    ContentionProfile,
    Scenario,
    build_resources,
    solve_scenario,
)
from repro.memsim.policies import smooth_min, waterfill
from repro.topology import MachineBuilder, validate_machine
from repro.units import GiB

# ---- waterfill ---------------------------------------------------------------


@given(
    offers=st.lists(st.floats(0.0, 50.0), min_size=1, max_size=20),
    budget=st.floats(0.0, 500.0),
)
def test_waterfill_conserves_and_caps(offers, budget):
    shares = waterfill(offers, budget)
    assert len(shares) == len(offers)
    for share, offer in zip(shares, offers):
        assert 0.0 <= share <= offer + 1e-9
    assert sum(shares) <= min(sum(offers), budget) + 1e-6


@given(
    offers=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=20),
    budget=st.floats(0.1, 500.0),
)
def test_waterfill_work_conserving(offers, budget):
    """Everything that fits is allocated."""
    shares = waterfill(offers, budget)
    assert sum(shares) >= min(sum(offers), budget) - 1e-6


@given(
    offers=st.lists(st.floats(0.1, 50.0), min_size=2, max_size=20),
    budget=st.floats(0.1, 100.0),
)
def test_waterfill_egalitarian(offers, budget):
    """No stream below the equal share unless its own offer is smaller."""
    shares = waterfill(offers, budget)
    fair = budget / len(offers)
    for share, offer in zip(shares, offers):
        assert share >= min(offer, fair) - 1e-6


# ---- smooth_min ------------------------------------------------------------------


@given(
    a=st.floats(0.0, 1000.0),
    b=st.floats(0.0, 1000.0),
    width=st.floats(0.0, 100.0),
)
def test_smooth_min_bounds(a, b, width):
    value = smooth_min(a, b, width)
    assert value <= min(a, b) + 1e-9
    assert value >= min(a, b) - width / 4.0 - 1e-9


@given(a=st.floats(0.0, 1000.0), b=st.floats(0.0, 1000.0))
def test_smooth_min_symmetric(a, b):
    assert smooth_min(a, b, 7.0) == smooth_min(b, a, 7.0)


# ---- arbiter over random machines -------------------------------------------------


@st.composite
def machine_and_profile(draw):
    cores = draw(st.integers(2, 24))
    nodes = draw(st.integers(1, 2))
    ctrl = draw(st.floats(20.0, 150.0))
    link = draw(st.floats(15.0, 80.0))
    nic_rate = draw(st.floats(4.0, 25.0))
    nic_socket = draw(st.integers(0, 1))
    machine = (
        MachineBuilder("prop")
        .processor("cpu", cores_per_socket=cores, sockets=2)
        .numa(nodes_per_socket=nodes, memory_bytes=GiB, controller_gbps=ctrl)
        .interconnect(gbps=link)
        .network(
            "nic",
            line_rate_gbps=nic_rate,
            pcie_gbps=nic_rate * 1.1,
            socket=nic_socket,
        )
        .build()
    )
    validate_machine(machine)
    profile = ContentionProfile(
        core_stream_local_gbps=draw(st.floats(1.0, 8.0)),
        core_stream_remote_gbps=draw(st.floats(0.5, 4.0)),
        nic_min_fraction=draw(st.floats(0.1, 1.0)),
        sag_onset=draw(st.floats(0.5, 1.0)),
        sag_span=draw(st.floats(0.1, 0.8)),
        interference_core_gbps=draw(st.floats(0.0, 1.0)),
        interference_mixed_gbps=draw(st.floats(0.0, 2.0)),
        dma_concurrency_bonus=draw(st.floats(0.0, 0.1)),
        remote_capacity_fraction=draw(st.floats(0.3, 1.0)),
        saturation_sharpness=draw(st.floats(3.0, 50.0)),
    )
    n = draw(st.integers(1, cores))
    m_comp = draw(st.integers(0, 2 * nodes - 1))
    m_comm = draw(st.integers(0, 2 * nodes - 1))
    return machine, profile, n, m_comp, m_comm


@settings(max_examples=120, deadline=None)
@given(params=machine_and_profile())
def test_arbiter_invariants_on_random_machines(params):
    machine, profile, n, m_comp, m_comm = params
    result = solve_scenario(machine, profile, Scenario(n, m_comp, m_comm))
    allocation = result.allocation

    # Rates are non-negative and bounded by demand.
    core_demand = profile.core_stream_gbps(
        local=machine.socket_of_numa(m_comp) == 0
    )
    for rate in result.comp_per_core_gbps:
        assert -1e-9 <= rate <= core_demand + 1e-9
    nic_nominal = profile.nic_nominal_gbps(m_comm, machine.nic.line_rate_gbps)
    assert -1e-9 <= result.comm_gbps <= nic_nominal + 1e-9

    # Conservation at every resource.
    for rid, usage in allocation.resource_usage.items():
        assert usage <= allocation.effective_capacity[rid] + 1e-6

    # Uniform degradation between computing cores.
    if result.comp_per_core_gbps:
        rates = np.asarray(result.comp_per_core_gbps)
        assert rates.max() - rates.min() < 1e-6


@settings(max_examples=60, deadline=None)
@given(params=machine_and_profile())
def test_comm_floor_on_random_machines(params):
    """The anti-starvation guarantee holds for any machine shape."""
    machine, profile, n, m_comp, m_comm = params
    result = solve_scenario(machine, profile, Scenario(n, m_comp, m_comm))
    nic_nominal = profile.nic_nominal_gbps(m_comm, machine.nic.line_rate_gbps)
    if profile.nic_cross_penalty == 0.0 and nic_nominal <= machine.nic.pcie_gbps:
        floor = profile.nic_min_fraction * nic_nominal
        # The floor is honoured up to what the NIC's path can physically
        # carry under the final traffic mix (interference can shrink a
        # controller below the requested floor — the NIC then gets
        # everything that is left, which is the strongest possible
        # guarantee).
        from repro.memsim.scenario import build_streams

        nic = next(
            s
            for s in build_streams(machine, profile, Scenario(n, m_comp, m_comm))
            if s.is_dma
        )
        # The smooth saturation knee can dip the usable bandwidth up to
        # capacity/(4 * sharpness) below the effective capacity, and
        # waiting CPU streams always claim at least (1 - DMA_MAX) of a
        # saturated resource (CPU priority).
        from repro.memsim.policies import _DMA_MAX_FRACTION

        cpu_claim = _DMA_MAX_FRACTION if n > 0 else 1.0
        path_capacity = min(
            result.allocation.effective_capacity[rid]
            * (1.0 - 1.0 / (4.0 * profile.saturation_sharpness))
            * cpu_claim
            for rid in nic.path
        )
        assert result.comm_gbps >= min(floor, nic_nominal, path_capacity) - 1e-6


@settings(max_examples=40, deadline=None)
@given(params=machine_and_profile(), seed=st.integers(0, 2**31 - 1))
def test_arbiter_deterministic(params, seed):
    machine, profile, n, m_comp, m_comm = params
    a = solve_scenario(machine, profile, Scenario(n, m_comp, m_comm))
    b = solve_scenario(machine, profile, Scenario(n, m_comp, m_comm))
    assert a.comp_total_gbps == b.comp_total_gbps
    assert a.comm_gbps == b.comm_gbps
