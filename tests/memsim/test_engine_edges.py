"""Engine edge cases: pending flows, horizons, bookkeeping."""

import pytest

from repro.errors import SimulationError
from repro.memsim import Engine, Scenario
from repro.memsim.scenario import build_streams
from repro.units import MB


def one_stream(platform, node=0):
    (stream,) = build_streams(
        platform.machine, platform.profile, Scenario(1, node, None)
    )
    return stream


class TestPendingFlows:
    def test_until_before_pending_start(self, henri):
        engine = Engine(henri.machine, henri.profile)
        engine.submit(one_stream(henri), MB, at=1.0)
        t = engine.run(until=0.5)
        assert t == pytest.approx(0.5)
        assert engine.active_count == 0

    def test_pending_admitted_after_gap(self, henri):
        engine = Engine(henri.machine, henri.profile)
        flow = engine.submit(one_stream(henri), MB, at=2.0)
        engine.run()
        assert flow.started_at == pytest.approx(2.0)
        assert flow.done

    def test_idle_run_until_advances_clock(self, henri):
        engine = Engine(henri.machine, henri.profile)
        assert engine.run(until=3.0) == pytest.approx(3.0)
        assert engine.now == pytest.approx(3.0)

    def test_submit_defaults_to_now(self, henri):
        engine = Engine(henri.machine, henri.profile)
        engine.run(until=1.0)
        flow = engine.submit(one_stream(henri), MB)
        engine.run()
        assert flow.submitted_at == pytest.approx(1.0)


class TestBookkeeping:
    def test_finished_flows_accumulate(self, henri):
        engine = Engine(henri.machine, henri.profile)
        streams = build_streams(
            henri.machine, henri.profile, Scenario(3, 0, None)
        )
        for s in streams:
            engine.submit(s, MB)
        engine.run()
        assert len(engine.finished_flows()) == 3
        assert all(f.done for f in engine.finished_flows())

    def test_remaining_bytes_clamped(self, henri):
        engine = Engine(henri.machine, henri.profile)
        flow = engine.submit(one_stream(henri), MB)
        engine.run()
        assert flow.remaining_bytes == 0.0
        assert flow.transferred_bytes == MB

    def test_max_events_guard(self, henri):
        engine = Engine(henri.machine, henri.profile)
        streams = build_streams(
            henri.machine, henri.profile, Scenario(2, 0, None)
        )
        for s in streams:
            engine.submit(s, 100 * MB)
        with pytest.raises(SimulationError, match="events"):
            engine.run(max_events=1)

    def test_reuse_stream_id_after_completion(self, henri):
        engine = Engine(henri.machine, henri.profile)
        stream = one_stream(henri)
        first = engine.submit(stream, MB)
        engine.run()
        second = engine.submit(stream, MB)
        engine.run()
        assert first.done and second.done
        assert second.started_at >= first.finished_at
