"""Arbitration policy unit tests: the §II-A hypotheses, one by one."""

import pytest

from repro.memsim import ContentionProfile, Resource, ResourceKind, Stream, StreamKind
from repro.memsim.policies import ArbitrationPolicy, Offer, smooth_min, waterfill


def profile(**overrides):
    base = dict(
        core_stream_local_gbps=6.0,
        core_stream_remote_gbps=2.5,
        nic_min_fraction=0.4,
        sag_onset=0.8,
        sag_span=0.2,
        interference_core_gbps=0.0,
        interference_mixed_gbps=0.0,
        dma_concurrency_bonus=0.0,
        saturation_sharpness=1e6,  # razor-sharp knee for exact arithmetic
    )
    base.update(overrides)
    return ContentionProfile(**base)


def controller(capacity=60.0, remote=30.0):
    return Resource(
        resource_id="ctrl:0",
        kind=ResourceKind.MEMORY_CONTROLLER,
        capacity_gbps=capacity,
        remote_capacity_gbps=remote,
        socket=0,
    )


def mesh(capacity=70.0):
    return Resource(
        resource_id="mesh:0",
        kind=ResourceKind.SOCKET_MESH,
        capacity_gbps=capacity,
        socket=0,
    )


def cpu_stream(i, demand=6.0, origin=0, issue=0.0):
    return Stream(
        stream_id=f"core{i}",
        kind=StreamKind.CPU,
        demand_gbps=demand,
        path=("mesh:0", "ctrl:0"),
        target_numa=0,
        origin_socket=origin,
        issue_gbps=issue,
    )


def nic_stream(demand=10.0, floor=4.0, origin=0):
    return Stream(
        stream_id="nic",
        kind=StreamKind.DMA,
        demand_gbps=demand,
        path=("nic:0", "pcie:0", "mesh:0", "ctrl:0"),
        target_numa=0,
        origin_socket=origin,
        min_guarantee_gbps=floor,
    )


class TestHelpers:
    def test_smooth_min_exact_away_from_knee(self):
        assert smooth_min(10.0, 50.0, 5.0) == 10.0
        assert smooth_min(50.0, 10.0, 5.0) == 10.0

    def test_smooth_min_dips_at_equality(self):
        assert smooth_min(10.0, 10.0, 4.0) == pytest.approx(10.0 - 1.0)

    def test_smooth_min_zero_width_is_min(self):
        assert smooth_min(3.0, 7.0, 0.0) == 3.0

    def test_waterfill_equal_split(self):
        assert waterfill([5.0, 5.0], 6.0) == pytest.approx([3.0, 3.0])

    def test_waterfill_caps_at_offer(self):
        shares = waterfill([1.0, 10.0], 6.0)
        assert shares[0] == pytest.approx(1.0)
        assert shares[1] == pytest.approx(5.0)

    def test_waterfill_no_budget(self):
        assert waterfill([2.0, 3.0], 0.0) == [0.0, 0.0]

    def test_waterfill_abundant_budget(self):
        assert waterfill([2.0, 3.0], 100.0) == pytest.approx([2.0, 3.0])

    def test_waterfill_empty(self):
        assert waterfill([], 5.0) == []


class TestEffectiveCapacity:
    def test_no_interference_below_saturation(self):
        policy = ArbitrationPolicy(profile())
        offers = [Offer(cpu_stream(i), 6.0) for i in range(5)]  # 30 < 60
        assert policy.effective_capacity(controller(), offers) == pytest.approx(60.0)

    def test_core_interference_beyond_knee(self):
        policy = ArbitrationPolicy(profile(interference_core_gbps=0.5))
        # knee at 60/6 = 10 cores; 12 cores = 2 excess units.
        offers = [Offer(cpu_stream(i), 6.0) for i in range(12)]
        assert policy.effective_capacity(controller(), offers) == pytest.approx(
            60.0 - 0.5 * 2
        )

    def test_dma_bonus(self):
        policy = ArbitrationPolicy(profile(dma_concurrency_bonus=0.05))
        offers = [Offer(cpu_stream(0), 6.0), Offer(nic_stream(), 10.0)]
        assert policy.effective_capacity(controller(), offers) == pytest.approx(63.0)

    def test_mixed_interference_between_knees(self):
        policy = ArbitrationPolicy(
            profile(interference_mixed_gbps=1.0, interference_core_gbps=0.5)
        )
        # par knee = (60-12)/6 = 8, seq knee = 10; n=9 -> 1 mixed unit.
        offers = [Offer(cpu_stream(i), 6.0) for i in range(9)]
        offers.append(Offer(nic_stream(demand=12.0), 12.0))
        assert policy.effective_capacity(controller(), offers) == pytest.approx(
            60.0 - 1.0
        )

    def test_remote_mix_lowers_capacity(self):
        policy = ArbitrationPolicy(profile())
        local = [Offer(cpu_stream(i, origin=0), 6.0) for i in range(4)]
        remote = [Offer(cpu_stream(i + 10, origin=1), 6.0) for i in range(4)]
        cap_local = policy.effective_capacity(controller(), local)
        cap_remote = policy.effective_capacity(controller(), remote)
        assert cap_local == pytest.approx(60.0)
        assert cap_remote == pytest.approx(30.0)
        cap_mixed = policy.effective_capacity(controller(), local + remote)
        assert cap_remote < cap_mixed < cap_local

    def test_interference_floor(self):
        policy = ArbitrationPolicy(profile(interference_core_gbps=100.0))
        offers = [Offer(cpu_stream(i), 6.0) for i in range(20)]
        assert policy.effective_capacity(controller(), offers) >= 0.2 * 60.0

    def test_pipes_have_plain_capacity(self):
        policy = ArbitrationPolicy(profile(interference_core_gbps=5.0))
        link = Resource(
            resource_id="link", kind=ResourceKind.SOCKET_LINK, capacity_gbps=42.0
        )
        offers = [Offer(cpu_stream(i), 6.0) for i in range(20)]
        assert policy.effective_capacity(link, offers) == 42.0


class TestControllerAllocation:
    def test_no_contention_grants_demands(self):
        policy = ArbitrationPolicy(profile())
        offers = [Offer(cpu_stream(0), 6.0), Offer(nic_stream(), 10.0)]
        shares = policy.allocate(controller(), offers)
        assert shares["core0"] == pytest.approx(6.0)
        assert shares["nic"] == pytest.approx(10.0)

    def test_dma_fully_protected_at_controller(self):
        """Controllers never double-tax the mesh-throttled NIC traffic."""
        policy = ArbitrationPolicy(profile())
        offers = [Offer(cpu_stream(i), 6.0) for i in range(10)]  # 60 = capacity
        offers.append(Offer(nic_stream(demand=8.0), 8.0))
        shares = policy.allocate(controller(), offers)
        assert shares["nic"] == pytest.approx(8.0)
        cpu_total = sum(v for k, v in shares.items() if k.startswith("core"))
        assert cpu_total == pytest.approx(60.0 - 8.0, rel=1e-6)

    def test_cpu_split_is_uniform(self):
        """Paper: computation degrades uniformly between cores."""
        policy = ArbitrationPolicy(profile())
        offers = [Offer(cpu_stream(i), 6.0) for i in range(12)]
        offers.append(Offer(nic_stream(demand=10.0), 10.0))
        shares = policy.allocate(controller(), offers)
        cpu_shares = [v for k, v in shares.items() if k.startswith("core")]
        assert max(cpu_shares) - min(cpu_shares) < 1e-9

    def test_no_priority_mode_shares_proportionally(self):
        policy = ArbitrationPolicy(profile(cpu_priority=False))
        offers = [Offer(cpu_stream(i), 6.0) for i in range(10)]
        offers.append(Offer(nic_stream(demand=12.0), 12.0))
        shares = policy.allocate(controller(), offers)
        scale = 60.0 / 72.0
        assert shares["nic"] == pytest.approx(12.0 * scale)
        assert shares["core0"] == pytest.approx(6.0 * scale)

    def test_zero_offers_get_zero(self):
        policy = ArbitrationPolicy(profile())
        offers = [Offer(cpu_stream(0), 0.0), Offer(nic_stream(), 10.0)]
        shares = policy.allocate(controller(), offers)
        assert shares["core0"] == 0.0
        assert shares["nic"] == 10.0

    def test_conservation_under_overload(self):
        policy = ArbitrationPolicy(profile())
        offers = [Offer(cpu_stream(i), 6.0) for i in range(15)]
        offers.append(Offer(nic_stream(demand=12.0), 12.0))
        shares = policy.allocate(controller(), offers)
        assert sum(shares.values()) <= 60.0 + 1e-9


class TestMeshAllocation:
    def test_nic_full_below_onset(self):
        policy = ArbitrationPolicy(profile())
        offers = [Offer(cpu_stream(i, issue=6.0), 6.0) for i in range(5)]  # 30
        offers.append(Offer(nic_stream(demand=10.0), 10.0, pressure_gbps=10.0))
        shares = policy.allocate(mesh(capacity=70.0), offers)  # rho 40/70
        assert shares["nic"] == pytest.approx(10.0)

    def test_nic_at_floor_past_sag(self):
        policy = ArbitrationPolicy(profile())
        # pressure = 10*6 + 10 = 70; rho = 70/60 = 1.17 > onset+span = 1.0
        offers = [Offer(cpu_stream(i, issue=6.0), 6.0) for i in range(10)]
        offers.append(Offer(nic_stream(demand=10.0, floor=4.0), 10.0))
        shares = policy.allocate(mesh(capacity=60.0), offers)
        assert shares["nic"] == pytest.approx(4.0)

    def test_nic_sags_smoothly_between(self):
        policy = ArbitrationPolicy(profile())
        m = mesh(capacity=60.0)
        nic_shares = []
        for n in (6, 7, 8, 9):
            offers = [Offer(cpu_stream(i, issue=6.0), 6.0) for i in range(n)]
            offers.append(Offer(nic_stream(demand=10.0, floor=4.0), 10.0))
            nic_shares.append(policy.allocate(m, offers)["nic"])
        assert nic_shares == sorted(nic_shares, reverse=True)
        assert nic_shares[0] > 4.0
        assert nic_shares[-1] >= 4.0 - 1e-9

    def test_cpu_pressure_uses_issue_rate(self):
        """A core writing remotely still pressures its mesh at issue rate."""
        policy = ArbitrationPolicy(profile())
        m = mesh(capacity=60.0)
        # Real arriving load tiny (2.0 each) but issue pressure high.
        offers = [
            Offer(cpu_stream(i, demand=2.0, issue=6.0), 2.0, pressure_gbps=6.0)
            for i in range(10)
        ]
        offers.append(Offer(nic_stream(demand=10.0, floor=4.0), 10.0))
        shares = policy.allocate(m, offers)
        assert shares["nic"] == pytest.approx(4.0)
        # CPU streams keep their real (small) loads.
        assert shares["core0"] == pytest.approx(2.0)

    def test_mesh_without_dma_is_plain_pipe(self):
        policy = ArbitrationPolicy(profile())
        offers = [Offer(cpu_stream(i, issue=6.0), 6.0) for i in range(20)]  # 120
        shares = policy.allocate(mesh(capacity=60.0), offers)
        assert sum(shares.values()) == pytest.approx(60.0)

    def test_mesh_no_priority_mode(self):
        policy = ArbitrationPolicy(profile(cpu_priority=False))
        offers = [Offer(cpu_stream(i, issue=6.0), 6.0) for i in range(15)]
        offers.append(Offer(nic_stream(demand=10.0), 10.0))
        shares = policy.allocate(mesh(capacity=50.0), offers)
        scale = 50.0 / 100.0
        assert shares["nic"] == pytest.approx(10.0 * scale)
