"""Arbiter cascade tests: end-to-end rates on real platforms."""

import pytest

from repro.errors import ArbitrationError
from repro.memsim import (
    Arbiter,
    Scenario,
    Stream,
    StreamKind,
    build_resources,
    solve_scenario,
)


def arbiter_for(platform):
    return Arbiter(
        build_resources(platform.machine, platform.profile), platform.profile
    )


class TestBasics:
    def test_empty_streams(self, henri):
        allocation = arbiter_for(henri).solve([])
        assert allocation.rates == {}
        assert allocation.total_rate() == 0.0

    def test_duplicate_ids_rejected(self, henri):
        arb = arbiter_for(henri)
        s = Stream(
            stream_id="x",
            kind=StreamKind.CPU,
            demand_gbps=1.0,
            path=("mesh:0", "ctrl:0"),
            target_numa=0,
            origin_socket=0,
        )
        with pytest.raises(ArbitrationError, match="duplicate"):
            arb.solve([s, s])

    def test_unknown_resource_rejected(self, henri):
        arb = arbiter_for(henri)
        s = Stream(
            stream_id="x",
            kind=StreamKind.CPU,
            demand_gbps=1.0,
            path=("nowhere",),
            target_numa=0,
            origin_socket=0,
        )
        with pytest.raises(ArbitrationError, match="unknown resource"):
            arb.solve([s])

    def test_rate_lookup_error(self, henri):
        allocation = arbiter_for(henri).solve([])
        with pytest.raises(ArbitrationError, match="no stream"):
            allocation.rate("ghost")

    def test_single_stream_gets_demand(self, henri):
        result = solve_scenario(henri.machine, henri.profile, Scenario(1, 0, None))
        assert result.comp_total_gbps == pytest.approx(
            henri.profile.core_stream_local_gbps
        )


class TestConservation:
    """Sum of rates through any resource never exceeds its capacity."""

    @pytest.mark.parametrize(
        "name,m_comp,m_comm",
        [
            ("henri", 0, 0),
            ("henri", 1, 1),
            ("henri", 0, 1),
            ("henri", 1, 0),
            ("henri-subnuma", 2, 2),
            ("henri-subnuma", 0, 3),
            ("diablo", 0, 0),
            ("diablo", 1, 1),
            ("pyxis", 0, 1),
            ("occigen", 1, 1),
        ],
    )
    def test_conservation_all_core_counts(self, name, m_comp, m_comm, request):
        platform = request.getfixturevalue(name.replace("-", "_"))
        arb = arbiter_for(platform)
        for n in range(1, platform.cores_per_socket + 1):
            result = solve_scenario(
                platform.machine,
                platform.profile,
                Scenario(n, m_comp, m_comm),
                arbiter=arb,
            )
            allocation = result.allocation
            for rid, usage in allocation.resource_usage.items():
                assert usage <= allocation.effective_capacity[rid] + 1e-6, (
                    f"{name} n={n} ({m_comp},{m_comm}): {rid} carries "
                    f"{usage:.3f} > {allocation.effective_capacity[rid]:.3f}"
                )

    def test_rates_never_exceed_demand(self, henri):
        arb = arbiter_for(henri)
        for n in (1, 8, 14, 18):
            result = solve_scenario(
                henri.machine, henri.profile, Scenario(n, 0, 0), arbiter=arb
            )
            for rate in result.comp_per_core_gbps:
                assert rate <= henri.profile.core_stream_local_gbps + 1e-9
            assert result.comm_gbps <= henri.machine.nic.line_rate_gbps + 1e-9


class TestPaperBehaviours:
    def test_comm_floor_respected(self, henri):
        """The anti-starvation minimum: comm never below alpha * nominal."""
        arb = arbiter_for(henri)
        floor = henri.profile.nic_min_fraction * henri.machine.nic.line_rate_gbps
        for n in range(1, 19):
            result = solve_scenario(
                henri.machine, henri.profile, Scenario(n, 0, 0), arbiter=arb
            )
            assert result.comm_gbps >= floor - 1e-6

    def test_comm_monotone_decreasing_with_cores(self, henri):
        arb = arbiter_for(henri)
        comms = [
            solve_scenario(
                henri.machine, henri.profile, Scenario(n, 0, 0), arbiter=arb
            ).comm_gbps
            for n in range(1, 19)
        ]
        for a, b in zip(comms, comms[1:]):
            assert b <= a + 1e-9

    def test_cross_placement_comp_unaffected(self, henri):
        """Eq. 7's premise: comp only contends when sharing the node."""
        arb = arbiter_for(henri)
        for n in (4, 10, 14, 18):
            alone = solve_scenario(
                henri.machine, henri.profile, Scenario(n, 0, None), arbiter=arb
            )
            cross = solve_scenario(
                henri.machine, henri.profile, Scenario(n, 0, 1), arbiter=arb
            )
            assert cross.comp_total_gbps == pytest.approx(
                alone.comp_total_gbps, rel=1e-6
            )

    def test_subnuma_off_diagonal_remote_contention_free(self, henri_subnuma):
        """§IV-C2: different remote nodes -> no contention -> the
        bottleneck is the controller, not the inter-socket link."""
        arb = arbiter_for(henri_subnuma)
        p = henri_subnuma
        for n in (6, 12, 18):
            alone = solve_scenario(
                p.machine, p.profile, Scenario(n, 2, None), arbiter=arb
            )
            par = solve_scenario(
                p.machine, p.profile, Scenario(n, 2, 3), arbiter=arb
            )
            assert par.comp_total_gbps == pytest.approx(
                alone.comp_total_gbps, rel=1e-6
            )

    def test_subnuma_diagonal_remote_contends(self, henri_subnuma):
        p = henri_subnuma
        arb = arbiter_for(p)
        n = 12
        alone = solve_scenario(p.machine, p.profile, Scenario(n, 2, None), arbiter=arb)
        par = solve_scenario(p.machine, p.profile, Scenario(n, 2, 2), arbiter=arb)
        assert par.comp_total_gbps < 0.95 * alone.comp_total_gbps

    def test_occigen_comm_never_impacted(self, occigen):
        """§IV-B d: occigen communications keep nominal bandwidth."""
        arb = arbiter_for(occigen)
        nominal = solve_scenario(
            occigen.machine, occigen.profile, Scenario(0, None, 1), arbiter=arb
        ).comm_gbps
        for n in (4, 10, 14):
            par = solve_scenario(
                occigen.machine, occigen.profile, Scenario(n, 1, 1), arbiter=arb
            )
            assert par.comm_gbps == pytest.approx(nominal, rel=1e-6)

    def test_occigen_remote_comp_impacted(self, occigen):
        arb = arbiter_for(occigen)
        n = occigen.cores_per_socket
        alone = solve_scenario(
            occigen.machine, occigen.profile, Scenario(n, 1, None), arbiter=arb
        )
        par = solve_scenario(
            occigen.machine, occigen.profile, Scenario(n, 1, 1), arbiter=arb
        )
        assert par.comp_total_gbps < alone.comp_total_gbps

    def test_diablo_nearly_contention_free(self, diablo):
        """§IV-B c: almost no contention on diablo."""
        arb = arbiter_for(diablo)
        for n in (8, 16, 24, 32):
            alone = solve_scenario(
                diablo.machine, diablo.profile, Scenario(n, 0, None), arbiter=arb
            )
            par = solve_scenario(
                diablo.machine, diablo.profile, Scenario(n, 0, 0), arbiter=arb
            )
            assert par.comp_total_gbps >= 0.93 * alone.comp_total_gbps
            assert par.comm_gbps >= 0.93 * 12.1

    def test_total_bandwidth_saturates(self, henri):
        """Stacked total flattens near the bus capacity, then declines."""
        arb = arbiter_for(henri)
        totals = [
            solve_scenario(
                henri.machine, henri.profile, Scenario(n, 0, 0), arbiter=arb
            ).total_gbps
            for n in range(1, 19)
        ]
        peak = max(totals)
        peak_at = totals.index(peak) + 1
        assert 10 <= peak_at <= 15
        assert totals[-1] < peak  # delta-r decline
