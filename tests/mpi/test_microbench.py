"""MPI microbenchmark tests."""

import pytest

from repro.errors import CommunicationError
from repro.mpi.microbench import (
    MessagePoint,
    default_message_sizes,
    message_size_sweep,
)
from repro.net.protocol import Protocol
from repro.units import KiB, MB


class TestDefaultSizes:
    def test_powers_of_two(self):
        sizes = default_message_sizes(8 * KiB)
        assert sizes == [1024, 2048, 4096, 8192]

    def test_too_small_rejected(self):
        with pytest.raises(CommunicationError):
            default_message_sizes(512)


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self, henri):
        return message_size_sweep(henri, sizes=default_message_sizes(16 * 2**20))

    def test_protocol_crossover(self, points):
        small = [p for p in points if p.nbytes <= 32 * KiB]
        large = [p for p in points if p.nbytes > 32 * KiB]
        assert all(p.protocol is Protocol.EAGER for p in small)
        assert all(p.protocol is Protocol.RENDEZVOUS for p in large)

    def test_latency_monotone_in_size(self, points):
        latencies = [p.latency_s for p in points]
        assert latencies == sorted(latencies)

    def test_bandwidth_approaches_nominal(self, points, henri):
        assert points[-1].bandwidth_gbps > 0.9 * henri.machine.nic.line_rate_gbps

    def test_small_messages_latency_bound(self, points):
        # A 1 KiB message is dominated by wire latency: far below nominal.
        assert points[0].bandwidth_gbps < 2.0

    def test_rendezvous_handshake_visible(self, henri):
        """Just above the eager threshold, the handshake adds latency:
        the bytes/latency ratio dips relative to just below it."""
        below = message_size_sweep(henri, sizes=[32 * KiB])[0]
        above = message_size_sweep(henri, sizes=[32 * KiB + 1024])[0]
        assert above.latency_s > below.latency_s
        assert above.protocol is Protocol.RENDEZVOUS

    def test_locality_affects_bandwidth(self, diablo):
        near = message_size_sweep(diablo, sizes=[64 * MB], dest_node=1)[0]
        far = message_size_sweep(diablo, sizes=[64 * MB], dest_node=0)[0]
        assert near.bandwidth_gbps > 1.5 * far.bandwidth_gbps

    def test_invalid_sizes(self, henri):
        with pytest.raises(CommunicationError):
            message_size_sweep(henri, sizes=[])
        with pytest.raises(CommunicationError):
            message_size_sweep(henri, sizes=[0])

    def test_point_is_value_object(self, points):
        assert isinstance(points[0], MessagePoint)
        assert points[0].nbytes == 1024
