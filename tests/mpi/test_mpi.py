"""Mini-MPI layer: requests, progression modes, overlap."""

import pytest

from repro.errors import CommunicationError
from repro.kernels import ComputeTeam, memset_nt
from repro.mpi import ProgressMode, SimBuffer, SimMPI
from repro.units import MB, MiB


class TestBuffers:
    def test_valid(self, henri):
        SimBuffer(64 * MB, numa_node=0).validate_on(henri.machine)

    def test_zero_size_rejected(self):
        with pytest.raises(CommunicationError):
            SimBuffer(0, numa_node=0)

    def test_unknown_node_rejected(self, henri):
        with pytest.raises(Exception):
            SimBuffer(64 * MB, numa_node=9).validate_on(henri.machine)

    def test_oversized_buffer_rejected(self, henri):
        too_big = henri.machine.numa_node(0).memory_bytes + 1
        with pytest.raises(CommunicationError, match="fit"):
            SimBuffer(too_big, numa_node=0).validate_on(henri.machine)


class TestRecv:
    def test_recv_at_nominal_bandwidth(self, henri):
        world = SimMPI(henri)
        req = world.irecv(SimBuffer(64 * MB, numa_node=0))
        world.wait(req)
        assert req.done
        assert req.observed_gbps() == pytest.approx(12.3, rel=0.02)

    def test_wait_idempotent_via_done(self, henri):
        world = SimMPI(henri)
        req = world.irecv(SimBuffer(64 * MB, numa_node=0))
        t1 = world.wait(req)
        t2 = world.wait(req)
        assert t1 == t2

    def test_foreign_request_rejected(self, henri):
        world_a = SimMPI(henri)
        world_b = SimMPI(henri)
        req = world_a.irecv(SimBuffer(64 * MB, numa_node=0))
        with pytest.raises(CommunicationError, match="belong"):
            world_b.wait(req)

    def test_waitall(self, henri):
        world = SimMPI(henri)
        reqs = [
            world.irecv(SimBuffer(16 * MB, numa_node=0)),
            world.irecv(SimBuffer(16 * MB, numa_node=1)),
        ]
        end = world.waitall(reqs)
        assert all(r.done for r in reqs)
        assert end == max(r.completion_time() for r in reqs)

    def test_waitall_empty_rejected(self, henri):
        with pytest.raises(CommunicationError):
            SimMPI(henri).waitall([])

    def test_unfinished_metrics_rejected(self, henri):
        world = SimMPI(henri)
        req = world.irecv(SimBuffer(64 * MB, numa_node=0))
        with pytest.raises(CommunicationError, match="not completed"):
            req.observed_gbps()


class TestSend:
    def test_send_completes(self, henri):
        world = SimMPI(henri)
        req = world.isend(SimBuffer(64 * MB, numa_node=0))
        world.wait(req)
        assert req.observed_gbps() == pytest.approx(12.3, rel=0.05)

    def test_pingpong_future_work(self, henri):
        """Bidirectional data movement (§VI future work)."""
        world = SimMPI(henri)
        rx = world.irecv(SimBuffer(32 * MB, numa_node=0))
        tx = world.isend(SimBuffer(32 * MB, numa_node=0))
        world.waitall([rx, tx])
        assert rx.done and tx.done


class TestProgressModes:
    def test_thread_mode_overlaps(self, henri):
        """Threaded progression: transfer advances during computation."""
        world = SimMPI(henri, progress=ProgressMode.THREAD)
        team = ComputeTeam(
            henri.machine,
            henri.profile,
            n_threads=8,
            data_node=1,  # different node: no memory contention
            kernel=memset_nt(),
        )
        req = world.irecv(SimBuffer(64 * MB, numa_node=0))
        run = team.run(world.engine, elements_per_thread=4 * MiB)
        world.wait(req)
        world.engine.run()
        comm_time = req.completion_time() - req.posted_at
        # Overlapped: total time ~ max of the two, not the sum.
        assert world.engine.now < comm_time + run.makespan_seconds

    def test_polling_mode_defers_transfer(self, henri):
        world = SimMPI(henri, progress=ProgressMode.POLLING)
        req = world.irecv(SimBuffer(64 * MB, numa_node=0))
        assert req.handle is None  # nothing scheduled yet
        world.wait(req)
        assert req.done

    def test_polling_slower_than_thread_with_compute(self, henri):
        """The classic non-threaded MPI pitfall: no overlap."""
        def run_world(mode):
            world = SimMPI(henri, progress=mode)
            team = ComputeTeam(
                henri.machine,
                henri.profile,
                n_threads=4,
                data_node=1,
                kernel=memset_nt(),
            )
            req = world.irecv(SimBuffer(64 * MB, numa_node=0))
            team.run(world.engine, elements_per_thread=8 * MiB)
            world.engine.run()  # compute finishes (and transfer, if threaded)
            world.wait(req)
            return world.engine.now

        assert run_world(ProgressMode.THREAD) < run_world(ProgressMode.POLLING)


class TestOverlapHelper:
    def test_overlap_contention(self, henri):
        """The one-call benchmark step 3: same node -> comm throttled."""
        world = SimMPI(henri)
        run, req = world.overlap(
            n_threads=16,
            comp_node=0,
            comm_buffer=SimBuffer(64 * MB, numa_node=0),
            kernel=memset_nt(),
            elements_per_thread=8 * MiB,
        )
        assert req.done
        assert req.observed_gbps() < 12.3 * 0.9  # clearly throttled

    def test_overlap_cross_placement_still_throttles_comm(self, henri):
        """Different NUMA node does NOT shield communications: the NIC
        shares the socket mesh with the cores' issue pressure (the
        behaviour behind equation 6's local-model-everywhere rule)."""
        world = SimMPI(henri)
        _, req = world.overlap(
            n_threads=16,
            comp_node=0,
            comm_buffer=SimBuffer(64 * MB, numa_node=1),
            kernel=memset_nt(),
            elements_per_thread=8 * MiB,
        )
        assert req.observed_gbps() < 0.9 * 12.3

    def test_overlap_few_cores_no_contention(self, henri):
        """Below the mesh sag onset everyone runs at nominal speed."""
        world = SimMPI(henri)
        run, req = world.overlap(
            n_threads=6,
            comp_node=0,
            comm_buffer=SimBuffer(64 * MB, numa_node=1),
            kernel=memset_nt(),
            elements_per_thread=8 * MiB,
        )
        assert req.observed_gbps() == pytest.approx(12.3, rel=0.05)
        assert run.total_bandwidth_gbps() == pytest.approx(6 * 6.8, rel=0.02)
