"""Property-based tests on the placement model (equations 6 and 7)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ContentionModel, PlacementModel
from tests.core.test_model_properties import model_params


@st.composite
def placement_setup(draw):
    local = draw(model_params())
    remote = draw(model_params())
    nodes_per_socket = draw(st.integers(1, 4))
    n_numa = 2 * nodes_per_socket
    model = PlacementModel(
        local,
        remote,
        nodes_per_socket=nodes_per_socket,
        n_numa_nodes=n_numa,
    )
    n = draw(st.integers(0, 40))
    m_comp = draw(st.integers(0, n_numa - 1))
    m_comm = draw(st.integers(0, n_numa - 1))
    return model, local, remote, n, m_comp, m_comm


@settings(max_examples=150, deadline=None)
@given(setup=placement_setup())
def test_eq6_case_coverage(setup):
    """Every placement maps to exactly one of equation 6's three cases,
    and the returned value equals that case's instantiation."""
    model, local, remote, n, m_comp, m_comm = setup
    value = model.comm_parallel(n, m_comp, m_comm)
    if model.is_remote(m_comp) and m_comp == m_comm:
        assert value == ContentionModel(remote).comm_parallel(n)
    elif model.is_remote(m_comm):
        substituted = ContentionModel(
            local.with_comm_nominal(remote.b_comm_seq)
        )
        assert value == substituted.comm_parallel(n)
    else:
        assert value == ContentionModel(local).comm_parallel(n)


@settings(max_examples=150, deadline=None)
@given(setup=placement_setup())
def test_eq7_case_coverage(setup):
    model, local, remote, n, m_comp, m_comm = setup
    value = model.comp_parallel(n, m_comp, m_comm)
    instantiation = ContentionModel(remote if model.is_remote(m_comp) else local)
    if m_comp == m_comm:
        assert value == instantiation.comp_parallel(n)
    else:
        assert value == instantiation.comp_alone(n)


@settings(max_examples=150, deadline=None)
@given(setup=placement_setup())
def test_placement_outputs_bounded(setup):
    """Whatever the placement, predictions stay within physical bounds."""
    model, local, remote, n, m_comp, m_comm = setup
    comm = model.comm_parallel(n, m_comp, m_comm)
    comp = model.comp_parallel(n, m_comp, m_comm)
    max_nominal = max(local.b_comm_seq, remote.b_comm_seq)
    assert -1e-9 <= comm <= max_nominal + 1e-9
    assert comp >= -1e-9
    alone = model.comp_alone(n, m_comp)
    relevant = remote if model.is_remote(m_comp) else local
    assert alone <= relevant.t_seq_max + 1e-9


@settings(max_examples=100, deadline=None)
@given(setup=placement_setup())
def test_node_symmetry_within_socket(setup):
    """Nodes of the same socket are interchangeable for same-node
    placements — the machine symmetry the paper exploits."""
    model, local, remote, n, _, _ = setup
    k = model.nodes_per_socket
    if k >= 2:
        assert model.comm_parallel(n, 0, 0) == model.comm_parallel(n, 1, 1)
        assert model.comp_parallel(n, k, k) == model.comp_parallel(
            n, k + 1, k + 1
        )


@settings(max_examples=100, deadline=None)
@given(setup=placement_setup())
def test_disjoint_comp_independent_of_comm_node(setup):
    """Equation 7: with disjoint nodes, the computation prediction does
    not depend on where the communication data sits."""
    model, local, remote, n, m_comp, _ = setup
    others = [
        m for m in range(2 * model.nodes_per_socket) if m != m_comp
    ]
    values = {model.comp_parallel(n, m_comp, m) for m in others}
    assert len(values) <= 1
