"""Property-based tests on the model equations."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import ContentionModel, ModelParameters
from repro.core.calibration import calibrate
from tests.core.test_calibration import synthetic_curves


@st.composite
def model_params(draw):
    b_comp = draw(st.floats(1.0, 8.0))
    b_comm = draw(st.floats(4.0, 25.0))
    n_par = draw(st.integers(1, 16))
    n_seq = n_par + draw(st.integers(0, 8))
    # Peaks roughly consistent with a real machine: bus >= one core.
    t_par = draw(st.floats(b_comp + b_comm, 150.0))
    t_seq = draw(st.floats(b_comp, t_par))
    # Draw t_par2 on [1, t_par] and derive delta_l so that Eq. 1 is
    # continuous-by-construction at n_seq (no upward jump).
    gap = n_seq - n_par
    t_par2 = 1.0 + draw(st.floats(0.0, 1.0)) * (t_par - 1.0)
    delta_l = (t_par - t_par2) / gap if gap > 0 else 0.0
    if gap == 0:
        t_par2 = t_par
    delta_r = draw(st.floats(0.0, 2.0))
    alpha = draw(st.floats(0.05, 1.0))
    return ModelParameters(
        n_par_max=n_par,
        t_par_max=t_par,
        n_seq_max=n_seq,
        t_seq_max=t_seq,
        t_par_max2=t_par2,
        delta_l=delta_l,
        delta_r=delta_r,
        b_comp_seq=b_comp,
        b_comm_seq=b_comm,
        alpha=alpha,
    )


@settings(max_examples=200, deadline=None)
@given(p=model_params(), n=st.integers(0, 64))
def test_total_bandwidth_non_increasing(p, n):
    model = ContentionModel(p)
    assert model.total_bandwidth(n + 1) <= model.total_bandwidth(n) + 1e-9


@settings(max_examples=200, deadline=None)
@given(p=model_params(), n=st.integers(1, 64))
def test_split_never_exceeds_total(p, n):
    model = ContentionModel(p)
    total = model.comp_parallel(n) + model.comm_parallel(n)
    # Unsaturated: total = demand <= T; saturated: total = T exactly.
    assert total <= model.total_bandwidth(n) + 1e-9


@settings(max_examples=200, deadline=None)
@given(p=model_params(), n=st.integers(0, 64))
def test_comm_within_bounds(p, n):
    model = ContentionModel(p)
    comm = model.comm_parallel(n)
    assert comm >= -1e-9
    assert comm <= p.b_comm_seq + 1e-9
    if n > 0 and model.saturated(n):
        # Guaranteed minimum, up to what the total capacity allows.
        floor = min(p.alpha * p.b_comm_seq, model.total_bandwidth(n))
        assert comm >= floor - 1e-9


@settings(max_examples=200, deadline=None)
@given(p=model_params(), n=st.integers(1, 64))
def test_alpha_factor_within_alpha_and_one(p, n):
    factor = ContentionModel(p).alpha_factor(n)
    assert p.alpha - 1e-9 <= factor <= 1.0 + 1e-9


@settings(max_examples=200, deadline=None)
@given(p=model_params(), n=st.integers(0, 64))
def test_comp_alone_bounds(p, n):
    model = ContentionModel(p)
    alone = model.comp_alone(n)
    assert alone <= n * p.b_comp_seq + 1e-9
    assert alone <= p.t_seq_max + 1e-9
    assert alone <= model.total_bandwidth(n) + 1e-9


@settings(max_examples=200, deadline=None)
@given(p=model_params())
def test_comp_alone_non_decreasing_then_capped(p):
    model = ContentionModel(p)
    values = [model.comp_alone(n) for n in range(0, p.n_seq_max + 1)]
    for a, b in zip(values, values[1:]):
        assert b >= a - max(p.delta_l, p.delta_r) - 1e-9


@st.composite
def identifiable_model_params(draw):
    """Parameter sets whose knees are observable in their own curves.

    Constructed (not filtered) to satisfy the identifiability
    conditions: the computation-alone curve rises up to ``n_seq_max``,
    the bus saturates by ``n_seq_max``, and the total stays above the
    communication floor across the measured grid.
    """
    b_comp = draw(st.floats(1.0, 8.0))
    b_comm = draw(st.floats(4.0, 25.0))
    alpha = draw(st.floats(0.05, 1.0))
    n_seq = draw(st.integers(2, 20))
    max_cores = n_seq + 5
    t_seq = (n_seq - 1 + draw(st.floats(0.2, 1.0))) * b_comp
    # Saturation by n_seq_max, alone-curve still rising at n_seq_max,
    # and the guaranteed communication share observable within the
    # total (alpha * b_comm must fit under T(n_seq_max)).
    lo = max((n_seq - 1) * b_comp, alpha * b_comm) + 0.1
    hi = n_seq * b_comp + alpha * b_comm
    t_par2 = lo + draw(st.floats(0.0, 1.0)) * (hi - lo)
    n_par = draw(st.integers(1, n_seq))
    delta_l = draw(st.floats(0.0, 3.0)) if n_seq > n_par else 0.0
    t_par = t_par2 + delta_l * (n_seq - n_par)
    # Keep the total above the communication floor over the whole grid.
    dr_bound = max(0.0, (t_par2 - alpha * b_comm - 0.6) / (max_cores - n_seq))
    delta_r = draw(st.floats(0.0, 1.0)) * min(dr_bound, 2.0)
    return ModelParameters(
        n_par_max=n_par,
        t_par_max=t_par,
        n_seq_max=n_seq,
        t_seq_max=t_seq,
        t_par_max2=t_par2,
        delta_l=delta_l,
        delta_r=delta_r,
        b_comp_seq=b_comp,
        b_comm_seq=b_comm,
        alpha=alpha,
    )


@settings(max_examples=100, deadline=None)
@given(p=identifiable_model_params())
def test_calibration_roundtrip_property(p):
    """Curves generated from an identifiable model re-calibrate to a
    model that reproduces the saturated-regime communication curve."""
    max_cores = p.n_seq_max + 5
    curves = synthetic_curves(p, max_cores=max_cores)
    fitted = calibrate(curves)
    original = ContentionModel(p)
    refit = ContentionModel(fitted)
    assert fitted.b_comm_seq == p.b_comm_seq
    for n in range(p.n_seq_max, p.n_seq_max + 5):
        assert (
            abs(refit.comm_parallel(n) - original.comm_parallel(n))
            < 1e-6 + 0.05 * p.b_comm_seq
        )
