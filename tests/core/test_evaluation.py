"""The vectorized evaluation layer against the scalar oracle.

The contract is bit-for-bit equality: every array the memoized layer
produces must equal what the literal per-``n`` implementation
(:class:`repro.core.oracle.ScalarOracle`) computes, across ordinary,
degenerate, and randomly drawn parameter sets.
"""

import random

import numpy as np
import pytest

from repro.core import ContentionModel, ModelParameters, PlacementModel
from repro.core.evaluation import as_core_counts, evaluator_for, sweep_curves
from repro.core.oracle import ScalarOracle
from repro.errors import BenchmarkError, ModelError, PlacementError


def params(**overrides):
    base = dict(
        n_par_max=8,
        t_par_max=60.0,
        n_seq_max=12,
        t_seq_max=58.0,
        t_par_max2=56.0,
        delta_l=1.0,
        delta_r=0.5,
        b_comp_seq=5.0,
        b_comm_seq=10.0,
        alpha=0.4,
    )
    base.update(overrides)
    return ModelParameters(**base)


#: Edge cases called out by the equations: knees colliding, the
#: interpolation window collapsing, permanent saturation, flat and
#: cliff-like capacity curves.
EDGE_CASES = [
    params(),
    # Degenerate knees: n_par_max == n_seq_max.
    params(n_par_max=12, t_par_max2=60.0, delta_l=0.0),
    # Interpolation window of width one: Eq. 5's condition fails.
    params(n_par_max=11, t_par_max2=59.0),
    # Always saturated: R(1) >= T(1).
    params(
        t_par_max=8.0, t_seq_max=7.0, t_par_max2=7.0, delta_l=0.25, delta_r=0.1
    ),
    # Flat capacity (no contention slopes at all).
    params(delta_l=0.0, delta_r=0.0, t_par_max2=60.0),
    # Cliff after n_seq_max: the zero floor engages.
    params(delta_r=50.0),
    # Communications guaranteed everything (alpha = 1).
    params(alpha=1.0),
]


def random_params(n_sets: int = 150) -> list[ModelParameters]:
    rng = random.Random(20260806)
    out = []
    while len(out) < n_sets:
        n_par = rng.randint(1, 24)
        t_par = rng.uniform(1, 200)
        try:
            out.append(
                ModelParameters(
                    n_par_max=n_par,
                    t_par_max=t_par,
                    n_seq_max=n_par + rng.randint(0, 24),
                    t_seq_max=rng.uniform(0.5, 200),
                    t_par_max2=t_par * rng.uniform(0.3, 1.0),
                    delta_l=rng.uniform(0, 5),
                    delta_r=rng.uniform(0, 5),
                    b_comp_seq=rng.uniform(0.1, 20),
                    b_comm_seq=rng.uniform(0.1, 30),
                    alpha=rng.uniform(1e-3, 1.0),
                )
            )
        except ModelError:
            continue
    return out


def assert_matches_oracle(p: ModelParameters) -> None:
    model = ContentionModel(p)
    oracle = ScalarOracle(p)
    ns = np.arange(0, p.n_seq_max + 9)
    swept = model.sweep(ns)
    reference = oracle.sweep(ns)
    for name in ("total", "comp_par", "comm_par", "comp_alone"):
        assert np.array_equal(swept[name], reference[name]), (name, p)
    # Scalar entry points, including far past the table window.
    for n in (0, 1, p.n_par_max, p.n_seq_max, p.n_seq_max + 5, 10**9):
        assert model.total_bandwidth(n) == oracle.total_bandwidth(n)
        assert model.alpha_factor(n) == oracle.alpha_factor(n)
        assert model.comp_parallel(n) == oracle.comp_parallel(n)
        assert model.comm_parallel(n) == oracle.comm_parallel(n)
        assert model.comp_alone(n) == oracle.comp_alone(n)


class TestBitForBit:
    @pytest.mark.parametrize("p", EDGE_CASES, ids=range(len(EDGE_CASES)))
    def test_edge_cases(self, p):
        assert_matches_oracle(p)

    def test_random_parameter_grid(self):
        for p in random_params():
            assert_matches_oracle(p)

    def test_frontier_matches_oracle(self):
        for p in EDGE_CASES + random_params(40):
            assert evaluator_for(p).last_unsaturated == ScalarOracle(
                p
            )._last_unsaturated()

    def test_sweep_curves_helper(self):
        p = params()
        swept = sweep_curves(p, [1, 5, 11])
        assert swept["comm_par"][2] == ScalarOracle(p).comm_parallel(11)


class TestMemoization:
    def test_frontier_scanned_once(self):
        # Unique values so the module-level memo holds a fresh evaluator.
        p = params(b_comp_seq=5.0078125)
        model = ContentionModel(p)
        for n in (11, 10, 11, 9, 11):
            model.alpha_factor(n)
        assert evaluator_for(p).frontier_scans == 1

    def test_table_built_once_for_repeated_sweeps(self):
        p = params(b_comp_seq=5.015625)
        model = ContentionModel(p)
        ns = np.arange(1, p.n_seq_max + 5)
        for _ in range(4):
            model.sweep(ns)
            model.comp_parallel(3)
        assert evaluator_for(p).table_builds == 1

    def test_evaluator_shared_across_equal_params(self):
        a = params(b_comp_seq=5.0234375)
        b = params(b_comp_seq=5.0234375)
        assert a is not b
        assert evaluator_for(a) is evaluator_for(b)

    def test_distinct_params_get_distinct_evaluators(self):
        assert evaluator_for(params(alpha=0.41)) is not evaluator_for(
            params(alpha=0.42)
        )


class TestIntegerContract:
    """Non-integral core counts are rejected, never truncated."""

    def test_sweep_rejects_fractional_cores(self):
        with pytest.raises(ModelError, match="integral"):
            ContentionModel(params()).sweep([1, 2.7, 3])

    def test_sweep_rejects_nan(self):
        with pytest.raises(ModelError, match="integral"):
            ContentionModel(params()).sweep([1.0, float("nan")])

    def test_sweep_rejects_strings(self):
        with pytest.raises(ModelError, match="dtype"):
            ContentionModel(params()).sweep(["a", "b"])

    def test_sweep_rejects_negative(self):
        with pytest.raises(ModelError, match=">= 0"):
            ContentionModel(params()).sweep([1, -2])

    def test_sweep_accepts_integral_floats(self):
        model = ContentionModel(params())
        swept = model.sweep(np.arange(1.0, 5.0))
        assert np.array_equal(swept["total"], model.sweep([1, 2, 3, 4])["total"])

    def test_predict_rejects_fractional_cores(self):
        model = PlacementModel(
            params(), params(t_par_max=50.0, t_par_max2=48.0),
            nodes_per_socket=1, n_numa_nodes=2,
        )
        with pytest.raises(PlacementError, match="integral"):
            model.predict([1, 2.5], 0, 1)

    def test_as_core_counts_custom_error(self):
        with pytest.raises(BenchmarkError):
            as_core_counts([0.5], error=BenchmarkError)

    def test_as_core_counts_roundtrip(self):
        ns = as_core_counts([3, 1, 2])
        assert ns.dtype == np.int64
        assert list(ns) == [3, 1, 2]


class TestPredictGrid:
    def test_grid_matches_per_placement_predict(self):
        model = PlacementModel(
            params(),
            params(t_par_max=50.0, t_par_max2=48.0, b_comm_seq=7.0),
            nodes_per_socket=2,
            n_numa_nodes=4,
        )
        ns = np.arange(1, 17)
        grid = model.predict_grid(ns)
        assert set(grid) == {(a, b) for a in range(4) for b in range(4)}
        for (m_comp, m_comm), pred in grid.items():
            single = model.predict(ns, m_comp, m_comm)
            assert np.array_equal(pred.comp_parallel, single.comp_parallel)
            assert np.array_equal(pred.comm_parallel, single.comm_parallel)
            assert np.array_equal(pred.comp_alone, single.comp_alone)
            assert pred.comm_alone == single.comm_alone

    def test_grid_matches_scalar_placement_calls(self):
        model = PlacementModel(
            params(),
            params(t_par_max=50.0, t_par_max2=48.0, b_comm_seq=7.0),
            nodes_per_socket=2,
            n_numa_nodes=4,
        )
        ns = np.arange(0, 16)
        for (m_comp, m_comm), pred in model.predict_grid(ns).items():
            for i, n in enumerate(ns):
                n = int(n)
                assert pred.comp_parallel[i] == model.comp_parallel(
                    n, m_comp, m_comm
                )
                assert pred.comm_parallel[i] == model.comm_parallel(
                    n, m_comp, m_comm
                )
                assert pred.comp_alone[i] == model.comp_alone(n, m_comp)

    def test_grid_subset_of_placements(self):
        model = PlacementModel(
            params(),
            params(t_par_max=50.0, t_par_max2=48.0),
            nodes_per_socket=1,
            n_numa_nodes=2,
        )
        grid = model.predict_grid([1, 2, 3], [(0, 0), (1, 1)])
        assert set(grid) == {(0, 0), (1, 1)}
