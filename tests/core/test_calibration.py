"""Calibration: parameter extraction from curves (§IV-A2)."""

import numpy as np
import pytest

from repro.bench import ModeCurves
from repro.bench.runner import measure_curves
from repro.bench.sweep import run_sample_sweeps
from repro.core import ContentionModel, ModelParameters, calibrate
from repro.core.calibration import calibrate_placement_model
from repro.errors import CalibrationError


def synthetic_curves(params: ModelParameters, max_cores: int = 18) -> ModeCurves:
    """Generate exact curves *from* a model instance."""
    model = ContentionModel(params)
    ns = np.arange(1, max_cores + 1)
    curves = model.sweep(ns)
    return ModeCurves(
        core_counts=ns,
        comp_alone=curves["comp_alone"],
        comm_alone=np.full(ns.shape, params.b_comm_seq),
        comp_parallel=curves["comp_par"],
        comm_parallel=curves["comm_par"],
    )


# Internally consistent reference: t_seq_max is actually attained at
# n_seq_max (Eq. 8 caps comp_alone by T(n), so t_seq_max <= t_par_max2).
REFERENCE = ModelParameters(
    n_par_max=8,
    t_par_max=60.0,
    n_seq_max=12,
    t_seq_max=58.0,
    t_par_max2=58.0,
    delta_l=0.5,
    delta_r=0.5,
    b_comp_seq=5.0,
    b_comm_seq=10.0,
    alpha=0.4,
)


class TestRoundTrip:
    """Curves generated from a model re-calibrate to the same parameters."""

    def test_recovers_bandwidth_parameters(self):
        fitted = calibrate(synthetic_curves(REFERENCE))
        assert fitted.b_comp_seq == pytest.approx(REFERENCE.b_comp_seq)
        assert fitted.b_comm_seq == pytest.approx(REFERENCE.b_comm_seq)
        assert fitted.alpha == pytest.approx(REFERENCE.alpha)
        assert fitted.t_seq_max == pytest.approx(REFERENCE.t_seq_max)

    def test_recovers_structure(self):
        """Structural parameters are recovered from the *observable*
        curves.  ``t_par_max`` is only identifiable up to the stacked
        curve's actual maximum (the model's capacity ceiling is not
        observable where demand never fills it), so the assertion
        targets the observable quantity."""
        curves = synthetic_curves(REFERENCE)
        fitted = calibrate(curves)
        assert fitted.n_seq_max == REFERENCE.n_seq_max
        assert fitted.t_par_max == pytest.approx(curves.total_parallel().max())
        assert fitted.t_par_max2 == pytest.approx(
            float(curves.total_parallel()[REFERENCE.n_seq_max - 1])
        )
        assert fitted.delta_r == pytest.approx(REFERENCE.delta_r)

    def test_functional_roundtrip(self):
        """The refit model reproduces the observable curves themselves."""
        curves = synthetic_curves(REFERENCE)
        refit = ContentionModel(calibrate(curves))
        for i, n in enumerate(curves.core_counts):
            n = int(n)
            assert refit.comm_parallel(n) == pytest.approx(
                float(curves.comm_parallel[i]), abs=0.3
            )
            assert refit.comp_parallel(n) == pytest.approx(
                float(curves.comp_parallel[i]), abs=0.6
            )
            assert refit.comp_alone(n) == pytest.approx(
                float(curves.comp_alone[i]), abs=0.6
            )

    def test_recovered_model_predicts_identically_past_peak(self):
        fitted = calibrate(synthetic_curves(REFERENCE))
        original = ContentionModel(REFERENCE)
        refit = ContentionModel(fitted)
        for n in range(REFERENCE.n_seq_max, 19):
            assert refit.comm_parallel(n) == pytest.approx(
                original.comm_parallel(n), rel=1e-6
            )
            assert refit.total_bandwidth(n) == pytest.approx(
                original.total_bandwidth(n), rel=1e-6
            )


class TestRobustness:
    def test_too_few_points_rejected(self):
        curves = synthetic_curves(REFERENCE)
        tiny = ModeCurves(
            core_counts=curves.core_counts[:2],
            comp_alone=curves.comp_alone[:2],
            comm_alone=curves.comm_alone[:2],
            comp_parallel=curves.comp_parallel[:2],
            comm_parallel=curves.comm_parallel[:2],
        )
        with pytest.raises(CalibrationError, match="at least 3"):
            calibrate(tiny)

    def test_noise_inversion_of_maxima_handled(self):
        """If noise puts the parallel peak after the alone peak, the
        calibrator reconciles instead of emitting invalid parameters."""
        curves = synthetic_curves(REFERENCE)
        comp_alone = curves.comp_alone.copy()
        comp_alone[5] = comp_alone.max() + 5.0  # alone peak at n=6
        shifted = ModeCurves(
            core_counts=curves.core_counts,
            comp_alone=comp_alone,
            comm_alone=curves.comm_alone,
            comp_parallel=curves.comp_parallel,
            comm_parallel=curves.comm_parallel,
        )
        fitted = calibrate(shifted)  # must not raise
        assert fitted.n_par_max <= fitted.n_seq_max

    def test_alpha_clipped_to_one(self):
        curves = synthetic_curves(REFERENCE)
        inflated = ModeCurves(
            core_counts=curves.core_counts,
            comp_alone=curves.comp_alone,
            comm_alone=curves.comm_alone * 0.5,  # comm_par / comm_alone > 1
            comp_parallel=curves.comp_parallel,
            comm_parallel=curves.comm_parallel,
        )
        assert calibrate(inflated).alpha <= 1.0

    def test_no_contention_curve(self, diablo):
        """diablo-style: contention barely occurs; calibration still works."""
        curves = measure_curves(
            diablo.machine,
            diablo.profile,
            m_comp=0,
            m_comm=0,
            config=None,
        )
        fitted = calibrate(curves)
        assert fitted.alpha > 0.8  # nearly unimpacted communications


class TestPlacementCalibration:
    def test_needs_sample_placements(self, henri, noiseless_config):
        dataset = run_sample_sweeps(henri, config=noiseless_config)
        model = calibrate_placement_model(dataset, henri)
        assert model.local.b_comp_seq > model.remote.b_comp_seq

    def test_missing_sample_raises(self, henri, noiseless_config):
        from repro.bench.results import PlacementSweep, PlatformDataset

        dataset = run_sample_sweeps(henri, config=noiseless_config)
        only_local = PlatformDataset(
            platform_name=dataset.platform_name,
            sweep=PlacementSweep(curves={(0, 0): dataset.sweep[(0, 0)]}),
        )
        with pytest.raises(CalibrationError, match="sample"):
            calibrate_placement_model(only_local, henri)
