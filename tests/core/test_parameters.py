"""ModelParameters validation and serialisation."""

import pytest

from repro.core import ModelParameters
from repro.errors import ModelError


def params(**overrides):
    base = dict(
        n_par_max=11,
        t_par_max=90.0,
        n_seq_max=13,
        t_seq_max=87.0,
        t_par_max2=88.0,
        delta_l=1.0,
        delta_r=0.45,
        b_comp_seq=6.8,
        b_comm_seq=12.3,
        alpha=0.42,
    )
    base.update(overrides)
    return ModelParameters(**base)


class TestValidation:
    def test_valid(self):
        params()

    def test_n_par_must_be_positive(self):
        with pytest.raises(ModelError):
            params(n_par_max=0)

    def test_n_seq_ge_n_par(self):
        with pytest.raises(ModelError, match="n_seq_max"):
            params(n_par_max=14, n_seq_max=13)

    def test_equal_maxima_allowed(self):
        params(n_par_max=13, n_seq_max=13)

    @pytest.mark.parametrize(
        "field", ["t_par_max", "t_seq_max", "t_par_max2", "b_comp_seq", "b_comm_seq"]
    )
    def test_bandwidths_positive(self, field):
        with pytest.raises(ModelError):
            params(**{field: 0.0})

    def test_negative_slopes_rejected(self):
        with pytest.raises(ModelError, match="slopes"):
            params(delta_l=-0.1)

    @pytest.mark.parametrize("alpha", [0.0, 1.1, -0.5])
    def test_alpha_range(self, alpha):
        with pytest.raises(ModelError, match="alpha"):
            params(alpha=alpha)

    def test_alpha_one_allowed(self):
        """occigen: communications never impacted."""
        params(alpha=1.0)

    def test_t_par_max2_cannot_exceed_peak(self):
        with pytest.raises(ModelError, match="t_par_max2"):
            params(t_par_max2=95.0)


class TestSerialisation:
    def test_dict_roundtrip(self):
        p = params()
        assert ModelParameters.from_dict(p.to_dict()) == p

    def test_json_roundtrip(self):
        p = params()
        assert ModelParameters.from_json(p.to_json()) == p

    def test_unknown_field_rejected(self):
        data = params().to_dict()
        data["bogus"] = 1
        with pytest.raises(ModelError, match="unknown"):
            ModelParameters.from_dict(data)

    def test_missing_field_rejected(self):
        data = params().to_dict()
        del data["alpha"]
        with pytest.raises(ModelError, match="missing"):
            ModelParameters.from_dict(data)

    def test_invalid_json_rejected(self):
        with pytest.raises(ModelError, match="JSON"):
            ModelParameters.from_json("{not json")


class TestHelpers:
    def test_with_comm_nominal(self):
        p = params()
        q = p.with_comm_nominal(22.4)
        assert q.b_comm_seq == 22.4
        assert p.b_comm_seq == 12.3
        assert q.alpha == p.alpha

    def test_summary_mentions_key_values(self):
        text = params().summary()
        assert "alpha=0.42" in text
        assert "Npar=11" in text
