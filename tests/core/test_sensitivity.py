"""Parameter sensitivity analysis tests."""

import numpy as np
import pytest

from repro.core import ModelParameters, parameter_sensitivity
from repro.errors import ModelError

PARAMS = ModelParameters(
    n_par_max=8,
    t_par_max=60.0,
    n_seq_max=12,
    t_seq_max=58.0,
    t_par_max2=58.0,
    delta_l=0.5,
    delta_r=0.5,
    b_comp_seq=5.0,
    b_comm_seq=10.0,
    alpha=0.4,
)

NS = np.arange(1, 19)


class TestSensitivity:
    def test_all_parameters_reported(self):
        result = parameter_sensitivity(PARAMS, core_counts=NS)
        expected = {
            "t_par_max",
            "t_seq_max",
            "t_par_max2",
            "delta_l",
            "delta_r",
            "b_comp_seq",
            "b_comm_seq",
            "alpha",
            "n_par_max",
            "n_seq_max",
        }
        assert set(result.comm_sensitivity) == expected
        assert set(result.comp_sensitivity) == expected

    def test_sensitivities_non_negative(self):
        result = parameter_sensitivity(PARAMS, core_counts=NS)
        assert all(v >= 0 for v in result.comm_sensitivity.values())
        assert all(v >= 0 for v in result.comp_sensitivity.values())

    def test_comm_hinges_on_alpha_and_nominal(self):
        """The physically expected ranking: the communication curve is
        driven by alpha and B_comm_seq far more than by delta_r."""
        result = parameter_sensitivity(PARAMS, core_counts=NS)
        comm = result.comm_sensitivity
        assert comm["alpha"] > comm["delta_r"]
        assert comm["b_comm_seq"] > comm["delta_r"]

    def test_comp_hinges_on_per_core_bandwidth(self):
        result = parameter_sensitivity(PARAMS, core_counts=NS)
        comp = result.comp_sensitivity
        assert comp["b_comp_seq"] == max(comp.values())

    def test_t_seq_max_never_affects_parallel_curves(self):
        """t_seq_max only enters Eq. 8 (the alone curve)."""
        result = parameter_sensitivity(PARAMS, core_counts=NS)
        assert result.comm_sensitivity["t_seq_max"] == 0.0
        assert result.comp_sensitivity["t_seq_max"] == 0.0

    def test_ranked(self):
        result = parameter_sensitivity(PARAMS, core_counts=NS)
        ranked = result.ranked(curve="comm")
        values = [v for _, v in ranked]
        assert values == sorted(values, reverse=True)
        with pytest.raises(ModelError):
            result.ranked(curve="bogus")

    def test_invalid_inputs(self):
        with pytest.raises(ModelError):
            parameter_sensitivity(PARAMS, core_counts=[])
        with pytest.raises(ModelError):
            parameter_sensitivity(PARAMS, core_counts=NS, relative_step=0.0)

    def test_alpha_one_skips_invalid_direction(self):
        """alpha=1 cannot be perturbed upward; the analysis survives."""
        import dataclasses

        params = dataclasses.replace(PARAMS, alpha=1.0)
        result = parameter_sensitivity(params, core_counts=NS)
        assert result.comm_sensitivity["alpha"] >= 0.0
