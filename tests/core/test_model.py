"""ContentionModel: equations 1–5 and 8, evaluated literally."""

import numpy as np
import pytest

from repro.core import ContentionModel, ModelParameters
from repro.errors import ModelError


def params(**overrides):
    base = dict(
        n_par_max=8,
        t_par_max=60.0,
        n_seq_max=12,
        t_seq_max=58.0,
        t_par_max2=56.0,
        delta_l=1.0,
        delta_r=0.5,
        b_comp_seq=5.0,
        b_comm_seq=10.0,
        alpha=0.4,
    )
    base.update(overrides)
    return ModelParameters(**base)


@pytest.fixture
def model():
    return ContentionModel(params())


class TestEquation1:
    def test_flat_region(self, model):
        for n in (0, 1, 4, 8):
            assert model.total_bandwidth(n) == 60.0

    def test_delta_l_region(self, model):
        assert model.total_bandwidth(9) == pytest.approx(59.0)
        assert model.total_bandwidth(12) == pytest.approx(56.0)

    def test_delta_r_region(self, model):
        assert model.total_bandwidth(13) == pytest.approx(56.0 - 0.5)
        assert model.total_bandwidth(20) == pytest.approx(56.0 - 0.5 * 8)

    def test_continuity_at_n_seq_max(self, model):
        """T_par_max2 is defined to be T at N_seq_max: both branches agree."""
        left = 60.0 - 1.0 * (12 - 8)
        assert model.total_bandwidth(12) == pytest.approx(left)

    def test_negative_n_rejected(self, model):
        with pytest.raises(ModelError):
            model.total_bandwidth(-1)

    def test_non_integer_rejected(self, model):
        with pytest.raises(ModelError):
            model.total_bandwidth(2.5)


class TestEquation2:
    def test_requested(self, model):
        assert model.requested_bandwidth(3) == pytest.approx(3 * 5.0 + 0.4 * 10.0)

    def test_saturation_boundary(self, model):
        # R(n) = 5n + 4; T = 60 for n <= 8: saturated from n = 12? No:
        # R(11) = 59 >= T(11) = 57 -> saturated; R(10) = 54 < T(10) = 58.
        assert not model.saturated(10)
        assert model.saturated(11)


class TestEquations3and4:
    def test_unsaturated_split(self, model):
        # n=4: comp gets its demand, comm fills to nominal.
        assert model.comp_parallel(4) == pytest.approx(20.0)
        assert model.comm_parallel(4) == pytest.approx(10.0)

    def test_unsaturated_comm_clipped_by_leftover(self, model):
        # n=10: T=58, comp demand 50, leftover 8 < Bcomm 10.
        assert model.comp_parallel(10) == pytest.approx(50.0)
        assert model.comm_parallel(10) == pytest.approx(8.0)

    def test_saturated_comm_at_interpolated_alpha(self, model):
        # n=11 saturated; i = 10 (last with R < T).
        # ratio_10 = comm(10)/Bcomm = 0.8; interpolate to alpha at n=12.
        expected_ratio = 0.8 - (0.8 - 0.4) / (12 - 10) * (11 - 10)
        assert model.comm_parallel(11) == pytest.approx(expected_ratio * 10.0)

    def test_saturated_comp_gets_rest(self, model):
        n = 11
        assert model.comp_parallel(n) == pytest.approx(
            model.total_bandwidth(n) - model.comm_parallel(n)
        )

    def test_beyond_n_seq_comm_at_alpha(self, model):
        for n in (12, 15, 20):
            assert model.comm_parallel(n) == pytest.approx(0.4 * 10.0)

    def test_zero_cores(self, model):
        assert model.comp_parallel(0) == 0.0
        assert model.comm_parallel(0) == 10.0

    def test_split_sums_to_total_when_saturated(self, model):
        for n in (11, 12, 14, 18):
            assert model.comp_parallel(n) + model.comm_parallel(n) == pytest.approx(
                model.total_bandwidth(n)
            )


class TestEquation5:
    def test_alpha_factor_is_alpha_at_and_past_n_seq(self, model):
        assert model.alpha_factor(12) == 0.4
        assert model.alpha_factor(15) == 0.4

    def test_alpha_factor_interpolates(self, model):
        assert 0.4 < model.alpha_factor(11) < 1.0

    def test_narrow_gap_skips_interpolation(self):
        # n_seq - n_par = 1: the paper's condition fails -> plain alpha.
        m = ContentionModel(params(n_par_max=11, t_par_max2=59.0))
        assert m.alpha_factor(11) == 0.4

    def test_always_saturated_falls_back_to_alpha(self):
        # Tiny bus: R(n) >= T(n) from n = 1.
        m = ContentionModel(
            params(
                t_par_max=8.0,
                t_seq_max=7.0,
                t_par_max2=7.0,
                delta_l=0.25,
                delta_r=0.1,
            )
        )
        assert m.saturated(1)
        # i = 0 -> ratio 1.0 at 0 cores, interpolated toward alpha.
        assert 0.4 <= m.alpha_factor(9) <= 1.0


class TestEquation8:
    def test_perfect_scaling_region(self, model):
        assert model.comp_alone(3) == pytest.approx(15.0)

    def test_capped_by_t_seq_max(self, model):
        assert model.comp_alone(12) == pytest.approx(56.0)  # min(60, T(12)=56, 58)

    def test_capped_by_total_curve(self, model):
        assert model.comp_alone(14) == pytest.approx(model.total_bandwidth(14))

    def test_zero_cores(self, model):
        assert model.comp_alone(0) == 0.0

    def test_comm_alone_is_parameter(self, model):
        assert model.comm_alone() == 10.0


class TestSweep:
    def test_sweep_shapes(self, model):
        curves = model.sweep(np.arange(1, 16))
        assert set(curves) == {"total", "comp_par", "comm_par", "comp_alone"}
        assert all(len(v) == 15 for v in curves.values())

    def test_sweep_matches_pointwise(self, model):
        curves = model.sweep([5, 11])
        assert curves["comm_par"][0] == model.comm_parallel(5)
        assert curves["comp_par"][1] == model.comp_parallel(11)

    def test_empty_sweep_rejected(self, model):
        with pytest.raises(ModelError):
            model.sweep([])
