"""PlacementModel: equations 6 and 7, every selection case."""

import numpy as np
import pytest

from repro.core import ContentionModel, ModelParameters, PlacementModel
from repro.core.placement import PointPrediction
from repro.errors import PlacementError

LOCAL = ModelParameters(
    n_par_max=8,
    t_par_max=60.0,
    n_seq_max=12,
    t_seq_max=58.0,
    t_par_max2=56.0,
    delta_l=1.0,
    delta_r=0.5,
    b_comp_seq=5.0,
    b_comm_seq=10.0,
    alpha=0.4,
)

REMOTE = ModelParameters(
    n_par_max=6,
    t_par_max=30.0,
    n_seq_max=10,
    t_seq_max=28.0,
    t_par_max2=27.0,
    delta_l=0.75,
    delta_r=0.3,
    b_comp_seq=2.5,
    b_comm_seq=9.0,  # locality-sensitive NIC: remote nominal differs
    alpha=0.4,
)


@pytest.fixture
def model():
    return PlacementModel(LOCAL, REMOTE, nodes_per_socket=2, n_numa_nodes=4)


class TestConstruction:
    def test_requires_two_sockets(self):
        with pytest.raises(PlacementError, match="two sockets"):
            PlacementModel(LOCAL, REMOTE, nodes_per_socket=2, n_numa_nodes=2)

    def test_node_bounds_checked(self, model):
        with pytest.raises(PlacementError, match="out of range"):
            model.comm_parallel(2, 0, 5)
        with pytest.raises(PlacementError):
            model.comp_parallel(2, -1, 0)

    def test_is_remote(self, model):
        assert not model.is_remote(0)
        assert not model.is_remote(1)
        assert model.is_remote(2)
        assert model.is_remote(3)


class TestEquation6:
    def test_case1_remote_same_node(self, model):
        """m_comp >= #m and m_comp == m_comm -> remote model."""
        expected = ContentionModel(REMOTE).comm_parallel(7)
        assert model.comm_parallel(7, 2, 2) == expected
        assert model.comm_parallel(7, 3, 3) == expected

    def test_case2_comm_remote_substitutes_nominal(self, model):
        """m_comm >= #m otherwise -> local model with remote B_comm_seq."""
        substituted = ContentionModel(
            LOCAL.with_comm_nominal(REMOTE.b_comm_seq)
        ).comm_parallel(7)
        assert model.comm_parallel(7, 0, 2) == substituted
        assert model.comm_parallel(7, 2, 3) == substituted  # different remote nodes

    def test_case3_comm_local(self, model):
        expected = ContentionModel(LOCAL).comm_parallel(7)
        assert model.comm_parallel(7, 0, 0) == expected
        assert model.comm_parallel(7, 2, 1) == expected
        assert model.comm_parallel(7, 0, 1) == expected

    def test_case2_uses_remote_nominal_at_low_core_counts(self, model):
        """With few cores the substituted model returns the remote nominal."""
        assert model.comm_parallel(1, 0, 2) == pytest.approx(REMOTE.b_comm_seq)

    def test_sample_placements_reduce_to_instantiations(self, model):
        local_model = ContentionModel(LOCAL)
        remote_model = ContentionModel(REMOTE)
        for n in (1, 5, 9, 13):
            assert model.comm_parallel(n, 0, 0) == local_model.comm_parallel(n)
            assert model.comm_parallel(n, 2, 2) == remote_model.comm_parallel(n)


class TestEquation7:
    def test_local_shared_node(self, model):
        assert model.comp_parallel(9, 0, 0) == ContentionModel(LOCAL).comp_parallel(9)
        assert model.comp_parallel(9, 1, 1) == ContentionModel(LOCAL).comp_parallel(9)

    def test_local_disjoint_uses_alone(self, model):
        expected = ContentionModel(LOCAL).comp_alone(9)
        assert model.comp_parallel(9, 0, 1) == expected
        assert model.comp_parallel(9, 1, 2) == expected

    def test_remote_shared_node(self, model):
        assert model.comp_parallel(9, 2, 2) == ContentionModel(REMOTE).comp_parallel(9)

    def test_remote_disjoint_uses_remote_alone(self, model):
        expected = ContentionModel(REMOTE).comp_alone(9)
        assert model.comp_parallel(9, 2, 0) == expected
        assert model.comp_parallel(9, 2, 3) == expected

    def test_symmetry_across_equivalent_remote_nodes(self, model):
        """Remote nodes are interchangeable in the model (the paper's
        observed machine symmetry)."""
        for n in (3, 9, 14):
            assert model.comp_parallel(n, 2, 2) == model.comp_parallel(n, 3, 3)
            assert model.comm_parallel(n, 2, 2) == model.comm_parallel(n, 3, 3)


class TestAlonePredictions:
    def test_comp_alone_by_locality(self, model):
        assert model.comp_alone(6, 0) == ContentionModel(LOCAL).comp_alone(6)
        assert model.comp_alone(6, 3) == ContentionModel(REMOTE).comp_alone(6)

    def test_comm_alone_by_locality(self, model):
        assert model.comm_alone(1) == LOCAL.b_comm_seq
        assert model.comm_alone(2) == REMOTE.b_comm_seq


class TestPredictSweep:
    def test_prediction_bundle(self, model):
        ns = np.arange(1, 15)
        pred = model.predict(ns, 0, 0)
        assert pred.m_comp == 0 and pred.m_comm == 0
        assert pred.comp_parallel.shape == ns.shape
        assert pred.total_parallel() == pytest.approx(
            pred.comp_parallel + pred.comm_parallel
        )

    def test_empty_core_counts_rejected(self, model):
        with pytest.raises(PlacementError):
            model.predict([], 0, 0)


class TestPredictGridValidation:
    """predict_grid must reject exactly what the scalar path rejects."""

    def test_non_integral_core_counts_rejected(self, model):
        with pytest.raises(PlacementError, match="integral"):
            model.predict_grid([1.0, 2.5, 3.0])

    def test_non_integral_matches_scalar_predict(self, model):
        with pytest.raises(PlacementError) as grid_err:
            model.predict_grid([2.7], [(0, 0)])
        with pytest.raises(PlacementError) as scalar_err:
            model.predict([2.7], 0, 0)
        assert str(grid_err.value) == str(scalar_err.value)

    def test_out_of_range_node_rejected(self, model):
        with pytest.raises(PlacementError, match="out of range"):
            model.predict_grid([1, 2], [(0, 4)])
        with pytest.raises(PlacementError, match="out of range"):
            model.predict_grid([1, 2], [(-1, 0)])

    def test_non_integer_node_rejected(self, model):
        with pytest.raises(PlacementError, match="integer"):
            model.predict_grid([1, 2], [(0.5, 0)])

    def test_empty_grid_rejected(self, model):
        with pytest.raises(PlacementError, match="non-empty"):
            model.predict_grid([])
        with pytest.raises(PlacementError, match="non-empty"):
            model.predict_grid(np.array([]))

    def test_negative_core_counts_rejected(self, model):
        with pytest.raises(PlacementError, match=">= 0"):
            model.predict_grid([-1, 2])


class TestPredictBatch:
    def test_matches_scalar_queries(self, model):
        queries = [(4, 0, 0), (8, 0, 1), (2, 2, 2), (10, 3, 0), (4, 0, 0)]
        results = model.predict_batch(queries)
        assert [r.n for r in results] == [q[0] for q in queries]
        for (n, mc, mm), point in zip(queries, results):
            assert point.comp_parallel == model.comp_parallel(n, mc, mm)
            assert point.comm_parallel == model.comm_parallel(n, mc, mm)
            assert point.comp_alone == model.comp_alone(n, mc)
            assert point.comm_alone == model.comm_alone(mm)

    def test_empty_batch(self, model):
        assert model.predict_batch([]) == []

    def test_invalid_query_rejected(self, model):
        with pytest.raises(PlacementError, match="out of range"):
            model.predict_batch([(4, 0, 0), (4, 0, 9)])
        with pytest.raises(PlacementError, match="triples"):
            model.predict_batch([(4, 0)])

    def test_per_query_core_count_validation(self, model):
        """Bad n values are rejected up front, naming the offending query."""
        with pytest.raises(PlacementError, match="batch query 1"):
            model.predict_batch([(4, 0, 0), (2.5, 0, 0)])
        with pytest.raises(PlacementError, match="batch query 0"):
            model.predict_batch([(float("nan"), 0, 0)])
        with pytest.raises(PlacementError, match="batch query 2"):
            model.predict_batch([(4, 0, 0), (2, 0, 0), (-1, 0, 0)])
        with pytest.raises(PlacementError, match="batch query 0"):
            model.predict_batch([("4", 0, 0)])

    def test_bool_core_count_rejected(self, model):
        # True is an int in Python; silently meaning "1 core" would be
        # a caller bug answered with a plausible number.
        with pytest.raises(PlacementError, match="batch query 0"):
            model.predict_batch([(True, 0, 0)])

    def test_integral_float_accepted(self, model):
        point = model.predict_batch([(4.0, 0, 0)])[0]
        assert point.n == 4
        assert point.comp_parallel == model.comp_parallel(4, 0, 0)

    def test_every_slot_is_a_prediction(self, model):
        results = model.predict_batch([(4, 0, 0), (8, 1, 2), (2, 3, 3)])
        assert all(isinstance(r, PointPrediction) for r in results)
