"""The compiled prediction kernel: tables vs the scalar oracle, and the
artifact lifecycle (round trip, corruption, version skew, recompile)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import CompiledModel, load_compiled, load_or_compile
from repro.core.compiled import (
    COMPILED_FORMAT_VERSION,
    compiled_key,
    store_compiled,
)
from repro.core.oracle import ScalarOracle
from repro.core.placement import PlacementModel
from repro.errors import ModelError, PlacementError
from repro.pipeline import ArtifactStore
from repro.topology import get_platform

N_MAX = 48


def scalar_reference(model: PlacementModel, n: int, m_comp: int, m_comm: int):
    """Equations 6/7 replayed through the scalar oracle — the original
    implementation every faster layer must match bit for bit."""
    local = ScalarOracle(model.local)
    remote = ScalarOracle(model.remote)
    substituted = ScalarOracle(
        model.local.with_comm_nominal(model.remote.b_comm_seq)
    )
    if model.is_remote(m_comp) and m_comp == m_comm:
        comm_side = remote
    elif model.is_remote(m_comm):
        comm_side = substituted
    else:
        comm_side = local
    comp_side = remote if model.is_remote(m_comp) else local
    comp = (
        comp_side.comp_parallel(n)
        if m_comp == m_comm
        else comp_side.comp_alone(n)
    )
    return (
        comp,
        comm_side.comm_parallel(n),
        comp_side.comp_alone(n),
        comm_side.comm_alone(),
    )


class TestBitIdentity:
    def test_matches_scalar_oracle_on_every_platform(self, all_experiments):
        """Every archived platform x every placement x every n: the
        table answer equals the scalar-oracle replay exactly."""
        for name, experiment in all_experiments.items():
            model = experiment.model
            compiled = CompiledModel.compile(model, n_max=N_MAX)
            k = model.n_numa_nodes
            queries = [
                (n, mc, mm)
                for n in range(N_MAX + 1)
                for mc in range(k)
                for mm in range(k)
            ]
            points = compiled.predict_batch(queries)
            for (n, mc, mm), point in zip(queries, points):
                comp, comm, alone, comm_alone = scalar_reference(
                    model, n, mc, mm
                )
                assert point.comp_parallel == comp, (name, n, mc, mm)
                assert point.comm_parallel == comm, (name, n, mc, mm)
                assert point.comp_alone == alone, (name, n, mc, mm)
                assert point.comm_alone == comm_alone, (name, n, mc, mm)

    def test_columns_match_batch(self, all_experiments):
        model = all_experiments["occigen"].model
        compiled = CompiledModel.compile(model, n_max=N_MAX)
        k = model.n_numa_nodes
        queries = [(n, n % k, (n + 1) % k) for n in range(N_MAX + 1)]
        points = compiled.predict_batch(queries)
        columns = compiled.predict_columns(queries)
        assert columns["comp_parallel"].tolist() == [
            p.comp_parallel for p in points
        ]
        assert columns["comm_parallel"].tolist() == [
            p.comm_parallel for p in points
        ]
        assert columns["comm_alone"].tolist() == [p.comm_alone for p in points]
        assert columns["n"].tolist() == [p.n for p in points]

    def test_grid_matches_live_model(self, all_experiments):
        model = all_experiments["henri"].model
        compiled = CompiledModel.compile(model, n_max=N_MAX)
        ns = np.arange(1, N_MAX + 1)
        live = model.predict_grid(ns)
        tabulated = compiled.predict_grid(ns)
        assert set(live) == set(tabulated)
        for key in live:
            assert np.array_equal(
                live[key].comp_parallel, tabulated[key].comp_parallel
            )
            assert np.array_equal(
                live[key].comm_parallel, tabulated[key].comm_parallel
            )
            assert np.array_equal(
                live[key].comp_alone, tabulated[key].comp_alone
            )


class TestFallbackAndValidation:
    @pytest.fixture(scope="class")
    def compiled(self, all_experiments):
        return CompiledModel.compile(
            all_experiments["occigen"].model, n_max=8
        )

    def test_past_n_max_falls_back_to_live_model(self, all_experiments):
        model = all_experiments["occigen"].model
        compiled = CompiledModel.compile(model, n_max=8)
        point = compiled.predict(20, 0, 1)
        assert point == model.predict_batch([(20, 0, 1)])[0]
        columns = compiled.predict_columns([(2, 0, 0), (20, 0, 1)])
        assert columns["comp_parallel"][1] == point.comp_parallel
        grid = compiled.predict_grid(np.arange(1, 21), [(0, 1)])
        assert np.array_equal(
            grid[(0, 1)].comp_parallel,
            model.predict_grid(np.arange(1, 21), [(0, 1)])[(0, 1)]
            .comp_parallel,
        )

    def test_rejects_malformed_batches(self, compiled):
        with pytest.raises(PlacementError):
            compiled.predict_batch([])
        with pytest.raises(PlacementError):
            compiled.predict_batch([(1, 2)])  # not a triple
        with pytest.raises(PlacementError, match="query 1"):
            compiled.predict_batch([(1, 0, 0), (1.5, 0, 0)])
        with pytest.raises(PlacementError, match="query 0"):
            compiled.predict_batch([(-1, 0, 0)])
        with pytest.raises(PlacementError, match="NUMA node"):
            compiled.predict_batch([(1, 0, 99)])

    def test_constructor_rejects_wrong_shapes(self, all_experiments):
        model = all_experiments["occigen"].model
        good = CompiledModel.compile(model, n_max=4)
        payloads = good.to_payloads()
        reloaded = CompiledModel.from_payloads(payloads)
        with pytest.raises(ModelError, match="shape"):
            CompiledModel(
                local=reloaded.local,
                remote=reloaded.remote,
                nodes_per_socket=reloaded.nodes_per_socket,
                n_numa_nodes=reloaded.n_numa_nodes,
                n_max=99,  # does not match the table's last axis
                tables=good.predict_grid([1])[(0, 0)].comp_parallel,
                comm_alone=np.zeros(4),
            )


class TestArtifactRoundTrip:
    def test_payload_round_trip_is_identical(self, all_experiments):
        model = all_experiments["diablo"].model
        compiled = CompiledModel.compile(model, n_max=N_MAX)
        reloaded = CompiledModel.from_payloads(compiled.to_payloads())
        assert reloaded.local == compiled.local
        assert reloaded.remote == compiled.remote
        assert reloaded.n_max == compiled.n_max
        assert reloaded.n_numa_nodes == compiled.n_numa_nodes
        queries = [(n, 0, 1) for n in range(N_MAX + 1)]
        assert reloaded.predict_batch(queries) == compiled.predict_batch(
            queries
        )

    def test_error_average_round_trips_including_nan(self, all_experiments):
        model = all_experiments["occigen"].model
        with_error = CompiledModel.compile(
            model, n_max=4, error_average_pct=3.25
        )
        assert (
            CompiledModel.from_payloads(with_error.to_payloads())
            .error_average_pct
            == 3.25
        )
        without = CompiledModel.compile(model, n_max=4)
        assert np.isnan(
            CompiledModel.from_payloads(without.to_payloads())
            .error_average_pct
        )

    @pytest.mark.parametrize(
        "mutate, defect",
        [
            (lambda p: p.pop("compiled.json"), "must carry"),
            (lambda p: p.update({"compiled.json": "{not json"}), "JSON"),
            (lambda p: p.update({"compiled.json": "[]"}), "JSON object"),
            (
                lambda p: p.update({"tables.npz": p["tables.npz"][:40]}),
                "unreadable",
            ),
            (lambda p: p.update({"tables.npz": b"garbage"}), "unreadable"),
        ],
    )
    def test_defective_payloads_raise_model_error(
        self, all_experiments, mutate, defect
    ):
        compiled = CompiledModel.compile(
            all_experiments["occigen"].model, n_max=4
        )
        payloads = dict(compiled.to_payloads())
        mutate(payloads)
        with pytest.raises(ModelError, match=defect):
            CompiledModel.from_payloads(payloads)

    def test_version_mismatch_raises_model_error(self, all_experiments):
        compiled = CompiledModel.compile(
            all_experiments["occigen"].model, n_max=4
        )
        payloads = dict(compiled.to_payloads())
        manifest = json.loads(payloads["compiled.json"])
        manifest["format_version"] = COMPILED_FORMAT_VERSION + 1
        payloads["compiled.json"] = json.dumps(manifest)
        with pytest.raises(ModelError, match="format version"):
            CompiledModel.from_payloads(payloads)

    def test_curve_order_mismatch_raises_model_error(self, all_experiments):
        compiled = CompiledModel.compile(
            all_experiments["occigen"].model, n_max=4
        )
        payloads = dict(compiled.to_payloads())
        manifest = json.loads(payloads["compiled.json"])
        manifest["curves"] = list(reversed(manifest["curves"]))
        payloads["compiled.json"] = json.dumps(manifest)
        with pytest.raises(ModelError, match="curve order"):
            CompiledModel.from_payloads(payloads)


class TestStoreLifecycle:
    FINGERPRINT = "f" * 16

    def test_store_round_trip(self, tmp_path, all_experiments):
        store = ArtifactStore(tmp_path)
        model = all_experiments["pyxis"].model
        compiled = CompiledModel.compile(model, n_max=N_MAX)
        store_compiled(store, "pyxis", self.FINGERPRINT, compiled)
        loaded = load_compiled(store, "pyxis", self.FINGERPRINT)
        assert loaded is not None
        queries = [(n, 0, 1) for n in range(N_MAX + 1)]
        assert loaded.predict_batch(queries) == compiled.predict_batch(
            queries
        )

    def test_missing_entry_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert load_compiled(store, "pyxis", self.FINGERPRINT) is None

    def test_invalid_artifact_is_logged_and_discarded(
        self, tmp_path, all_experiments, caplog
    ):
        store = ArtifactStore(tmp_path)
        compiled = CompiledModel.compile(
            all_experiments["occigen"].model, n_max=4
        )
        payloads = compiled.to_payloads()
        manifest = json.loads(payloads["compiled.json"])
        manifest["format_version"] = COMPILED_FORMAT_VERSION + 1
        payloads["compiled.json"] = json.dumps(manifest)
        key = compiled_key("occigen", self.FINGERPRINT)
        store.save(key, payloads)
        with caplog.at_level("WARNING", logger="repro.core"):
            assert load_compiled(store, "occigen", self.FINGERPRINT) is None
        assert any(
            "discarding invalid compiled artifact" in r.message
            for r in caplog.records
        )
        # Discarded for real: the store no longer returns the entry.
        assert store.load(key) is None

    def test_load_or_compile_reuses_and_publishes(
        self, tmp_path, all_experiments
    ):
        store = ArtifactStore(tmp_path)
        model = all_experiments["occigen"].model
        first = load_or_compile(
            store, "occigen", self.FINGERPRINT, model, n_max=16
        )
        assert load_compiled(store, "occigen", self.FINGERPRINT) is not None
        second = load_or_compile(
            store, "occigen", self.FINGERPRINT, model, n_max=16
        )
        # Served from the store, not recompiled from the live model.
        assert second.predict(8, 0, 1) == first.predict(8, 0, 1)

    def test_load_or_compile_recompiles_when_table_too_small(
        self, tmp_path, all_experiments
    ):
        store = ArtifactStore(tmp_path)
        model = all_experiments["occigen"].model
        load_or_compile(store, "occigen", self.FINGERPRINT, model, n_max=8)
        bigger = load_or_compile(
            store, "occigen", self.FINGERPRINT, model, n_max=32
        )
        assert bigger.n_max == 32
        # The bigger table replaced the stored one (no lost publish).
        assert (
            load_compiled(store, "occigen", self.FINGERPRINT).n_max == 32
        )

    def test_load_or_compile_without_store(self, all_experiments):
        model = all_experiments["occigen"].model
        compiled = load_or_compile(
            None, "occigen", self.FINGERPRINT, model, n_max=8
        )
        assert compiled.n_max == 8


class TestTopologyCoverage:
    def test_default_n_max_covers_every_archived_platform(self):
        from repro.core.compiled import DEFAULT_N_MAX
        from repro.topology import platform_names

        for name in platform_names():
            platform = get_platform(name)
            assert platform.machine.n_cores <= DEFAULT_N_MAX
