"""Least-squares calibration refinement tests."""

import numpy as np
import pytest

from repro.bench.runner import measure_curves
from repro.bench import SweepConfig
from repro.core import calibrate
from repro.core.fitting import _vector_to_params, fit_quality, refine_parameters
from repro.errors import CalibrationError
from tests.core.test_calibration import REFERENCE, synthetic_curves


class TestFitQuality:
    def test_zero_on_self_generated_curves(self):
        curves = synthetic_curves(REFERENCE)
        assert fit_quality(REFERENCE, curves) < 1e-12

    def test_positive_on_perturbed_parameters(self):
        import dataclasses

        curves = synthetic_curves(REFERENCE)
        worse = dataclasses.replace(REFERENCE, alpha=0.8)
        assert fit_quality(worse, curves) > 0.01


class TestVectorDecoding:
    """Regression: only *model* rejections may be swallowed as None."""

    def test_valid_vector_decodes(self):
        x = np.array([4.0, 6.0, 3.5, 0.1, 0.2, 1.0, 1.5, 0.5])
        params = _vector_to_params(x, 4, 8)
        assert params is not None
        assert params.n_par_max == 4

    def test_out_of_range_candidate_returns_none(self):
        # Negative t_par_max: ModelError inside ModelParameters — the
        # optimiser wandered out of range, which is a rejection.
        x = np.array([-1.0, 6.0, 3.5, 0.1, 0.2, 1.0, 1.5, 0.5])
        assert _vector_to_params(x, 4, 8) is None

    def test_genuine_bug_propagates(self):
        # A None element is not a "bad candidate", it is a programming
        # error; the old blanket `except Exception` silently turned it
        # into a rejected candidate.
        x = [None] * 8
        with pytest.raises(TypeError):
            _vector_to_params(x, 4, 8)


class TestRefine:
    def test_never_worse_than_heuristic(self, henri, seeded_config):
        curves = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0, config=seeded_config
        )
        heuristic = calibrate(curves)
        refined = refine_parameters(curves, knee_radius=1, maxiter=150)
        assert fit_quality(refined, curves) <= fit_quality(heuristic, curves) + 1e-12

    def test_heuristic_is_already_close(self, henri, seeded_config):
        """The paper's judgement, quantified: the cheap extraction sits
        within a small margin of the optimised fit."""
        curves = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0, config=seeded_config
        )
        heuristic_q = fit_quality(calibrate(curves), curves)
        refined_q = fit_quality(
            refine_parameters(curves, knee_radius=1, maxiter=150), curves
        )
        # Heuristic within 2 percentage points of mean relative error.
        assert heuristic_q - refined_q < 0.02

    def test_exact_curves_need_no_refinement(self):
        curves = synthetic_curves(REFERENCE)
        refined = refine_parameters(curves, knee_radius=0, maxiter=50)
        assert fit_quality(refined, curves) <= 1e-9

    def test_invalid_radius(self, henri, noiseless_config):
        curves = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=noiseless_config, core_counts=[1, 6, 12, 18],
        )
        with pytest.raises(CalibrationError):
            refine_parameters(curves, knee_radius=-1)

    def test_respects_explicit_initial(self, henri, noiseless_config):
        curves = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=noiseless_config,
        )
        heuristic = calibrate(curves)
        refined = refine_parameters(
            curves, initial=heuristic, knee_radius=0, maxiter=100
        )
        assert refined.n_par_max == heuristic.n_par_max
        assert refined.n_seq_max == heuristic.n_seq_max
