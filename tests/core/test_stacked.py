"""Stacked-bandwidth view (Figure 2) tests."""

import numpy as np
import pytest

from repro.core import ModelParameters, stacked_view
from repro.errors import ModelError

PARAMS = ModelParameters(
    n_par_max=8,
    t_par_max=60.0,
    n_seq_max=12,
    t_seq_max=58.0,
    t_par_max2=58.0,
    delta_l=0.5,
    delta_r=0.5,
    b_comp_seq=5.0,
    b_comm_seq=10.0,
    alpha=0.4,
)


class TestStackedView:
    def test_default_range_shows_delta_r_region(self):
        view = stacked_view(PARAMS)
        assert view.core_counts[-1] > PARAMS.n_seq_max

    def test_annotated_points(self):
        view = stacked_view(PARAMS)
        assert view.points["(1, Bcomp_seq)"] == (1.0, 5.0)
        assert view.points["(Npar_max, Tpar_max)"] == (8.0, 60.0)
        assert view.points["(Nseq_max, Tseq_max)"] == (12.0, 58.0)
        assert view.points["(Nseq_max, Tpar_max2)"] == (12.0, 58.0)

    def test_stacked_top_is_sum(self):
        view = stacked_view(PARAMS)
        assert np.allclose(view.stacked_top(), view.comp_parallel + view.comm_parallel)

    def test_stacked_top_follows_total_when_saturated(self):
        view = stacked_view(PARAMS)
        idx = np.flatnonzero(view.core_counts == PARAMS.n_seq_max)[0]
        assert view.stacked_top()[idx] == pytest.approx(PARAMS.t_par_max2)
        tail = view.core_counts > PARAMS.n_seq_max
        assert np.all(np.diff(view.stacked_top()[tail]) < 0)

    def test_comp_alone_peaks_at_t_seq_max(self):
        view = stacked_view(PARAMS)
        assert view.comp_alone.max() == pytest.approx(PARAMS.t_seq_max)

    def test_max_cores_validation(self):
        with pytest.raises(ModelError, match="inflexion"):
            stacked_view(PARAMS, max_cores=5)

    def test_explicit_max_cores(self):
        view = stacked_view(PARAMS, max_cores=20)
        assert view.core_counts[-1] == 20
