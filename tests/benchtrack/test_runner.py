"""The trajectory runner (span lifting) and the `repro bench` gate flow."""

import json

import pytest

from repro.benchtrack import AREAS, AreaSpec, bench_dir, run_area
from repro.cli import main
from repro.errors import BenchTrackError

FAKE_BENCH = '''\
from repro.obs import counter, span


def collect(recorder):
    with span("demo.work"):
        counter("demo.count")
        counter("demo.count")
    recorder.metric("answer", 42.0, unit="x", direction="higher", band=0.0)
    recorder.context(note="fake workload")
'''


@pytest.fixture
def fake_area(tmp_path, monkeypatch):
    (tmp_path / "bench_fake.py").write_text(FAKE_BENCH, "utf-8")
    spec = AreaSpec(
        name="fake",
        module="bench_fake",
        title="a tiny deterministic workload",
        span_names=("demo.work", "demo.never_ran"),
        counter_names=("demo.count",),
        span_band=1.0,
    )
    monkeypatch.setitem(AREAS, "fake", spec)
    return tmp_path


class TestRunner:
    def test_unknown_area(self):
        with pytest.raises(BenchTrackError, match="unknown benchmark area"):
            run_area("bogus")

    def test_bench_dir_points_at_the_checkout(self):
        assert (bench_dir() / "bench_pipeline.py").is_file()

    def test_run_area_lifts_spans_and_counters(self, fake_area):
        report = run_area("fake", directory=fake_area)
        assert report.area == "fake"
        metrics = report.metrics
        assert metrics["answer"].value == 42.0
        # The span the workload hit: timed (wide band) + exact call count.
        assert metrics["span.demo.work.total_ms"].value >= 0.0
        assert metrics["span.demo.work.total_ms"].band == 1.0
        assert metrics["span.demo.work.calls"].value == 1.0
        assert metrics["span.demo.work.calls"].band == 0.0
        # A registered span that never ran stays present as null.
        assert metrics["span.demo.never_ran.total_ms"].value is None
        assert metrics["counter.demo.count"].value == 2.0
        assert report.context == {"note": "fake workload"}

    def test_module_without_collect_hook(self, tmp_path, monkeypatch):
        (tmp_path / "bench_bare.py").write_text("x = 1\n", "utf-8")
        monkeypatch.setitem(
            AREAS, "bare", AreaSpec(name="bare", module="bench_bare", title="")
        )
        with pytest.raises(BenchTrackError, match="collect"):
            run_area("bare", directory=tmp_path)


def write_fresh(directory, area="pipeline", value=10.0, band=0.5):
    """A hand-built BENCH_<area>.json standing in for a fresh run."""
    document = {
        "format_version": 1,
        "area": area,
        "metrics": {
            "warm_ms": {
                "value": value, "unit": "ms", "direction": "lower",
                "band": band,
            }
        },
        "context": {},
        "environment": {"host": "test"},
    }
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{area}.json"
    path.write_text(json.dumps(document) + "\n", "utf-8")
    return path


class TestCliGate:
    """`repro bench compare --fresh-dir` exercises the gate end to end
    without re-running the benchmarks."""

    def test_missing_baseline_blesses_first_run(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        baseline_dir.mkdir()
        write_fresh(tmp_path / "fresh")
        code = main([
            "bench", "compare", "pipeline",
            "--baseline-dir", str(baseline_dir),
            "--fresh-dir", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "blessed this run as the first one" in capsys.readouterr().out
        assert (baseline_dir / "BENCH_pipeline.json").is_file()

    def test_within_band_passes(self, tmp_path, capsys):
        write_fresh(tmp_path / "base", value=10.0)
        write_fresh(tmp_path / "fresh", value=13.0)  # x1.3 < x1.5
        code = main([
            "bench", "compare", "pipeline",
            "--baseline-dir", str(tmp_path / "base"),
            "--fresh-dir", str(tmp_path / "fresh"),
        ])
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_beyond_band_fails_naming_the_metric(self, tmp_path, capsys):
        write_fresh(tmp_path / "base", value=10.0)
        write_fresh(tmp_path / "fresh", value=40.0)  # x4 regression
        code = main([
            "bench", "compare", "pipeline",
            "--baseline-dir", str(tmp_path / "base"),
            "--fresh-dir", str(tmp_path / "fresh"),
        ])
        assert code == 14
        captured = capsys.readouterr()
        assert "FAIL warm_ms" in captured.out
        assert "pipeline:warm_ms (regression)" in captured.err

    def test_markdown_flag_renders_a_gfm_table(self, tmp_path, capsys):
        write_fresh(tmp_path / "base", value=10.0)
        write_fresh(tmp_path / "fresh", value=13.0)
        code = main([
            "bench", "compare", "pipeline", "--markdown",
            "--baseline-dir", str(tmp_path / "base"),
            "--fresh-dir", str(tmp_path / "fresh"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "### `BENCH_pipeline` — PASS ✅" in out
        assert "| metric | baseline | fresh | Δ% | band% | status |" in out
        assert "| `warm_ms` |" in out

    def test_markdown_flag_keeps_the_gate_verdict(self, tmp_path, capsys):
        write_fresh(tmp_path / "base", value=10.0)
        write_fresh(tmp_path / "fresh", value=40.0)  # x4 regression
        code = main([
            "bench", "compare", "pipeline", "--markdown",
            "--baseline-dir", str(tmp_path / "base"),
            "--fresh-dir", str(tmp_path / "fresh"),
        ])
        assert code == 14
        captured = capsys.readouterr()
        assert "FAIL ❌" in captured.out
        assert "❌ regression" in captured.out
        assert "pipeline:warm_ms (regression)" in captured.err

    def test_malformed_baseline_is_an_error_not_a_miss(self, tmp_path, capsys):
        base = tmp_path / "base"
        base.mkdir()
        (base / "BENCH_pipeline.json").write_text("{broken", "utf-8")
        write_fresh(tmp_path / "fresh")
        code = main([
            "bench", "compare", "pipeline",
            "--baseline-dir", str(base),
            "--fresh-dir", str(tmp_path / "fresh"),
        ])
        assert code == 14
        assert "malformed benchmark report" in capsys.readouterr().err

    def test_unknown_area_rejected(self, tmp_path, capsys):
        code = main([
            "bench", "compare", "bogus",
            "--baseline-dir", str(tmp_path),
            "--fresh-dir", str(tmp_path),
        ])
        assert code == 14
        assert "unknown benchmark area" in capsys.readouterr().err

    def test_negative_band_rejected(self, tmp_path, capsys):
        code = main([
            "bench", "compare", "pipeline", "--band", "-0.5",
            "--baseline-dir", str(tmp_path),
            "--fresh-dir", str(tmp_path),
        ])
        assert code == 14
        assert "--band" in capsys.readouterr().err
