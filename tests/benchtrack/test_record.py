"""Recorder, timing helpers, and the BENCH_*.json document shape."""

import json
import math

import pytest

from repro.benchtrack import (
    DEFAULT_BAND,
    FORMAT_VERSION,
    BenchRecorder,
    BenchReport,
    best_of,
    capture_environment,
    parse_report,
    percentile,
    timed,
)
from repro.errors import BenchTrackError


class TestTimingHelpers:
    def test_timed_returns_elapsed_seconds(self):
        assert timed(lambda: None) >= 0.0

    def test_best_of_counts_calls(self):
        calls = []
        best_of(lambda: calls.append(1), rounds=3, warmup=2)
        assert len(calls) == 5  # 2 warmup + 3 timed

    def test_best_of_rejects_bad_rounds(self):
        with pytest.raises(BenchTrackError, match="rounds"):
            best_of(lambda: None, rounds=0)
        with pytest.raises(BenchTrackError, match="warmup"):
            best_of(lambda: None, rounds=1, warmup=-1)

    def test_percentile_interpolates(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_percentile_rejects_empty_and_out_of_range(self):
        with pytest.raises(BenchTrackError, match="no samples"):
            percentile([], 50)
        with pytest.raises(BenchTrackError, match=r"\[0, 100\]"):
            percentile([1.0], 101)


class TestBenchRecorder:
    def test_metric_returns_value_and_values_maps(self):
        recorder = BenchRecorder()
        assert (
            recorder.metric("a_ms", 1.5, unit="ms", direction="lower") == 1.5
        )
        recorder.metric("rate", None, unit="ratio", direction="higher")
        assert recorder.values() == {"a_ms": 1.5, "rate": None}

    def test_rejects_bad_names(self):
        recorder = BenchRecorder()
        for bad in ("", "Upper", "has space", "_leading", "-dash"):
            with pytest.raises(BenchTrackError, match="invalid metric name"):
                recorder.metric(bad, 1.0, unit="ms", direction="lower")

    def test_rejects_duplicates(self):
        recorder = BenchRecorder()
        recorder.metric("a", 1.0, unit="ms", direction="lower")
        with pytest.raises(BenchTrackError, match="recorded twice"):
            recorder.metric("a", 2.0, unit="ms", direction="lower")

    def test_rejects_bad_direction_band_value(self):
        recorder = BenchRecorder()
        with pytest.raises(BenchTrackError, match="direction"):
            recorder.metric("a", 1.0, unit="ms", direction="up")
        with pytest.raises(BenchTrackError, match="band"):
            recorder.metric("b", 1.0, unit="ms", direction="lower", band=-0.1)
        with pytest.raises(BenchTrackError, match="finite"):
            recorder.metric("c", math.inf, unit="ms", direction="lower")
        with pytest.raises(BenchTrackError, match="number or None"):
            recorder.metric("d", "fast", unit="ms", direction="lower")

    def test_empty_recorder_cannot_publish(self):
        with pytest.raises(BenchTrackError, match="no metrics"):
            BenchRecorder().as_report("demo")

    def test_report_round_trips_through_parse(self):
        recorder = BenchRecorder()
        recorder.metric("a_ms", 1.25, unit="ms", direction="lower", band=0.5)
        recorder.metric("empty", None, unit="pct", direction="lower")
        recorder.context(grid="4x4", rounds=3)
        report = recorder.as_report("demo")
        parsed = parse_report(report.to_json(), source="round-trip")
        assert parsed.area == "demo"
        assert parsed.metrics["a_ms"].value == 1.25
        assert parsed.metrics["a_ms"].band == 0.5
        assert parsed.metrics["empty"].value is None
        assert parsed.context == {"grid": "4x4", "rounds": 3}

    def test_document_layout_is_schema_stable(self):
        recorder = BenchRecorder()
        recorder.metric("a_ms", 1.0, unit="ms", direction="lower")
        document = json.loads(recorder.as_report("demo").to_json())
        assert sorted(document) == [
            "area", "context", "environment", "format_version", "metrics",
        ]
        assert document["format_version"] == FORMAT_VERSION
        assert sorted(document["metrics"]["a_ms"]) == [
            "band", "direction", "unit", "value",
        ]

    def test_filename(self):
        assert BenchReport.filename("pipeline") == "BENCH_pipeline.json"


class TestEnvironment:
    def test_environment_block_is_never_comparable(self):
        env = capture_environment()
        for field in ("host", "os", "python", "numpy", "timestamp_iso"):
            assert field in env
        # Sanity of the default band constant the comparator falls back to.
        assert 0 < DEFAULT_BAND < 1
