"""The benchmark suite's shared helpers (``benchmarks/_common.py``).

Loaded the same way the trajectory runner loads bench modules: by file
path with ``benchmarks/`` on ``sys.path``.
"""

import sys
from types import SimpleNamespace

import numpy as np
import pytest

from repro.benchtrack import bench_dir


@pytest.fixture(scope="module")
def common():
    path = str(bench_dir())
    sys.path.insert(0, path)
    try:
        import _common
    finally:
        sys.path.remove(path)
    return _common


def fake_result(keys):
    """An ExperimentResult stand-in with identical curves/predictions.

    The sample placements are ``(0, 0)`` and ``(2, 2)``; every curve
    predicts itself perfectly so each group's MAPE is exactly 0.
    """
    curve = SimpleNamespace(
        comm_parallel=np.array([1.0, 2.0]), comp_parallel=np.array([3.0, 4.0])
    )
    return SimpleNamespace(
        platform=SimpleNamespace(
            sample_local_node=lambda: 0, sample_remote_node=lambda: 2
        ),
        dataset=SimpleNamespace(sweep={k: curve for k in keys}),
        predictions={k: curve for k in keys},
    )


class TestErrorsByGroup:
    def test_both_groups_present_and_populated(self, common):
        result = fake_result([(0, 0), (1, 2)])
        for fn in (common.comm_errors_by_group, common.comp_errors_by_group):
            grouped = fn(result)
            assert sorted(grouped) == ["non_samples", "samples"]
            assert grouped["samples"] == 0.0
            assert grouped["non_samples"] == 0.0

    def test_empty_group_reads_as_none_not_a_missing_key(self, common):
        """The regression: an all-samples sweep must still emit both keys."""
        result = fake_result([(0, 0), (2, 2)])  # only the calibration pair
        grouped = common.comm_errors_by_group(result)
        assert sorted(grouped) == ["non_samples", "samples"]
        assert grouped["samples"] == 0.0
        assert grouped["non_samples"] is None  # JSON null, never KeyError

    def test_no_keys_at_all_emits_double_null(self, common):
        grouped = common.comp_errors_by_group(fake_result([]))
        assert grouped == {"samples": None, "non_samples": None}

    def test_timing_helpers_are_the_benchtrack_ones(self, common):
        """One timing discipline: _common re-exports repro.benchtrack."""
        from repro.benchtrack import best_of, percentile, timed

        assert common.best_of is best_of
        assert common.percentile is percentile
        assert common.timed is timed
