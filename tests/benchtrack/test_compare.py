"""The comparator's gate contract, metric verdict by metric verdict."""

import pytest

from repro.benchtrack import (
    BenchReport,
    Metric,
    compare_reports,
    load_report,
    parse_report,
    render_comparison,
    render_comparison_markdown,
    write_report,
)
from repro.errors import BenchTrackError


def report(area="demo", **values):
    """A report whose metrics are (value, direction, band) triples."""
    metrics = {
        name: Metric(
            name=name, value=value, unit="ms", direction=direction, band=band
        )
        for name, (value, direction, band) in values.items()
    }
    return BenchReport(area=area, metrics=metrics)


def diff_of(comparison, name):
    return next(d for d in comparison.diffs if d.name == name)


class TestVerdicts:
    def test_within_band_passes(self):
        comparison = compare_reports(
            report(t=(100.0, "lower", 0.5)),
            report(t=(140.0, "lower", 0.5)),  # x1.4 < x1.5
        )
        assert comparison.passed
        assert diff_of(comparison, "t").status == "ok"

    def test_beyond_band_regression_fails(self):
        comparison = compare_reports(
            report(t=(100.0, "lower", 0.5)),
            report(t=(160.0, "lower", 0.5)),  # x1.6 > x1.5, slower
        )
        assert not comparison.passed
        assert diff_of(comparison, "t").status == "regression"

    def test_beyond_band_improvement_also_fails(self):
        """A stale baseline hides the next regression: re-bless, don't pass."""
        comparison = compare_reports(
            report(t=(160.0, "lower", 0.5)),
            report(t=(100.0, "lower", 0.5)),  # faster, but out of band
        )
        assert not comparison.passed
        assert diff_of(comparison, "t").status == "improvement"

    def test_band_is_multiplicative_both_directions(self):
        """band=1.0 means [base/2, base*2] — NOT 'any shrink passes'."""
        base = report(qps=(100.0, "higher", 1.0))
        ok = compare_reports(base, report(qps=(51.0, "higher", 1.0)))
        assert diff_of(ok, "qps").status == "ok"
        # An additive band of 1.0 could never flag this: rel = -0.6 and
        # |rel| <= 1 always holds for a shrinking positive metric.
        bad = compare_reports(base, report(qps=(40.0, "higher", 1.0)))
        assert diff_of(bad, "qps").status == "regression"

    def test_band_zero_demands_exact_match(self):
        base = report(calls=(7.0, "lower", 0.0))
        assert compare_reports(base, report(calls=(7.0, "lower", 0.0))).passed
        failed = compare_reports(base, report(calls=(8.0, "lower", 0.0)))
        assert diff_of(failed, "calls").status == "regression"

    def test_direction_decides_which_side_is_the_regression(self):
        slower = compare_reports(
            report(qps=(100.0, "higher", 0.25)),
            report(qps=(50.0, "higher", 0.25)),
        )
        assert diff_of(slower, "qps").status == "regression"
        faster = compare_reports(
            report(qps=(50.0, "higher", 0.25)),
            report(qps=(100.0, "higher", 0.25)),
        )
        assert diff_of(faster, "qps").status == "improvement"

    def test_baseline_band_is_the_contract(self):
        """The blessed file's band wins over the fresh run's."""
        comparison = compare_reports(
            report(t=(100.0, "lower", 1.0)),
            report(t=(180.0, "lower", 0.0)),  # fresh says exact; baseline 1.0
        )
        assert diff_of(comparison, "t").status == "ok"

    def test_null_band_defers_to_default(self):
        comparison = compare_reports(
            report(t=(100.0, "lower", None)),
            report(t=(500.0, "lower", None)),
            default_band=0.25,
        )
        assert diff_of(comparison, "t").status == "regression"
        assert diff_of(comparison, "t").band == 0.25

    def test_removed_metric_fails(self):
        comparison = compare_reports(
            report(t=(100.0, "lower", 0.5), gone=(1.0, "lower", 0.5)),
            report(t=(100.0, "lower", 0.5)),
        )
        assert not comparison.passed
        assert diff_of(comparison, "gone").status == "removed"

    def test_added_metric_passes_with_notice(self):
        comparison = compare_reports(
            report(t=(100.0, "lower", 0.5)),
            report(t=(100.0, "lower", 0.5), new=(1.0, "lower", 0.5)),
        )
        assert comparison.passed
        assert diff_of(comparison, "new").status == "added"
        assert "bless" in render_comparison(comparison)

    def test_null_values_are_incomparable_not_failures(self):
        comparison = compare_reports(
            report(a=(None, "lower", 0.5), b=(1.0, "lower", 0.5)),
            report(a=(2.0, "lower", 0.5), b=(None, "lower", 0.5)),
        )
        assert comparison.passed
        assert diff_of(comparison, "a").status == "incomparable"
        assert diff_of(comparison, "b").status == "incomparable"

    def test_area_mismatch_raises(self):
        with pytest.raises(BenchTrackError, match="cannot compare"):
            compare_reports(
                report(area="pipeline", t=(1.0, "lower", 0.5)),
                report(area="service", t=(1.0, "lower", 0.5)),
            )

    def test_render_names_the_failing_metric(self):
        comparison = compare_reports(
            report(warm_ms=(10.0, "lower", 0.5)),
            report(warm_ms=(100.0, "lower", 0.5)),
        )
        text = render_comparison(comparison)
        assert "FAIL warm_ms" in text
        assert "x1.50" in text


class TestMarkdownRenderer:
    def test_passing_table(self):
        comparison = compare_reports(
            report(t=(100.0, "lower", 0.5)),
            report(t=(110.0, "lower", 0.5)),
        )
        text = render_comparison_markdown(comparison)
        assert text.startswith("### `BENCH_demo` — PASS ✅")
        assert "| metric | baseline | fresh | Δ% | band% | status |" in text
        assert "| `t` | 100 | 110 | +10.0 | 50 | ✅ ok |" in text

    def test_failing_table_carries_the_verdict_notes(self):
        comparison = compare_reports(
            report(t=(100.0, "lower", 0.5)),
            report(t=(200.0, "lower", 0.5)),
        )
        text = render_comparison_markdown(comparison)
        assert "FAIL ❌" in text
        assert "❌ regression" in text
        assert "- FAIL t: regressed" in text

    def test_every_status_has_a_badge(self):
        comparison = compare_reports(
            report(
                gone=(1.0, "lower", 0.5),
                stale=(200.0, "lower", 0.5),
                a=(None, "lower", 0.5),
            ),
            report(
                stale=(100.0, "lower", 0.5),
                a=(2.0, "lower", 0.5),
                new=(1.0, "lower", 0.5),
            ),
        )
        text = render_comparison_markdown(comparison)
        assert "❌ removed" in text
        assert "❌ improvement (stale baseline)" in text
        assert "➖ incomparable" in text
        assert "➕ added" in text

    def test_markdown_and_plain_agree_on_the_verdict(self):
        for fresh in (110.0, 200.0):
            comparison = compare_reports(
                report(t=(100.0, "lower", 0.5)),
                report(t=(fresh, "lower", 0.5)),
            )
            plain = render_comparison(comparison)
            markdown = render_comparison_markdown(comparison)
            assert ("PASS" in plain) == ("PASS ✅" in markdown)


class TestMalformedBaselines:
    def test_not_json(self):
        with pytest.raises(BenchTrackError, match="not valid JSON"):
            parse_report("{truncated", source="BENCH_x.json")

    def test_not_an_object(self):
        with pytest.raises(BenchTrackError, match="not a JSON object"):
            parse_report("[1, 2]")

    def test_wrong_format_version_says_rebless(self):
        with pytest.raises(BenchTrackError, match="re-bless"):
            parse_report(
                '{"format_version": 99, "area": "x", '
                '"metrics": {"a": {"value": 1, "unit": "ms", '
                '"direction": "lower", "band": null}}}'
            )

    def test_missing_area(self):
        with pytest.raises(BenchTrackError, match="'area'"):
            parse_report('{"format_version": 1, "metrics": {"a": {}}}')

    def test_empty_metrics(self):
        with pytest.raises(BenchTrackError, match="metrics"):
            parse_report('{"format_version": 1, "area": "x", "metrics": {}}')

    @pytest.mark.parametrize(
        "entry, defect",
        [
            ('{"value": "fast", "unit": "ms", "direction": "lower", '
             '"band": null}', "non-numeric value"),
            ('{"value": 1, "unit": "ms", "direction": "up", "band": null}',
             "direction"),
            ('{"value": 1, "unit": "ms", "direction": "lower", "band": -1}',
             "band"),
            ('{"value": 1, "direction": "lower", "band": null}', "unit"),
        ],
    )
    def test_hand_edited_metric_entries_are_named(self, entry, defect):
        text = (
            '{"format_version": 1, "area": "x", "metrics": {"a": '
            + entry + "}}"
        )
        with pytest.raises(BenchTrackError, match=defect) as excinfo:
            parse_report(text, source="BENCH_x.json")
        assert "BENCH_x.json" in str(excinfo.value)

    def test_unreadable_file_names_the_path(self, tmp_path):
        with pytest.raises(BenchTrackError, match="cannot read"):
            load_report(tmp_path / "BENCH_missing.json")

    def test_write_then_load_round_trips(self, tmp_path):
        original = report(t=(1.0, "lower", 0.5))
        path = write_report(original, tmp_path / "BENCH_demo.json")
        loaded = load_report(path)
        assert loaded.metrics["t"].value == 1.0
        assert loaded.area == "demo"
