"""LLC model tests (§VI future work)."""

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.kernels import copy_kernel, memset_nt
from repro.kernels.cache import (
    COMPULSORY_FLOOR,
    CacheModel,
    dram_traffic_factor,
    llc_bytes_per_thread,
)
from repro.units import MiB


def temporal_copy():
    return dataclasses.replace(copy_kernel(), non_temporal=False)


class TestTrafficFactor:
    def test_non_temporal_always_bypasses(self):
        """§II-C: NT stores go straight to memory, whatever the size."""
        for ws in (MiB, 64 * MiB):
            assert dram_traffic_factor(
                memset_nt(), working_set_bytes=ws, llc_share_bytes=8 * MiB
            ) == 1.0

    def test_resident_working_set_filtered(self):
        factor = dram_traffic_factor(
            temporal_copy(), working_set_bytes=MiB, llc_share_bytes=8 * MiB
        )
        assert factor == COMPULSORY_FLOOR

    def test_oversized_working_set_partially_cached(self):
        factor = dram_traffic_factor(
            temporal_copy(), working_set_bytes=4 * MiB, llc_share_bytes=MiB
        )
        assert factor == pytest.approx(0.75)

    def test_huge_working_set_full_traffic(self):
        factor = dram_traffic_factor(
            temporal_copy(), working_set_bytes=1024 * MiB, llc_share_bytes=MiB
        )
        assert factor > 0.999

    def test_monotone_in_working_set(self):
        factors = [
            dram_traffic_factor(
                temporal_copy(), working_set_bytes=ws, llc_share_bytes=4 * MiB
            )
            for ws in (MiB, 4 * MiB, 16 * MiB, 64 * MiB)
        ]
        assert factors == sorted(factors)

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            dram_traffic_factor(
                temporal_copy(), working_set_bytes=0, llc_share_bytes=1
            )
        with pytest.raises(SimulationError):
            dram_traffic_factor(
                temporal_copy(), working_set_bytes=1, llc_share_bytes=-1
            )


class TestLlcShare:
    def test_henri_share(self, henri):
        full = llc_bytes_per_thread(henri.machine, 1)
        assert full == henri.machine.sockets[0].caches[0].size_bytes
        assert llc_bytes_per_thread(henri.machine, 18) == full // 18

    def test_cacheless_machine_rejected(self):
        from repro.topology import MachineBuilder
        from repro.units import GiB

        machine = (
            MachineBuilder("bare")
            .processor("cpu", cores_per_socket=2, sockets=2)
            .numa(nodes_per_socket=1, memory_bytes=GiB, controller_gbps=10.0)
            .interconnect(gbps=5.0)
            .network("n", line_rate_gbps=5.0, pcie_gbps=6.0)
            .build()
        )
        with pytest.raises(SimulationError, match="no cache"):
            llc_bytes_per_thread(machine, 2)


class TestCacheModelContention:
    def test_cached_kernel_relieves_contention(self, henri):
        """The future-work answer: a temporal kernel whose working set
        fits in the LLC stops pressing the memory system, so the NIC
        keeps its nominal bandwidth even at full socket."""
        from repro.memsim import Scenario, solve_scenario

        n = henri.cores_per_socket
        cache = CacheModel(machine=henri.machine, n_threads=n)
        small_ws = cache.llc_share_bytes // 2
        demand = cache.effective_demand_gbps(
            temporal_copy(),
            working_set_bytes=small_ws,
            stream_gbps=henri.profile.core_stream_local_gbps,
        )
        cached = solve_scenario(
            henri.machine,
            henri.profile,
            Scenario(n, 0, 0, comp_demand_gbps=demand, comp_issue_gbps=demand),
        )
        uncached = solve_scenario(
            henri.machine, henri.profile, Scenario(n, 0, 0)
        )
        assert cached.comm_gbps == pytest.approx(12.3, rel=0.02)
        assert uncached.comm_gbps < 0.6 * 12.3

    def test_large_working_set_behaves_like_nt(self, henri):
        cache = CacheModel(machine=henri.machine, n_threads=8)
        big = 1024 * MiB
        factor = cache.traffic_factor(temporal_copy(), big)
        assert factor > 0.97

    def test_effective_demand_validation(self, henri):
        cache = CacheModel(machine=henri.machine, n_threads=4)
        with pytest.raises(SimulationError):
            cache.effective_demand_gbps(
                temporal_copy(), working_set_bytes=MiB, stream_gbps=0.0
            )
