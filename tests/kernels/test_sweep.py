"""Arithmetic-intensity sweeps and kernel-aware scenarios."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.kernels import intensity_sweep, kernel_scenario, memset_nt
from repro.kernels.memops import Kernel
from repro.memsim import solve_scenario


class TestKernelScenario:
    def test_memset_matches_default_demand(self, henri):
        scenario = kernel_scenario(
            henri, memset_nt(), n_cores=4, m_comp=0, m_comm=0, core_gflops=20.0
        )
        assert scenario.comp_demand_gbps == pytest.approx(6.8)
        assert scenario.comp_issue_gbps == pytest.approx(6.8)

    def test_compute_heavy_kernel_demands_less(self, henri):
        heavy = Kernel(name="h", bytes_read=8, bytes_written=8, flops=800)
        scenario = kernel_scenario(
            henri, heavy, n_cores=4, m_comp=0, m_comm=0, core_gflops=20.0
        )
        # intensity 50 flop/B, 20 GFLOP/s -> 0.4 GB/s per core.
        assert scenario.comp_demand_gbps == pytest.approx(0.4)

    def test_remote_target_uses_remote_stream(self, henri):
        scenario = kernel_scenario(
            henri, memset_nt(), n_cores=4, m_comp=1, m_comm=None, core_gflops=20.0
        )
        assert scenario.comp_demand_gbps == pytest.approx(2.7)
        # Issue pressure still keyed to the local rate.
        assert scenario.comp_issue_gbps == pytest.approx(6.8)

    def test_scenario_overrides_respected_by_solver(self, henri):
        heavy = Kernel(name="h", bytes_read=8, bytes_written=8, flops=1600)
        scenario = kernel_scenario(
            henri, heavy, n_cores=18, m_comp=0, m_comm=0, core_gflops=20.0
        )
        result = solve_scenario(henri.machine, henri.profile, scenario)
        # 18 cores at 0.2 GB/s = 3.6 GB/s: far from saturation, so the
        # NIC keeps its nominal bandwidth.
        assert result.comp_total_gbps == pytest.approx(3.6, rel=1e-6)
        assert result.comm_gbps == pytest.approx(12.3, rel=1e-6)


class TestIntensitySweep:
    def test_contention_shrinks_with_intensity(self, henri):
        points = intensity_sweep(
            henri,
            intensities=[0.0, 0.5, 2.0, 8.0, 32.0],
            n_cores=henri.cores_per_socket,
            core_gflops=20.0,
        )
        retained = [p.comm_retained for p in points]
        # Memory-bound end: communications heavily throttled.
        assert retained[0] < 0.6
        # Compute-bound end: communications at (nearly) full speed.
        assert retained[-1] > 0.95
        # Monotone easing in between.
        assert retained == sorted(retained)

    def test_per_core_demand_declines(self, henri):
        points = intensity_sweep(
            henri,
            intensities=[0.0, 4.0, 64.0],
            n_cores=4,
            core_gflops=10.0,
        )
        demands = [p.per_core_demand_gbps for p in points]
        assert demands[0] > demands[-1]

    def test_comp_retained_improves(self, henri):
        points = intensity_sweep(
            henri,
            intensities=[0.0, 32.0],
            n_cores=henri.cores_per_socket,
            core_gflops=20.0,
        )
        assert points[-1].comp_retained >= points[0].comp_retained - 1e-9

    def test_validation(self, henri):
        with pytest.raises(SimulationError):
            intensity_sweep(henri, intensities=[], n_cores=4)
        with pytest.raises(SimulationError):
            intensity_sweep(henri, intensities=[-1.0], n_cores=4)
        with pytest.raises(SimulationError):
            intensity_sweep(henri, intensities=[1.0], n_cores=4, core_gflops=0.0)


class TestBidirectionalScenario:
    """§VI future work: ping-pongs instead of only pongs."""

    def test_both_directions_flow(self, henri):
        from repro.memsim import Scenario

        result = solve_scenario(
            henri.machine,
            henri.profile,
            Scenario(0, None, 0, bidirectional=True),
        )
        rx = result.allocation.rate("nic")
        tx = result.allocation.rate("nic-tx")
        # Full-duplex ports: without computation both run at nominal
        # until the shared memory path caps them.
        assert rx > 0.7 * 12.3 and tx > 0.7 * 12.3

    def test_bidirectional_contends_more(self, henri):
        from repro.memsim import Scenario

        n = henri.cores_per_socket
        pong = solve_scenario(
            henri.machine, henri.profile, Scenario(n, 0, 0)
        )
        pingpong = solve_scenario(
            henri.machine, henri.profile, Scenario(n, 0, 0, bidirectional=True)
        )
        # The receive direction gets less than in the pong-only run.
        assert pingpong.allocation.rate("nic") <= pong.comm_gbps + 1e-9
        # Aggregate network traffic is higher though.
        total_net = pingpong.allocation.rate("nic") + pingpong.allocation.rate(
            "nic-tx"
        )
        assert total_net > pong.comm_gbps
