"""Kernels: memory decomposition, roofline demand, compute team."""

import pytest

from repro.errors import SimulationError
from repro.kernels import (
    ComputeTeam,
    Kernel,
    copy_kernel,
    demand_gbps,
    get_kernel,
    memset_nt,
    triad_kernel,
)
from repro.memsim import Engine
from repro.units import MiB


class TestKernelDefinitions:
    def test_memset_is_pure_writes(self):
        k = memset_nt()
        assert k.bytes_read == 0
        assert k.bytes_written == 8
        assert k.write_fraction == 1.0
        assert k.arithmetic_intensity == 0.0
        assert k.non_temporal

    def test_copy_reads_and_writes(self):
        k = copy_kernel()
        assert k.bytes_read == k.bytes_written == 8
        assert k.write_fraction == 0.5

    def test_triad_shape(self):
        k = triad_kernel()
        assert k.bytes_per_element == 24
        assert k.flops == 2
        assert k.arithmetic_intensity == pytest.approx(2 / 24)

    def test_traffic_bytes(self):
        assert memset_nt().traffic_bytes(1000) == 8000
        assert copy_kernel().traffic_bytes(1000) == 16000

    def test_duration(self):
        k = memset_nt()
        # 8 GB at 8 GB/s = 1 s.
        assert k.duration_seconds(10**9, 8.0) == pytest.approx(1.0)

    def test_zero_traffic_kernel_rejected(self):
        with pytest.raises(SimulationError, match="memory"):
            Kernel(name="alu", bytes_read=0, bytes_written=0, flops=8)

    def test_lookup(self):
        assert get_kernel("memset_nt").name == "memset_nt"
        with pytest.raises(SimulationError, match="built-ins"):
            get_kernel("nope")


class TestRooflineDemand:
    def test_memory_bound_gets_full_stream(self):
        assert demand_gbps(memset_nt(), core_stream_gbps=6.8) == 6.8

    def test_zero_flops_ignores_flop_rate(self):
        assert demand_gbps(memset_nt(), core_stream_gbps=6.8, core_gflops=50.0) == 6.8

    def test_compute_bound_kernel_demands_less(self):
        heavy = Kernel(name="heavy", bytes_read=8, bytes_written=8, flops=512)
        # intensity 32 flop/B; 16 GFLOP/s -> 0.5 GB/s demand.
        assert demand_gbps(heavy, core_stream_gbps=6.8, core_gflops=16.0) == pytest.approx(0.5)

    def test_roofline_crossover(self):
        triad = triad_kernel()  # intensity 1/12
        # flop-limited bandwidth = 12 * gflops; crossover at gflops ~ 0.57.
        assert demand_gbps(triad, core_stream_gbps=6.8, core_gflops=10.0) == 6.8
        assert demand_gbps(triad, core_stream_gbps=6.8, core_gflops=0.2) == pytest.approx(2.4)

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            demand_gbps(memset_nt(), core_stream_gbps=0.0)
        with pytest.raises(SimulationError):
            demand_gbps(memset_nt(), core_stream_gbps=5.0, core_gflops=-1.0)


class TestComputeTeam:
    def test_thread_binding_compact(self, henri):
        team = ComputeTeam(
            henri.machine, henri.profile, n_threads=4, data_node=0, kernel=memset_nt()
        )
        assert team.thread_cores() == (0, 1, 2, 3)

    def test_too_many_threads_rejected(self, henri):
        with pytest.raises(SimulationError, match="physical core"):
            ComputeTeam(
                henri.machine,
                henri.profile,
                n_threads=19,
                data_node=0,
                kernel=memset_nt(),
            )

    def test_streams_have_local_issue_pressure(self, henri):
        team = ComputeTeam(
            henri.machine, henri.profile, n_threads=2, data_node=1, kernel=memset_nt()
        )
        for stream in team.streams():
            assert stream.demand_gbps == henri.profile.core_stream_remote_gbps
            assert stream.issue_gbps == henri.profile.core_stream_local_gbps

    def test_weak_scaling_run(self, henri):
        engine = Engine(henri.machine, henri.profile)
        team = ComputeTeam(
            henri.machine, henri.profile, n_threads=4, data_node=0, kernel=memset_nt()
        )
        run = team.run(engine, elements_per_thread=4 * MiB)
        engine.run()
        # 4 threads at 6.8 GB/s each, no contention.
        assert run.total_bandwidth_gbps() == pytest.approx(4 * 6.8, rel=1e-6)
        assert run.makespan_seconds == pytest.approx(
            memset_nt().traffic_bytes(4 * MiB) / 6.8e9, rel=1e-6
        )

    def test_copy_kernel_moves_twice_the_bytes(self, henri):
        engine = Engine(henri.machine, henri.profile)
        memset_team = ComputeTeam(
            henri.machine, henri.profile, n_threads=1, data_node=0, kernel=memset_nt()
        )
        run_a = memset_team.run(engine, elements_per_thread=MiB)
        engine.run()
        engine2 = Engine(henri.machine, henri.profile)
        copy_team = ComputeTeam(
            henri.machine, henri.profile, n_threads=1, data_node=0, kernel=copy_kernel()
        )
        run_b = copy_team.run(engine2, elements_per_thread=MiB)
        engine2.run()
        assert run_b.makespan_seconds == pytest.approx(
            2 * run_a.makespan_seconds, rel=1e-6
        )

    def test_unfinished_makespan_rejected(self, henri):
        engine = Engine(henri.machine, henri.profile)
        team = ComputeTeam(
            henri.machine, henri.profile, n_threads=1, data_node=0, kernel=memset_nt()
        )
        run = team.run(engine, elements_per_thread=MiB)
        with pytest.raises(SimulationError, match="unfinished"):
            run.makespan_seconds
