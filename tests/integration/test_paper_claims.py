"""Integration: the paper's quantitative claims hold end-to-end.

These are the claims EXPERIMENTS.md promises (ground truth = the
simulated testbed, predictions = the model calibrated from two sample
placements).  Each test names the paper statement it verifies.
"""

import numpy as np
import pytest


@pytest.fixture(scope="module")
def rows(all_experiments):
    return {name: r.errors for name, r in all_experiments.items()}


class TestHeadlineClaims:
    def test_average_error_below_headline(self, rows):
        """Abstract: 'a prediction error in average lower than 4 %'."""
        overall = np.mean([row.average for row in rows.values()])
        assert overall < 4.0

    def test_every_platform_average_below_8_percent(self, rows):
        for name, row in rows.items():
            assert row.average < 8.0, f"{name}: {row.average:.2f}%"

    def test_computations_better_predicted_than_communications(self, rows):
        """Table II: 'Performances of computations are better
        predicted'."""
        comm = np.mean([row.comm_all for row in rows.values()])
        comp = np.mean([row.comp_all for row in rows.values()])
        assert comp < comm

    def test_samples_beat_non_samples_for_communications(self, rows):
        comm_s = np.mean([row.comm_samples for row in rows.values()])
        comm_ns = np.mean([row.comm_non_samples for row in rows.values()])
        assert comm_s < comm_ns


class TestPlatformOrdering:
    def test_occigen_most_accurate(self, rows):
        """§IV-B d: 'This platform is where our model is the most
        accurate, with the lowest prediction error'."""
        best = min(rows.values(), key=lambda r: r.average)
        assert best.platform_name == "occigen"

    def test_pyxis_worst(self, rows):
        """§IV-B: 'the highest prediction error on all configurations
        is on pyxis'."""
        worst = max(rows.values(), key=lambda r: r.average)
        assert worst.platform_name == "pyxis"

    def test_pyxis_non_sample_comm_double_digit(self, rows):
        """Table II: pyxis communications on non-samples = 13.32 %."""
        assert rows["pyxis"].comm_non_samples >= 10.0

    def test_other_platforms_single_digit_comm(self, rows):
        for name, row in rows.items():
            if name != "pyxis":
                assert row.comm_non_samples < 10.0, name

    def test_diablo_among_most_accurate(self, rows):
        """§IV-B c: accurate despite (because of) minimal contention."""
        ranking = sorted(rows, key=lambda n: rows[n].average)
        assert ranking.index("diablo") <= 2


class TestContentionLocalisation:
    """§IV-C2 lessons: where contention lives."""

    def test_same_node_placements_most_disturbed(self, all_experiments):
        result = all_experiments["henri-subnuma"]
        sweep = result.dataset.sweep

        def comp_loss(key):
            curves = sweep[key]
            return float(np.mean(curves.comp_alone - curves.comp_parallel))

        diagonal = [comp_loss((m, m)) for m in range(4)]
        off_diagonal = [comp_loss(k) for k in sweep if k[0] != k[1]]
        assert min(diagonal) > max(off_diagonal)

    def test_bottleneck_is_controller_not_link(self, all_experiments):
        """Different remote nodes share the link but show no contention."""
        sweep = all_experiments["henri-subnuma"].dataset.sweep
        cross_remote = sweep[(2, 3)]
        # Both curves carry independent measurement noise; the claim is
        # "no contention", i.e. equality up to noise (sigma = 0.5 %).
        assert np.allclose(
            cross_remote.comp_parallel, cross_remote.comp_alone, rtol=0.05
        )

    def test_remote_same_node_worst(self, all_experiments):
        """'performances are the most impacted ... when they use the
        same remote NUMA node'."""
        sweep = all_experiments["henri-subnuma"].dataset.sweep

        def rel_loss(key):
            curves = sweep[key]
            return float(
                np.mean(1 - curves.comp_parallel / np.maximum(curves.comp_alone, 1e-9))
            )

        assert rel_loss((2, 2)) > rel_loss((0, 0))


class TestContentionMechanism:
    """§IV-C2: how the hardware degrades under contention."""

    def test_comm_reduced_first_then_comp(self, all_experiments):
        """'memory bandwidth for network communications is the first
        reduced ... When this minimum bandwidth is reached, bandwidth
        for computations starts to decrease'."""
        curves = all_experiments["henri"].dataset.sweep[(0, 0)]
        n = curves.core_counts

        def first_n(mask: np.ndarray) -> int:
            hits = np.flatnonzero(mask)
            return int(n[hits[0]]) if hits.size else int(n[-1]) + 1

        comm_drop_at = first_n(
            curves.comm_parallel < 0.9 * curves.comm_parallel[0]
        )
        comp_gap = curves.comp_alone - curves.comp_parallel
        comp_drop_at = first_n(comp_gap > 0.02 * curves.comp_alone)
        assert comm_drop_at <= comp_drop_at
        # And the communication reduction genuinely happens.
        assert comm_drop_at <= int(n[-1])

    def test_minimum_comm_bandwidth_assured(self, all_experiments):
        """'a minimum bandwidth is always assured for network'."""
        for name, result in all_experiments.items():
            for key in result.dataset.sweep:
                curves = result.dataset.sweep[key]
                nominal = float(np.median(curves.comm_alone))
                assert np.all(curves.comm_parallel > 0.25 * nominal), (
                    f"{name} {key}: communication starved"
                )
