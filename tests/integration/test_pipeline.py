"""Integration: the full pipeline, persistence, and cross-validation."""

import numpy as np
import pytest

from repro.bench import PlatformDataset, SweepConfig
from repro.bench.runner import measure_curves, measure_curves_engine
from repro.core import calibrate_placement_model
from repro.evaluation import placement_errors
from repro.evaluation.report import generate_experiments_report
from repro.bench.sweep import sample_placements
from repro.units import MB, MiB


class TestPersistenceRoundTrip:
    def test_calibrate_from_archived_csv(self, henri_experiment, tmp_path):
        """Archive the dataset, reload it, recalibrate: same model."""
        path = tmp_path / "henri.csv"
        path.write_text(henri_experiment.dataset.to_csv())
        restored = PlatformDataset.from_csv(path.read_text())
        model = calibrate_placement_model(restored, henri_experiment.platform)
        assert model.local.summary() == henri_experiment.model.local.summary()

    def test_errors_recomputable_from_archive(self, henri_experiment, tmp_path):
        path = tmp_path / "henri.csv"
        path.write_text(henri_experiment.dataset.to_csv())
        restored = PlatformDataset.from_csv(path.read_text())
        model = calibrate_placement_model(restored, henri_experiment.platform)
        errors = placement_errors(
            restored, model, sample_placements(henri_experiment.platform)
        )
        assert errors.average == pytest.approx(
            henri_experiment.errors.average, abs=1e-6
        )

    def test_report_writes_and_mentions_errors(self, all_experiments, tmp_path):
        report = generate_experiments_report(all_experiments)
        target = tmp_path / "EXPERIMENTS.md"
        target.write_text(report)
        text = target.read_text()
        for name in all_experiments:
            assert name in text


class TestEngineCrossValidation:
    """The two measurement methodologies agree: the event-driven engine
    (duration-derived, the paper's method) matches the steady-state
    arbiter within edge-effect tolerance, on multiple platforms."""

    @pytest.mark.parametrize(
        "name,placement",
        [
            ("henri", (0, 0)),
            ("henri", (1, 0)),
            ("occigen", (1, 1)),
            ("diablo", (0, 0)),
        ],
    )
    def test_engine_vs_steady(self, request, name, placement):
        platform = request.getfixturevalue(name)
        ns = [2, platform.cores_per_socket // 2, platform.cores_per_socket]
        steady = measure_curves(
            platform.machine,
            platform.profile,
            m_comp=placement[0],
            m_comm=placement[1],
            config=SweepConfig(noiseless=True),
            core_counts=ns,
        )
        engine = measure_curves_engine(
            platform.machine,
            platform.profile,
            m_comp=placement[0],
            m_comm=placement[1],
            config=SweepConfig(
                noiseless=True, bytes_per_core=128 * MiB, message_bytes=16 * MB
            ),
            core_counts=ns,
        )
        assert np.allclose(engine.comp_alone, steady.comp_alone, rtol=0.03)
        assert np.allclose(engine.comm_alone, steady.comm_alone, rtol=0.03)
        assert np.allclose(engine.comp_parallel, steady.comp_parallel, rtol=0.10)
        assert np.allclose(engine.comm_parallel, steady.comm_parallel, rtol=0.20)


class TestCustomMachinePipeline:
    """The library is not hardwired to the six testbed platforms."""

    def test_user_defined_platform_end_to_end(self):
        from repro.memsim import ContentionProfile
        from repro.topology import MachineBuilder, validate_machine
        from repro.topology.platforms import Platform
        from repro.bench.sweep import run_placement_grid
        from repro.units import GiB

        machine = validate_machine(
            MachineBuilder("custom")
            .processor("Custom CPU", cores_per_socket=10, sockets=2)
            .numa(nodes_per_socket=1, memory_bytes=32 * GiB, controller_gbps=60.0)
            .interconnect(gbps=30.0)
            .network("custom-nic", line_rate_gbps=10.0, pcie_gbps=11.0)
            .build()
        )
        profile = ContentionProfile(
            core_stream_local_gbps=5.5,
            core_stream_remote_gbps=2.2,
        )
        platform = Platform(machine=machine, profile=profile)
        dataset = run_placement_grid(platform, config=SweepConfig(seed=2))
        model = calibrate_placement_model(dataset, platform)
        errors = placement_errors(dataset, model, sample_placements(platform))
        assert errors.average < 8.0
        assert model.local.b_comp_seq == pytest.approx(5.5, rel=0.02)
