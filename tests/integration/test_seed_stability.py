"""The headline claims are not seed-lucky.

The reproduction's Table II numbers depend on seeded measurement noise;
these tests re-run the pipeline under different seeds and check the
paper's orderings hold for each — i.e. the platform tuning encodes
genuine behaviour, not a fortunate draw.
"""

import numpy as np
import pytest

from repro.bench import SweepConfig
from repro.evaluation import run_platform_experiment

SEEDS = (2, 17, 123)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_results(request):
    seed = request.param
    config = SweepConfig(seed=seed)
    return {
        name: run_platform_experiment(name, config=config)
        for name in ("henri", "pyxis", "occigen", "diablo")
    }


class TestStableClaims:
    def test_occigen_stays_most_accurate(self, seeded_results):
        averages = {n: r.errors.average for n, r in seeded_results.items()}
        assert min(averages, key=averages.get) == "occigen"

    def test_pyxis_stays_worst(self, seeded_results):
        averages = {n: r.errors.average for n, r in seeded_results.items()}
        assert max(averages, key=averages.get) == "pyxis"

    def test_pyxis_comm_non_samples_double_digit(self, seeded_results):
        assert seeded_results["pyxis"].errors.comm_non_samples >= 9.0

    def test_henri_in_paper_band(self, seeded_results):
        errors = seeded_results["henri"].errors
        assert errors.average < 4.0
        assert errors.comm_all < 6.0

    def test_diablo_low_error(self, seeded_results):
        assert seeded_results["diablo"].errors.average < 2.0

    def test_comp_beats_comm_overall(self, seeded_results):
        comm = np.mean([r.errors.comm_all for r in seeded_results.values()])
        comp = np.mean([r.errors.comp_all for r in seeded_results.values()])
        assert comp < comm
