"""Unit tests for MachineBuilder."""

import pytest

from repro.errors import TopologyError
from repro.topology import MachineBuilder, validate_machine
from repro.units import GiB


def _base() -> MachineBuilder:
    return (
        MachineBuilder("toy")
        .processor("Toy CPU", cores_per_socket=4, sockets=2)
        .numa(nodes_per_socket=2, memory_bytes=GiB, controller_gbps=40.0)
        .interconnect(gbps=20.0, name="IF")
        .network("toy-ib", line_rate_gbps=10.0, pcie_gbps=11.0)
    )


class TestHappyPath:
    def test_builds_valid_machine(self):
        machine = _base().build()
        validate_machine(machine)
        assert machine.n_cores == 8
        assert machine.n_numa_nodes == 4
        assert machine.links[0].name == "IF"

    def test_nic_defaults_to_first_node_of_its_socket(self):
        machine = (
            _base().network("n", line_rate_gbps=10.0, pcie_gbps=11.0, socket=1).build()
        )
        assert machine.nic.socket == 1
        assert machine.nic.numa == 2  # first node of socket 1

    def test_explicit_nic_numa(self):
        machine = (
            _base()
            .network("n", line_rate_gbps=10.0, pcie_gbps=11.0, socket=1, numa=3)
            .build()
        )
        assert machine.nic.numa == 3

    def test_single_socket_needs_no_link(self):
        machine = (
            MachineBuilder("uni")
            .processor("cpu", cores_per_socket=2, sockets=1)
            .numa(nodes_per_socket=1, memory_bytes=GiB, controller_gbps=10.0)
            .network("n", line_rate_gbps=5.0, pcie_gbps=6.0)
            .build()
        )
        assert machine.links == ()

    def test_metadata_recorded(self):
        machine = _base().meta(processor="X", network="Y").build()
        assert machine.metadata["processor"] == "X"

    def test_caches_attached_to_every_socket(self):
        machine = _base().cache(level=3, size_bytes=1 << 20, shared_by=4).build()
        assert all(len(s.caches) == 1 for s in machine.sockets)


class TestErrors:
    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            MachineBuilder("")

    def test_missing_processor(self):
        builder = MachineBuilder("x").numa(
            nodes_per_socket=1, memory_bytes=GiB, controller_gbps=10.0
        )
        builder.network("n", line_rate_gbps=5.0, pcie_gbps=6.0)
        with pytest.raises(TopologyError, match="processor"):
            builder.build()

    def test_missing_numa(self):
        builder = MachineBuilder("x").processor("cpu", cores_per_socket=2)
        builder.network("n", line_rate_gbps=5.0, pcie_gbps=6.0)
        with pytest.raises(TopologyError, match="numa"):
            builder.build()

    def test_missing_network(self):
        builder = (
            MachineBuilder("x")
            .processor("cpu", cores_per_socket=2)
            .numa(nodes_per_socket=1, memory_bytes=GiB, controller_gbps=10.0)
            .interconnect(gbps=10.0)
        )
        with pytest.raises(TopologyError, match="network"):
            builder.build()

    def test_multi_socket_requires_interconnect(self):
        builder = (
            MachineBuilder("x")
            .processor("cpu", cores_per_socket=2, sockets=2)
            .numa(nodes_per_socket=1, memory_bytes=GiB, controller_gbps=10.0)
            .network("n", line_rate_gbps=5.0, pcie_gbps=6.0)
        )
        with pytest.raises(TopologyError, match="interconnect"):
            builder.build()

    def test_nic_socket_out_of_range(self):
        builder = _base().network("n", line_rate_gbps=5.0, pcie_gbps=6.0, socket=7)
        with pytest.raises(TopologyError, match="out of range"):
            builder.build()

    def test_nic_numa_on_wrong_socket(self):
        builder = _base().network(
            "n", line_rate_gbps=5.0, pcie_gbps=6.0, socket=0, numa=3
        )
        with pytest.raises(TopologyError, match="not on its socket"):
            builder.build()

    def test_zero_cores_rejected(self):
        with pytest.raises(TopologyError):
            MachineBuilder("x").processor("cpu", cores_per_socket=0)
