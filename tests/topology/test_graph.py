"""Graph view tests: cross-validation against the simulator's paths."""

import pytest

from repro.errors import TopologyError
from repro.memsim import StreamKind, stream_path
from repro.topology import get_platform, platform_names
from repro.topology.graph import (
    graph_stream_path,
    memory_system_graph,
    shared_resources,
)


class TestGraphStructure:
    def test_henri_node_kinds(self, henri):
        graph = memory_system_graph(henri.machine)
        kinds = {d["kind"] for _, d in graph.nodes(data=True)}
        assert kinds == {
            "core",
            "nic-agent",
            "mesh",
            "controller",
            "link",
            "nic-port",
            "pcie",
        }

    def test_core_count(self, henri):
        graph = memory_system_graph(henri.machine)
        cores = [n for n, d in graph.nodes(data=True) if d["kind"] == "core"]
        assert len(cores) == 36

    def test_every_controller_reachable_from_every_core(self, henri_subnuma):
        import networkx as nx

        graph = memory_system_graph(henri_subnuma.machine)
        for node in range(4):
            assert nx.has_path(graph, "core-agent:0", f"ctrl:{node}")
            assert nx.has_path(graph, "nic-agent", f"ctrl:{node}")


class TestCrossValidation:
    """The hand-built simulator paths equal the graph-derived ones."""

    @pytest.mark.parametrize("name", list(platform_names()))
    def test_cpu_paths_agree(self, name):
        platform = get_platform(name)
        machine = platform.machine
        for target in range(machine.n_numa_nodes):
            hand = stream_path(
                machine, StreamKind.CPU, origin_socket=0, target_numa=target
            )
            derived = graph_stream_path(
                machine, StreamKind.CPU, origin_socket=0, target_numa=target
            )
            assert hand == derived, f"{name}: node {target}"

    @pytest.mark.parametrize("name", list(platform_names()))
    def test_dma_paths_agree(self, name):
        platform = get_platform(name)
        machine = platform.machine
        for target in range(machine.n_numa_nodes):
            hand = stream_path(
                machine,
                StreamKind.DMA,
                origin_socket=machine.nic.socket,
                target_numa=target,
            )
            derived = graph_stream_path(
                machine,
                StreamKind.DMA,
                origin_socket=machine.nic.socket,
                target_numa=target,
            )
            assert hand == derived, f"{name}: node {target}"

    def test_dma_from_wrong_socket(self, henri):
        with pytest.raises(TopologyError, match="NIC"):
            graph_stream_path(
                henri.machine, StreamKind.DMA, origin_socket=1, target_numa=0
            )


class TestSharedResources:
    def test_mesh_is_the_universal_meeting_point(self, henri):
        """Figure 1 quantified: the socket-0 mesh is reachable by every
        agent of the machine (both sockets' cores can cross the link)."""
        counts = shared_resources(henri.machine)
        n_agents = henri.machine.n_cores + 1
        assert counts["mesh:0"] == n_agents
        assert counts["ctrl:0"] == n_agents

    def test_tx_port_only_reached_by_nic(self, henri):
        counts = shared_resources(henri.machine)
        assert counts["nic-tx:0"] == 1
