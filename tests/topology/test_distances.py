"""NUMA distance matrix tests."""

import numpy as np
import pytest

from repro.topology import distance_matrix, get_platform
from repro.topology.distances import (
    LOCAL_DISTANCE,
    REMOTE_DISTANCE,
    SIBLING_DISTANCE,
)


class TestTwoNodeMachine:
    def test_matrix_shape_and_values(self, henri):
        m = distance_matrix(henri.machine)
        assert m.shape == (2, 2)
        assert m[0, 0] == m[1, 1] == LOCAL_DISTANCE
        assert m[0, 1] == m[1, 0] == REMOTE_DISTANCE

    def test_symmetric(self, henri):
        m = distance_matrix(henri.machine)
        assert np.array_equal(m, m.T)


class TestSubNuma:
    def test_sibling_distance(self, henri_subnuma):
        m = distance_matrix(henri_subnuma.machine)
        assert m.shape == (4, 4)
        # nodes 0,1 on socket 0; 2,3 on socket 1.
        assert m[0, 1] == SIBLING_DISTANCE
        assert m[2, 3] == SIBLING_DISTANCE
        assert m[0, 2] == REMOTE_DISTANCE
        assert np.all(np.diag(m) == LOCAL_DISTANCE)

    def test_block_structure(self, henri_subnuma):
        m = distance_matrix(henri_subnuma.machine)
        local_block = m[:2, :2]
        assert np.all(local_block <= SIBLING_DISTANCE)
        assert np.all(m[:2, 2:] == REMOTE_DISTANCE)


@pytest.mark.parametrize("name", ["henri", "diablo", "occigen"])
def test_distance_ordering(name):
    m = distance_matrix(get_platform(name).machine)
    assert LOCAL_DISTANCE < SIBLING_DISTANCE < REMOTE_DISTANCE
    assert m.min() == LOCAL_DISTANCE
    assert m.max() == REMOTE_DISTANCE
