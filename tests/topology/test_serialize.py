"""Platform serialisation round-trips."""

import pytest

from repro.errors import TopologyError
from repro.topology import (
    get_platform,
    platform_from_dict,
    platform_from_json,
    platform_names,
    platform_to_dict,
    platform_to_json,
)


class TestRoundTrip:
    @pytest.mark.parametrize("name", list(platform_names()))
    def test_all_testbed_platforms_roundtrip(self, name):
        original = get_platform(name)
        restored = platform_from_json(platform_to_json(original))
        assert restored.machine == original.machine
        assert restored.profile == original.profile

    def test_roundtrip_preserves_behaviour(self, henri):
        """Not just structural equality: the restored platform produces
        identical simulation results."""
        from repro.bench.runner import measure_curves
        from repro.bench import SweepConfig

        restored = platform_from_json(platform_to_json(henri))
        config = SweepConfig(noiseless=True)
        a = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0,
            config=config, core_counts=[4, 12, 18],
        )
        b = measure_curves(
            restored.machine, restored.profile, m_comp=0, m_comm=0,
            config=config, core_counts=[4, 12, 18],
        )
        assert a.comp_parallel.tolist() == b.comp_parallel.tolist()
        assert a.comm_parallel.tolist() == b.comm_parallel.tolist()

    def test_nic_locality_keys_restored_as_ints(self, diablo):
        restored = platform_from_json(platform_to_json(diablo))
        assert restored.profile.nic_locality_gbps == {0: 12.1, 1: 22.4}


class TestErrors:
    def test_bad_json(self):
        with pytest.raises(TopologyError, match="JSON"):
            platform_from_json("{nope")

    def test_wrong_version(self, henri):
        data = platform_to_dict(henri)
        data["format_version"] = 99
        with pytest.raises(TopologyError, match="version"):
            platform_from_dict(data)

    def test_missing_section(self, henri):
        data = platform_to_dict(henri)
        del data["profile"]
        with pytest.raises(TopologyError, match="missing"):
            platform_from_dict(data)

    def test_unknown_profile_field(self, henri):
        data = platform_to_dict(henri)
        data["profile"]["bogus_knob"] = 1.0
        with pytest.raises(TopologyError, match="unknown profile"):
            platform_from_dict(data)

    def test_document_is_json_compatible(self, pyxis):
        import json

        text = platform_to_json(pyxis)
        parsed = json.loads(text)
        assert parsed["machine"]["name"] == "pyxis"
        assert parsed["profile"]["nic_cross_penalty"] > 0
