"""Rendering and global validation tests."""

import dataclasses

import pytest

from repro.errors import TopologyError
from repro.topology import get_platform, render_text, validate_machine
from repro.topology.objects import Core, Machine, Nic, Socket


class TestRender:
    def test_render_mentions_all_parts(self, henri):
        text = render_text(henri.machine)
        assert "henri" in text
        assert "Socket #0" in text and "Socket #1" in text
        assert "NUMANode #0" in text
        assert "UPI" in text
        assert "InfiniBand EDR" in text
        assert "<- NIC" in text

    def test_render_marks_nic_node_once(self, henri_subnuma):
        text = render_text(henri_subnuma.machine)
        assert text.count("<- NIC") == 1

    def test_render_is_multiline(self, diablo):
        assert len(render_text(diablo.machine).splitlines()) > 8


class TestValidate:
    def test_all_platforms_pass(self):
        for name in ("henri", "henri-subnuma", "dahu", "diablo", "pyxis", "occigen"):
            validate_machine(get_platform(name).machine)

    def test_returns_machine_for_chaining(self, henri):
        assert validate_machine(henri.machine) is henri.machine

    def test_rejects_noncontiguous_core_indices(self, henri):
        machine = henri.machine
        bad_socket0 = dataclasses.replace(
            machine.sockets[0],
            cores=tuple(
                Core(index=c.index + 1, socket=0) if c.index == 0 else c
                for c in machine.sockets[0].cores
            ),
        )
        bad = Machine(
            name=machine.name,
            sockets=(bad_socket0, machine.sockets[1]),
            links=machine.links,
            nic=machine.nic,
        )
        with pytest.raises(TopologyError, match="contiguous"):
            validate_machine(bad)

    def test_rejects_nic_numa_socket_mismatch(self, henri):
        machine = henri.machine
        bad = Machine(
            name=machine.name,
            sockets=machine.sockets,
            links=machine.links,
            nic=Nic(
                name="bad",
                socket=0,
                numa=1,  # node 1 lives on socket 1
                line_rate_gbps=10.0,
                pcie_gbps=11.0,
            ),
        )
        with pytest.raises(TopologyError, match="NIC"):
            validate_machine(bad)

    def test_rejects_missing_link(self, henri):
        machine = henri.machine
        bad = Machine(
            name=machine.name,
            sockets=machine.sockets,
            links=(),
            nic=machine.nic,
        )
        with pytest.raises(TopologyError, match="no link"):
            validate_machine(bad)
