"""Unit tests for the topology object tree."""

import pytest

from repro.errors import TopologyError
from repro.topology.objects import Cache, Core, Link, Machine, Nic, NumaNode, Socket
from repro.units import GiB


def _socket(index: int, n_cores: int = 2, n_nodes: int = 1) -> Socket:
    cores = tuple(Core(index=index * n_cores + c, socket=index) for c in range(n_cores))
    nodes = tuple(
        NumaNode(
            index=index * n_nodes + m,
            socket=index,
            memory_bytes=GiB,
            controller_gbps=50.0,
        )
        for m in range(n_nodes)
    )
    return Socket(index=index, name="cpu", cores=cores, numa_nodes=nodes)


def _machine(n_nodes: int = 1) -> Machine:
    return Machine(
        name="toy",
        sockets=(_socket(0, n_nodes=n_nodes), _socket(1, n_nodes=n_nodes)),
        links=(Link(socket_a=0, socket_b=1, gbps=20.0),),
        nic=Nic(name="nic", socket=0, numa=0, line_rate_gbps=10.0, pcie_gbps=12.0),
    )


class TestLeafValidation:
    def test_cache_rejects_level_zero(self):
        with pytest.raises(TopologyError):
            Cache(level=0, size_bytes=1024, shared_by=1)

    def test_cache_rejects_empty_sharing(self):
        with pytest.raises(TopologyError):
            Cache(level=3, size_bytes=1024, shared_by=0)

    def test_core_rejects_negative_index(self):
        with pytest.raises(TopologyError):
            Core(index=-1, socket=0)

    def test_numa_rejects_zero_bandwidth(self):
        with pytest.raises(TopologyError):
            NumaNode(index=0, socket=0, memory_bytes=GiB, controller_gbps=0.0)

    def test_numa_rejects_zero_memory(self):
        with pytest.raises(TopologyError):
            NumaNode(index=0, socket=0, memory_bytes=0, controller_gbps=10.0)

    def test_link_rejects_self_loop(self):
        with pytest.raises(TopologyError):
            Link(socket_a=1, socket_b=1, gbps=10.0)

    def test_link_connects(self):
        link = Link(socket_a=0, socket_b=1, gbps=10.0)
        assert link.connects(1, 0)
        assert not link.connects(0, 2)

    def test_nic_rejects_zero_rates(self):
        with pytest.raises(TopologyError):
            Nic(name="n", socket=0, numa=0, line_rate_gbps=0.0, pcie_gbps=1.0)


class TestSocketValidation:
    def test_socket_requires_cores(self):
        with pytest.raises(TopologyError, match="no cores"):
            Socket(index=0, name="x", cores=(), numa_nodes=(_socket(0).numa_nodes))

    def test_socket_rejects_foreign_core(self):
        core = Core(index=0, socket=1)
        node = NumaNode(index=0, socket=0, memory_bytes=GiB, controller_gbps=10.0)
        with pytest.raises(TopologyError, match="claims socket"):
            Socket(index=0, name="x", cores=(core,), numa_nodes=(node,))


class TestMachineQueries:
    def test_counts(self):
        m = _machine(n_nodes=2)
        assert m.n_sockets == 2
        assert m.cores_per_socket == 2
        assert m.nodes_per_socket == 2
        assert m.n_numa_nodes == 4
        assert m.n_cores == 4

    def test_numa_node_lookup(self):
        m = _machine()
        assert m.numa_node(1).socket == 1
        with pytest.raises(TopologyError, match="no NUMA node 7"):
            m.numa_node(7)

    def test_core_lookup(self):
        m = _machine()
        assert m.core(3).socket == 1
        with pytest.raises(TopologyError, match="no core"):
            m.core(99)

    def test_local_and_remote_nodes(self):
        m = _machine(n_nodes=2)
        assert m.local_nodes(0) == (0, 1)
        assert m.remote_nodes(0) == (2, 3)

    def test_is_local_access(self):
        m = _machine()
        assert m.is_local_access(core_index=0, numa_index=0)
        assert not m.is_local_access(core_index=0, numa_index=1)

    def test_link_between(self):
        m = _machine()
        assert m.link_between(1, 0).gbps == 20.0
        with pytest.raises(TopologyError, match="no link"):
            m.link_between(0, 2)

    def test_placements_grid(self):
        m = _machine(n_nodes=2)
        grid = m.placements()
        assert len(grid) == 16
        assert (0, 0) in grid and (3, 2) in grid

    def test_total_memory(self):
        assert _machine(n_nodes=2).total_memory_bytes() == 4 * GiB

    def test_rejects_heterogeneous_node_counts(self):
        with pytest.raises(TopologyError, match="same number of NUMA nodes"):
            Machine(
                name="bad",
                sockets=(_socket(0, n_nodes=1), _socket(1, n_nodes=2)),
                links=(Link(socket_a=0, socket_b=1, gbps=20.0),),
                nic=Nic(
                    name="nic", socket=0, numa=0, line_rate_gbps=10.0, pcie_gbps=12.0
                ),
            )
