"""The six Table I platforms: structure and published characteristics."""

import pytest

from repro.errors import TopologyError
from repro.topology import PLATFORMS, get_platform, platform_names, validate_machine


class TestRegistry:
    def test_six_platforms_in_table_order(self):
        assert platform_names() == (
            "henri",
            "henri-subnuma",
            "dahu",
            "diablo",
            "pyxis",
            "occigen",
        )

    def test_unknown_platform_lists_names(self):
        with pytest.raises(TopologyError, match="henri"):
            get_platform("nonexistent")

    @pytest.mark.parametrize("name", list(PLATFORMS))
    def test_all_platforms_validate(self, name):
        platform = get_platform(name)
        validate_machine(platform.machine)

    @pytest.mark.parametrize("name", list(PLATFORMS))
    def test_factories_return_fresh_instances(self, name):
        assert get_platform(name) is not get_platform(name)


class TestTableICharacteristics:
    """Core counts, NUMA layout and network per the paper's Table I."""

    @pytest.mark.parametrize(
        "name,cores,nodes",
        [
            ("henri", 18, 2),
            ("henri-subnuma", 18, 4),
            ("dahu", 16, 2),
            ("diablo", 32, 2),
            ("pyxis", 32, 2),
            ("occigen", 14, 2),
        ],
    )
    def test_core_and_numa_counts(self, name, cores, nodes):
        platform = get_platform(name)
        assert platform.cores_per_socket == cores
        assert platform.machine.n_numa_nodes == nodes
        assert platform.machine.n_sockets == 2

    def test_dahu_is_omnipath_everyone_else_infiniband(self):
        for name in platform_names():
            network = get_platform(name).machine.metadata["network"]
            if name == "dahu":
                assert network == "OMNI-PATH"
            else:
                assert network == "INFINIBAND"

    def test_henri_variants_share_silicon(self):
        base = get_platform("henri")
        sub = get_platform("henri-subnuma")
        assert base.machine.sockets[0].name == sub.machine.sockets[0].name
        assert base.cores_per_socket == sub.cores_per_socket
        # Same total memory, split over twice the nodes.
        assert base.machine.total_memory_bytes() == sub.machine.total_memory_bytes()
        assert sub.nodes_per_socket == 2 * base.nodes_per_socket

    def test_diablo_nic_on_second_socket(self):
        """Figure 5: the NIC is plugged to the second NUMA node."""
        diablo = get_platform("diablo")
        assert diablo.machine.nic.socket == 1
        assert diablo.machine.nic.numa == 1

    def test_diablo_nic_locality_asymmetry(self):
        """12.1 GB/s to node 0 vs 22.4 GB/s to node 1 (§IV-B c)."""
        profile = get_platform("diablo").profile
        line = get_platform("diablo").machine.nic.line_rate_gbps
        assert profile.nic_nominal_gbps(0, line) == pytest.approx(12.1)
        assert profile.nic_nominal_gbps(1, line) == pytest.approx(22.4)

    def test_occigen_never_throttles_communications(self):
        """§IV-B d: only computations are impacted on occigen."""
        assert get_platform("occigen").profile.nic_min_fraction == 1.0

    def test_pyxis_is_the_noisy_one(self):
        profiles = {name: get_platform(name).profile for name in platform_names()}
        pyxis_sigma = profiles["pyxis"].comm_noise_sigma
        assert all(
            pyxis_sigma >= p.comm_noise_sigma for p in profiles.values()
        )
        assert profiles["pyxis"].nic_cross_penalty > 0.0

    def test_pyxis_has_soft_saturation(self):
        profiles = {name: get_platform(name).profile for name in platform_names()}
        assert profiles["pyxis"].saturation_sharpness == min(
            p.saturation_sharpness for p in profiles.values()
        )


class TestSampleNodes:
    @pytest.mark.parametrize("name", list(PLATFORMS))
    def test_sample_nodes_per_paper(self, name):
        platform = get_platform(name)
        assert platform.sample_local_node() == 0
        # First node of the second socket.
        assert platform.sample_remote_node() == platform.nodes_per_socket
