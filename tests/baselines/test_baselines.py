"""Baseline predictors and their calibration."""

import pytest

from repro.baselines import (
    LangguthModel,
    NaiveModel,
    QueueingModel,
    calibrate_baseline,
)
from repro.baselines.base import BaselineInputs
from repro.bench.runner import measure_curves
from repro.errors import ModelError
from repro.evaluation import mape


@pytest.fixture(scope="module")
def inputs():
    return BaselineInputs(
        bus_capacity_gbps=60.0,
        b_comp_seq=5.0,
        b_comm_seq=10.0,
        t_seq_max=55.0,
    )


class TestInputs:
    def test_positive_required(self):
        with pytest.raises(ModelError):
            BaselineInputs(
                bus_capacity_gbps=0.0, b_comp_seq=5.0, b_comm_seq=10.0, t_seq_max=55.0
            )

    def test_calibrate_from_curves(self, henri, noiseless_config):
        curves = measure_curves(
            henri.machine, henri.profile, m_comp=0, m_comm=0, config=noiseless_config
        )
        inputs = calibrate_baseline(curves)
        assert inputs.b_comp_seq == pytest.approx(6.8)
        assert inputs.b_comm_seq == pytest.approx(12.3)
        assert inputs.bus_capacity_gbps > inputs.t_seq_max > 0


class TestNaive:
    def test_never_predicts_contention(self, inputs):
        model = NaiveModel(inputs)
        assert model.comm_parallel(50) == 10.0
        assert model.comp_parallel(8) == model.comp_alone(8)

    def test_comp_alone_capped(self, inputs):
        assert NaiveModel(inputs).comp_alone(20) == 55.0


class TestQueueing:
    def test_no_contention_below_capacity(self, inputs):
        model = QueueingModel(inputs)
        assert model.comp_parallel(4) == 20.0
        assert model.comm_parallel(4) == 10.0

    def test_proportional_sharing_when_saturated(self, inputs):
        model = QueueingModel(inputs)
        # demand: comp 50, comm 10, total 60 == capacity -> boundary.
        # n=12: comp demand capped at t_seq 55, comm 10, total 65 > 60.
        comp, comm = model.comp_parallel(12), model.comm_parallel(12)
        assert comp + comm == pytest.approx(60.0)
        assert comp / comm == pytest.approx(55.0 / 10.0)

    def test_no_minimum_guarantee(self, inputs):
        """Unlike the paper's model, comm can fall below any alpha floor."""
        squeezed = BaselineInputs(
            bus_capacity_gbps=20.0, b_comp_seq=5.0, b_comm_seq=10.0, t_seq_max=100.0
        )
        model = QueueingModel(squeezed)
        assert model.comm_parallel(20) == pytest.approx(20.0 * 10.0 / 110.0)


class TestLangguth:
    def test_thread_fair_split(self, inputs):
        model = LangguthModel(inputs)
        # 11 compute threads + 1 comm thread over 60: fair slice 5 each;
        # comm wants 10, gets 5 -> comp gets 55.
        assert model.comm_parallel(11) == pytest.approx(5.0)
        assert model.comp_parallel(11) == pytest.approx(55.0)

    def test_unsaturated_full_demand(self, inputs):
        model = LangguthModel(inputs)
        assert model.comm_parallel(2) == 10.0
        assert model.comp_parallel(2) == 10.0


class TestPaperModelBeatsBaselines:
    """The ablation claim: the paper's model predicts communications
    better than every baseline on a contended platform."""

    @pytest.mark.parametrize("baseline_cls", [NaiveModel, QueueingModel, LangguthModel])
    def test_comm_error_ordering(self, henri_experiment, baseline_cls):
        curves = henri_experiment.dataset.sweep[(0, 0)]
        baseline = baseline_cls(calibrate_baseline(curves))
        swept = baseline.sweep(curves.core_counts)
        baseline_err = mape(curves.comm_parallel, swept["comm_par"])
        paper_pred = henri_experiment.predictions[(0, 0)]
        paper_err = mape(curves.comm_parallel, paper_pred.comm_parallel)
        assert paper_err < baseline_err


class TestDegenerateCalibration:
    """A degenerate curve must be reported naming the platform and
    placement it came from, not as a bare BaselineInputs complaint."""

    @staticmethod
    def _curves(comm_alone_gbps: float) -> "ModeCurves":
        import numpy as np

        from repro.bench.results import ModeCurves

        ns = np.array([1, 2, 4])
        return ModeCurves(
            core_counts=ns,
            comp_alone=ns * 6.0,
            comm_alone=np.full(3, comm_alone_gbps),
            comp_parallel=ns * 5.0,
            comm_parallel=np.full(3, 8.0),
        )

    def test_error_names_platform_placement_and_parameter(self):
        with pytest.raises(ModelError) as err:
            calibrate_baseline(
                self._curves(0.0), platform="henri", placement=(0, 1)
            )
        message = str(err.value)
        assert "'henri'" in message
        assert "(0, 1)" in message
        assert "b_comm_seq" in message
        # The offending sweep is described well enough to find it.
        assert "[1, 2, 4]" in message

    def test_error_without_provenance_still_diagnoses(self):
        with pytest.raises(ModelError, match="platform \\?"):
            calibrate_baseline(self._curves(0.0))

    def test_healthy_curves_still_calibrate(self):
        inputs = calibrate_baseline(
            self._curves(9.0), platform="henri", placement=(0, 1)
        )
        assert inputs.b_comm_seq == pytest.approx(9.0)
