"""Unit tests for repro.units."""

import pytest

from repro import units


class TestConstants:
    def test_decimal_sizes(self):
        assert units.KB == 1_000
        assert units.MB == 1_000_000
        assert units.GB == 1_000_000_000

    def test_binary_sizes(self):
        assert units.KiB == 1024
        assert units.MiB == 1024**2
        assert units.GiB == 1024**3

    def test_mb_mib_differ(self):
        # The classic 64 MB message is NOT 64 MiB.
        assert 64 * units.MB != 64 * units.MiB


class TestConversions:
    def test_bytes_to_gb_roundtrip(self):
        assert units.gb_to_bytes(units.bytes_to_gb(123_456_789)) == pytest.approx(
            123_456_789
        )

    def test_gbit_to_gbyte_edr(self):
        # EDR InfiniBand: 100 Gbit/s = 12.5 GB/s.
        assert units.gbit_to_gbyte(100) == pytest.approx(12.5)

    def test_gbps_bytes_per_s(self):
        assert units.gbps_to_bytes_per_s(2.5) == pytest.approx(2.5e9)
        assert units.bytes_per_s_to_gbps(2.5e9) == pytest.approx(2.5)


class TestBandwidth:
    def test_bandwidth_basic(self):
        # 64 MB in 5.2 ms is about 12.3 GB/s.
        assert units.bandwidth(64 * units.MB, 64e6 / 12.3e9) == pytest.approx(12.3)

    def test_bandwidth_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            units.bandwidth(100, 0.0)

    def test_bandwidth_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            units.bandwidth(100, -1.0)

    def test_transfer_time_inverse_of_bandwidth(self):
        t = units.transfer_time(64 * units.MB, 12.3)
        assert units.bandwidth(64 * units.MB, t) == pytest.approx(12.3)

    def test_transfer_time_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth"):
            units.transfer_time(100, 0.0)


class TestFormatting:
    def test_fmt_bandwidth(self):
        assert units.fmt_bandwidth(12.345) == "12.35 GB/s"
        assert units.fmt_bandwidth(12.345, precision=1) == "12.3 GB/s"

    def test_fmt_bytes_scales(self):
        assert units.fmt_bytes(512) == "512 B"
        assert units.fmt_bytes(64 * units.MiB) == "64.0 MiB"
        assert units.fmt_bytes(3 * units.GiB) == "3.0 GiB"
        assert units.fmt_bytes(2 * units.KiB) == "2.0 KiB"
