"""The cross-model tournament: scoring, artifact caching (second run =
all hits), the winner table, and the per-regime router."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import BACKENDS, render_winner_table
from repro.backends.tournament import (
    PlatformTournament,
    RegimeScore,
    TournamentRouter,
    load_tournament,
    run_platform_tournament,
    run_tournament,
    score_backends,
    store_tournament,
    tournament_fingerprint,
    tournament_key,
)
from repro.bench.config import SweepConfig
from repro.errors import ModelError
from repro.pipeline import ArtifactStore
from repro.pipeline.fingerprint import config_fingerprint


@pytest.fixture(scope="module")
def henri_run(henri_experiment, seeded_config):
    """One storeless tournament over the henri archive."""
    return run_platform_tournament(henri_experiment, config=seeded_config)


class TestScoring:
    def test_covers_every_regime(self, henri_experiment, henri_run):
        tournament = henri_run.tournament
        dataset = henri_experiment.dataset
        placements = set(dataset.sweep.placements())
        seen = {(r.m_comp, r.m_comm) for r in tournament.regimes}
        assert seen == placements
        # Multi-point sweeps split at the median: two bands each.
        assert len(tournament.regimes) == 2 * len(placements)
        for regime in tournament.regimes:
            assert regime.band in ("low", "high")
            assert regime.n_min <= regime.n_max

    def test_roster_covers_the_registry(self, henri_run):
        assert henri_run.tournament.roster == tuple(BACKENDS)
        assert len(henri_run.tournament.roster) >= 5

    def test_winner_has_the_lowest_finite_score(self, henri_run):
        for regime in henri_run.tournament.regimes:
            finite = {
                b: s for b, s in regime.scores.items() if not np.isnan(s)
            }
            assert finite, "every henri regime must be scorable"
            assert regime.winner == min(finite, key=finite.get)

    def test_threshold_dominates_henri(self, henri_run):
        """The paper's model wins the majority of regimes on the
        platform the paper builds its case on."""
        counts = henri_run.tournament.win_counts()
        assert sum(counts.values()) == len(henri_run.tournament.regimes)
        assert counts["threshold"] > sum(counts.values()) / 2

    def test_empty_roster_rejected(self, henri_experiment):
        with pytest.raises(ModelError, match="at least one"):
            score_backends(henri_experiment, {})

    def test_win_counts_zero_filled(self, henri_run):
        counts = henri_run.tournament.win_counts()
        assert set(counts) >= set(BACKENDS)


class TestArtifactCaching:
    def test_second_run_is_all_cache_hits(
        self, tmp_path, henri_experiment, seeded_config
    ):
        store = ArtifactStore(tmp_path / "cache")
        first = run_platform_tournament(
            henri_experiment, config=seeded_config, store=store
        )
        assert first.cached is False
        assert set(first.backend_cached) == set(BACKENDS)
        assert not any(first.backend_cached.values())
        second = run_platform_tournament(
            henri_experiment, config=seeded_config, store=store
        )
        # The acceptance criterion: every calibration AND the winner
        # table itself come from the store on the second run.
        assert second.cached is True
        assert all(second.backend_cached.values())
        # Payload comparison, not dataclass equality: a NaN score is
        # serialized as null and NaN != NaN would hide a real match.
        assert (
            second.tournament.to_payloads() == first.tournament.to_payloads()
        )

    def test_fingerprint_covers_the_roster(self, seeded_config):
        config_fp = config_fingerprint(seeded_config)
        full = tournament_fingerprint(config_fp, BACKENDS)
        partial = tournament_fingerprint(
            config_fp, {"threshold": BACKENDS["threshold"]}
        )
        assert full != partial
        assert full != tournament_fingerprint("other-config", BACKENDS)

    def test_roster_change_reruns_but_keeps_calibrations(
        self, tmp_path, henri_experiment, seeded_config
    ):
        store = ArtifactStore(tmp_path / "cache")
        run_platform_tournament(
            henri_experiment, config=seeded_config, store=store
        )
        partial_roster = {
            b: BACKENDS[b] for b in ("threshold", "naive")
        }
        shrunk = run_platform_tournament(
            henri_experiment,
            config=seeded_config,
            store=store,
            backends=partial_roster,
        )
        # New fingerprint -> the table recomputes; the two calibrations
        # the rosters share are still hits.
        assert shrunk.cached is False
        assert shrunk.backend_cached == {"threshold": True, "naive": True}
        assert shrunk.tournament.roster == ("threshold", "naive")

    def test_corrupt_tournament_artifact_is_discarded(
        self, tmp_path, henri_experiment, seeded_config
    ):
        store = ArtifactStore(tmp_path / "cache")
        run = run_platform_tournament(
            henri_experiment, config=seeded_config, store=store
        )
        fingerprint = tournament_fingerprint(
            config_fingerprint(seeded_config), BACKENDS
        )
        key = tournament_key("henri", fingerprint)
        store.discard(key)  # save alone keeps an existing entry
        store.save(key, {"tournament.json": "[]"})
        assert load_tournament(store, "henri", fingerprint) is None
        assert store.load(key) is None
        # And the runner recovers by recomputing + republishing.
        recovered = run_platform_tournament(
            henri_experiment, config=seeded_config, store=store
        )
        assert recovered.cached is False
        assert recovered.tournament.to_payloads() == run.tournament.to_payloads()

    def test_payload_round_trip(self, henri_run, tmp_path, seeded_config):
        store = ArtifactStore(tmp_path / "cache")
        fingerprint = tournament_fingerprint(
            config_fingerprint(seeded_config), BACKENDS
        )
        store_tournament(store, fingerprint, henri_run.tournament)
        loaded = load_tournament(store, "henri", fingerprint)
        assert loaded is not None
        assert loaded.to_payloads() == henri_run.tournament.to_payloads()

    def test_nan_scores_survive_serialization(self):
        regime = RegimeScore(
            m_comp=0,
            m_comm=1,
            band="low",
            n_min=1,
            n_max=4,
            scores={"a": 1.5, "b": float("nan")},
            winner="a",
        )
        tournament = PlatformTournament(
            platform="henri", roster=("a", "b"), regimes=(regime,)
        )
        reloaded = PlatformTournament.from_payloads(tournament.to_payloads())
        back = reloaded.regimes[0].scores
        assert back["a"] == 1.5
        assert np.isnan(back["b"])


class TestFullTournament:
    def test_run_tournament_over_selected_platforms(
        self, tmp_path, seeded_config
    ):
        runs = run_tournament(
            platforms=["henri"],
            config=seeded_config,
            cache_dir=str(tmp_path / "cache"),
        )
        assert set(runs) == {"henri"}
        assert runs["henri"].tournament.platform == "henri"

    def test_winner_table_lists_every_regime(self, henri_run):
        text = render_winner_table({"henri": henri_run})
        lines = text.splitlines()
        assert "platform" in lines[0] and "winner" in lines[0]
        n_regimes = len(henri_run.tournament.regimes)
        assert sum(line.startswith("henri") for line in lines) == n_regimes
        assert f"{n_regimes} regimes; wins:" in lines[-1]
        assert "threshold=" in lines[-1]

    def test_winner_table_accepts_bare_tournaments(self, henri_run):
        from_run = render_winner_table({"henri": henri_run})
        from_tournament = render_winner_table(
            {"henri": henri_run.tournament}
        )
        assert from_run == from_tournament


class TestRouter:
    @pytest.fixture(scope="class")
    def router(self, henri_run):
        return TournamentRouter(
            henri_run.tournament, dict(henri_run.calibrated)
        )

    def test_backend_id(self, router):
        assert router.backend_id == "tournament"

    def test_routes_follow_the_winner_table(self, henri_run, router):
        for regime in henri_run.tournament.regimes:
            for n in (regime.n_min, regime.n_max):
                assert (
                    router.winner_for(n, regime.m_comp, regime.m_comm)
                    == regime.winner
                )

    def test_scalar_queries_answer_with_the_winner(self, henri_run, router):
        regime = henri_run.tournament.regimes[0]
        n, mc, mm = regime.n_min, regime.m_comp, regime.m_comm
        winner = henri_run.calibrated[regime.winner]
        assert router.comp_parallel(n, mc, mm) == winner.comp_parallel(
            n, mc, mm
        )
        assert router.comm_parallel(n, mc, mm) == winner.comm_parallel(
            n, mc, mm
        )

    def test_route_counts_accumulate(self, henri_run):
        router = TournamentRouter(
            henri_run.tournament, dict(henri_run.calibrated)
        )
        assert router.route_counts == {}
        regime = henri_run.tournament.regimes[0]
        for _ in range(3):
            router.comm_parallel(
                regime.n_min, regime.m_comp, regime.m_comm
            )
        assert router.route_counts[regime.winner] == 3

    def test_predict_splices_the_band_winners(self, henri_run):
        """A sweep crossing the band split equals the low winner's
        curve below the knee and the high winner's above it."""
        router = TournamentRouter(
            henri_run.tournament, dict(henri_run.calibrated)
        )
        by_band = {
            (r.m_comp, r.m_comm, r.band): r
            for r in henri_run.tournament.regimes
        }
        key = next((mc, mm) for mc, mm, band in by_band if band == "high")
        low = by_band[(*key, "low")]
        high = by_band[(*key, "high")]
        ns = np.arange(low.n_min, high.n_max + 1)
        spliced = router.predict(ns, *key)
        low_pred = henri_run.calibrated[low.winner].predict(ns, *key)
        high_pred = henri_run.calibrated[high.winner].predict(ns, *key)
        for i, n in enumerate(ns):
            expected = low_pred if n <= low.n_max else high_pred
            assert spliced.comm_parallel[i] == expected.comm_parallel[i]
            assert spliced.comp_parallel[i] == expected.comp_parallel[i]
        assert sum(router.route_counts.values()) == ns.size

    def test_unmeasured_placement_falls_back_to_top_winner(
        self, henri_run, router
    ):
        counts = henri_run.tournament.win_counts()
        top = max(counts, key=counts.get)
        assert router.winner_for(4, 10**6, 10**6) == top

    def test_router_is_derived_state(self, router):
        with pytest.raises(ModelError, match="derived state"):
            router.state_dict()

    def test_roster_must_be_fully_calibrated(self, henri_run):
        partial = dict(henri_run.calibrated)
        partial.pop("naive")
        with pytest.raises(ModelError, match="naive"):
            TournamentRouter(henri_run.tournament, partial)
