"""The ModelBackend protocol: threshold bit-identity, registry,
state round-trips, and the new literature backends' sanity."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backends import (
    BACKENDS,
    TwoInstantiationBackend,
    backend_ids,
    get_backend,
)
from repro.backends.base import sample_curves
from repro.backends.threshold import CalibratedThreshold, ThresholdBackend
from repro.core.oracle import ScalarOracle
from repro.core.placement import PlacementModel
from repro.errors import ModelError, PlacementError
from repro.evaluation.metrics import ErrorBreakdown
from repro.topology import get_platform

N_MAX = 48

EXPECTED_IDS = (
    "threshold",
    "naive",
    "queueing-ps",
    "langguth-threadfair",
    "overlap-afzal",
    "cxlmem-messagefree",
)


def scalar_reference(model: PlacementModel, n: int, m_comp: int, m_comm: int):
    """Equations 6/7 replayed through the scalar oracle — the original
    implementation the backend indirection must match bit for bit."""
    local = ScalarOracle(model.local)
    remote = ScalarOracle(model.remote)
    substituted = ScalarOracle(
        model.local.with_comm_nominal(model.remote.b_comm_seq)
    )
    if model.is_remote(m_comp) and m_comp == m_comm:
        comm_side = remote
    elif model.is_remote(m_comm):
        comm_side = substituted
    else:
        comm_side = local
    comp_side = remote if model.is_remote(m_comp) else local
    comp = (
        comp_side.comp_parallel(n)
        if m_comp == m_comm
        else comp_side.comp_alone(n)
    )
    return (
        comp,
        comm_side.comm_parallel(n),
        comp_side.comp_alone(n),
        comm_side.comm_alone(),
    )


@pytest.fixture(scope="module")
def calibrated_roster(henri_experiment):
    """Every registered backend calibrated on the henri archive."""
    platform = henri_experiment.platform
    return {
        backend_id: backend.calibrate(henri_experiment.dataset, platform)
        for backend_id, backend in BACKENDS.items()
    }


class TestRegistry:
    def test_roster(self):
        assert backend_ids() == EXPECTED_IDS
        assert len(BACKENDS) >= 5  # the tournament acceptance floor

    def test_threshold_registered_first(self):
        assert next(iter(BACKENDS)) == "threshold"

    def test_get_backend(self):
        assert get_backend("overlap-afzal").backend_id == "overlap-afzal"

    def test_unknown_backend_lists_the_registry(self):
        with pytest.raises(ModelError, match="overlap-afzal"):
            get_backend("bogus")

    def test_ids_and_versions_are_stable_types(self):
        for backend in BACKENDS.values():
            assert isinstance(backend.backend_id, str) and backend.backend_id
            assert isinstance(backend.version, int) and backend.version >= 1
            json.dumps(dict(backend.config()))  # must be JSON-able

    def test_fingerprint_depends_on_config_fp(self):
        backend = BACKENDS["threshold"]
        assert backend.fingerprint("a") != backend.fingerprint("b")
        assert backend.fingerprint("a") == backend.fingerprint("a")


class TestThresholdBitIdentity:
    """The acceptance property: routing the paper's model through the
    backend protocol changes no bit of any answer."""

    def test_matches_scalar_oracle_on_every_platform(self, all_experiments):
        for name, experiment in all_experiments.items():
            calibrated = ThresholdBackend().calibrate(
                experiment.dataset, experiment.platform
            )
            model = calibrated.model
            k = model.n_numa_nodes
            queries = [
                (n, mc, mm)
                for n in range(N_MAX + 1)
                for mc in range(k)
                for mm in range(k)
            ]
            points = calibrated.predict_batch(queries)
            for (n, mc, mm), point in zip(queries, points):
                comp, comm, alone, comm_alone = scalar_reference(
                    model, n, mc, mm
                )
                assert point.comp_parallel == comp, (name, n, mc, mm)
                assert point.comm_parallel == comm, (name, n, mc, mm)
                assert point.comp_alone == alone, (name, n, mc, mm)
                assert point.comm_alone == comm_alone, (name, n, mc, mm)

    def test_scalar_queries_match_the_oracle(self, all_experiments):
        for name, experiment in all_experiments.items():
            calibrated = ThresholdBackend().calibrate(
                experiment.dataset, experiment.platform
            )
            model = calibrated.model
            k = model.n_numa_nodes
            for n in range(0, N_MAX + 1, 7):
                for mc in range(k):
                    for mm in range(k):
                        comp, comm, alone, comm_alone = scalar_reference(
                            model, n, mc, mm
                        )
                        where = (name, n, mc, mm)
                        assert calibrated.comp_parallel(n, mc, mm) == comp, where
                        assert calibrated.comm_parallel(n, mc, mm) == comm, where
                        assert calibrated.comp_alone(n, mc) == alone, where
                        assert calibrated.comm_alone(mm) == comm_alone, where

    def test_calibrate_equals_the_pipeline_model(self, all_experiments):
        """The backend's own calibration is the pipeline's calibration:
        wrapping the experiment's model answers identically."""
        for experiment in all_experiments.values():
            backend = ThresholdBackend()
            calibrated = backend.calibrate(
                experiment.dataset, experiment.platform
            )
            wrapped = backend.wrap(experiment.model)
            k = experiment.model.n_numa_nodes
            queries = [(n, n % k, (n + 1) % k) for n in range(N_MAX + 1)]
            assert calibrated.predict_batch(queries) == wrapped.predict_batch(
                queries
            )

    def test_predict_matches_the_live_model(self, henri_experiment):
        calibrated = ThresholdBackend().wrap(henri_experiment.model)
        ns = np.arange(1, N_MAX + 1)
        live = henri_experiment.model.predict_grid(ns)
        behind = calibrated.predict_grid(ns)
        assert set(live) == set(behind)
        for key in live:
            assert np.array_equal(
                live[key].comp_parallel, behind[key].comp_parallel
            )
            assert np.array_equal(
                live[key].comm_parallel, behind[key].comm_parallel
            )
            assert np.array_equal(
                live[key].comp_alone, behind[key].comp_alone
            )
            assert live[key].comm_alone == behind[key].comm_alone


class TestStateRoundTrip:
    """state_dict -> JSON -> from_state reproduces every prediction
    exactly, for every registered backend."""

    @pytest.mark.parametrize("backend_id", EXPECTED_IDS)
    def test_round_trip_is_identical(
        self, backend_id, henri_experiment, calibrated_roster
    ):
        backend = BACKENDS[backend_id]
        calibrated = calibrated_roster[backend_id]
        state = json.loads(json.dumps(calibrated.state_dict()))
        restored = backend.from_state(state)
        assert restored.backend_id == backend_id
        assert restored.nodes_per_socket == calibrated.nodes_per_socket
        assert restored.n_numa_nodes == calibrated.n_numa_nodes
        k = calibrated.n_numa_nodes
        queries = [
            (n, mc, mm)
            for n in range(0, 25, 3)
            for mc in range(k)
            for mm in range(k)
        ]
        assert restored.predict_batch(queries) == calibrated.predict_batch(
            queries
        )

    @pytest.mark.parametrize("backend_id", EXPECTED_IDS)
    def test_malformed_state_raises_model_error(self, backend_id):
        with pytest.raises(ModelError):
            BACKENDS[backend_id].from_state({})

    @pytest.mark.parametrize("backend_id", EXPECTED_IDS)
    def test_state_is_json_able(self, backend_id, calibrated_roster):
        json.dumps(calibrated_roster[backend_id].state_dict())


class TestLiteratureBackends:
    """Sanity of the two new backends (overlap-afzal, cxlmem-messagefree):
    physical plausibility on a real archive, not curve-exact claims."""

    @pytest.mark.parametrize(
        "backend_id", ["overlap-afzal", "cxlmem-messagefree"]
    )
    def test_predictions_are_finite_and_nonnegative(
        self, backend_id, calibrated_roster
    ):
        calibrated = calibrated_roster[backend_id]
        ns = np.arange(1, N_MAX + 1)
        for pred in calibrated.predict_grid(ns).values():
            for curve in (
                pred.comp_parallel,
                pred.comm_parallel,
                pred.comp_alone,
            ):
                assert np.all(np.isfinite(curve))
                assert np.all(curve >= 0.0)
            assert np.isfinite(pred.comm_alone) and pred.comm_alone > 0.0

    @pytest.mark.parametrize(
        "backend_id", ["overlap-afzal", "cxlmem-messagefree"]
    )
    def test_contention_reduces_communication(
        self, backend_id, calibrated_roster
    ):
        """At high core counts the contended communication bandwidth
        must not exceed the uncontended nominal."""
        calibrated = calibrated_roster[backend_id]
        assert (
            calibrated.comm_parallel(N_MAX, 0, 0)
            <= calibrated.comm_alone(0) + 1e-9
        )

    @pytest.mark.parametrize(
        "backend_id", ["overlap-afzal", "cxlmem-messagefree"]
    )
    def test_error_report_is_a_table2_breakdown(
        self, backend_id, henri_experiment, calibrated_roster
    ):
        report = calibrated_roster[backend_id].error_report(
            henri_experiment.dataset, henri_experiment.sample_keys
        )
        assert isinstance(report, ErrorBreakdown)
        assert np.isfinite(report.average)
        assert report.average >= 0.0

    def test_paper_model_beats_both_on_henri(
        self, henri_experiment, calibrated_roster
    ):
        """The ablation extends to the literature backends: on the
        contended platform the paper's model has the smaller Table II
        average."""
        reference = calibrated_roster["threshold"].error_report(
            henri_experiment.dataset, henri_experiment.sample_keys
        )
        for backend_id in ("overlap-afzal", "cxlmem-messagefree"):
            challenger = calibrated_roster[backend_id].error_report(
                henri_experiment.dataset, henri_experiment.sample_keys
            )
            assert reference.average < challenger.average, backend_id


class TestProtocolValidation:
    def test_node_bounds_enforced(self, calibrated_roster):
        calibrated = calibrated_roster["overlap-afzal"]
        with pytest.raises(PlacementError, match="out of range"):
            calibrated.comm_parallel(4, 0, 99)
        with pytest.raises(PlacementError):
            calibrated.predict([1, 2], 99, 0)

    def test_non_integral_core_counts_rejected(self, calibrated_roster):
        with pytest.raises(PlacementError):
            calibrated_roster["naive"].predict([1.5], 0, 0)

    def test_batch_preserves_query_order(self, calibrated_roster):
        calibrated = calibrated_roster["queueing-ps"]
        queries = [(8, 0, 1), (2, 0, 0), (8, 0, 1), (1, 1, 1)]
        points = calibrated.predict_batch(queries)
        assert [(p.n, p.m_comp, p.m_comm) for p in points] == queries
        assert points[0] == points[2]

    def test_malformed_batch_query_rejected(self, calibrated_roster):
        with pytest.raises(PlacementError, match="triple"):
            calibrated_roster["naive"].predict_batch([(1, 0)])

    def test_two_instantiation_needs_two_sockets(self):
        class _Minimal(TwoInstantiationBackend):
            @property
            def backend_id(self):
                return "minimal"

            def state_dict(self):
                return {}

        side = object()
        with pytest.raises(ModelError, match="two sockets"):
            _Minimal(
                local=side,
                remote=side,
                substituted=side,
                nodes_per_socket=2,
                n_numa_nodes=2,
            )

    def test_sample_curves_names_the_missing_placement(
        self, henri_experiment
    ):
        platform = get_platform("henri")

        class _OnePlacement:
            platform_name = "henri"

            def __init__(self, sweep):
                self.sweep = sweep

        class _Sweep:
            def __init__(self, inner):
                self._inner = inner

            def __contains__(self, key):
                return key == (0, 0)

            def __getitem__(self, key):
                return self._inner[key]

            def placements(self):
                return [(0, 0)]

        dataset = _OnePlacement(_Sweep(henri_experiment.dataset.sweep))
        with pytest.raises(ModelError, match="lacks the sample"):
            sample_curves(dataset, platform)


class TestCalibratedThresholdSurface:
    def test_backend_id(self, henri_experiment):
        calibrated = ThresholdBackend().wrap(henri_experiment.model)
        assert isinstance(calibrated, CalibratedThreshold)
        assert calibrated.backend_id == "threshold"
        assert calibrated.model is henri_experiment.model
