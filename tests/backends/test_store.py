"""Backend calibration artifacts: round trip, cache hits, corruption
discard, and version/id skew — the ``"compiled"``-stage discipline
replayed for stage ``backend-<id>``."""

from __future__ import annotations

import json

import pytest

from repro.backends import BACKENDS, backend_key, load_or_calibrate
from repro.backends.store import (
    BACKEND_FORMAT_VERSION,
    backend_stage,
    load_backend,
    store_backend,
)
from repro.backends.threshold import ThresholdBackend
from repro.pipeline import ArtifactStore

FINGERPRINT = "deadbeefcafe"


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture(scope="module")
def henri(henri_experiment):
    return henri_experiment


def _queries(calibrated):
    k = calibrated.n_numa_nodes
    return [
        (n, mc, mm)
        for n in range(0, 17, 4)
        for mc in range(k)
        for mm in range(k)
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("backend_id", list(BACKENDS))
    def test_store_then_load_is_identical(self, store, henri, backend_id):
        backend = BACKENDS[backend_id]
        calibrated = backend.calibrate(henri.dataset, henri.platform)
        store_backend(store, "henri", FINGERPRINT, backend, calibrated)
        loaded = load_backend(store, "henri", FINGERPRINT, backend)
        assert loaded is not None
        queries = _queries(calibrated)
        assert loaded.predict_batch(queries) == calibrated.predict_batch(
            queries
        )

    def test_stage_addressing(self):
        backend = ThresholdBackend()
        assert backend_stage("threshold") == "backend-threshold"
        key = backend_key("henri", backend, FINGERPRINT)
        assert key.platform == "henri"
        assert key.stage == "backend-threshold"
        assert key.version == str(backend.version)
        assert key.fingerprint == backend.fingerprint(FINGERPRINT)

    def test_missing_entry_is_a_miss(self, store):
        assert (
            load_backend(store, "henri", FINGERPRINT, ThresholdBackend())
            is None
        )


class TestLoadOrCalibrate:
    def test_miss_then_hit(self, store, henri):
        backend = ThresholdBackend()
        first, cached = load_or_calibrate(
            store, backend, henri.dataset, henri.platform, FINGERPRINT
        )
        assert cached is False
        second, cached = load_or_calibrate(
            store, backend, henri.dataset, henri.platform, FINGERPRINT
        )
        assert cached is True
        queries = _queries(first)
        assert second.predict_batch(queries) == first.predict_batch(queries)

    def test_without_a_store_calibrates_every_time(self, henri):
        backend = ThresholdBackend()
        calibrated, cached = load_or_calibrate(
            None, backend, henri.dataset, henri.platform, FINGERPRINT
        )
        assert cached is False
        assert calibrated.n_numa_nodes == henri.model.n_numa_nodes

    def test_fingerprint_partitions_the_cache(self, store, henri):
        backend = ThresholdBackend()
        load_or_calibrate(
            store, backend, henri.dataset, henri.platform, "fp-one"
        )
        # A different sweep fingerprint must not see fp-one's artifact.
        _, cached = load_or_calibrate(
            store, backend, henri.dataset, henri.platform, "fp-two"
        )
        assert cached is False


class TestCorruption:
    def _saved(self, store, henri):
        backend = ThresholdBackend()
        calibrated = backend.calibrate(henri.dataset, henri.platform)
        store_backend(store, "henri", FINGERPRINT, backend, calibrated)
        return backend, backend_key("henri", backend, FINGERPRINT)

    def _replace(self, store, key, payloads):
        """Swap an entry's payloads (save alone keeps an existing entry)."""
        store.discard(key)
        store.save(key, payloads)

    def test_garbage_json_is_discarded(self, store, henri, caplog):
        backend, key = self._saved(store, henri)
        self._replace(store, key, {"backend.json": "{not json"})
        with caplog.at_level("WARNING", logger="repro.backends"):
            assert load_backend(store, "henri", FINGERPRINT, backend) is None
        assert "discarding invalid backend artifact" in caplog.text
        # The defective entry is gone: the next load is a clean miss,
        # and load_or_calibrate recalibrates + republishes.
        assert store.load(key) is None
        _, cached = load_or_calibrate(
            store, backend, henri.dataset, henri.platform, FINGERPRINT
        )
        assert cached is False
        assert load_backend(store, "henri", FINGERPRINT, backend) is not None

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda d: d.update(format_version=BACKEND_FORMAT_VERSION + 1),
            lambda d: d.update(backend_id="somebody-else"),
            lambda d: d.update(backend_version=99),
            lambda d: d.update(state=[1, 2, 3]),
            lambda d: d.pop("state"),
        ],
        ids=["format", "id", "version", "state-type", "state-missing"],
    )
    def test_skewed_artifacts_are_discarded(self, store, henri, mutate):
        backend, key = self._saved(store, henri)
        payloads = store.load(key)
        data = json.loads(payloads["backend.json"])
        mutate(data)
        self._replace(store, key, {"backend.json": json.dumps(data)})
        assert load_backend(store, "henri", FINGERPRINT, backend) is None
        assert store.load(key) is None

    def test_defective_state_is_discarded(self, store, henri):
        """A structurally valid envelope whose state from_state rejects
        (the ModelError contract) is also a discard, not a crash."""
        backend, key = self._saved(store, henri)
        payloads = store.load(key)
        data = json.loads(payloads["backend.json"])
        data["state"] = {"local": "nonsense"}
        self._replace(store, key, {"backend.json": json.dumps(data)})
        assert load_backend(store, "henri", FINGERPRINT, backend) is None
