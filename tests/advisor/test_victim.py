"""Victim-placement advice: minimax ranking, roster shape, CLI surface."""

import pytest

from repro.advisor import (
    VictimPlacement,
    advise_victim_placement,
    stressor_roster,
)
from repro.advisor.victim import VICTIM_NAME
from repro.errors import AdvisorError, ServiceError
from repro.memsim import Tenant, TenantScenario, solve_tenant_scenario
from repro.service import protocol
from repro.topology import get_platform

HENRI = get_platform("henri")
PYXIS = get_platform("pyxis")


def brute_force_worst_cases(spec):
    """Independent reimplementation: worst-case comm per node."""
    roster = stressor_roster(spec.machine, spec.profile)
    out = {}
    for node in spec.machine.iter_numa_nodes():
        victim = Tenant(name=VICTIM_NAME, m_comm=node.index)
        baseline = solve_tenant_scenario(
            spec.machine, spec.profile, TenantScenario((victim,))
        ).tenant(VICTIM_NAME).comm_gbps
        worst = min(
            solve_tenant_scenario(
                spec.machine, spec.profile,
                TenantScenario((victim, stressor)),
            ).tenant(VICTIM_NAME).comm_gbps
            for stressor in roster
        )
        out[node.index] = (baseline, worst)
    return out


class TestRanking:
    @pytest.mark.parametrize("spec", [HENRI, PYXIS], ids=lambda s: s.name)
    def test_matches_the_brute_force_minimax(self, spec):
        placements = advise_victim_placement(spec.machine, spec.profile)
        reference = brute_force_worst_cases(spec)
        assert len(placements) == len(reference)
        by_node = {p.m_comm: p for p in placements}
        for node, (baseline, worst) in reference.items():
            assert by_node[node].baseline_gbps == baseline
            assert by_node[node].worst_gbps == worst
        # Ranked by smallest worst-case degradation first.
        degradations = [p.degradation for p in placements]
        assert degradations == sorted(degradations)
        best_node = min(
            reference, key=lambda n: 1.0 - reference[n][1] / reference[n][0]
        )
        assert placements[0].degradation == (
            1.0 - reference[best_node][1] / reference[best_node][0]
        )

    def test_every_stressor_is_scored(self):
        placements = advise_victim_placement(HENRI.machine, HENRI.profile)
        roster_names = {t.name for t in stressor_roster(
            HENRI.machine, HENRI.profile
        )}
        for p in placements:
            assert set(p.per_stressor_gbps) == roster_names
            assert p.worst_stressor in roster_names
            assert p.worst_gbps == min(p.per_stressor_gbps.values())
            assert 0.0 <= p.degradation < 1.0

    def test_top_truncates(self):
        top1 = advise_victim_placement(HENRI.machine, HENRI.profile, top=1)
        assert len(top1) == 1
        full = advise_victim_placement(HENRI.machine, HENRI.profile)
        assert top1[0] == full[0]

    def test_top_validation(self):
        with pytest.raises(AdvisorError, match="top"):
            advise_victim_placement(HENRI.machine, HENRI.profile, top=0)

    def test_custom_roster(self):
        roster = [Tenant(name="noisy", n_cores=4, m_comp=0)]
        placements = advise_victim_placement(
            HENRI.machine, HENRI.profile, roster=roster
        )
        assert all(p.worst_stressor == "noisy" for p in placements)

    def test_empty_roster_rejected(self):
        with pytest.raises(AdvisorError, match="non-empty"):
            advise_victim_placement(HENRI.machine, HENRI.profile, roster=[])

    def test_reserved_victim_name_rejected(self):
        with pytest.raises(AdvisorError, match="reserved"):
            advise_victim_placement(
                HENRI.machine, HENRI.profile,
                roster=[Tenant(name=VICTIM_NAME, n_cores=1, m_comp=0)],
            )


class TestRoster:
    def test_covers_bus_llc_and_nic_attacks(self):
        roster = stressor_roster(HENRI.machine, HENRI.profile)
        names = [t.name for t in roster]
        for node in HENRI.machine.iter_numa_nodes():
            assert f"bus@{node.index}" in names
        assert "llc-thrash" in names
        assert "nic-flood" in names

    def test_stressors_compute_on_the_far_socket(self):
        """Two-socket machines co-schedule the noise on socket 1."""
        for tenant in stressor_roster(HENRI.machine, HENRI.profile):
            if tenant.computing:
                assert tenant.socket == 1

    def test_llc_thrash_overflows_its_fair_share(self):
        roster = stressor_roster(HENRI.machine, HENRI.profile)
        thrash = next(t for t in roster if t.name == "llc-thrash")
        llc = max(HENRI.machine.sockets[1].caches, key=lambda c: c.level)
        fair = llc.size_bytes / HENRI.machine.cores_per_socket
        assert thrash.working_set_bytes > fair
        assert thrash.n_cores == HENRI.machine.cores_per_socket

    def test_nic_flood_is_bidirectional(self):
        roster = stressor_roster(HENRI.machine, HENRI.profile)
        flood = next(t for t in roster if t.name == "nic-flood")
        assert flood.bidirectional
        assert flood.communicating and not flood.computing


class TestPlacementView:
    def test_describe_and_to_dict_agree(self):
        placement = VictimPlacement(
            m_comm=1,
            baseline_gbps=10.0,
            worst_gbps=4.0,
            worst_stressor="bus@0",
            per_stressor_gbps={"bus@0": 4.0, "nic-flood": 8.0},
        )
        assert placement.degradation == pytest.approx(0.6)
        text = placement.describe()
        assert "node 1" in text and "-60%" in text and "bus@0" in text
        payload = placement.to_dict()
        assert payload["degradation"] == pytest.approx(0.6)
        assert payload["per_stressor_gbps"]["nic-flood"] == 8.0


class TestProtocol:
    def test_victim_mode_detection(self):
        assert protocol.is_victim_advise({"victim": True})
        assert not protocol.is_victim_advise({"victim": False})
        assert not protocol.is_victim_advise({"comp_bytes": 1})
        assert not protocol.is_victim_advise("not a dict")

    def test_parse_accepts_minimal_body(self):
        assert protocol.parse_advise_victim(
            {"platform": "henri", "victim": True}
        ) == ("henri", 0, None)

    def test_parse_carries_seed_and_top(self):
        assert protocol.parse_advise_victim(
            {"platform": "henri", "victim": True, "seed": 3, "top": 2}
        ) == ("henri", 3, 2)

    def test_victim_must_be_the_json_literal_true(self):
        with pytest.raises(ServiceError, match="literal true"):
            protocol.parse_advise_victim({"platform": "henri", "victim": 1})

    @pytest.mark.parametrize("banned", ["comp_bytes", "comm_bytes", "backend"])
    def test_workload_fields_are_rejected(self, banned):
        with pytest.raises(ServiceError, match=banned):
            protocol.parse_advise_victim(
                {"platform": "henri", "victim": True, banned: "x"}
            )


class TestCli:
    def test_advise_victim(self, capsys):
        from repro.cli import main

        assert main(["advise", "henri", "--victim"]) == 0
        out = capsys.readouterr().out
        assert "Victim placements for henri" in out
        assert "worst case" in out
        # One ranked line per NUMA node.
        assert "  1. comm data on node" in out
        assert "  2. comm data on node" in out

    def test_advise_victim_ranks_like_the_library(self, capsys):
        from repro.cli import main

        assert main(["advise", "pyxis", "--victim", "--top", "1"]) == 0
        out = capsys.readouterr().out
        best = advise_victim_placement(
            PYXIS.machine, PYXIS.profile, top=1
        )[0]
        assert f"node {best.m_comm}" in out
        assert "  2." not in out

    def test_victim_rejects_workload_bytes(self, capsys):
        from repro.cli import EXIT_CODES, main
        from repro import errors

        code = main(["advise", "henri", "--victim", "--comp-bytes", "1e9"])
        assert code == EXIT_CODES[errors.AdvisorError] == 10
        assert "do not apply" in capsys.readouterr().err
