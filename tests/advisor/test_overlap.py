"""Overlap-efficiency estimation tests."""

import pytest

from repro.advisor import Workload, estimate_overlap
from repro.errors import AdvisorError
from repro.units import GB


@pytest.fixture(scope="module")
def model(henri_experiment):
    return henri_experiment.model


class TestEstimate:
    def test_overlap_never_slower_than_phases(self, model):
        est = estimate_overlap(
            model,
            Workload(comp_bytes=10 * GB, comm_bytes=2 * GB),
            n_cores=12,
            m_comp=0,
            m_comm=1,
        )
        assert est.overlapped_s >= max(est.comp_alone_s, est.comm_alone_s) - 1e-12
        assert est.overlapped_s <= est.serial_s + 1e-12

    def test_efficiency_bounds(self, model):
        for placement in [(0, 0), (0, 1), (1, 1)]:
            est = estimate_overlap(
                model,
                Workload(comp_bytes=10 * GB, comm_bytes=2 * GB),
                n_cores=14,
                m_comp=placement[0],
                m_comm=placement[1],
            )
            assert est.efficiency <= 1.0 + 1e-9

    def test_contention_free_overlap_is_perfect(self, model):
        """Few cores, disjoint nodes: the shorter phase hides fully."""
        est = estimate_overlap(
            model,
            Workload(comp_bytes=4 * GB, comm_bytes=1 * GB),
            n_cores=4,
            m_comp=0,
            m_comm=1,
        )
        assert est.efficiency == pytest.approx(1.0, abs=0.02)

    def test_contended_overlap_less_efficient(self, model):
        """Full socket + shared node: contention eats into the savings."""
        free = estimate_overlap(
            model,
            Workload(comp_bytes=10 * GB, comm_bytes=4 * GB),
            n_cores=6,
            m_comp=0,
            m_comm=1,
        )
        contended = estimate_overlap(
            model,
            Workload(comp_bytes=10 * GB, comm_bytes=4 * GB),
            n_cores=18,
            m_comp=0,
            m_comm=0,
        )
        assert contended.efficiency < free.efficiency

    def test_describe(self, model):
        est = estimate_overlap(
            model,
            Workload(comp_bytes=GB, comm_bytes=GB),
            n_cores=8,
            m_comp=0,
            m_comm=1,
        )
        assert "efficiency" in est.describe()

    def test_requires_both_phases(self, model):
        with pytest.raises(AdvisorError, match="both"):
            estimate_overlap(
                model,
                Workload(comp_bytes=GB, comm_bytes=0),
                n_cores=4,
                m_comp=0,
                m_comm=0,
            )

    def test_savings_accounting_consistent(self, model):
        est = estimate_overlap(
            model,
            Workload(comp_bytes=8 * GB, comm_bytes=3 * GB),
            n_cores=10,
            m_comp=0,
            m_comm=0,
        )
        assert est.savings_s == pytest.approx(est.serial_s - est.overlapped_s)
        assert est.hideable_s == pytest.approx(
            min(est.comp_alone_s, est.comm_alone_s)
        )
