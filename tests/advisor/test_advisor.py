"""Placement advisor tests."""

import pytest

from repro.advisor import Advisor, Recommendation, Workload
from repro.errors import AdvisorError
from repro.units import GB


@pytest.fixture(scope="module")
def advisor(henri_experiment):
    return Advisor(henri_experiment.model, henri_experiment.platform.machine)


class TestWorkload:
    def test_valid(self):
        Workload(comp_bytes=1e9, comm_bytes=1e8)

    def test_nothing_to_move_rejected(self):
        with pytest.raises(AdvisorError, match="nothing"):
            Workload(comp_bytes=0, comm_bytes=0)

    def test_negative_rejected(self):
        with pytest.raises(AdvisorError):
            Workload(comp_bytes=-1, comm_bytes=1)


class TestScoring:
    def test_makespan_is_max_of_sides(self, advisor):
        workload = Workload(comp_bytes=10 * GB, comm_bytes=1 * GB)
        rec = advisor.score(workload, 8, 0, 1)
        comp_t = 10 * GB / (rec.comp_gbps * 1e9)
        comm_t = 1 * GB / (rec.comm_gbps * 1e9)
        assert rec.makespan_s == pytest.approx(max(comp_t, comm_t))

    def test_out_of_range_cores_rejected(self, advisor):
        with pytest.raises(AdvisorError, match="one socket"):
            advisor.score(Workload(comp_bytes=1e9, comm_bytes=1e9), 19, 0, 0)

    def test_comm_only_workload(self, advisor):
        rec = advisor.score(Workload(comp_bytes=0, comm_bytes=GB), 1, 0, 1)
        assert rec.makespan_s == pytest.approx(GB / (rec.comm_gbps * 1e9))

    def test_describe(self, advisor):
        rec = advisor.score(Workload(comp_bytes=GB, comm_bytes=GB), 4, 0, 1)
        text = rec.describe()
        assert "4 cores" in text and "node 0" in text


class TestRecommend:
    def test_top_n(self, advisor):
        recs = advisor.recommend(Workload(comp_bytes=GB, comm_bytes=GB), top=3)
        assert len(recs) == 3
        assert all(isinstance(r, Recommendation) for r in recs)

    def test_sorted_by_makespan(self, advisor):
        recs = advisor.recommend(Workload(comp_bytes=GB, comm_bytes=GB), top=10)
        makespans = [r.makespan_s for r in recs]
        assert makespans == sorted(makespans)

    def test_best_beats_fully_contended_config(self, advisor):
        """The recommendation is never worse than the naive choice of
        all cores + everything on the NIC-local node."""
        workload = Workload(comp_bytes=20 * GB, comm_bytes=8 * GB)
        best = advisor.best(workload)
        naive = advisor.score(workload, 18, 0, 0)
        assert best.makespan_s <= naive.makespan_s + 1e-12

    def test_ties_prefer_fewer_cores(self, advisor):
        """Comm-bound workloads should not burn extra cores."""
        recs = advisor.recommend(
            Workload(comp_bytes=GB, comm_bytes=50 * GB), top=2
        )
        assert recs[0].n_cores <= recs[1].n_cores

    def test_prefers_local_comp_data(self, advisor):
        """Computation-heavy workloads want local (socket-0) data."""
        best = advisor.best(Workload(comp_bytes=100 * GB, comm_bytes=GB))
        assert best.m_comp == 0

    def test_invalid_top(self, advisor):
        with pytest.raises(AdvisorError):
            advisor.recommend(Workload(comp_bytes=GB, comm_bytes=GB), top=0)

    def test_empty_core_counts(self, advisor):
        with pytest.raises(AdvisorError, match="non-empty"):
            advisor.recommend(
                Workload(comp_bytes=GB, comm_bytes=GB), core_counts=[]
            )

    def test_restricted_core_counts(self, advisor):
        recs = advisor.recommend(
            Workload(comp_bytes=GB, comm_bytes=GB), core_counts=[4, 8], top=50
        )
        assert {r.n_cores for r in recs} <= {4, 8}


class TestMismatchedTopology:
    def test_rejects_foreign_machine(self, henri_experiment):
        from repro.topology import get_platform

        subnuma = get_platform("henri-subnuma").machine
        with pytest.raises(AdvisorError, match="NUMA layout"):
            Advisor(henri_experiment.model, subnuma)
