"""Network substrate: fabrics, messages, protocols, receive engine."""

import pytest

from repro.errors import CommunicationError
from repro.memsim import Engine
from repro.net import (
    FABRICS,
    Fabric,
    NetMessage,
    Protocol,
    ReceiveEngine,
    RendezvousConfig,
    fabric_for,
    select_protocol,
)
from repro.units import KiB, MB


class TestFabric:
    def test_catalogue_rates(self):
        assert FABRICS["infiniband-edr"].line_rate_gbps == pytest.approx(12.5)
        assert FABRICS["infiniband-hdr"].line_rate_gbps == pytest.approx(25.0)
        assert FABRICS["omni-path"].line_rate_gbps == pytest.approx(12.5)

    def test_wire_time(self):
        fabric = Fabric("test", 10.0, 1e-6)
        assert fabric.wire_time(10**9) == pytest.approx(0.1 + 1e-6)
        assert fabric.wire_time(0) == pytest.approx(1e-6)

    def test_wire_time_negative_bytes(self):
        with pytest.raises(CommunicationError):
            Fabric("test", 10.0, 0.0).wire_time(-1)

    def test_invalid_fabric(self):
        with pytest.raises(CommunicationError):
            Fabric("bad", 0.0, 0.0)

    def test_fabric_for_matches_names(self):
        assert fabric_for("InfiniBand EDR").name == "InfiniBand EDR"
        assert fabric_for("InfiniBand HDR").name == "InfiniBand HDR"
        assert fabric_for("Omni-Path 100").name == "Omni-Path 100"
        assert fabric_for("InfiniBand FDR").name == "InfiniBand FDR"

    def test_fabric_for_fallback(self):
        assert fabric_for("mystery-nic").name == "InfiniBand EDR"


class TestMessage:
    def test_valid(self):
        NetMessage(tag=1, src_rank=1, dst_rank=0, nbytes=64 * MB, dest_node=0)

    def test_zero_bytes_rejected(self):
        with pytest.raises(CommunicationError):
            NetMessage(tag=1, src_rank=1, dst_rank=0, nbytes=0, dest_node=0)

    def test_loopback_rejected(self):
        with pytest.raises(CommunicationError, match="loopback"):
            NetMessage(tag=1, src_rank=0, dst_rank=0, nbytes=1, dest_node=0)


class TestProtocol:
    def test_selection_threshold(self):
        config = RendezvousConfig()
        assert select_protocol(1 * KiB, config) is Protocol.EAGER
        assert select_protocol(32 * KiB, config) is Protocol.EAGER
        assert select_protocol(32 * KiB + 1, config) is Protocol.RENDEZVOUS
        assert select_protocol(64 * MB, config) is Protocol.RENDEZVOUS

    def test_startup_delay(self):
        config = RendezvousConfig(handshake_latency_s=1e-6)
        assert config.startup_delay(Protocol.EAGER) == 0.0
        assert config.startup_delay(Protocol.RENDEZVOUS) == pytest.approx(2e-6)

    def test_zero_bytes_rejected(self):
        with pytest.raises(CommunicationError):
            select_protocol(0, RendezvousConfig())


class TestReceiveEngine:
    def _rx(self, platform, fabric=None):
        engine = Engine(platform.machine, platform.profile)
        rx = ReceiveEngine(
            platform.machine,
            platform.profile,
            engine,
            fabric=fabric or FABRICS["infiniband-edr"],
        )
        return engine, rx

    def test_large_message_bandwidth(self, henri):
        engine, rx = self._rx(henri)
        message = NetMessage(tag=1, src_rank=1, dst_rank=0, nbytes=64 * MB, dest_node=0)
        handle = rx.receive(message)
        engine.run()
        assert handle.done
        assert handle.protocol is Protocol.RENDEZVOUS
        # 12.3 GB/s nominal, shaved slightly by the handshake.
        assert handle.observed_gbps() == pytest.approx(12.3, rel=0.01)

    def test_small_message_is_eager(self, henri):
        engine, rx = self._rx(henri)
        message = NetMessage(tag=1, src_rank=1, dst_rank=0, nbytes=8 * KiB, dest_node=0)
        handle = rx.receive(message)
        engine.run()
        assert handle.protocol is Protocol.EAGER

    def test_slow_fabric_caps_bandwidth(self, henri):
        slow = Fabric("slow", 3.0, 1e-6)
        engine, rx = self._rx(henri, fabric=slow)
        message = NetMessage(tag=1, src_rank=1, dst_rank=0, nbytes=64 * MB, dest_node=0)
        handle = rx.receive(message)
        engine.run()
        assert handle.observed_gbps() == pytest.approx(3.0, rel=0.01)

    def test_diablo_locality(self, diablo):
        engine, rx = self._rx(diablo, fabric=FABRICS["infiniband-hdr"])
        to_far = rx.receive(
            NetMessage(tag=1, src_rank=1, dst_rank=0, nbytes=64 * MB, dest_node=0)
        )
        engine.run()
        engine2, rx2 = self._rx(diablo, fabric=FABRICS["infiniband-hdr"])
        to_near = rx2.receive(
            NetMessage(tag=2, src_rank=1, dst_rank=0, nbytes=64 * MB, dest_node=1)
        )
        engine2.run()
        assert to_far.observed_gbps() == pytest.approx(12.1, rel=0.02)
        assert to_near.observed_gbps() == pytest.approx(22.4, rel=0.02)

    def test_incomplete_transfer_refuses_metrics(self, henri):
        engine, rx = self._rx(henri)
        handle = rx.receive(
            NetMessage(tag=1, src_rank=1, dst_rank=0, nbytes=64 * MB, dest_node=0)
        )
        with pytest.raises(CommunicationError, match="not completed"):
            handle.completion_time()
