"""Two-machine cluster substrate tests."""

import pytest

from repro.errors import CommunicationError, SimulationError
from repro.memsim import Arbiter, Engine
from repro.net import FABRICS
from repro.net.cluster import (
    WIRE_ID,
    Cluster,
    build_cluster_resources,
    compute_streams,
    transfer_stream,
)
from repro.units import MB


@pytest.fixture(scope="module")
def cluster(henri):
    from repro.topology import get_platform

    return Cluster(
        node0=get_platform("henri"),
        node1=get_platform("henri"),
        fabric=FABRICS["infiniband-edr"],
    )


@pytest.fixture(scope="module")
def arbiter(cluster):
    return Arbiter(build_cluster_resources(cluster), cluster.node0.profile)


class TestResources:
    def test_both_machines_prefixed(self, cluster):
        rmap = build_cluster_resources(cluster)
        assert "m0:ctrl:0" in rmap and "m1:ctrl:0" in rmap
        assert "m0:mesh:1" in rmap and "m1:nic-tx:0" in rmap
        assert WIRE_ID in rmap

    def test_wire_capacity(self, cluster):
        rmap = build_cluster_resources(cluster)
        assert rmap[WIRE_ID].capacity_gbps == pytest.approx(12.5)


class TestTransferStream:
    def test_path_spans_both_machines(self, cluster):
        stream = transfer_stream(
            cluster, stream_id="msg", src_rank=0, src_node=0, dst_node=0
        )
        assert stream.path[0] == "m0:ctrl:0"  # read from the source buffer
        assert WIRE_ID in stream.path
        assert stream.path[-1] == "m1:ctrl:0"  # write into the dest buffer
        # Transmit side uses the tx port; receive side the rx port.
        assert "m0:nic-tx:0" in stream.path
        assert "m1:nic:0" in stream.path

    def test_reverse_direction(self, cluster):
        stream = transfer_stream(
            cluster, stream_id="msg", src_rank=1, src_node=1, dst_node=0
        )
        assert stream.path[0] == "m1:ctrl:1"
        assert stream.path[-1] == "m0:ctrl:0"

    def test_invalid_rank(self, cluster):
        with pytest.raises(CommunicationError):
            transfer_stream(
                cluster, stream_id="m", src_rank=2, src_node=0, dst_node=0
            )

    def test_ceiling_respects_fabric(self, cluster):
        stream = transfer_stream(
            cluster, stream_id="msg", src_rank=0, src_node=0, dst_node=0
        )
        assert stream.demand_gbps <= cluster.fabric.line_rate_gbps


class TestEndToEnd:
    def test_idle_cluster_runs_at_nominal(self, cluster, arbiter):
        stream = transfer_stream(
            cluster, stream_id="msg", src_rank=0, src_node=0, dst_node=0
        )
        allocation = arbiter.solve([stream])
        assert allocation.rate("msg") == pytest.approx(
            stream.demand_gbps, rel=1e-6
        )

    def test_receiver_contention_throttles(self, cluster, arbiter):
        streams = [
            transfer_stream(
                cluster, stream_id="msg", src_rank=0, src_node=0, dst_node=0
            )
        ]
        streams += compute_streams(cluster, rank=1, n_cores=18, data_node=0)
        allocation = arbiter.solve(streams)
        assert allocation.rate("msg") < 0.6 * streams[0].demand_gbps

    def test_sender_contention_also_throttles(self, cluster, arbiter):
        """The experiment the paper's independence assumption excludes:
        computations on the SENDER squeeze the outgoing message too."""
        streams = [
            transfer_stream(
                cluster, stream_id="msg", src_rank=0, src_node=0, dst_node=0
            )
        ]
        streams += compute_streams(cluster, rank=0, n_cores=18, data_node=0)
        allocation = arbiter.solve(streams)
        assert allocation.rate("msg") < 0.6 * streams[0].demand_gbps

    def test_disjoint_machines_do_not_interact(self, cluster, arbiter):
        """Computation on node 1's socket does not slow computation on
        node 0: the machines only share the wire."""
        solo = arbiter.solve(
            compute_streams(cluster, rank=0, n_cores=12, data_node=0)
        )
        both = arbiter.solve(
            compute_streams(cluster, rank=0, n_cores=12, data_node=0)
            + compute_streams(cluster, rank=1, n_cores=18, data_node=0)
        )
        total_solo = sum(
            v for k, v in solo.rates.items() if k.startswith("m0core")
        )
        total_both = sum(
            v for k, v in both.rates.items() if k.startswith("m0core")
        )
        assert total_both == pytest.approx(total_solo, rel=1e-9)

    def test_engine_transfer(self, cluster):
        engine = Engine(
            cluster.node0.machine,
            cluster.node0.profile,
            resource_map=build_cluster_resources(cluster),
        )
        stream = transfer_stream(
            cluster, stream_id="msg", src_rank=0, src_node=0, dst_node=0
        )
        flow = engine.submit(stream, 64 * MB)
        engine.run()
        assert flow.observed_gbps() == pytest.approx(12.3, rel=0.02)

    def test_compute_streams_validation(self, cluster):
        with pytest.raises(SimulationError):
            compute_streams(cluster, rank=0, n_cores=0, data_node=0)
        with pytest.raises(CommunicationError):
            compute_streams(cluster, rank=3, n_cores=2, data_node=0)
