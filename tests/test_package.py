"""Package-level API surface checks."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.topology",
    "repro.memsim",
    "repro.net",
    "repro.mpi",
    "repro.kernels",
    "repro.bench",
    "repro.core",
    "repro.evaluation",
    "repro.baselines",
    "repro.advisor",
]


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_all_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolvable(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_objects_documented(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"

    def test_quickstart_snippet_from_readme(self):
        """The README's quickstart code runs as shown."""
        from repro import SweepConfig, calibrate_placement_model, get_platform
        from repro.bench import run_sample_sweeps

        platform = get_platform("henri")
        dataset = run_sample_sweeps(
            platform, config=SweepConfig(seed=42), core_counts=[1, 6, 12, 14, 18]
        )
        model = calibrate_placement_model(dataset, platform)
        comp = model.comp_parallel(14, 0, 1)
        comm = model.comm_parallel(14, 0, 1)
        assert comp > 50.0
        assert 0.0 < comm < 12.5
