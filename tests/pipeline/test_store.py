"""The artifact store contract: atomicity, verification, degradation.

Every corruption scenario must degrade to a recompute (``load`` returns
``None``) — never a crash, never stale data served as fresh.
"""

import json
import threading

import pytest

from repro.errors import PipelineError
from repro.pipeline.stage import StageKey
from repro.pipeline.store import MANIFEST_VERSION, ArtifactStore


def make_key(
    stage="measure", platform="henri", version="1", fingerprint="ab" * 8
):
    return StageKey(
        platform=platform, stage=stage, version=version, fingerprint=fingerprint
    )


PAYLOADS = {"dataset.csv": "a,b\r\n1,2\r\n", "meta.json": '{"x": 1}'}


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


class TestRoundTrip:
    def test_save_load_exact(self, store):
        key = make_key()
        store.save(key, PAYLOADS, provenance={"note": "test"})
        assert store.load(key) == PAYLOADS
        assert store.stats.stores == 1
        assert store.stats.hits == 1

    def test_missing_entry_is_a_miss(self, store):
        assert store.load(make_key()) is None
        assert store.stats.misses == 1
        assert store.stats.discards == 0

    def test_crlf_payload_survives(self, store):
        """CSV payloads carry \\r\\n; newline translation would corrupt them."""
        key = make_key()
        store.save(key, {"curves.csv": "n,v\r\n1,2.5\r\n"})
        assert store.load(key)["curves.csv"] == "n,v\r\n1,2.5\r\n"

    def test_fresh_handle_reads_existing_entry(self, store):
        key = make_key()
        store.save(key, PAYLOADS)
        other = ArtifactStore(store.root)
        assert other.load(key) == PAYLOADS

    def test_no_temp_residue(self, store):
        store.save(make_key(), PAYLOADS)
        tmp = store.root / ".tmp"
        assert not tmp.exists() or not any(tmp.iterdir())


class TestSaveValidation:
    def test_empty_payloads_rejected(self, store):
        with pytest.raises(PipelineError, match="empty artifact"):
            store.save(make_key(), {})

    @pytest.mark.parametrize(
        "name", ["../escape", "a/b", ".hidden", "manifest.json", "stats.json"]
    )
    def test_bad_payload_names_rejected(self, store, name):
        with pytest.raises(PipelineError, match="payload file name"):
            store.save(make_key(), {name: "x"})

    def test_root_must_be_a_directory(self, tmp_path):
        target = tmp_path / "afile"
        target.write_text("not a dir")
        with pytest.raises(PipelineError, match="not a directory"):
            ArtifactStore(target)


class TestPublishFailures:
    """Only a *lost race* is a duplicate; every other rename failure
    must propagate — a swallowed ENOSPC would silently drop the entry
    and look exactly like a recompute forever after."""

    def test_rename_oserror_without_a_winner_propagates(
        self, store, monkeypatch
    ):
        from pathlib import Path

        def refuse(self, target):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(Path, "rename", refuse)
        key = make_key()
        with pytest.raises(OSError, match="No space left"):
            store.save(key, PAYLOADS)
        assert store.stats.stores == 0
        assert store.stats.duplicates == 0
        # The failed save left no temp residue and no entry behind.
        monkeypatch.undo()
        assert store.load(key) is None
        tmp = store.root / ".tmp"
        assert not tmp.exists() or not any(tmp.iterdir())

    def test_rename_oserror_with_a_winner_is_a_duplicate(
        self, store, monkeypatch
    ):
        from pathlib import Path

        key = make_key()
        store.save(key, PAYLOADS)  # a concurrent writer already won

        def lose_the_race(self, target):
            raise OSError(39, "Directory not empty")

        monkeypatch.setattr(Path, "rename", lose_the_race)
        store.save(key, PAYLOADS)
        assert store.stats.stores == 1
        assert store.stats.duplicates == 1
        monkeypatch.undo()
        assert store.load(key) == PAYLOADS


def _entry_dir(store, key):
    return store.root / key.platform / key.entry_name


class TestCorruptionDegradesToRecompute:
    """Damaged entries are logged, discarded, and reported as misses."""

    def _saved(self, store):
        key = make_key()
        store.save(key, PAYLOADS)
        return key, _entry_dir(store, key)

    def _assert_discarded(self, store, key, entry):
        assert store.load(key) is None
        assert not entry.exists()
        assert store.stats.discards == 1
        assert store.stats.misses == 1

    def test_truncated_manifest(self, store):
        key, entry = self._saved(store)
        manifest = entry / "manifest.json"
        manifest.write_text(manifest.read_text()[:20])
        self._assert_discarded(store, key, entry)

    def test_manifest_not_json(self, store):
        key, entry = self._saved(store)
        (entry / "manifest.json").write_text("not json at all")
        self._assert_discarded(store, key, entry)

    def test_manifest_not_an_object(self, store):
        key, entry = self._saved(store)
        (entry / "manifest.json").write_text('["a", "list"]')
        self._assert_discarded(store, key, entry)

    def test_version_mismatch(self, store):
        key, entry = self._saved(store)
        manifest = json.loads((entry / "manifest.json").read_text())
        manifest["manifest_version"] = MANIFEST_VERSION + 1
        (entry / "manifest.json").write_text(json.dumps(manifest))
        self._assert_discarded(store, key, entry)

    def test_key_mismatch(self, store):
        key, entry = self._saved(store)
        manifest = json.loads((entry / "manifest.json").read_text())
        manifest["key"]["fingerprint"] = "0" * 16
        (entry / "manifest.json").write_text(json.dumps(manifest))
        self._assert_discarded(store, key, entry)

    def test_missing_payload_file(self, store):
        key, entry = self._saved(store)
        (entry / "dataset.csv").unlink()
        self._assert_discarded(store, key, entry)

    def test_payload_checksum_mismatch(self, store):
        key, entry = self._saved(store)
        (entry / "dataset.csv").write_bytes(b"tampered bytes")
        self._assert_discarded(store, key, entry)

    def test_manifest_lists_no_files(self, store):
        key, entry = self._saved(store)
        manifest = json.loads((entry / "manifest.json").read_text())
        manifest["files"] = {}
        (entry / "manifest.json").write_text(json.dumps(manifest))
        self._assert_discarded(store, key, entry)

    def test_recovery_after_discard(self, store):
        """A discarded entry can immediately be re-stored and served."""
        key, entry = self._saved(store)
        (entry / "dataset.csv").write_bytes(b"tampered")
        assert store.load(key) is None
        store.save(key, PAYLOADS)
        assert store.load(key) == PAYLOADS


class TestHitCounter:
    def test_hits_persist_across_handles(self, store):
        key = make_key()
        store.save(key, PAYLOADS)
        store.load(key)
        store.load(key)
        assert store.hits_recorded(key) == 2
        assert ArtifactStore(store.root).hits_recorded(key) == 2

    def test_absent_entry_has_zero_hits(self, store):
        assert store.hits_recorded(make_key()) == 0

    def test_corrupt_stats_sidecar_is_harmless(self, store):
        key = make_key()
        store.save(key, PAYLOADS)
        (_entry_dir(store, key) / "stats.json").write_text("garbage")
        assert store.load(key) == PAYLOADS  # payload still served
        assert store.hits_recorded(key) == 1  # counter restarted

    @pytest.mark.parametrize(
        "content",
        ['["a", "list"]', '{"hits": null}', '{"hits": "many"}', "{}", ""],
    )
    def test_degenerate_stats_reset_to_zero(self, store, content):
        """Regression: non-dict JSON and non-int hit counts used to
        raise (AttributeError / TypeError) out of hits_recorded; every
        shape of damage must read as zero and never crash."""
        key = make_key()
        store.save(key, PAYLOADS)
        (_entry_dir(store, key) / "stats.json").write_text(content)
        assert store.hits_recorded(key) == 0
        assert store.load(key) == PAYLOADS
        assert store.hits_recorded(key) == 1

    def test_negative_hits_clamped(self, store):
        key = make_key()
        store.save(key, PAYLOADS)
        (_entry_dir(store, key) / "stats.json").write_text('{"hits": -4}')
        assert store.hits_recorded(key) == 0

    def test_racing_readers_lose_no_hits(self, store):
        """Regression: the hit bump was a read-modify-write without a
        lock, so concurrent loads silently dropped increments."""
        key = make_key()
        store.save(key, PAYLOADS)
        n_threads, loads_each = 8, 5
        barrier = threading.Barrier(n_threads)
        failures = []

        def reader():
            handle = ArtifactStore(store.root)
            barrier.wait()
            for _ in range(loads_each):
                if handle.load(key) != PAYLOADS:
                    failures.append("bad payload")

        threads = [threading.Thread(target=reader) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert failures == []
        assert store.hits_recorded(key) == n_threads * loads_each


class TestInspection:
    def test_entries_and_find(self, store):
        k1 = make_key(stage="measure")
        k2 = make_key(stage="calibrate")
        store.save(k1, PAYLOADS)
        store.save(k2, {"m.json": "{}"})
        infos = store.entries()
        assert {i.entry_id for i in infos} == {k1.entry_id, k2.entry_id}
        by_id = {i.entry_id: i for i in infos}
        assert by_id[k1.entry_id].n_files == 2
        assert by_id[k1.entry_id].payload_bytes == sum(
            len(t.encode()) for t in PAYLOADS.values()
        )
        assert store.find(k1.entry_id) == k1

    def test_find_unknown_raises(self, store):
        with pytest.raises(PipelineError, match="no cache entry"):
            store.find("nope/measure-v1-feedfeedfeedfeed")

    def test_manifest_unknown_raises(self, store):
        with pytest.raises(PipelineError, match="no cache entry"):
            store.manifest(make_key())

    def test_manifest_carries_provenance(self, store):
        key = make_key()
        store.save(key, PAYLOADS, provenance={"sweep_config": {"seed": 7}})
        manifest = store.manifest(key)
        assert manifest["provenance"]["sweep_config"]["seed"] == 7
        assert manifest["manifest_version"] == MANIFEST_VERSION

    def test_clear(self, store):
        store.save(make_key(stage="measure"), PAYLOADS)
        store.save(make_key(stage="calibrate"), PAYLOADS)
        assert store.clear() == 2
        assert store.entries() == []
        assert store.clear() == 0


class TestConcurrentWriters:
    def test_racing_writers_are_safe(self, store):
        """N threads saving the same key: one wins, nobody corrupts."""
        key = make_key()
        barrier = threading.Barrier(8)
        errors = []

        def writer():
            handle = ArtifactStore(store.root)
            barrier.wait()
            try:
                handle.save(key, PAYLOADS)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.load(key) == PAYLOADS
        tmp = store.root / ".tmp"
        assert not tmp.exists() or not any(tmp.iterdir())

    def test_racing_distinct_keys(self, store):
        keys = [make_key(fingerprint=f"{i:016x}") for i in range(6)]
        barrier = threading.Barrier(len(keys))

        def writer(k):
            handle = ArtifactStore(store.root)
            barrier.wait()
            handle.save(k, {"data.json": json.dumps({"k": k.fingerprint})})

        threads = [threading.Thread(target=writer, args=(k,)) for k in keys]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for k in keys:
            assert store.load(k) == {
                "data.json": json.dumps({"k": k.fingerprint})
            }

    def test_second_save_is_a_duplicate_not_a_silent_drop(self, store):
        """Losing the publish race must bump ``duplicates``, not vanish."""
        key = make_key()
        store.save(key, PAYLOADS)
        store.save(key, PAYLOADS)  # entry exists: the rename loses
        assert store.stats.stores == 1
        assert store.stats.duplicates == 1
        assert store.load(key) == PAYLOADS

    def test_racing_writers_reconcile_the_books(self, store):
        """Across all handles, stores + duplicates == saves attempted."""
        key = make_key()
        n_writers = 8
        handles = [ArtifactStore(store.root) for _ in range(n_writers)]
        barrier = threading.Barrier(n_writers)
        errors = []

        def writer(handle):
            barrier.wait()
            try:
                handle.save(key, PAYLOADS)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(h,)) for h in handles
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stores = sum(h.stats.stores for h in handles)
        duplicates = sum(h.stats.duplicates for h in handles)
        assert stores == 1  # exactly one rename can win
        assert stores + duplicates == n_writers
        assert store.load(key) == PAYLOADS
