"""Cache semantics of the staged pipeline.

The load-bearing guarantees: a warm run is bit-identical to a cold run
and provably skips the expensive stages; parallel execution is
bit-identical to serial; any config change invalidates; corruption
degrades to recompute.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.bench import SweepConfig
from repro.errors import PipelineError
from repro.evaluation import run_all_experiments, run_platform_experiment
from repro.pipeline import (
    ArtifactStore,
    config_fingerprint,
    run_all_pipelines,
    run_platform_pipeline,
)

CONFIG = SweepConfig(seed=1)


def assert_results_identical(a, b):
    """Bit-for-bit equality of two ExperimentResults."""
    assert a.platform.name == b.platform.name
    assert a.dataset.to_csv(full_precision=True) == b.dataset.to_csv(
        full_precision=True
    )
    assert a.model.local.to_json() == b.model.local.to_json()
    assert a.model.remote.to_json() == b.model.remote.to_json()
    assert set(a.predictions) == set(b.predictions)
    for key in a.predictions:
        pa, pb = a.predictions[key], b.predictions[key]
        assert np.array_equal(pa.comp_parallel, pb.comp_parallel)
        assert np.array_equal(pa.comm_parallel, pb.comm_parallel)
        assert np.array_equal(pa.comp_alone, pb.comp_alone)
        assert pa.comm_alone == pb.comm_alone
    assert a.errors == b.errors
    assert a.sample_keys == b.sample_keys


class TestColdWarm:
    def test_warm_run_is_bit_identical_and_skips(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = run_platform_pipeline("henri", config=CONFIG, store=store)
        assert cold.stats.source_of("measure") == "computed"
        assert cold.stats.source_of("calibrate") == "computed"
        assert cold.stats.source_of("predict") == "derived"
        assert cold.stats.source_of("score") == "derived"

        warm = run_platform_pipeline("henri", config=CONFIG, store=store)
        assert warm.stats.cached_stages == ("measure", "calibrate")
        assert warm.stats.computed_stages == ()
        assert_results_identical(cold.result, warm.result)

    def test_cache_dir_and_store_are_equivalent(self, tmp_path):
        first = run_platform_pipeline("henri", config=CONFIG, cache_dir=tmp_path)
        second = run_platform_pipeline(
            "henri", config=CONFIG, store=ArtifactStore(tmp_path)
        )
        assert second.stats.cached_stages == ("measure", "calibrate")
        assert_results_identical(first.result, second.result)

    def test_uncached_matches_cached(self, tmp_path):
        cached = run_platform_pipeline("henri", config=CONFIG, cache_dir=tmp_path)
        plain = run_platform_pipeline("henri", config=CONFIG)
        assert plain.stats.cached_stages == ()
        assert_results_identical(cached.result, plain.result)

    def test_store_and_cache_dir_together_rejected(self, tmp_path):
        with pytest.raises(PipelineError, match="not both"):
            run_platform_pipeline(
                "henri",
                config=CONFIG,
                store=ArtifactStore(tmp_path),
                cache_dir=tmp_path,
            )

    def test_experiment_facade_uses_the_cache(self, tmp_path):
        """run_platform_experiment is a thin consumer of the pipeline."""
        store = ArtifactStore(tmp_path)
        first = run_platform_experiment("henri", config=CONFIG, store=store)
        before = store.stats.as_dict()
        second = run_platform_experiment("henri", config=CONFIG, store=store)
        after = store.stats.as_dict()
        assert after["hits"] == before["hits"] + 2  # measure + calibrate
        assert after["stores"] == before["stores"]
        assert_results_identical(first, second)


class TestFingerprintInvalidation:
    @pytest.mark.parametrize(
        "change",
        [
            {"message_bytes": 32_000_000},
            {"bytes_per_core": 256 * 1024 * 1024},
            {"seed": 2},
            {"noiseless": True},
            {"use_engine": True},
            {"repetitions": 3},
            {"labels": {"run": "b"}},
        ],
        ids=lambda c: next(iter(c)),
    )
    def test_every_field_changes_the_fingerprint(self, change):
        assert config_fingerprint(
            dataclasses.replace(CONFIG, **change)
        ) != config_fingerprint(CONFIG)

    def test_equal_configs_share_a_fingerprint(self):
        assert config_fingerprint(SweepConfig(seed=1)) == config_fingerprint(
            SweepConfig(seed=1)
        )

    def test_changed_config_recomputes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_platform_pipeline("henri", config=CONFIG, store=store)
        other = run_platform_pipeline(
            "henri", config=dataclasses.replace(CONFIG, seed=2), store=store
        )
        assert other.stats.computed_stages == ("measure", "calibrate")
        assert len(store.entries()) == 4  # both configs coexist


class TestCorruptionRecovery:
    def _warm_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = run_platform_pipeline("henri", config=CONFIG, store=store)
        return store, cold

    def _measure_entry(self, store):
        (info,) = [e for e in store.entries() if e.key.stage == "measure"]
        return store.root / info.key.platform / info.key.entry_name

    def test_tampered_payload_recomputes(self, tmp_path):
        store, cold = self._warm_store(tmp_path)
        (self._measure_entry(store) / "dataset.csv").write_bytes(b"junk")
        warm = run_platform_pipeline("henri", config=CONFIG, store=store)
        assert warm.stats.source_of("measure") == "computed"
        assert warm.stats.source_of("calibrate") == "cached"
        assert_results_identical(cold.result, warm.result)

    def test_truncated_manifest_recomputes(self, tmp_path):
        store, cold = self._warm_store(tmp_path)
        manifest = self._measure_entry(store) / "manifest.json"
        manifest.write_text(manifest.read_text()[:25])
        warm = run_platform_pipeline("henri", config=CONFIG, store=store)
        assert warm.stats.source_of("measure") == "computed"
        assert_results_identical(cold.result, warm.result)

    def test_version_mismatch_recomputes(self, tmp_path):
        store, cold = self._warm_store(tmp_path)
        manifest_path = self._measure_entry(store) / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["manifest_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        warm = run_platform_pipeline("henri", config=CONFIG, store=store)
        assert warm.stats.source_of("measure") == "computed"
        assert_results_identical(cold.result, warm.result)

    def test_undeserialisable_entry_recomputes(self, tmp_path):
        """A checksum-valid entry for the wrong platform is discarded."""
        store, cold = self._warm_store(tmp_path)
        entry = self._measure_entry(store)
        meta_path = entry / "dataset_meta.json"
        meta = json.loads(meta_path.read_text())
        meta["platform"] = "diablo"
        new_text = json.dumps(meta)
        meta_path.write_bytes(new_text.encode("utf-8"))
        # Re-sign the manifest so only deserialisation can object.
        import hashlib

        manifest_path = entry / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["files"]["dataset_meta.json"]["sha256"] = hashlib.sha256(
            new_text.encode("utf-8")
        ).hexdigest()
        manifest["files"]["dataset_meta.json"]["bytes"] = len(new_text)
        manifest_path.write_bytes(json.dumps(manifest).encode("utf-8"))

        warm = run_platform_pipeline("henri", config=CONFIG, store=store)
        assert warm.stats.source_of("measure") == "computed"
        assert_results_identical(cold.result, warm.result)


class TestParallelBitIdentity:
    def test_grid_jobs_thread_and_process(self):
        serial = run_platform_pipeline("henri", config=CONFIG)
        for mode in ("thread", "process"):
            par = run_platform_pipeline(
                "henri", config=CONFIG, jobs=2, executor_mode=mode
            )
            assert_results_identical(serial.result, par.result)

    def test_all_platforms_parallel_matches_serial(self):
        serial = run_all_pipelines(config=CONFIG)
        parallel = run_all_pipelines(config=CONFIG, jobs=3, executor_mode="thread")
        assert list(serial) == list(parallel)  # Table I order preserved
        for name in serial:
            assert_results_identical(serial[name].result, parallel[name].result)

    def test_run_all_experiments_facade(self, tmp_path):
        serial = run_all_experiments(config=CONFIG, cache_dir=tmp_path)
        warm = run_all_experiments(
            config=CONFIG, cache_dir=tmp_path, jobs=2, executor_mode="thread"
        )
        for name in serial:
            assert_results_identical(serial[name], warm[name])

    def test_parallel_writers_share_one_cache(self, tmp_path):
        """Platforms fanned out over one cache dir all persist cleanly."""
        run_all_pipelines(
            config=CONFIG, cache_dir=tmp_path, jobs=3, executor_mode="thread"
        )
        store = ArtifactStore(tmp_path)
        warm = run_all_pipelines(config=CONFIG, store=store)
        for run in warm.values():
            assert run.stats.cached_stages == ("measure", "calibrate")
