"""The parallel executor: ordering, fallbacks, and error propagation."""

import os

import pytest

from repro.errors import PipelineError
from repro.pipeline.executor import parallel_map, resolve_jobs


def _square(x):
    """Top-level so process pools can pickle it."""
    return x * x


def _boom(x):
    if x == 2:
        raise ValueError("item two is broken")
    return x


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_zero_and_none_mean_cpu_count(self):
        expected = os.cpu_count() or 1
        assert resolve_jobs(0) == expected
        assert resolve_jobs(None) == expected

    def test_bool_rejected(self):
        with pytest.raises(PipelineError):
            resolve_jobs(True)

    def test_negative_rejected(self):
        with pytest.raises(PipelineError):
            resolve_jobs(-1)


class TestParallelMap:
    def test_serial_inline(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_empty(self):
        assert parallel_map(_square, [], jobs=4) == []

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_order_preserved(self, mode):
        items = list(range(8))
        assert parallel_map(_square, items, jobs=4, mode=mode) == [
            x * x for x in items
        ]

    def test_single_item_runs_inline(self):
        assert parallel_map(_square, [5], jobs=8) == [25]

    def test_invalid_mode_rejected(self):
        with pytest.raises(PipelineError):
            parallel_map(_square, [1, 2], jobs=2, mode="fiber")

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_real_exception_propagates(self, mode):
        """The worker's own error surfaces, never a CancelledError."""
        with pytest.raises(ValueError, match="item two is broken"):
            parallel_map(_boom, [0, 1, 2, 3], jobs=2, mode=mode)

    def test_serial_exception_propagates(self):
        with pytest.raises(ValueError, match="item two is broken"):
            parallel_map(_boom, [2], jobs=1)
