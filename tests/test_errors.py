"""The exception hierarchy contract: everything derives from ReproError."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.TopologyError,
        errors.SimulationError,
        errors.ArbitrationError,
        errors.CalibrationError,
        errors.ModelError,
        errors.PlacementError,
        errors.BenchmarkError,
        errors.CommunicationError,
        errors.AdvisorError,
        errors.ServiceError,
        errors.PipelineError,
        errors.ObsError,
    ],
)
def test_derives_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_arbitration_is_simulation_error():
    assert issubclass(errors.ArbitrationError, errors.SimulationError)


def test_placement_is_model_error():
    assert issubclass(errors.PlacementError, errors.ModelError)


def test_all_exports_exist():
    for name in errors.__all__:
        assert hasattr(errors, name)
