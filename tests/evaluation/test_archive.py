"""Experiment archive round-trips."""

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.evaluation.archive import load_experiment, save_experiment


class TestRoundTrip:
    def test_files_written(self, henri_experiment, tmp_path):
        target = save_experiment(henri_experiment, tmp_path / "henri")
        for name in (
            "dataset.csv",
            "model_local.json",
            "model_remote.json",
            "errors.json",
            "meta.json",
        ):
            assert (target / name).exists()

    def test_reload_is_equivalent(self, henri_experiment, tmp_path):
        save_experiment(henri_experiment, tmp_path / "henri")
        restored = load_experiment(tmp_path / "henri")
        assert restored.platform.name == "henri"
        assert restored.model.local == henri_experiment.model.local
        assert restored.model.remote == henri_experiment.model.remote
        assert restored.sample_keys == henri_experiment.sample_keys
        # Errors recompute to the same values (up to the CSV's
        # 6-decimal serialisation of the measured curves).
        assert restored.errors.average == pytest.approx(
            henri_experiment.errors.average, rel=1e-5
        )

    def test_predictions_recomputed_identically(self, henri_experiment, tmp_path):
        save_experiment(henri_experiment, tmp_path / "henri")
        restored = load_experiment(tmp_path / "henri")
        for key in henri_experiment.predictions:
            assert np.allclose(
                restored.predictions[key].comm_parallel,
                henri_experiment.predictions[key].comm_parallel,
            )

    def test_errors_json_content(self, henri_experiment, tmp_path):
        target = save_experiment(henri_experiment, tmp_path / "henri")
        data = json.loads((target / "errors.json").read_text())
        assert data["platform"] == "henri"
        assert data["average"] == pytest.approx(henri_experiment.errors.average)


class TestErrors:
    def test_incomplete_archive(self, henri_experiment, tmp_path):
        target = save_experiment(henri_experiment, tmp_path / "henri")
        (target / "model_local.json").unlink()
        with pytest.raises(ReproError, match="missing"):
            load_experiment(target)

    def test_missing_errors_json_rejected(self, henri_experiment, tmp_path):
        """Regression: errors.json is part of the archive contract (the
        docstring always said so) — a copy without it must not load."""
        target = save_experiment(henri_experiment, tmp_path / "henri")
        (target / "errors.json").unlink()
        with pytest.raises(ReproError, match="errors.json"):
            load_experiment(target)

    def test_truncated_errors_json_rejected(self, henri_experiment, tmp_path):
        target = save_experiment(henri_experiment, tmp_path / "henri")
        data = json.loads((target / "errors.json").read_text())
        del data["average"]
        (target / "errors.json").write_text(json.dumps(data))
        with pytest.raises(ReproError, match="missing keys.*average"):
            load_experiment(target)

    def test_mismatched_errors_platform_rejected(
        self, henri_experiment, tmp_path
    ):
        target = save_experiment(henri_experiment, tmp_path / "henri")
        data = json.loads((target / "errors.json").read_text())
        data["platform"] = "occigen"
        (target / "errors.json").write_text(json.dumps(data))
        with pytest.raises(ReproError, match="inconsistent"):
            load_experiment(target)

    def test_wrong_version(self, henri_experiment, tmp_path):
        target = save_experiment(henri_experiment, tmp_path / "henri")
        meta = json.loads((target / "meta.json").read_text())
        meta["format_version"] = 42
        (target / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ReproError, match="version"):
            load_experiment(target)

    def test_empty_directory(self, tmp_path):
        with pytest.raises(ReproError, match="missing"):
            load_experiment(tmp_path)
