"""Experiment runs, the registry, and table renderers."""

import pytest

from repro.bench import SweepConfig
from repro.errors import ReproError
from repro.evaluation import (
    EXPERIMENTS,
    render_table1,
    render_table2,
    run_platform_experiment,
)
from repro.evaluation.experiments import figure_platform
from repro.evaluation.report import PAPER_TABLE2, generate_experiments_report


class TestExperimentRun:
    def test_accepts_platform_name(self, seeded_config):
        result = run_platform_experiment("occigen", config=seeded_config)
        assert result.platform.name == "occigen"

    def test_predictions_cover_all_placements(self, henri_experiment):
        assert set(henri_experiment.predictions) == set(
            henri_experiment.dataset.sweep.placements()
        )

    def test_sample_keys(self, henri_experiment):
        assert henri_experiment.sample_keys == ((0, 0), (1, 1))

    def test_model_calibrated_from_samples_only(self, henri_experiment):
        """Re-calibrating from just the two samples gives the same model."""
        from repro.bench.sweep import run_sample_sweeps
        from repro.core import calibrate_placement_model

        samples_only = run_sample_sweeps(
            henri_experiment.platform, config=SweepConfig(seed=1)
        )
        model = calibrate_placement_model(samples_only, henri_experiment.platform)
        assert model.local == henri_experiment.model.local
        assert model.remote == henri_experiment.model.remote


class TestRegistry:
    def test_every_paper_artefact_present(self):
        assert set(EXPERIMENTS) == {
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table1",
            "table2",
        }

    def test_figure_platform_mapping(self):
        assert figure_platform("fig3") == "henri"
        assert figure_platform("fig5") == "diablo"
        assert figure_platform("fig7") == "pyxis"

    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown"):
            figure_platform("fig99")

    def test_all_platform_experiments_rejected(self):
        with pytest.raises(ReproError, match="all platforms"):
            figure_platform("table2")

    def test_bench_targets_exist(self):
        import pathlib

        for spec in EXPERIMENTS.values():
            assert (pathlib.Path(__file__).parents[2] / spec.bench_target).exists(), (
                f"{spec.experiment_id} bench target missing: {spec.bench_target}"
            )


class TestTables:
    def test_table1_contains_all_platforms(self):
        text = render_table1()
        for name in ("henri", "henri-subnuma", "dahu", "diablo", "pyxis", "occigen"):
            assert name in text
        assert "OMNI-PATH" in text

    def test_table2_renders_all_rows(self, all_experiments):
        text = render_table2(all_experiments)
        assert text.count("%") >= 7 * 7  # 6 platforms + average row
        assert "Average" in text
        for name in all_experiments:
            assert name in text

    def test_report_generation(self, all_experiments):
        report = generate_experiments_report(all_experiments)
        assert "# EXPERIMENTS" in report
        assert "Table II" in report
        for name in PAPER_TABLE2:
            assert name in report
        assert "fig5" in report
