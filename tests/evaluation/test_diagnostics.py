"""Model-limits diagnostics tests."""

import numpy as np
import pytest

from repro.evaluation.diagnostics import (
    comm_drop_onset,
    diagnose,
    region_errors,
    render_diagnosis,
)


class TestOnset:
    def test_henri_local_model_is_late(self, henri_experiment):
        """§IV-B a: 'the model predicts a decrease starting with 14
        computing cores, while it is 10 in reality' — our testbed shows
        the same direction of error on the local sample."""
        curves = henri_experiment.dataset.sweep[(0, 0)]
        prediction = henri_experiment.predictions[(0, 0)]
        onset = comm_drop_onset(curves, prediction)
        assert onset.measured_onset is not None
        assert onset.predicted_onset is not None
        assert onset.model_is_late
        assert onset.lateness_cores >= 1

    def test_no_drop_when_no_contention(self, all_experiments):
        result = all_experiments["occigen"]
        curves = result.dataset.sweep[(0, 0)]
        onset = comm_drop_onset(curves, result.predictions[(0, 0)])
        assert onset.measured_onset is None
        assert not onset.model_is_late
        assert onset.lateness_cores == 0


class TestRegionErrors:
    def test_transition_region_is_the_weak_spot(self, henri_experiment):
        """The paper localises the flaw in the band between the two
        maxima; the region split makes that measurable."""
        curves = henri_experiment.dataset.sweep[(0, 0)]
        prediction = henri_experiment.predictions[(0, 0)]
        regions = region_errors(curves, prediction, henri_experiment.model.local)
        assert regions.worst_region() == "transition"
        assert regions.transition > regions.floor

    def test_empty_region_is_nan(self, henri_experiment):
        """With N_par == N_seq the transition band is empty."""
        import dataclasses

        params = henri_experiment.model.local
        squashed = dataclasses.replace(
            params,
            n_par_max=params.n_seq_max,
            t_par_max=params.t_par_max,
            t_par_max2=params.t_par_max,
            delta_l=0.0,
        )
        curves = henri_experiment.dataset.sweep[(0, 0)]
        prediction = henri_experiment.predictions[(0, 0)]
        regions = region_errors(curves, prediction, squashed)
        assert np.isnan(regions.transition)
        assert regions.worst_region() in ("plateau", "floor")


class TestDiagnose:
    def test_covers_all_placements(self, henri_experiment):
        diagnoses = diagnose(henri_experiment)
        assert set(diagnoses) == set(henri_experiment.dataset.sweep.placements())

    def test_remote_sample_uses_remote_params(self, henri_experiment):
        """The diagnosis regimes for (1,1) come from M_remote."""
        diagnoses = diagnose(henri_experiment)
        remote = henri_experiment.model.remote
        regions = diagnoses[(1, 1)].regions
        # Sanity: the region split was computable with remote knees.
        assert not np.isnan(regions.floor) or remote.n_seq_max >= 18

    def test_render(self, henri_experiment):
        text = render_diagnosis(henri_experiment)
        assert "model-limits diagnosis for henri" in text
        assert "meas onset" in text
        assert "too late" in text

    def test_render_quiet_platform(self, all_experiments):
        text = render_diagnosis(all_experiments["diablo"])
        assert "diablo" in text
