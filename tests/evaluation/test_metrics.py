"""MAPE and the Table II error breakdown."""

import numpy as np
import pytest

from repro.bench.sweep import sample_placements
from repro.errors import ModelError
from repro.evaluation import mape, placement_errors


class TestMape:
    def test_exact_prediction(self):
        assert mape([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_known_value(self):
        # Errors of 10% and 30% -> mean 20%.
        assert mape([10.0, 10.0], [11.0, 13.0]) == pytest.approx(20.0)

    def test_symmetric_in_sign(self):
        assert mape([10.0], [9.0]) == mape([10.0], [11.0])

    def test_shape_mismatch(self):
        with pytest.raises(ModelError, match="shape"):
            mape([1.0, 2.0], [1.0])

    def test_zero_actual_rejected(self):
        with pytest.raises(ModelError, match="zero"):
            mape([0.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ModelError, match="at least one"):
            mape([], [])

    def test_accepts_numpy(self):
        assert mape(np.array([4.0]), np.array([2.0])) == pytest.approx(50.0)


class TestPlacementErrors:
    def test_breakdown_structure(self, henri_experiment):
        errors = henri_experiment.errors
        assert errors.platform_name == "henri"
        # Sample and non-sample groups both populated on a 2-node machine.
        assert errors.comm_samples > 0
        assert errors.comm_non_samples > 0
        assert errors.average == pytest.approx(
            0.5 * (errors.comm_all + errors.comp_all)
        )

    def test_all_is_between_groups(self, henri_experiment):
        e = henri_experiment.errors
        lo, hi = sorted([e.comm_samples, e.comm_non_samples])
        assert lo - 1e-9 <= e.comm_all <= hi + 1e-9

    def test_as_row_length(self, henri_experiment):
        assert len(henri_experiment.errors.as_row()) == 7

    def test_recompute_matches(self, henri_experiment):
        recomputed = placement_errors(
            henri_experiment.dataset,
            henri_experiment.model,
            sample_placements(henri_experiment.platform),
        )
        assert recomputed == henri_experiment.errors
