"""Structural comparison against the published Table II."""

import math

import pytest

from repro.errors import ReproError
from repro.evaluation.compare import compare_to_paper, render_comparison
from repro.evaluation.metrics import ErrorBreakdown

#: The six testbed platforms in the paper's difficulty order
#: (Table II average ascending).
PLATFORMS = ["occigen", "diablo", "henri", "dahu", "henri-subnuma", "pyxis"]


class _StubResult:
    """The only surface compare_to_paper touches: ``.errors``."""

    def __init__(self, errors: ErrorBreakdown) -> None:
        self.errors = errors


def _stub_results(
    averages: dict[str, float],
    *,
    comm_samples: float = 1.0,
    comm_non_samples: float = 2.0,
    pyxis_non_samples: float = 12.0,
) -> dict[str, _StubResult]:
    """Six stub experiment results with controlled error averages.

    ``comm_all == comp_all == averages[name]`` keeps each platform's
    Table II average exactly at the requested value (the average column
    is their mean).
    """
    results = {}
    for name in PLATFORMS:
        value = averages[name]
        results[name] = _StubResult(
            ErrorBreakdown(
                platform_name=name,
                comm_samples=comm_samples,
                comm_non_samples=(
                    pyxis_non_samples if name == "pyxis" else comm_non_samples
                ),
                comm_all=value,
                comp_samples=comm_samples,
                comp_non_samples=comm_non_samples,
                comp_all=value,
            )
        )
    return results


def _paper_order_averages() -> dict[str, float]:
    """Averages ranking the platforms exactly as the paper does."""
    return {name: 0.5 + 0.5 * i for i, name in enumerate(PLATFORMS)}


def _claim(checks, fragment: str):
    matches = [c for c in checks if fragment in c.claim]
    assert len(matches) == 1, f"claim {fragment!r} matched {len(matches)}"
    return matches[0]


class TestCompare:
    def test_all_claims_hold(self, all_experiments):
        checks = compare_to_paper(all_experiments)
        failed = [c for c in checks if not c.holds]
        assert not failed, "\n".join(f"{c.claim}: {c.detail}" for c in failed)

    def test_claim_count(self, all_experiments):
        assert len(compare_to_paper(all_experiments)) == 7

    def test_partial_results_rejected(self, henri_experiment):
        with pytest.raises(ReproError, match="all platforms"):
            compare_to_paper({"henri": henri_experiment})

    def test_render(self, all_experiments):
        text = render_comparison(all_experiments)
        assert "7/7 structural claims hold" in text
        assert "Spearman" in text
        assert "[PASS]" in text and "[FAIL]" not in text

    def test_extra_platform_rejected(self, all_experiments, henri_experiment):
        superset = dict(all_experiments)
        superset["atlantis"] = henri_experiment
        with pytest.raises(ReproError, match="all platforms"):
            compare_to_paper(superset)

    def test_missing_single_platform_named(self, all_experiments):
        partial = {k: v for k, v in all_experiments.items() if k != "pyxis"}
        with pytest.raises(ReproError) as err:
            compare_to_paper(partial)
        # The message lists what was expected and what arrived, so a
        # truncated run is diagnosable from the error alone.
        assert "pyxis" in str(err.value)


class TestCompareEdgeCases:
    """Stubbed error rows: NaN propagation and claim boundary values."""

    def test_nan_error_averages_fail_without_crashing(self):
        averages = _paper_order_averages()
        averages["henri"] = float("nan")
        checks = compare_to_paper(_stub_results(averages))
        assert len(checks) == 7
        overall = _claim(checks, "lower than 4 %")
        # NaN poisons the mean: the claim must fail, not blow up, and
        # the rendered detail must show the NaN.
        assert not overall.holds
        assert "nan" in overall.detail
        assert not _claim(checks, "better predicted").holds
        text = render_comparison(_stub_results(averages))
        assert "[FAIL]" in text

    def test_overall_exactly_four_percent_fails(self):
        # The abstract's bound is strict: a 4.00 % reproduction does
        # not satisfy "lower than 4 %".
        checks = compare_to_paper(
            _stub_results({name: 4.0 for name in PLATFORMS})
        )
        assert not _claim(checks, "lower than 4 %").holds

    def test_overall_just_under_four_percent_holds(self):
        averages = {name: 3.99 for name in PLATFORMS}
        checks = compare_to_paper(_stub_results(averages))
        assert _claim(checks, "lower than 4 %").holds

    def test_pyxis_double_digit_boundary(self):
        averages = _paper_order_averages()
        at_boundary = compare_to_paper(
            _stub_results(averages, pyxis_non_samples=10.0)
        )
        # "double-digit" is inclusive: exactly 10 % qualifies.
        assert _claim(at_boundary, "double-digit").holds
        below = compare_to_paper(
            _stub_results(averages, pyxis_non_samples=9.99)
        )
        assert not _claim(below, "double-digit").holds

    def test_spearman_threshold(self):
        # Permutation distances are even, so 0.7 itself is unreachable
        # with six platforms; probe the nearest values on either side.
        # d² = 10 -> rho = 1 - 60/210 ≈ 0.714: holds.
        order_d10 = [
            "henri", "diablo", "occigen", "henri-subnuma", "dahu", "pyxis",
        ]
        averages = {name: 1.0 + i for i, name in enumerate(order_d10)}
        checks = compare_to_paper(_stub_results(averages))
        ordering = _claim(checks, "ordering matches")
        assert ordering.holds
        assert "0.71" in ordering.detail
        # d² = 14 -> rho = 1 - 84/210 = 0.6: fails.
        order_d14 = [
            "henri", "diablo", "occigen", "henri-subnuma", "pyxis", "dahu",
        ]
        averages = {name: 1.0 + i for i, name in enumerate(order_d14)}
        checks = compare_to_paper(_stub_results(averages))
        assert not _claim(checks, "ordering matches").holds

    def test_perfect_paper_order_is_rank_one(self):
        checks = compare_to_paper(_stub_results(_paper_order_averages()))
        ordering = _claim(checks, "ordering matches")
        assert ordering.holds
        assert "1.00" in ordering.detail
        assert _claim(checks, "occigen").holds
        assert _claim(checks, "least accurate").holds

    def test_render_counts_failures(self):
        averages = {name: 4.0 for name in PLATFORMS}
        text = render_comparison(
            _stub_results(averages, pyxis_non_samples=9.0)
        )
        passed, total = map(
            int, text.splitlines()[-1].split()[0].split("/")
        )
        assert total == 7
        assert passed < 7
        assert math.isfinite(passed)
