"""Structural comparison against the published Table II."""

import pytest

from repro.errors import ReproError
from repro.evaluation.compare import compare_to_paper, render_comparison


class TestCompare:
    def test_all_claims_hold(self, all_experiments):
        checks = compare_to_paper(all_experiments)
        failed = [c for c in checks if not c.holds]
        assert not failed, "\n".join(f"{c.claim}: {c.detail}" for c in failed)

    def test_claim_count(self, all_experiments):
        assert len(compare_to_paper(all_experiments)) == 7

    def test_partial_results_rejected(self, henri_experiment):
        with pytest.raises(ReproError, match="all platforms"):
            compare_to_paper({"henri": henri_experiment})

    def test_render(self, all_experiments):
        text = render_comparison(all_experiments)
        assert "7/7 structural claims hold" in text
        assert "Spearman" in text
        assert "[PASS]" in text and "[FAIL]" not in text
