"""Figure data generation and ASCII rendering."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.evaluation.figures import (
    ascii_chart,
    figure_series,
    render_figure_ascii,
    series_to_csv,
    stacked_figure,
)


class TestFigureSeries:
    def test_all_placements_present(self, henri_experiment):
        series = figure_series(henri_experiment)
        assert set(series) == {(0, 0), (0, 1), (1, 0), (1, 1)}

    def test_series_keys(self, henri_experiment):
        bundle = figure_series(henri_experiment)[(0, 0)]
        assert {
            "n",
            "meas_comp_alone",
            "meas_comm_alone",
            "meas_comp_parallel",
            "meas_comm_parallel",
            "model_comp_alone",
            "model_comp_parallel",
            "model_comm_parallel",
            "model_comm_alone",
        } == set(bundle)

    def test_model_close_to_measurement_on_samples(self, henri_experiment):
        bundle = figure_series(henri_experiment)[(0, 0)]
        rel = np.abs(
            bundle["model_comp_parallel"] - bundle["meas_comp_parallel"]
        ) / bundle["meas_comp_parallel"]
        assert rel.mean() < 0.05

    def test_csv_export(self, henri_experiment):
        text = series_to_csv(figure_series(henri_experiment))
        lines = text.strip().splitlines()
        assert lines[0] == "m_comp,m_comm,series,n,gbps"
        # 4 placements x 8 series x 18 points.
        assert len(lines) == 1 + 4 * 8 * 18


class TestStackedFigure:
    def test_stacked_from_experiment(self, henri_experiment):
        view = stacked_figure(henri_experiment)
        assert view.points["(1, Bcomp_seq)"][1] == pytest.approx(
            henri_experiment.model.local.b_comp_seq
        )


class TestAsciiRendering:
    def test_chart_renders(self):
        text = ascii_chart(
            [1, 2, 3, 4],
            {"a": [1.0, 2.0, 3.0, 4.0], "b": [4.0, 3.0, 2.0, 1.0]},
            title="demo",
        )
        assert "demo" in text
        assert "o=a" in text and "x=b" in text

    def test_chart_requires_series(self):
        with pytest.raises(ReproError):
            ascii_chart([1], {})

    def test_figure_ascii(self, henri_experiment):
        text = render_figure_ascii(henri_experiment, placements=[(0, 0)])
        assert "calibration sample" in text
        assert "comm_par(meas)" in text

    def test_figure_ascii_unknown_placement(self, henri_experiment):
        with pytest.raises(ReproError, match="no series"):
            render_figure_ascii(henri_experiment, placements=[(9, 9)])
