"""SVG figure rendering tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import stacked_view
from repro.evaluation.svg import COMM_COLOR, COMP_COLOR, figure_svg, stacked_svg


class TestFigureSvg:
    @pytest.fixture(scope="class")
    def svg(self, henri_experiment):
        return figure_svg(henri_experiment)

    def test_is_wellformed_xml(self, svg):
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_all_placements(self, svg):
        for m_comp in (0, 1):
            for m_comm in (0, 1):
                assert f"comp data: node {m_comp} — comm data: node {m_comm}" in svg

    def test_both_series_colors_present(self, svg):
        assert COMM_COLOR in svg
        assert COMP_COLOR in svg

    def test_samples_framed_bold(self, svg):
        # Two sample panels -> two thick frames.
        assert svg.count('stroke-width="2.4"') == 2

    def test_mentions_platform(self, svg):
        assert "henri" in svg

    def test_subnuma_grid_is_16_panels(self, all_experiments):
        svg = figure_svg(all_experiments["henri-subnuma"])
        assert svg.count("comp data: node") == 16
        ET.fromstring(svg)  # well-formed despite the size


class TestStackedSvg:
    def test_renders_and_annotates(self, henri_experiment):
        view = stacked_view(henri_experiment.model.local)
        svg = stacked_svg(view)
        ET.fromstring(svg)
        for label in view.points:
            assert label.split(",")[0].strip("( ") in svg
        assert "stacked memory bandwidth" in svg

    def test_areas_present(self, henri_experiment):
        view = stacked_view(henri_experiment.model.local)
        svg = stacked_svg(view)
        assert svg.count("<polygon") >= 2  # the two stacked bands
