"""Exporter contracts: JSONL round trip, Chrome schema, summaries."""

import json

import pytest

from repro.errors import ObsError
from repro.obs import (
    JSONL_VERSION,
    Tracer,
    counter,
    load_jsonl,
    render_summary,
    span,
    summarize_trace,
    summarize_trace_file,
    to_chrome_trace,
    to_jsonl,
    trace_format_for_path,
    tracing,
    write_trace,
)


@pytest.fixture
def traced() -> Tracer:
    """A small but structurally complete trace."""
    with tracing() as tracer:
        with span("pipeline.run", platform="henri"):
            with span("pipeline.measure"):
                counter("store.miss", entry="abc")
            with span("pipeline.calibrate"):
                pass
    return tracer


class TestJsonl:
    def test_header_then_one_record_per_line(self, traced):
        lines = [json.loads(l) for l in to_jsonl(traced).splitlines()]
        meta = lines[0]
        assert meta["type"] == "meta"
        assert meta["format"] == "repro-trace"
        assert meta["version"] == JSONL_VERSION
        assert meta["spans"] == 3
        assert meta["counters"] == 1
        assert len(lines) == 1 + 3 + 1

    def test_round_trip(self, traced):
        meta, spans, counters = load_jsonl(to_jsonl(traced))
        assert meta["spans"] == 3
        assert {s["name"] for s in spans} == {
            "pipeline.run",
            "pipeline.measure",
            "pipeline.calibrate",
        }
        by_name = {s["name"]: s for s in spans}
        assert (
            by_name["pipeline.measure"]["parent_id"]
            == by_name["pipeline.run"]["span_id"]
        )
        (miss,) = counters
        assert miss["name"] == "store.miss"
        assert miss["tags"] == {"entry": "abc"}

    def test_spans_sorted_chronologically(self, traced):
        _meta, spans, _ = load_jsonl(to_jsonl(traced))
        starts = [s["start_us"] for s in spans]
        assert starts == sorted(starts)

    @pytest.mark.parametrize(
        "text",
        ["", "not json\n", '{"type": "alien"}\n', "[1, 2]\n"],
    )
    def test_bad_input_raises_obs_error(self, text):
        with pytest.raises(ObsError):
            load_jsonl(text)

    def test_exotic_tag_values_do_not_break_encoding(self):
        with tracing() as tracer:
            with span("s", where=object()):
                pass
        # default=str turns the unencodable tag into its repr.
        meta, spans, _ = load_jsonl(to_jsonl(tracer))
        assert "object" in spans[0]["tags"]["where"]


class TestChrome:
    def test_schema(self, traced):
        trace = to_chrome_trace(traced)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        phases = [e["ph"] for e in events]
        assert phases.count("M") == 1  # one process_name per pid
        assert phases.count("X") == 3
        assert phases.count("C") == 1
        for event in events:
            assert {"name", "ph", "pid"} <= set(event)
            if event["ph"] in ("X", "C"):
                assert isinstance(event["ts"], float)
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
                assert event["cat"] == "repro"
                assert "span_id" in event["args"]
        # The whole object must survive strict JSON encoding.
        json.loads(json.dumps(trace))

    def test_span_tags_become_args(self, traced):
        events = to_chrome_trace(traced)["traceEvents"]
        (run,) = [e for e in events if e.get("name") == "pipeline.run"]
        assert run["args"]["platform"] == "henri"

    def test_summarize_accepts_chrome_export(self, traced):
        text = json.dumps(to_chrome_trace(traced))
        summary = summarize_trace(text)
        assert summary.spans_total == 3


class TestWriteTrace:
    def test_suffix_selects_format(self):
        assert trace_format_for_path("t.json") == "chrome"
        assert trace_format_for_path("t.jsonl") == "jsonl"
        assert trace_format_for_path("t.trace") == "jsonl"

    def test_writes_jsonl(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.jsonl")
        meta, spans, _ = load_jsonl(path.read_text())
        assert meta["spans"] == len(spans) == 3

    def test_writes_chrome(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.json")
        trace = json.loads(path.read_text())
        assert "traceEvents" in trace

    def test_creates_parent_dirs(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "deep" / "down" / "t.jsonl")
        assert path.exists()

    def test_unknown_format_rejected(self, traced, tmp_path):
        with pytest.raises(ObsError, match="unknown trace format"):
            write_trace(traced, tmp_path / "t.jsonl", fmt="xml")

    def test_unwritable_path_raises_obs_error(self, traced, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("x")
        with pytest.raises(ObsError, match="cannot write"):
            write_trace(traced, blocker / "t.jsonl")


class TestSummary:
    def test_aggregation(self, traced):
        summary = summarize_trace(to_jsonl(traced))
        assert summary.spans_total == 3
        by_name = {s.name: s for s in summary.by_name}
        assert by_name["pipeline.run"].calls == 1
        # The root span spans the whole trace, so its share is ~100 %.
        assert by_name["pipeline.run"].share == pytest.approx(1.0, abs=0.05)
        assert summary.counters == (("store.miss", 1.0),)
        # Sorted by total time descending; the root dominates.
        assert summary.by_name[0].name == "pipeline.run"

    def test_render_contains_table_and_counters(self, traced):
        text = render_summary(summarize_trace(to_jsonl(traced)))
        assert "pipeline.run" in text
        assert "wall %" in text
        assert "store.miss" in text

    def test_empty_trace_rejected(self):
        with pytest.raises(ObsError):
            summarize_trace('{"type": "meta", "spans": 0}\n')

    def test_file_entry_point(self, traced, tmp_path):
        path = write_trace(traced, tmp_path / "t.jsonl")
        assert "pipeline.run" in summarize_trace_file(path)

    def test_missing_file_raises_obs_error(self, tmp_path):
        with pytest.raises(ObsError, match="cannot read"):
            summarize_trace_file(tmp_path / "absent.jsonl")
