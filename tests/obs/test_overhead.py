"""The no-op fast path: disabled tracing must cost effectively nothing.

The instrumented hot paths (store loads, sweep placements, service
requests) run with tracing off in every benchmark, so a disabled
``span()`` has a hard budget: one tiny allocation and two attribute
stores.  The absolute bound here is deliberately loose (CI machines
jitter) while still catching any regression that adds clock reads,
locks, or recording to the disabled path.
"""

import time

from repro.obs import counter, span, tracing


def _time_per_call_us(fn, iterations: int) -> float:
    start = time.perf_counter_ns()
    for _ in range(iterations):
        fn()
    return (time.perf_counter_ns() - start) / iterations / 1e3


def test_disabled_span_is_cheap():
    def noop_span():
        with span("hot", key=1):
            pass

    iterations = 20_000
    best = min(_time_per_call_us(noop_span, iterations) for _ in range(3))
    # A no-op span is ~0.5 µs on any recent CPU; 20 µs means something
    # expensive (clock read, lock, record) leaked into the disabled path.
    assert best < 20.0, f"disabled span costs {best:.2f} us/call"


def test_disabled_counter_is_cheap():
    iterations = 50_000
    best = min(
        _time_per_call_us(lambda: counter("hot"), iterations) for _ in range(3)
    )
    assert best < 10.0, f"disabled counter costs {best:.2f} us/call"


def test_enabled_span_overhead_is_bounded():
    """Sanity: even *enabled*, a span is microseconds, not milliseconds."""
    with tracing():
        def live_span():
            with span("hot"):
                pass

        per_call = _time_per_call_us(live_span, 5_000)
    assert per_call < 100.0, f"enabled span costs {per_call:.2f} us/call"
