"""Tracing wired through the pipeline: coverage and zero interference.

Two contracts: (1) a traced run records spans for all four stages plus
the store's hit/miss events, correctly nested under the run span;
(2) results are bit-identical with tracing on and off — instrumentation
observes, never perturbs.
"""

from repro.bench import SweepConfig
from repro.obs import tracing
from repro.pipeline import ArtifactStore, run_platform_pipeline
from tests.pipeline.test_pipeline_cache import assert_results_identical

CONFIG = SweepConfig(seed=3)

STAGES = ("measure", "calibrate", "predict", "score")


class TestPipelineSpans:
    def test_cold_run_covers_all_stages_and_misses(self, tmp_path):
        with tracing() as tracer:
            run_platform_pipeline(
                "henri", config=CONFIG, store=ArtifactStore(tmp_path)
            )
        names = {s.name for s in tracer.spans()}
        for stage in STAGES:
            assert f"pipeline.{stage}" in names
        assert "pipeline.run" in names
        assert "sweep.grid" in names
        assert "sweep.placement" in names
        assert "store.save" in names
        totals = tracer.counter_totals()
        assert totals.get("store.miss", 0) >= 1
        assert totals.get("store.store", 0) >= 1
        assert "store.hit" not in totals

    def test_warm_run_records_hits(self, tmp_path):
        store = ArtifactStore(tmp_path)
        run_platform_pipeline("henri", config=CONFIG, store=store)
        with tracing() as tracer:
            run_platform_pipeline("henri", config=CONFIG, store=store)
        totals = tracer.counter_totals()
        assert totals.get("store.hit", 0) >= 2  # measure + calibrate
        assert totals.get("store.store", 0) == 0
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["pipeline.measure"].tags["source"] == "cached"
        assert by_name["pipeline.calibrate"].tags["source"] == "cached"
        assert by_name["pipeline.predict"].tags["source"] == "derived"

    def test_stage_spans_nest_under_run(self, tmp_path):
        with tracing() as tracer:
            run_platform_pipeline(
                "henri", config=CONFIG, store=ArtifactStore(tmp_path)
            )
        by_name = {s.name: s for s in tracer.spans()}
        run_id = by_name["pipeline.run"].span_id
        for stage in STAGES:
            assert by_name[f"pipeline.{stage}"].parent_id == run_id
        assert by_name["pipeline.run"].tags["platform"] == "henri"

    def test_stage_spans_tag_platform(self, tmp_path):
        with tracing() as tracer:
            run_platform_pipeline(
                "henri", config=CONFIG, store=ArtifactStore(tmp_path)
            )
        for stage in STAGES:
            record = next(
                s for s in tracer.spans() if s.name == f"pipeline.{stage}"
            )
            assert record.tags["platform"] == "henri"


class TestTracingDoesNotPerturb:
    def test_results_bit_identical_on_and_off(self):
        plain = run_platform_pipeline("henri", config=CONFIG)
        with tracing():
            traced = run_platform_pipeline("henri", config=CONFIG)
        assert_results_identical(plain.result, traced.result)

    def test_cached_results_bit_identical(self, tmp_path):
        cold = run_platform_pipeline(
            "henri", config=CONFIG, cache_dir=tmp_path
        )
        with tracing():
            warm = run_platform_pipeline(
                "henri", config=CONFIG, cache_dir=tmp_path
            )
        assert warm.stats.cached_stages == ("measure", "calibrate")
        assert_results_identical(cold.result, warm.result)
