"""Span nesting, threading, decorators, counters, and the global switch."""

import threading

import pytest

from repro import obs
from repro.obs import Tracer, counter, span, tracing


class TestSwitch:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert obs.get_tracer() is None

    def test_enable_disable_round_trip(self):
        tracer = obs.enable()
        assert obs.is_enabled()
        assert obs.get_tracer() is tracer
        assert obs.disable() is tracer
        assert not obs.is_enabled()

    def test_enable_resumes_existing_tracer(self):
        tracer = Tracer()
        with span("first"):
            pass  # no tracer installed: dropped
        obs.enable(tracer)
        with span("second"):
            pass
        obs.disable()
        assert [s.name for s in tracer.spans()] == ["second"]

    def test_tracing_context_restores_previous(self):
        outer = obs.enable()
        with tracing() as inner:
            assert obs.get_tracer() is inner
            assert inner is not outer
        assert obs.get_tracer() is outer

    def test_disabled_span_records_nothing(self):
        tracer = Tracer()
        with span("ghost"):
            pass
        assert tracer.spans() == []
        counter("ghost_counter")  # must not raise either


class TestNesting:
    def test_parent_child_chain(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["outer"].parent_id is None
        assert by_name["inner"].parent_id == by_name["outer"].span_id

    def test_siblings_share_a_parent(self):
        with tracing() as tracer:
            with span("parent"):
                with span("a"):
                    pass
                with span("b"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["a"].parent_id == by_name["parent"].span_id
        assert by_name["b"].parent_id == by_name["parent"].span_id

    def test_sequential_roots_are_parentless(self):
        with tracing() as tracer:
            with span("one"):
                pass
            with span("two"):
                pass
        assert all(s.parent_id is None for s in tracer.spans())

    def test_timing_is_monotonic_and_nested(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.duration_us >= 0
        assert inner.start_us >= outer.start_us
        assert inner.end_us <= outer.end_us + 1.0  # clock granularity slack

    def test_exception_tags_and_propagates(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with span("doomed"):
                    raise ValueError("boom")
        (record,) = tracer.spans()
        assert record.tags["error"] == "ValueError"


class TestTags:
    def test_construction_and_mid_span_tags(self):
        with tracing() as tracer:
            with span("load", entry="abc") as handle:
                handle.tag(outcome="hit")
        (record,) = tracer.spans()
        assert record.tags == {"entry": "abc", "outcome": "hit"}

    def test_tag_is_noop_when_disabled(self):
        with span("ghost") as handle:
            handle.tag(outcome="hit")  # must not raise


class TestDecorator:
    def test_decorated_function_records_per_call(self):
        @span("worker", kind="test")
        def work(x):
            return x * 2

        with tracing() as tracer:
            assert work(3) == 6
            assert work(4) == 8
        records = tracer.spans()
        assert [s.name for s in records] == ["worker", "worker"]
        assert all(s.tags == {"kind": "test"} for s in records)

    def test_decorating_before_enable_still_traces(self):
        """Late binding: the tracer is resolved per call, not at
        decoration time."""

        @span("late")
        def work():
            return 1

        work()  # disabled: no-op
        with tracing() as tracer:
            work()
        assert len(tracer.spans()) == 1


class TestThreading:
    def test_worker_threads_record_into_one_tracer(self):
        n_threads, spans_each = 8, 4
        barrier = threading.Barrier(n_threads)

        def worker(i):
            barrier.wait()
            for j in range(spans_each):
                with span("work", worker=i, j=j):
                    pass

        with tracing() as tracer:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        records = tracer.spans()
        assert len(records) == n_threads * spans_each
        assert len({s.span_id for s in records}) == len(records)
        # Each thread starts a fresh context: all roots, laned by tid.
        assert all(s.parent_id is None for s in records)
        assert len({s.tid for s in records}) == n_threads

    def test_nesting_is_per_thread(self):
        inner_parents = {}

        def worker(i):
            with span("outer", worker=i):
                with span("inner", worker=i):
                    pass

        with tracing() as tracer:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        outers = {
            s.tags["worker"]: s for s in tracer.spans() if s.name == "outer"
        }
        inner_parents = {
            s.tags["worker"]: s.parent_id
            for s in tracer.spans()
            if s.name == "inner"
        }
        for worker_id, parent_id in inner_parents.items():
            assert parent_id == outers[worker_id].span_id


class TestCounters:
    def test_counter_totals(self):
        with tracing() as tracer:
            counter("hits")
            counter("hits", 2)
            counter("misses", 1, entry="x")
        assert tracer.counter_totals() == {"hits": 3, "misses": 1}
        (tagged,) = [c for c in tracer.counters() if c.name == "misses"]
        assert tagged.tags == {"entry": "x"}

    def test_clear(self):
        with tracing() as tracer:
            with span("s"):
                counter("c")
            tracer.clear()
            assert tracer.spans() == []
            assert tracer.counters() == []


class TestSnapshot:
    def test_disabled_snapshot(self):
        assert obs.tracing_snapshot() == {"enabled": False, "spans": 0}

    def test_enabled_snapshot_aggregates(self):
        with tracing():
            with span("a"):
                pass
            with span("a"):
                pass
            counter("hits", 2)
            snap = obs.tracing_snapshot()
        assert snap["enabled"] is True
        assert snap["spans"] == 2
        assert snap["by_name"]["a"]["count"] == 2
        assert snap["counters"] == {"hits": 2}
