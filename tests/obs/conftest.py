"""Tracing is process-global state; never leak it between tests."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_tracer_leaks():
    obs.disable()
    yield
    obs.disable()
