"""CLI tests (argument parsing, command outputs, exit codes)."""

import json
import logging

import pytest

from repro import errors, obs
from repro.cli import EXIT_CODES, build_parser, exit_code_for, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_platform_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["topo", "bogus"])

    def test_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestCommands:
    def test_platforms(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "henri" in out and "occigen" in out

    def test_topo(self, capsys):
        assert main(["topo", "diablo"]) == 0
        out = capsys.readouterr().out
        assert "Infinity Fabric" in out

    def test_sweep_single_placement(self, capsys):
        assert main(["sweep", "occigen", "--placement", "0", "0"]) == 0
        out = capsys.readouterr().out
        assert "comp_alone" in out
        assert len(out.strip().splitlines()) == 15  # header + 14 cores

    def test_sweep_grid_csv_stdout(self, capsys):
        assert main(["sweep", "occigen"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("platform,m_comp,m_comm")

    def test_sweep_csv_file(self, tmp_path, capsys):
        target = tmp_path / "curves.csv"
        assert main(["sweep", "occigen", "--csv", str(target)]) == 0
        assert target.exists()
        assert "occigen" in target.read_text()

    def test_calibrate(self, capsys):
        assert main(["calibrate", "occigen"]) == 0
        out = capsys.readouterr().out
        assert "local" in out and "remote" in out and "alpha" in out

    def test_predict(self, capsys):
        assert main(
            ["predict", "occigen", "-n", "8", "--comp", "0", "--comm", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "predicted computation bandwidth" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_figure_ascii(self, capsys):
        assert main(["figure", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "occigen" in out
        assert "comm_par(meas)" in out

    def test_figure_csv(self, tmp_path, capsys):
        target = tmp_path / "fig6.csv"
        assert main(["figure", "fig6", "--csv", str(target)]) == 0
        assert target.read_text().startswith("m_comp,m_comm,series")

    def test_figure_svg(self, tmp_path, capsys):
        target = tmp_path / "fig6.svg"
        assert main(["figure", "fig6", "--svg", str(target)]) == 0
        import xml.etree.ElementTree as ET

        ET.fromstring(target.read_text())

    def test_fig2(self, capsys):
        assert main(["figure", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "Annotated points" in out
        assert "Tpar_max" in out

    def test_advise(self, capsys):
        assert main(
            [
                "advise",
                "occigen",
                "--comp-bytes",
                "1e9",
                "--comm-bytes",
                "1e8",
                "--top",
                "2",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Top 2 configurations" in out

    def test_predict_error_reported(self, capsys):
        """Out-of-range NUMA node -> clean error, PlacementError exit code."""
        code = main(
            ["predict", "occigen", "-n", "2", "--comp", "9", "--comm", "0"]
        )
        assert code == EXIT_CODES[errors.PlacementError] == 7
        assert "error:" in capsys.readouterr().err

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "EXPERIMENTS.md"
        assert main(["report", "--output", str(target)]) == 0
        text = target.read_text()
        assert "# EXPERIMENTS" in text
        assert "pyxis" in text

    def test_bottleneck(self, capsys):
        assert main(["bottleneck", "henri", "-n", "16", "--comp", "0", "--comm", "0"]) == 0
        out = capsys.readouterr().out
        assert "bottleneck: ctrl:0" in out

    def test_bottleneck_contention_free(self, capsys):
        assert main(["bottleneck", "henri", "-n", "2", "--comp", "0", "--comm", "1"]) == 0
        assert "contention-free" in capsys.readouterr().out

    def test_overlap(self, capsys):
        assert main(
            [
                "overlap", "occigen", "-n", "8", "--comp", "0", "--comm", "1",
                "--comp-bytes", "1e10", "--comm-bytes", "2e9",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "efficiency" in out and "overlapped" in out

    def test_sensitivity(self, capsys):
        assert main(["sensitivity", "occigen"]) == 0
        out = capsys.readouterr().out
        assert "b_comm_seq" in out and "alpha" in out

    def test_intensity(self, capsys):
        assert main(["intensity", "occigen", "-n", "14"]) == 0
        out = capsys.readouterr().out
        assert "flops/byte" in out
        assert "comm kept" in out

    def test_export_platform(self, tmp_path, capsys):
        target = tmp_path / "henri.json"
        assert main(["export-platform", "henri", "--output", str(target)]) == 0
        from repro.topology import platform_from_json

        restored = platform_from_json(target.read_text())
        assert restored.name == "henri"

    def test_diagnose(self, capsys):
        assert main(["diagnose", "occigen"]) == 0
        out = capsys.readouterr().out
        assert "model-limits diagnosis" in out

    def test_export_platform_stdout(self, capsys):
        assert main(["export-platform", "diablo"]) == 0
        out = capsys.readouterr().out
        assert '"format_version"' in out

    def test_check(self, capsys):
        assert main(["--seed", "1", "check"]) == 0
        out = capsys.readouterr().out
        assert "7/7 structural claims hold" in out


class TestExitCodes:
    """Every ReproError subclass maps to its own process exit code."""

    def test_every_subclass_has_a_distinct_code(self):
        subclasses = [
            getattr(errors, name)
            for name in errors.__all__
        ]
        codes = [exit_code_for(cls("boom")) for cls in subclasses]
        assert len(set(codes)) == len(subclasses), (
            "exit codes collide: "
            f"{dict(zip([c.__name__ for c in subclasses], codes))}"
        )
        assert all(1 <= code <= 125 for code in codes)

    def test_most_derived_class_wins(self):
        # PlacementError is a ModelError; ArbitrationError a SimulationError.
        assert exit_code_for(errors.PlacementError("x")) == 7
        assert exit_code_for(errors.ModelError("x")) == 6
        assert exit_code_for(errors.ArbitrationError("x")) == 4
        assert exit_code_for(errors.SimulationError("x")) == 3

    def test_unmapped_subclass_falls_back_to_base(self):
        class CustomError(errors.CalibrationError):
            pass

        assert exit_code_for(CustomError("x")) == EXIT_CODES[
            errors.CalibrationError
        ]

    def test_generic_repro_error_exits_1(self):
        assert exit_code_for(errors.ReproError("x")) == 1

    def test_advisor_error_exit_code(self, capsys):
        code = main(
            [
                "advise", "occigen",
                "--comp-bytes", "0", "--comm-bytes", "0",
            ]
        )
        assert code == EXIT_CODES[errors.AdvisorError] == 10
        assert "nothing to advise" in capsys.readouterr().err

    def test_unreachable_service_exit_code(self, capsys):
        # Port 1 is never listening; the client maps it to ServiceError.
        code = main(
            ["query", "healthz", "--port", "1", "--timeout", "0.5"]
        )
        assert code == EXIT_CODES[errors.ServiceError] == 11
        assert "cannot reach service" in capsys.readouterr().err


class TestCacheCommand:
    def test_missing_cache_dir_exits_12(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(["cache", "ls"])
        assert code == EXIT_CODES[errors.PipelineError] == 12
        assert "no cache directory" in capsys.readouterr().err

    def test_ls_empty(self, tmp_path, capsys):
        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        assert "empty" in capsys.readouterr().out

    def test_ls_info_clear_round_trip(self, tmp_path, capsys):
        # Populate the cache through an experiment-running command.
        assert main(
            ["calibrate", "henri", "--cache-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()

        assert main(["cache", "ls", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out
        assert "henri/measure-v" in out and "henri/calibrate-v" in out
        entry_id = next(
            line.split()[0]
            for line in out.splitlines()
            if line.startswith("henri/calibrate")
        )

        assert main(
            ["cache", "info", entry_id, "--cache-dir", str(tmp_path)]
        ) == 0
        manifest = out = capsys.readouterr().out
        assert '"stage": "calibrate"' in manifest
        assert '"sweep_config"' in manifest

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 2 entries" in capsys.readouterr().out

    def test_info_unknown_entry_exits_12(self, tmp_path, capsys):
        code = main(
            ["cache", "info", "nope/measure-v1-feed", "--cache-dir", str(tmp_path)]
        )
        assert code == 12
        assert "no cache entry" in capsys.readouterr().err

    def test_env_var_fallback(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["cache", "ls"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_warm_cli_run_is_identical(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path)]
        assert main(["predict", "henri", "-n", "8", "--comp", "0",
                     "--comm", "1", *cache]) == 0
        cold = capsys.readouterr().out
        assert main(["predict", "henri", "-n", "8", "--comp", "0",
                     "--comm", "1", *cache]) == 0
        assert capsys.readouterr().out == cold

    def test_jobs_flag_parses(self):
        args = build_parser().parse_args(["table2", "--jobs", "0"])
        assert args.jobs == 0
        assert args.cache_dir is None


class TestCompile:
    def test_compile_then_reuse(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path)]
        assert main(["compile", "occigen", *cache]) == 0
        out = capsys.readouterr().out
        assert out.startswith("compiled occigen")
        assert "3 curves x 4 placements x 257 core counts" in out
        # A second invocation finds the stored artifact.
        assert main(["compile", "occigen", *cache]) == 0
        assert capsys.readouterr().out.startswith("reused occigen")

    def test_n_max_flag_bounds_the_table(self, tmp_path, capsys):
        assert main(
            ["compile", "occigen", "--cache-dir", str(tmp_path),
             "--n-max", "32"]
        ) == 0
        assert "33 core counts" in capsys.readouterr().out

    def test_force_recompiles(self, tmp_path, capsys):
        cache = ["--cache-dir", str(tmp_path)]
        assert main(["compile", "occigen", *cache]) == 0
        capsys.readouterr()
        assert main(["compile", "occigen", "--force", *cache]) == 0
        assert capsys.readouterr().out.startswith("compiled occigen")

    def test_compile_without_store_exits_12(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(["compile", "occigen"])
        assert code == EXIT_CODES[errors.PipelineError] == 12
        assert "artifact store" in capsys.readouterr().err


class TestTraceFlag:
    """``--trace PATH`` around experiment commands + ``trace summarize``."""

    @pytest.fixture(autouse=True)
    def _no_tracer_leaks(self):
        obs.disable()
        yield
        obs.disable()

    def test_trace_writes_jsonl_covering_stages(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(
            ["calibrate", "occigen", "--cache-dir", str(tmp_path / "c"),
             "--trace", str(trace)]
        ) == 0
        assert "wrote trace" in capsys.readouterr().err
        assert not obs.is_enabled()  # switch restored after the command
        _meta, spans, counters = obs.load_jsonl(trace.read_text())
        names = {s["name"] for s in spans}
        for stage in ("measure", "calibrate", "predict", "score"):
            assert f"pipeline.{stage}" in names
        assert {c["name"] for c in counters} >= {"store.miss", "store.store"}

    def test_trace_json_suffix_writes_chrome(self, tmp_path, capsys):
        trace = tmp_path / "run.json"
        assert main(["calibrate", "occigen", "--trace", str(trace)]) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e["ph"] == "X" for e in events)

    def test_summarize_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["calibrate", "occigen", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "pipeline.calibrate" in out
        assert "wall %" in out

    def test_summarize_missing_file_exits_13(self, tmp_path, capsys):
        code = main(["trace", "summarize", str(tmp_path / "absent.jsonl")])
        assert code == EXIT_CODES[errors.ObsError] == 13
        assert "error:" in capsys.readouterr().err

    def test_trace_written_even_when_command_fails(self, tmp_path, capsys):
        trace = tmp_path / "fail.jsonl"
        code = main(
            ["predict", "occigen", "-n", "2", "--comp", "9", "--comm", "0",
             "--trace", str(trace)]
        )
        assert code == EXIT_CODES[errors.PlacementError]
        assert trace.exists()


class TestLogLevelFlag:
    def test_parses_and_configures(self):
        assert main(["--log-level", "debug", "platforms"]) == 0
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_rejects_unknown_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "loud", "platforms"])

    def test_debug_run_emits_subsystem_records(self, tmp_path, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            assert main(["--log-level", "debug", "topo", "henri"]) == 0
        assert any(r.name == "repro.topology" for r in caplog.records)


class TestServeQueryParsing:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8080 and args.host == "127.0.0.1"
        assert not args.no_batching
        assert args.cache_dir is None

    def test_query_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])

    def test_query_predict_args(self):
        args = build_parser().parse_args(
            [
                "query", "predict", "henri",
                "-n", "14", "--comp", "0", "--comm", "1",
                "--port", "9999",
            ]
        )
        assert args.query_command == "predict"
        assert (args.cores, args.comp, args.comm) == (14, 0, 1)
        assert args.port == 9999

    def test_query_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "calibrate", "bogus"])


class TestClusterParsing:
    def test_cluster_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster"])

    def test_cluster_serve_defaults(self):
        args = build_parser().parse_args(["cluster", "serve"])
        assert args.cluster_command == "serve"
        assert args.workers == 3 and args.replication == 2
        assert args.max_restarts == 3
        assert args.preload == []

    def test_cluster_serve_preload_repeatable(self):
        args = build_parser().parse_args(
            [
                "cluster", "serve",
                "--workers", "4",
                "--preload", "occigen",
                "--preload", "henri:7",
            ]
        )
        assert args.workers == 4
        assert args.preload == ["occigen", "henri:7"]

    def test_serve_preload_flag(self):
        args = build_parser().parse_args(["serve", "--preload", "occigen:2"])
        assert args.preload == ["occigen:2"]

    def test_preload_key_parsing(self):
        from repro.cli import _parse_preload_keys

        assert _parse_preload_keys(["occigen", "henri:7"]) == [
            ("occigen", 0),
            ("henri", 7),
        ]
        with pytest.raises(errors.ServiceError, match="malformed"):
            _parse_preload_keys([":3"])
        with pytest.raises(errors.ServiceError, match="seed"):
            _parse_preload_keys(["occigen:x"])

    def test_cluster_loadgen_platform_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "loadgen", "--platform", "bogus"])

    def test_cluster_loadgen_overload_flags(self):
        args = build_parser().parse_args(["cluster", "loadgen"])
        assert not args.overload
        assert args.min_shed_rate == 0.01
        args = build_parser().parse_args(
            ["cluster", "loadgen", "--overload", "--min-shed-rate", "0.2"]
        )
        assert args.overload
        assert args.min_shed_rate == 0.2

    def test_cluster_serve_without_cache_dir_fails(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(["cluster", "serve"])
        assert code == EXIT_CODES[errors.ClusterError] == 15
        assert "cache" in capsys.readouterr().err

    def test_cluster_status_unreachable_router(self, capsys):
        code = main(
            ["cluster", "status", "--port", "1", "--timeout", "0.5"]
        )
        assert code == EXIT_CODES[errors.ServiceError] == 11
        assert "cannot reach service" in capsys.readouterr().err


class TestTournamentCommand:
    def test_run_then_report_from_the_store(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["tournament", "run", "henri", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert "winner" in first and "regimes; wins:" in first
        assert "threshold" in first
        # Second run: every calibration and winner table is a hit.
        assert main(["tournament", "run", "henri", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "6/6 calibrations and 1/1 winner tables" in second
        # Report renders from artifacts without recomputing.
        assert main(
            ["tournament", "report", "henri", "--cache-dir", cache]
        ) == 0
        report = capsys.readouterr().out
        assert "regimes; wins:" in report

    def test_report_without_store_exits_12(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(["tournament", "report", "henri"])
        assert code == EXIT_CODES[errors.PipelineError] == 12
        assert "stored artifacts" in capsys.readouterr().err

    def test_report_uncontested_platform_noted(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["tournament", "run", "henri", "--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(
            ["tournament", "report", "henri", "occigen", "--cache-dir", cache]
        ) == 0
        out = capsys.readouterr().out
        assert "not yet contested: occigen" in out


class TestPredictBackendFlag:
    def test_named_backend_noted(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(
            [
                "predict", "occigen", "-n", "8", "--comp", "0", "--comm", "1",
                "--backend", "naive",
            ]
        ) == 0
        assert "[backend naive]" in capsys.readouterr().out

    def test_tournament_backend_names_the_winner(self, tmp_path, capsys):
        assert main(
            [
                "predict", "occigen", "-n", "8", "--comp", "0", "--comm", "1",
                "--backend", "tournament",
                "--cache-dir", str(tmp_path / "cache"),
            ]
        ) == 0
        assert "[backend tournament -> " in capsys.readouterr().out

    def test_unknown_backend_exits_6(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        code = main(
            [
                "predict", "occigen", "-n", "8", "--comp", "0", "--comm", "1",
                "--backend", "resnet",
            ]
        )
        assert code == EXIT_CODES[errors.ModelError] == 6
        assert "registered" in capsys.readouterr().err


class TestPrefetchArtifacts:
    def test_warms_published_entries_and_skips_missing(self, tmp_path):
        from repro.backends import backend_key, load_or_calibrate
        from repro.backends.threshold import ThresholdBackend
        from repro.cli import _prefetch_artifacts
        from repro.evaluation.experiments import run_platform_experiment
        from repro.pipeline import ArtifactStore

        cache = tmp_path / "cache"
        store = ArtifactStore(cache)
        result = run_platform_experiment("occigen", store=store)
        backend = ThresholdBackend()
        load_or_calibrate(
            store, backend, result.dataset, result.platform, "fp"
        )
        published = backend_key("occigen", backend, "fp").entry_id
        warmed = _prefetch_artifacts(
            cache, [published, "occigen/backend-naive-v1-unpublished"]
        )
        assert warmed == 1

    def test_no_hints_is_a_noop(self):
        from repro.cli import _prefetch_artifacts

        assert _prefetch_artifacts(None, []) == 0

    def test_hints_without_store_rejected(self):
        from repro.cli import _prefetch_artifacts

        with pytest.raises(errors.ServiceError, match="artifact store"):
            _prefetch_artifacts(None, ["occigen/backend-naive-v1-x"])
