"""Units and conversion helpers used throughout :mod:`repro`.

Conventions
-----------
The whole library uses a single, explicit unit system:

* **bandwidth** — gigabytes per second, decimal (``1 GB/s = 1e9 B/s``),
  matching the unit the paper reports (e.g. "a single computing core can
  reach a memory bandwidth of 5 GB/s, while network bandwidth can be
  around 10 GB/s").
* **data sizes** — bytes (with helpers for MiB/MB/GiB/GB literals).
* **time** — seconds.

Keeping conversions in one module avoids the classic off-by-1024 bugs
when mixing decimal network units (the NIC world) and binary memory
units (the DRAM world).
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "KiB",
    "MiB",
    "GiB",
    "bytes_to_gb",
    "gb_to_bytes",
    "gbps_to_bytes_per_s",
    "bytes_per_s_to_gbps",
    "gbit_to_gbyte",
    "bandwidth",
    "transfer_time",
    "fmt_bandwidth",
    "fmt_bytes",
]

# Decimal (SI) sizes -- used for network-facing quantities.
KB: int = 10**3
MB: int = 10**6
GB: int = 10**9

# Binary (IEC) sizes -- used for memory-facing quantities.
KiB: int = 2**10
MiB: int = 2**20
GiB: int = 2**30


def bytes_to_gb(nbytes: float) -> float:
    """Convert a byte count to decimal gigabytes."""
    return nbytes / GB


def gb_to_bytes(gigabytes: float) -> float:
    """Convert decimal gigabytes to a byte count."""
    return gigabytes * GB


def gbps_to_bytes_per_s(gbps: float) -> float:
    """Convert a GB/s bandwidth to bytes per second."""
    return gbps * GB


def bytes_per_s_to_gbps(bps: float) -> float:
    """Convert bytes per second to GB/s."""
    return bps / GB


def gbit_to_gbyte(gbits: float) -> float:
    """Convert gigabits (network line-rate convention) to gigabytes.

    Useful to express NIC line rates: an EDR InfiniBand link is
    ``gbit_to_gbyte(100) == 12.5`` GB/s of raw payload ceiling.
    """
    return gbits / 8.0


def bandwidth(nbytes: float, seconds: float) -> float:
    """Observed bandwidth in GB/s for ``nbytes`` moved in ``seconds``.

    Raises :class:`ValueError` for non-positive durations: a zero-length
    measurement window is always a harness bug, never a real result.
    """
    if seconds <= 0.0:
        raise ValueError(f"measurement duration must be positive, got {seconds!r}")
    return bytes_to_gb(nbytes) / seconds


def transfer_time(nbytes: float, gbps: float) -> float:
    """Time in seconds to move ``nbytes`` at a rate of ``gbps`` GB/s."""
    if gbps <= 0.0:
        raise ValueError(f"bandwidth must be positive, got {gbps!r}")
    return nbytes / gb_to_bytes(gbps)


def fmt_bandwidth(gbps: float, precision: int = 2) -> str:
    """Human-readable bandwidth string, e.g. ``'12.30 GB/s'``."""
    return f"{gbps:.{precision}f} GB/s"


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count using binary units, e.g. ``'64.0 MiB'``."""
    value = float(nbytes)
    for unit, factor in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(value) >= factor:
            return f"{value / factor:.1f} {unit}"
    return f"{value:.0f} B"
