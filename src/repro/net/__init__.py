"""Simulated network substrate.

The paper measures the receive side of MPI transfers over InfiniBand /
Omni-Path fabrics.  This package provides the network pieces the
mini-MPI layer (:mod:`repro.mpi`) is built on:

* :mod:`repro.net.message` — message descriptors;
* :mod:`repro.net.fabric` — the wire: latency + line rate;
* :mod:`repro.net.protocol` — eager vs rendezvous transfer protocols;
* :mod:`repro.net.nic` — the receive engine turning arriving messages
  into DMA streams on the memory-system simulator.
"""

from repro.net.cluster import Cluster, build_cluster_resources, compute_streams, transfer_stream
from repro.net.fabric import FABRICS, Fabric, fabric_for
from repro.net.message import NetMessage
from repro.net.nic import ReceiveEngine, TransferHandle
from repro.net.protocol import Protocol, RendezvousConfig, select_protocol

__all__ = [
    "Cluster",
    "FABRICS",
    "Fabric",
    "NetMessage",
    "Protocol",
    "ReceiveEngine",
    "RendezvousConfig",
    "TransferHandle",
    "build_cluster_resources",
    "compute_streams",
    "fabric_for",
    "transfer_stream",
    "select_protocol",
]
