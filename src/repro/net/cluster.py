"""Two-machine cluster: end-to-end transfers across both memory systems.

The paper's harness keeps the *sender* idle and measures the receive
side (§IV-A1), so its model never needs the peer machine.  This module
supplies the full substrate anyway: both machines' resources live in a
single arbitration domain, the fabric is one more shared pipe, and a
message is a *single* stream whose path runs

    sender controller → sender mesh → (sender link) → sender PCIe-tx →
    sender NIC-tx → fabric → receiver NIC → receiver PCIe →
    receiver mesh → (receiver link) → receiver controller

so a transfer's steady-state rate is bottlenecked by whichever side
(or the wire) is busiest — including contention from computations
running on the *sender*, the experiment the paper's independence
assumption excludes (see ``benchmarks/bench_extension_cluster.py``).

Resource ids are prefixed ``m0:`` / ``m1:`` per machine; the fabric is
``wire:0<->1``.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass

from repro.errors import CommunicationError, SimulationError
from repro.memsim.paths import ResourceMap, build_resources, stream_path
from repro.memsim.profile import ContentionProfile
from repro.memsim.resource import Resource, ResourceKind
from repro.memsim.stream import Stream, StreamKind
from repro.net.fabric import Fabric
from repro.topology.objects import Machine
from repro.topology.platforms import Platform

log = logging.getLogger("repro.net")

__all__ = ["Cluster", "build_cluster_resources", "transfer_stream"]

WIRE_ID = "wire:0<->1"


@dataclass(frozen=True)
class Cluster:
    """Two platforms joined by a fabric."""

    node0: Platform
    node1: Platform
    fabric: Fabric

    def machine(self, rank: int) -> Machine:
        return (self.node0 if rank == 0 else self.node1).machine

    def profile(self, rank: int) -> ContentionProfile:
        return (self.node0 if rank == 0 else self.node1).profile

    def __post_init__(self) -> None:
        if self.node0.machine.name == self.node1.machine.name:
            # Allowed (homogeneous clusters are the norm) but the
            # prefixes keep the resources apart; nothing to validate.
            pass


def _prefix_map(rank: int, resources: ResourceMap) -> dict[str, Resource]:
    out: dict[str, Resource] = {}
    for rid in resources.ids():
        resource = resources[rid]
        new_id = f"m{rank}:{rid}"
        out[new_id] = Resource(
            resource_id=new_id,
            kind=resource.kind,
            capacity_gbps=resource.capacity_gbps,
            remote_capacity_gbps=resource.remote_capacity_gbps,
            socket=resource.socket,
            size_bytes=resource.size_bytes,
        )
    return out


def build_cluster_resources(cluster: Cluster) -> ResourceMap:
    """The union resource map: both machines plus the wire."""
    resources: dict[str, Resource] = {}
    for rank, platform in ((0, cluster.node0), (1, cluster.node1)):
        resources.update(
            _prefix_map(
                rank, build_resources(platform.machine, platform.profile)
            )
        )
    resources[WIRE_ID] = Resource(
        resource_id=WIRE_ID,
        kind=ResourceKind.NIC_PORT,
        capacity_gbps=cluster.fabric.line_rate_gbps,
    )
    return ResourceMap(machine_name="cluster", resources=resources)


def _prefixed(rank: int, path: tuple[str, ...]) -> tuple[str, ...]:
    return tuple(f"m{rank}:{rid}" for rid in path)


def transfer_stream(
    cluster: Cluster,
    *,
    stream_id: str,
    src_rank: int,
    src_node: int,
    dst_node: int,
    nominal_gbps: float | None = None,
) -> Stream:
    """One end-to-end message stream from ``src_rank`` to the other rank.

    ``src_node`` / ``dst_node`` are the NUMA nodes holding the send and
    receive buffers on their respective machines.
    """
    if src_rank not in (0, 1):
        raise CommunicationError(f"src_rank must be 0 or 1, got {src_rank}")
    dst_rank = 1 - src_rank
    src_machine = cluster.machine(src_rank)
    dst_machine = cluster.machine(dst_rank)
    src_profile = cluster.profile(src_rank)
    dst_profile = cluster.profile(dst_rank)

    tx_path = stream_path(
        src_machine,
        StreamKind.DMA,
        origin_socket=src_machine.nic.socket,
        target_numa=src_node,
        transmit=True,
    )
    rx_path = stream_path(
        dst_machine,
        StreamKind.DMA,
        origin_socket=dst_machine.nic.socket,
        target_numa=dst_node,
    )
    # The transmit path is built destination-last (toward the source
    # buffer's controller); flow order for the message is the reverse:
    # from the source controller out to the NIC.
    full_path = (
        _prefixed(src_rank, tuple(reversed(tx_path)))
        + (WIRE_ID,)
        + _prefixed(dst_rank, rx_path)
    )

    ceiling = min(
        src_profile.nic_nominal_gbps(src_node, src_machine.nic.line_rate_gbps),
        dst_profile.nic_nominal_gbps(dst_node, dst_machine.nic.line_rate_gbps),
        cluster.fabric.line_rate_gbps,
    )
    if nominal_gbps is not None:
        if nominal_gbps <= 0:
            raise CommunicationError("nominal_gbps must be positive")
        ceiling = min(ceiling, nominal_gbps)

    floor = dst_profile.nic_min_fraction * ceiling
    return Stream(
        stream_id=stream_id,
        kind=StreamKind.DMA,
        demand_gbps=ceiling,
        path=full_path,
        target_numa=dst_node,
        origin_socket=dst_machine.nic.socket,
        min_guarantee_gbps=floor,
    )


def compute_streams(
    cluster: Cluster,
    *,
    rank: int,
    n_cores: int,
    data_node: int,
    id_prefix: str | None = None,
) -> list[Stream]:
    """Computation streams on one cluster node (prefixed resources)."""
    if rank not in (0, 1):
        raise CommunicationError(f"rank must be 0 or 1, got {rank}")
    machine = cluster.machine(rank)
    profile = cluster.profile(rank)
    if n_cores < 1 or n_cores > machine.cores_per_socket:
        raise SimulationError(
            f"n_cores must be in 1..{machine.cores_per_socket}"
        )
    local = machine.socket_of_numa(data_node) == 0
    demand = profile.core_stream_gbps(local=local)
    path = _prefixed(
        rank,
        stream_path(
            machine, StreamKind.CPU, origin_socket=0, target_numa=data_node
        ),
    )
    prefix = id_prefix if id_prefix is not None else f"m{rank}core"
    return [
        Stream(
            stream_id=f"{prefix}{i}",
            kind=StreamKind.CPU,
            demand_gbps=demand,
            path=path,
            target_numa=data_node,
            origin_socket=0,
            issue_gbps=profile.core_stream_local_gbps,
        )
        for i in range(n_cores)
    ]
