"""Network fabrics: the wire between the two machines.

The paper's testbed uses InfiniBand (EDR/FDR/HDR) and Omni-Path.  A
:class:`Fabric` contributes per-message latency and a line-rate ceiling;
end-to-end bandwidth is then the minimum of the wire and the receive
side's memory path (which the memory-system simulator arbitrates).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CommunicationError
from repro.units import gbit_to_gbyte

__all__ = ["Fabric", "FABRICS", "fabric_for"]


@dataclass(frozen=True)
class Fabric:
    """A point-to-point network fabric."""

    name: str
    line_rate_gbps: float  # GB/s (bytes, not bits)
    latency_s: float

    def __post_init__(self) -> None:
        if self.line_rate_gbps <= 0.0:
            raise CommunicationError("fabric line rate must be positive")
        if self.latency_s < 0.0:
            raise CommunicationError("fabric latency must be non-negative")

    def wire_time(self, nbytes: int) -> float:
        """Pure wire time for ``nbytes`` (latency + serialisation)."""
        if nbytes < 0:
            raise CommunicationError(f"nbytes must be >= 0, got {nbytes}")
        return self.latency_s + nbytes / (self.line_rate_gbps * 1e9)


#: Catalogue of the fabrics appearing in Table I.
FABRICS: dict[str, Fabric] = {
    "infiniband-fdr": Fabric("InfiniBand FDR", gbit_to_gbyte(56), 0.7e-6),
    "infiniband-edr": Fabric("InfiniBand EDR", gbit_to_gbyte(100), 0.6e-6),
    "infiniband-hdr": Fabric("InfiniBand HDR", gbit_to_gbyte(200), 0.6e-6),
    "omni-path": Fabric("Omni-Path 100", gbit_to_gbyte(100), 0.9e-6),
}


def fabric_for(nic_name: str) -> Fabric:
    """Pick the catalogue fabric matching a NIC's name (best effort)."""
    lowered = nic_name.lower()
    for key, fabric in FABRICS.items():
        suffix = key.rsplit("-", 1)[-1]
        if suffix in lowered:
            return fabric
    if "omni" in lowered:
        return FABRICS["omni-path"]
    return FABRICS["infiniband-edr"]
