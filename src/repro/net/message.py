"""Network message descriptors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CommunicationError

__all__ = ["NetMessage"]


@dataclass(frozen=True)
class NetMessage:
    """One point-to-point message.

    ``dest_node`` is the NUMA node the receive buffer is bound to —
    the ``m_comm`` of the contention model.
    """

    tag: int
    src_rank: int
    dst_rank: int
    nbytes: int
    dest_node: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise CommunicationError(
                f"message must carry a positive byte count, got {self.nbytes}"
            )
        if self.src_rank == self.dst_rank:
            raise CommunicationError("loopback messages are not modelled")
        if self.src_rank < 0 or self.dst_rank < 0:
            raise CommunicationError("ranks must be non-negative")
