"""NIC receive engine: arriving messages become DMA flows.

The receive engine is the glue between the network substrate and the
memory-system simulator.  For each arriving message it builds the DMA
stream of the contention model — NIC port → PCIe → socket mesh →
(link) → destination controller — with the platform's locality quirks
applied, and submits it to the fluid engine after the protocol's
startup delay.  The end-to-end rate then emerges from arbitration; the
fabric's line rate caps the stream demand so a slow wire is honoured
too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CommunicationError
from repro.memsim.engine import Engine, FlowProgress
from repro.memsim.paths import stream_path
from repro.memsim.profile import ContentionProfile
from repro.memsim.stream import Stream, StreamKind
from repro.net.fabric import Fabric
from repro.net.message import NetMessage
from repro.net.protocol import Protocol, RendezvousConfig, select_protocol
from repro.topology.objects import Machine

__all__ = ["TransferHandle", "ReceiveEngine"]


@dataclass(frozen=True)
class TransferHandle:
    """An in-flight (or completed) message reception."""

    message: NetMessage
    protocol: Protocol
    flow: FlowProgress
    startup_delay_s: float

    @property
    def done(self) -> bool:
        return self.flow.done

    def completion_time(self) -> float:
        if self.flow.finished_at is None:
            raise CommunicationError(
                f"message tag={self.message.tag} has not completed"
            )
        return self.flow.finished_at

    def observed_gbps(self) -> float:
        """End-to-end bandwidth including the protocol startup delay."""
        end = self.completion_time()
        elapsed = end - self.flow.submitted_at + self.startup_delay_s
        if elapsed <= 0.0:
            raise CommunicationError("transfer completed in zero time")
        return self.message.nbytes / 1e9 / elapsed


class ReceiveEngine:
    """Turns arriving messages into DMA flows on one machine."""

    def __init__(
        self,
        machine: Machine,
        profile: ContentionProfile,
        engine: Engine,
        *,
        fabric: Fabric,
        rendezvous: RendezvousConfig | None = None,
    ) -> None:
        self._machine = machine
        self._profile = profile
        self._engine = engine
        self._fabric = fabric
        self._rendezvous = rendezvous or RendezvousConfig()
        self._serial = 0

    def dma_stream(
        self, dest_node: int, *, computing_elsewhere_on: int | None = None
    ) -> Stream:
        """Build the DMA stream for a reception into ``dest_node``.

        ``computing_elsewhere_on`` is the NUMA node active computations
        target, used to apply the platform's cross-node NIC penalty
        (pyxis quirk) exactly as the benchmark scenarios do.
        """
        nic = self._machine.nic
        nominal = self._profile.nic_nominal_gbps(dest_node, nic.line_rate_gbps)
        if (
            computing_elsewhere_on is not None
            and self._profile.nic_cross_penalty > 0.0
            and computing_elsewhere_on != dest_node
        ):
            nominal *= 1.0 - self._profile.nic_cross_penalty
        demand = min(nominal, self._fabric.line_rate_gbps)
        self._serial += 1
        return Stream(
            stream_id=f"nic-rx{self._serial}",
            kind=StreamKind.DMA,
            demand_gbps=demand,
            path=stream_path(
                self._machine,
                StreamKind.DMA,
                origin_socket=nic.socket,
                target_numa=dest_node,
            ),
            target_numa=dest_node,
            origin_socket=nic.socket,
            min_guarantee_gbps=self._profile.nic_min_fraction * nominal,
        )

    def receive(
        self,
        message: NetMessage,
        *,
        at: float | None = None,
        computing_elsewhere_on: int | None = None,
    ) -> TransferHandle:
        """Schedule the reception of ``message``.

        The payload flow starts after the protocol startup delay
        (rendezvous handshake for large messages) plus the fabric's
        base latency.
        """
        protocol = select_protocol(message.nbytes, self._rendezvous)
        delay = self._rendezvous.startup_delay(protocol) + self._fabric.latency_s
        start = (self._engine.now if at is None else at) + delay
        stream = self.dma_stream(
            message.dest_node, computing_elsewhere_on=computing_elsewhere_on
        )
        flow = self._engine.submit(stream, message.nbytes, at=start)
        return TransferHandle(
            message=message,
            protocol=protocol,
            flow=flow,
            startup_delay_s=delay,
        )
