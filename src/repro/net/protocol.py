"""Transfer protocols: eager vs rendezvous.

MPI implementations (including MadMPI, the paper's library) send small
messages *eagerly* — the payload travels immediately and is copied into
the receive buffer when it is posted — and large messages through a
*rendezvous*: a ready-to-send / clear-to-send handshake, then a
zero-copy DMA straight into the registered receive buffer.  The paper's
64 MB messages are firmly in rendezvous territory, which is why the NIC
writes directly into the buffer's NUMA node and contends with the
computation there.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import CommunicationError
from repro.units import KiB

__all__ = ["Protocol", "RendezvousConfig", "select_protocol"]


class Protocol(enum.Enum):
    """How a message's payload travels: immediately (eager) or after a
    ready-to-send / clear-to-send handshake (rendezvous)."""

    EAGER = "eager"
    RENDEZVOUS = "rendezvous"


@dataclass(frozen=True)
class RendezvousConfig:
    """Protocol selection and handshake costs."""

    #: Messages up to this size (bytes) go eager (MadMPI-like default).
    eager_threshold: int = 32 * KiB
    #: One-way control-message latencies of the RTS/CTS handshake.
    handshake_latency_s: float = 1.2e-6

    def __post_init__(self) -> None:
        if self.eager_threshold < 0:
            raise CommunicationError("eager threshold must be >= 0")
        if self.handshake_latency_s < 0:
            raise CommunicationError("handshake latency must be >= 0")

    def startup_delay(self, protocol: Protocol) -> float:
        """Time before payload bytes start flowing."""
        if protocol is Protocol.RENDEZVOUS:
            # RTS + CTS round trip.
            return 2.0 * self.handshake_latency_s
        return 0.0


def select_protocol(nbytes: int, config: RendezvousConfig) -> Protocol:
    """Pick the transfer protocol for a message size."""
    if nbytes <= 0:
        raise CommunicationError(f"nbytes must be positive, got {nbytes}")
    if nbytes <= config.eager_threshold:
        return Protocol.EAGER
    return Protocol.RENDEZVOUS
