"""Kernel-mix tenants: bridge from kernel definitions to the scheduler.

:class:`~repro.memsim.scenario.Tenant` deliberately speaks raw GB/s so
the memory simulator stays free of kernel imports; this module supplies
the convenience constructor that turns a :class:`Kernel` (arithmetic
intensity, temporal behaviour) plus a placement into a tenant:

* the per-core demand/issue overrides come from the roofline model
  (:func:`repro.kernels.intensity.demand_gbps`), exactly as the
  single-job sweeps do (:func:`repro.kernels.sweep.kernel_scenario`);
* temporal kernels carry their per-core working set into the tenant,
  so the arbiter's LLC pass filters their DRAM traffic; non-temporal
  kernels bypass the cache (the paper's §II-C setting).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.kernels.intensity import demand_gbps
from repro.kernels.memops import Kernel
from repro.memsim.scenario import LoadEnvelope, Tenant
from repro.topology.platforms import Platform

__all__ = ["kernel_tenant"]


def kernel_tenant(
    platform: Platform,
    kernel: Kernel,
    *,
    name: str,
    n_cores: int,
    m_comp: int,
    m_comm: int | None = None,
    working_set_bytes: int | None = None,
    core_gflops: float = 20.0,
    socket: int = 0,
    bidirectional: bool = False,
    envelope: LoadEnvelope | None = None,
) -> Tenant:
    """Build a :class:`Tenant` whose per-core demand reflects ``kernel``.

    ``working_set_bytes`` is each core's temporal footprint; it is
    required for temporal kernels (the LLC filter has no basis without
    it) and rejected for non-temporal ones (their stores bypass the
    cache, so a working set would silently do nothing).
    """
    if kernel.non_temporal:
        if working_set_bytes is not None:
            raise SimulationError(
                f"kernel {kernel.name!r} uses non-temporal stores; its "
                "working set never occupies the LLC, so working_set_bytes "
                "must be omitted"
            )
    elif working_set_bytes is None:
        raise SimulationError(
            f"kernel {kernel.name!r} is temporal; working_set_bytes is "
            "required to model its LLC occupancy"
        )
    local = platform.machine.socket_of_numa(m_comp) == socket
    demand = demand_gbps(
        kernel,
        core_stream_gbps=platform.profile.core_stream_gbps(local=local),
        core_gflops=core_gflops,
    )
    issue = demand_gbps(
        kernel,
        core_stream_gbps=platform.profile.core_stream_local_gbps,
        core_gflops=core_gflops,
    )
    return Tenant(
        name=name,
        n_cores=n_cores,
        m_comp=m_comp,
        m_comm=m_comm,
        socket=socket,
        comp_demand_gbps=demand,
        comp_issue_gbps=issue,
        working_set_bytes=working_set_bytes,
        bidirectional=bidirectional,
        envelope=envelope if envelope is not None else LoadEnvelope(),
    )
