"""Arithmetic-intensity sweeps: contention versus kernel compute weight.

The paper's prior study ([1], recalled in §I and §IV-C1) found that
contention depends on the kernel's arithmetic intensity:
"Performances are the most reduced when computing kernels are
memory-intensive".  This module quantifies that on the simulated
testbed: for kernels of growing intensity (at a fixed per-core flop
rate), it measures the communication bandwidth surviving a fully
overlapped run and the computation slowdown.

The paper chose memset precisely to maximise contention; this sweep
shows the other end of the spectrum — its "other kernels ... should
produce less contention" expectation, made measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import logging
import numpy as np

from repro.errors import SimulationError
from repro.kernels.intensity import demand_gbps
from repro.kernels.memops import Kernel
from repro.memsim.scenario import Scenario, solve_scenario
from repro.topology.platforms import Platform

log = logging.getLogger("repro.kernels")

__all__ = ["IntensityPoint", "kernel_scenario", "intensity_sweep"]


def kernel_scenario(
    platform: Platform,
    kernel: Kernel,
    *,
    n_cores: int,
    m_comp: int,
    m_comm: int | None,
    core_gflops: float,
) -> Scenario:
    """Build a scenario whose per-core demand reflects ``kernel``.

    ``core_gflops`` is one core's peak flop rate: the roofline crossover
    between it and the kernel's arithmetic intensity decides how hard
    the core can press the memory system.
    """
    local = platform.machine.socket_of_numa(m_comp) == 0
    demand = demand_gbps(
        kernel,
        core_stream_gbps=platform.profile.core_stream_gbps(local=local),
        core_gflops=core_gflops,
    )
    issue = demand_gbps(
        kernel,
        core_stream_gbps=platform.profile.core_stream_local_gbps,
        core_gflops=core_gflops,
    )
    return Scenario(
        n_cores=n_cores,
        m_comp=m_comp,
        m_comm=m_comm,
        comp_demand_gbps=demand,
        comp_issue_gbps=issue,
    )


@dataclass(frozen=True)
class IntensityPoint:
    """Contention outcome for one arithmetic intensity."""

    intensity_flops_per_byte: float
    per_core_demand_gbps: float
    comp_parallel_gbps: float
    comp_alone_gbps: float
    comm_parallel_gbps: float
    comm_alone_gbps: float

    @property
    def comm_retained(self) -> float:
        """Fraction of nominal network bandwidth surviving the overlap."""
        return self.comm_parallel_gbps / self.comm_alone_gbps

    @property
    def comp_retained(self) -> float:
        """Fraction of solo computation bandwidth surviving the overlap."""
        if self.comp_alone_gbps == 0.0:
            return 1.0
        return self.comp_parallel_gbps / self.comp_alone_gbps


def intensity_sweep(
    platform: Platform,
    *,
    intensities: "np.ndarray | list[float]",
    n_cores: int,
    m_comp: int = 0,
    m_comm: int = 0,
    core_gflops: float = 20.0,
    element_bytes: int = 8,
) -> list[IntensityPoint]:
    """Measure contention across kernels of varying arithmetic intensity.

    Each intensity value (flops per byte) defines a synthetic kernel
    with that compute weight; all kernels move the same bytes per
    element, only the flop count varies.
    """
    values = np.asarray(intensities, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise SimulationError("intensities must be a non-empty 1-D sequence")
    if np.any(values < 0):
        raise SimulationError("arithmetic intensities must be non-negative")
    if core_gflops <= 0:
        raise SimulationError("core_gflops must be positive")

    points: list[IntensityPoint] = []
    for intensity in values:
        flops = int(round(intensity * 2 * element_bytes))
        kernel = Kernel(
            name=f"synthetic@{intensity:.3g}",
            bytes_read=element_bytes,
            bytes_written=element_bytes,
            flops=flops,
        )
        parallel = solve_scenario(
            platform.machine,
            platform.profile,
            kernel_scenario(
                platform,
                kernel,
                n_cores=n_cores,
                m_comp=m_comp,
                m_comm=m_comm,
                core_gflops=core_gflops,
            ),
        )
        alone = solve_scenario(
            platform.machine,
            platform.profile,
            kernel_scenario(
                platform,
                kernel,
                n_cores=n_cores,
                m_comp=m_comp,
                m_comm=None,
                core_gflops=core_gflops,
            ),
        )
        silent = solve_scenario(
            platform.machine,
            platform.profile,
            Scenario(0, None, m_comm),
        )
        points.append(
            IntensityPoint(
                intensity_flops_per_byte=float(kernel.arithmetic_intensity),
                per_core_demand_gbps=float(
                    parallel.comp_per_core_gbps[0]
                    if parallel.comp_per_core_gbps
                    else 0.0
                ),
                comp_parallel_gbps=parallel.comp_total_gbps,
                comp_alone_gbps=alone.comp_total_gbps,
                comm_parallel_gbps=parallel.comm_gbps,
                comm_alone_gbps=silent.comm_gbps,
            )
        )
    return points
