"""Kernel definitions: memory-traffic decomposition of computing loops.

A :class:`Kernel` describes how one iteration moves bytes: how many are
read from memory, how many are written, whether the writes are
non-temporal (bypassing the LLC, as the paper's benchmark mandates),
and how many floating-point operations accompany them.  From this the
simulator derives per-core stream demands and total traffic.

The built-in kernels correspond to the paper and its future-work list:

* :func:`memset_nt` — the paper's calibration kernel ("all computing
  cores perform non-temporal memset instructions");
* :func:`copy_kernel` — "copying an array into another instead of just
  initializing" (§VI future work);
* :func:`triad_kernel` — the STREAM-triad shape, a standard
  memory-bound HPC kernel with a little arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

__all__ = [
    "Kernel",
    "memset_nt",
    "copy_kernel",
    "triad_kernel",
    "KERNELS",
    "get_kernel",
]


@dataclass(frozen=True)
class Kernel:
    """Memory behaviour of one computational kernel.

    ``bytes_read`` / ``bytes_written`` are per element processed;
    ``flops`` the floating-point operations per element.
    """

    name: str
    bytes_read: int
    bytes_written: int
    flops: int
    non_temporal: bool = True
    element_bytes: int = 8

    def __post_init__(self) -> None:
        if not self.name:
            raise SimulationError("kernel name must be non-empty")
        if self.bytes_read < 0 or self.bytes_written < 0:
            raise SimulationError("byte counts must be non-negative")
        if self.bytes_read + self.bytes_written == 0:
            raise SimulationError(
                f"kernel {self.name!r} moves no memory; the contention "
                "model only covers memory-bound kernels"
            )
        if self.flops < 0:
            raise SimulationError("flops must be non-negative")
        if self.element_bytes <= 0:
            raise SimulationError("element_bytes must be positive")

    @property
    def bytes_per_element(self) -> int:
        """Total memory traffic per element."""
        return self.bytes_read + self.bytes_written

    @property
    def write_fraction(self) -> float:
        """Fraction of the kernel's traffic that is stores."""
        return self.bytes_written / self.bytes_per_element

    @property
    def arithmetic_intensity(self) -> float:
        """Flops per byte moved — the roofline x-axis."""
        return self.flops / self.bytes_per_element

    def traffic_bytes(self, elements: int) -> int:
        """Total memory traffic for processing ``elements`` elements."""
        if elements < 0:
            raise SimulationError(f"elements must be >= 0, got {elements}")
        return elements * self.bytes_per_element

    def duration_seconds(self, elements: int, achieved_gbps: float) -> float:
        """Time to process ``elements`` at an achieved memory bandwidth."""
        if achieved_gbps <= 0.0:
            raise SimulationError("achieved bandwidth must be positive")
        return self.traffic_bytes(elements) / (achieved_gbps * 1e9)


def memset_nt(element_bytes: int = 8) -> Kernel:
    """The paper's kernel: pure non-temporal stores, zero reads, zero flops."""
    return Kernel(
        name="memset_nt",
        bytes_read=0,
        bytes_written=element_bytes,
        flops=0,
        non_temporal=True,
        element_bytes=element_bytes,
    )


def copy_kernel(element_bytes: int = 8) -> Kernel:
    """Array copy: one read stream plus one non-temporal write stream."""
    return Kernel(
        name="copy",
        bytes_read=element_bytes,
        bytes_written=element_bytes,
        flops=0,
        non_temporal=True,
        element_bytes=element_bytes,
    )


def triad_kernel(element_bytes: int = 8) -> Kernel:
    """STREAM triad ``a[i] = b[i] + s * c[i]``: two reads, one write, two flops."""
    return Kernel(
        name="triad",
        bytes_read=2 * element_bytes,
        bytes_written=element_bytes,
        flops=2,
        non_temporal=True,
        element_bytes=element_bytes,
    )


#: Built-in kernels by name.
KERNELS: dict[str, Kernel] = {
    "memset_nt": memset_nt(),
    "copy": copy_kernel(),
    "triad": triad_kernel(),
}


def get_kernel(name: str) -> Kernel:
    """Look up a built-in kernel by name."""
    try:
        return KERNELS[name]
    except KeyError:
        raise SimulationError(
            f"unknown kernel {name!r}; built-ins: {', '.join(KERNELS)}"
        ) from None
