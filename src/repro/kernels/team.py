"""Simulated OpenMP-style compute team.

The paper spreads computation "among cores dedicated to computations
with OpenMP pragmas", binds threads to physical cores, and weak-scales
the working set (each core always touches the same amount of data).
:class:`ComputeTeam` reproduces that execution model on the fluid
engine: one stream per thread, all bound to socket 0, with the team's
kernel deciding the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.kernels.intensity import demand_gbps
from repro.kernels.memops import Kernel
from repro.memsim.engine import Engine, FlowProgress
from repro.memsim.paths import stream_path
from repro.memsim.profile import ContentionProfile
from repro.memsim.scenario import COMPUTE_SOCKET
from repro.memsim.stream import Stream, StreamKind
from repro.topology.objects import Machine

__all__ = ["ComputeTeam", "TeamRun"]


@dataclass(frozen=True)
class TeamRun:
    """Outcome of one team execution."""

    flows: tuple[FlowProgress, ...]
    elements_per_thread: int
    kernel: Kernel

    @property
    def makespan_seconds(self) -> float:
        """Wall-clock of the parallel region (all threads joined)."""
        ends = [f.finished_at for f in self.flows]
        starts = [f.started_at for f in self.flows]
        if any(e is None for e in ends) or any(s is None for s in starts):
            raise SimulationError("team run has unfinished threads")
        return max(ends) - min(starts)  # type: ignore[operator]

    def total_bandwidth_gbps(self) -> float:
        """Aggregate memory bandwidth over the run."""
        return sum(f.observed_gbps() for f in self.flows)


class ComputeTeam:
    """A bound team of computing threads executing one kernel."""

    def __init__(
        self,
        machine: Machine,
        profile: ContentionProfile,
        *,
        n_threads: int,
        data_node: int,
        kernel: Kernel,
        core_gflops: float = 0.0,
    ) -> None:
        if n_threads < 1:
            raise SimulationError(f"n_threads must be >= 1, got {n_threads}")
        if n_threads > machine.cores_per_socket:
            raise SimulationError(
                f"{n_threads} threads exceed the {machine.cores_per_socket} "
                f"cores of socket {COMPUTE_SOCKET} (the paper binds one "
                "thread per physical core)"
            )
        machine.numa_node(data_node)  # validates the node exists
        self._machine = machine
        self._profile = profile
        self._n_threads = n_threads
        self._data_node = data_node
        self._kernel = kernel
        self._core_gflops = core_gflops

    @property
    def n_threads(self) -> int:
        return self._n_threads

    @property
    def kernel(self) -> Kernel:
        return self._kernel

    def thread_cores(self) -> tuple[int, ...]:
        """Physical core indices the threads are bound to (compact)."""
        return tuple(range(self._n_threads))

    def streams(self) -> list[Stream]:
        """One memory stream per thread, demand scaled by the kernel."""
        local = (
            self._machine.socket_of_numa(self._data_node) == COMPUTE_SOCKET
        )
        stream_peak = self._profile.core_stream_gbps(local=local)
        demand = demand_gbps(
            self._kernel,
            core_stream_gbps=stream_peak,
            core_gflops=self._core_gflops,
        )
        issue_peak = demand_gbps(
            self._kernel,
            core_stream_gbps=self._profile.core_stream_local_gbps,
            core_gflops=self._core_gflops,
        )
        path = stream_path(
            self._machine,
            StreamKind.CPU,
            origin_socket=COMPUTE_SOCKET,
            target_numa=self._data_node,
        )
        return [
            Stream(
                stream_id=f"omp{core}",
                kind=StreamKind.CPU,
                demand_gbps=demand,
                path=path,
                target_numa=self._data_node,
                origin_socket=COMPUTE_SOCKET,
                issue_gbps=issue_peak,
            )
            for core in self.thread_cores()
        ]

    def run(
        self,
        engine: Engine,
        *,
        elements_per_thread: int,
        at: float | None = None,
    ) -> TeamRun:
        """Submit the parallel region to ``engine`` (weak scaling).

        The engine must be run (``engine.run()``) for the flows to
        complete; this allows overlapping the region with communication
        flows submitted to the same engine.
        """
        if elements_per_thread < 1:
            raise SimulationError("elements_per_thread must be >= 1")
        nbytes = self._kernel.traffic_bytes(elements_per_thread)
        flows = tuple(
            engine.submit(stream, nbytes, at=at) for stream in self.streams()
        )
        return TeamRun(
            flows=flows,
            elements_per_thread=elements_per_thread,
            kernel=self._kernel,
        )
