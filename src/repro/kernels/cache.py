"""Last-level-cache model (the paper's §VI future-work item).

The paper's benchmark bypasses the LLC with non-temporal stores so the
model only sees true memory traffic (§II-C), and lists "take into
account the last level cache into our model" as future work.  This
module supplies the minimal cache layer that makes the question
answerable on the simulated testbed:

* non-temporal kernels bypass the cache entirely (factor 1.0 — the
  paper's setting, unchanged);
* temporal kernels are filtered by the classic working-set model: the
  fraction of each thread's working set that fits in its share of the
  LLC is served from cache, and only the rest reaches DRAM.  A
  compulsory-miss floor keeps the first pass honest.

The factor multiplies both the stream demand and the mesh issue
pressure: data served from cache presses neither.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.kernels.memops import Kernel
from repro.memsim.llc import COMPULSORY_FLOOR, dram_factor
from repro.topology.objects import Machine

__all__ = ["CacheModel", "llc_bytes_per_thread", "dram_traffic_factor"]

# The working-set factor math itself lives in repro.memsim.llc (the
# arbiter applies it as a first-class resource); COMPULSORY_FLOOR is
# re-exported here for backwards compatibility.


def llc_bytes_per_thread(machine: Machine, n_threads: int) -> int:
    """Each thread's fair share of its socket's last-level cache.

    Raises when the machine declares no cache — modelling temporal
    kernels then has no basis.
    """
    if n_threads < 1:
        raise SimulationError("n_threads must be >= 1")
    caches = machine.sockets[0].caches
    llc = max((c for c in caches), key=lambda c: c.level, default=None)
    if llc is None:
        raise SimulationError(
            f"machine {machine.name!r} declares no cache levels; "
            "temporal kernels cannot be modelled on it"
        )
    return llc.size_bytes // max(n_threads, 1)


def dram_traffic_factor(
    kernel: Kernel,
    *,
    working_set_bytes: int,
    llc_share_bytes: int,
) -> float:
    """Fraction of the kernel's nominal traffic that reaches DRAM.

    Non-temporal kernels return exactly 1.0 (the stores bypass the
    cache, §II-C).  Temporal kernels follow the working-set model:
    ``hit = min(1, llc_share / working_set)`` and the DRAM factor is
    ``max(1 - hit, COMPULSORY_FLOOR)``.
    """
    if working_set_bytes <= 0:
        raise SimulationError("working_set_bytes must be positive")
    if llc_share_bytes < 0:
        raise SimulationError("llc_share_bytes must be non-negative")
    if kernel.non_temporal:
        return 1.0
    return dram_factor(working_set_bytes, llc_share_bytes)


@dataclass(frozen=True)
class CacheModel:
    """LLC filtering for one team configuration on one machine."""

    machine: Machine
    n_threads: int

    def __post_init__(self) -> None:
        if self.n_threads < 1:
            raise SimulationError("n_threads must be >= 1")

    @property
    def llc_share_bytes(self) -> int:
        return llc_bytes_per_thread(self.machine, self.n_threads)

    def traffic_factor(self, kernel: Kernel, working_set_bytes: int) -> float:
        """DRAM traffic factor for ``kernel`` over ``working_set_bytes``."""
        return dram_traffic_factor(
            kernel,
            working_set_bytes=working_set_bytes,
            llc_share_bytes=self.llc_share_bytes,
        )

    def effective_demand_gbps(
        self,
        kernel: Kernel,
        *,
        working_set_bytes: int,
        stream_gbps: float,
    ) -> float:
        """Per-core DRAM bandwidth demand after cache filtering.

        The core still *processes* at its stream rate; only the
        DRAM-visible share of that traffic competes for the memory
        system.
        """
        if stream_gbps <= 0:
            raise SimulationError("stream_gbps must be positive")
        return stream_gbps * self.traffic_factor(kernel, working_set_bytes)
