"""Roofline-style demand model.

The paper notes ([1], §IV-C1) that contention depends on the
*arithmetic intensity* of the computing kernel: compute-bound kernels
put little pressure on the memory system.  :func:`demand_gbps` converts
a kernel plus a core's characteristics into the per-core memory
bandwidth demand the simulator should use — the classic roofline
crossover:

* a memory-bound kernel (low flops/byte) demands the core's full stream
  bandwidth;
* a compute-bound kernel is limited by the core's flop rate, demanding
  only ``flops_rate / intensity`` bytes per second.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.kernels.memops import Kernel

__all__ = ["demand_gbps"]


def demand_gbps(
    kernel: Kernel,
    *,
    core_stream_gbps: float,
    core_gflops: float = 0.0,
) -> float:
    """Per-core memory-bandwidth demand of ``kernel``.

    ``core_stream_gbps`` is the core's peak streaming bandwidth (the
    profile's ``B_comp_seq`` hardware limit); ``core_gflops`` its peak
    flop rate in GFLOP/s.  A zero flop rate (the default) models a
    purely memory-bound setting, matching the paper's memset benchmark.
    """
    if core_stream_gbps <= 0.0:
        raise SimulationError("core_stream_gbps must be positive")
    if core_gflops < 0.0:
        raise SimulationError("core_gflops must be non-negative")
    intensity = kernel.arithmetic_intensity
    if intensity == 0.0 or core_gflops == 0.0:
        return core_stream_gbps
    # Bandwidth at which the kernel's flop demand saturates the core:
    # moving B bytes/s requires B * intensity flops/s.
    flop_limited = core_gflops / intensity
    return min(core_stream_gbps, flop_limited)
