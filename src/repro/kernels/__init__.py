"""Computation-kernel substrate.

The paper's benchmark cores run non-temporal ``memset`` — a pure write
stream that bypasses the last-level cache (§II-C).  This package
describes such kernels abstractly (read/write stream decomposition,
arithmetic intensity) and provides the simulated OpenMP-style team that
executes them on a machine:

* :mod:`repro.kernels.memops` — kernel definitions (memset, copy,
  triad, and a parameterisable custom kernel);
* :mod:`repro.kernels.intensity` — the roofline-style demand model
  turning arithmetic intensity into per-core bandwidth demand;
* :mod:`repro.kernels.team` — the simulated OpenMP team (thread→core
  binding, weak scaling, execution on the fluid engine).
"""

from repro.kernels.cache import CacheModel, dram_traffic_factor, llc_bytes_per_thread
from repro.kernels.intensity import demand_gbps
from repro.kernels.memops import (
    KERNELS,
    Kernel,
    copy_kernel,
    get_kernel,
    memset_nt,
    triad_kernel,
)
from repro.kernels.sweep import IntensityPoint, intensity_sweep, kernel_scenario
from repro.kernels.team import ComputeTeam, TeamRun
from repro.kernels.tenancy import kernel_tenant

__all__ = [
    "CacheModel",
    "ComputeTeam",
    "IntensityPoint",
    "KERNELS",
    "Kernel",
    "TeamRun",
    "copy_kernel",
    "demand_gbps",
    "dram_traffic_factor",
    "get_kernel",
    "intensity_sweep",
    "kernel_scenario",
    "kernel_tenant",
    "llc_bytes_per_thread",
    "memset_nt",
    "triad_kernel",
]
