"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``platforms``
    List the testbed platforms (Table I).
``topo <platform>``
    Render a platform's topology tree.
``sweep <platform> [--placement MC MM] [--csv PATH]``
    Run the benchmark sweep and print/export the curves.
``calibrate <platform>``
    Print the calibrated local/remote model parameters.
``predict <platform> -n N --comp MC --comm MM [--backend B]``
    Predict bandwidths for one configuration (optionally through a
    registered model backend or the ``tournament`` winner router).
``tournament run|report [PLATFORM ...]``
    Cross-model tournament: calibrate every registered model backend,
    score each on every platform × placement × core-band regime, and
    print the per-regime winner table (docs/BACKENDS.md).
``figure <figN>``
    Regenerate a paper figure as ASCII (and optionally CSV).
``table1`` / ``table2``
    Regenerate the paper tables.
``advise <platform> --comp-bytes B --comm-bytes B``
    Recommend core count and placement for an overlapped workload.
``advise <platform> --victim``
    Rank communication-data placements by worst-case degradation
    under noisy co-tenants (docs/TENANTS.md).
``overlap <platform> -n N --comp MC --comm MM --comp-bytes B --comm-bytes B``
    Estimate the overlap efficiency of one configuration.
``bottleneck <platform> -n N --comp MC --comm MM``
    Locate the contention bottleneck of one scenario.
``sensitivity <platform>``
    Rank model parameters by their influence on the predictions.
``diagnose <platform>``
    Model-limits diagnosis: where and why the model errs (§IV-C1).
``intensity <platform> [-n N]``
    Contention versus kernel arithmetic intensity.
``export-platform <platform> --output PATH``
    Save a platform description (topology + contention profile) as JSON.
``check``
    Run all platforms and verify the structural Table II claims.
``report [--output PATH]``
    Generate the full EXPERIMENTS.md report.
``serve [--host H] [--port P] [--cache-dir D] [--preload P[:S] ...]``
    Run the contention-prediction service (docs/SERVICE.md).
``query <endpoint> ...``
    Query a running prediction service over HTTP.
``cluster serve|status|loadgen``
    Scale-out serving: a supervised multi-worker fleet behind a
    sharding router, plus the SLO load harness (docs/CLUSTER.md).
``cache ls|info|clear``
    Inspect or clear the pipeline artifact cache (docs/PIPELINE.md).
``trace summarize <path>``
    Per-span time/percentage table of a ``--trace`` file
    (docs/OBSERVABILITY.md).
``bench run|compare``
    Run the performance-trajectory benchmarks, emit/refresh
    ``BENCH_<area>.json``, and gate on regressions against the
    committed baselines (docs/BENCHMARKS.md).

Experiment-running commands (``calibrate``, ``predict``, ``figure``,
``table2``, ``advise``, ``overlap``, ``sensitivity``, ``diagnose``,
``check``, ``report``) accept ``--cache-dir`` (reuse sweep/calibration
artifacts across invocations; defaults to ``$REPRO_CACHE_DIR`` when
set), ``--jobs`` (parallel workers; 0 = one per CPU), and ``--trace
PATH`` (write a structured trace of the run: JSONL, or Chrome
trace-event JSON when the path ends in ``.json``).  ``serve`` accepts
``--trace`` too, exporting on shutdown.  The global ``--log-level``
flag configures the root ``repro`` logger once, surfacing the
``repro.<package>`` subsystem logs.

Exit codes
----------
``0`` success; every :class:`~repro.errors.ReproError` subclass maps to
its own code (see :data:`EXIT_CODES`) so scripts can tell a bad
placement (7) from an unreachable service (11) or a misused artifact
cache (12) without parsing stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.advisor import Advisor, Workload
from repro.bench import SweepConfig, run_placement_grid
from repro.bench.runner import measure_curves
from repro.core import calibrate_placement_model
from repro.errors import (
    AdvisorError,
    ArbitrationError,
    BenchmarkError,
    BenchTrackError,
    CalibrationError,
    ClusterError,
    CommunicationError,
    ModelError,
    ObsError,
    PipelineError,
    PlacementError,
    ReproError,
    ServiceError,
    SimulationError,
    TopologyError,
)
from repro.obs import LOG_LEVELS, configure_logging
from repro.evaluation import (
    EXPERIMENTS,
    render_table1,
    render_table2,
    run_all_experiments,
    run_platform_experiment,
)
from repro.evaluation.figures import (
    figure_series,
    render_figure_ascii,
    series_to_csv,
)
from repro.evaluation.experiments import figure_platform
from repro.evaluation.report import generate_experiments_report
from repro.topology import get_platform, platform_names, render_text

__all__ = ["main", "build_parser", "EXIT_CODES", "exit_code_for"]

#: Process exit code of each error family.  Subclass entries win over
#: their bases (:func:`exit_code_for` walks the MRO), so e.g. a
#: :class:`PlacementError` exits 7 even though it is a ``ModelError``.
EXIT_CODES: dict[type, int] = {
    ReproError: 1,
    TopologyError: 2,
    SimulationError: 3,
    ArbitrationError: 4,
    CalibrationError: 5,
    ModelError: 6,
    PlacementError: 7,
    BenchmarkError: 8,
    CommunicationError: 9,
    AdvisorError: 10,
    ServiceError: 11,
    PipelineError: 12,
    ObsError: 13,
    BenchTrackError: 14,
    ClusterError: 15,
}


def exit_code_for(exc: ReproError) -> int:
    """The exit code of an error: its most-derived mapped class."""
    for cls in type(exc).__mro__:
        if cls in EXIT_CODES:
            return EXIT_CODES[cls]
    return 1


def _resolve_cache_dir(args: argparse.Namespace) -> Path | None:
    """``--cache-dir`` if given, else ``$REPRO_CACHE_DIR``, else None."""
    if args.cache_dir is not None:
        return args.cache_dir
    env = os.environ.get("REPRO_CACHE_DIR")
    return Path(env) if env else None


def _pipeline_kwargs(args: argparse.Namespace) -> dict:
    """The pipeline keyword arguments an experiment-running command carries."""
    return {"cache_dir": _resolve_cache_dir(args), "jobs": args.jobs}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="memcontend",
        description=(
            "Reproduction of 'Modeling Memory Contention between "
            "Communications and Computations in Distributed HPC Systems' "
            "(IPDPS-W 2022)"
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="measurement noise seed")
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default=None,
        help="configure the root 'repro' logger (default: library "
        "logging stays unconfigured)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # The structured-trace flag every traced command shares.
    trace_opts = argparse.ArgumentParser(add_help=False)
    trace_opts.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="write a structured trace of this run (JSONL; a .json "
        "suffix selects Chrome trace-event format)",
    )

    # Shared by every command that runs the staged pipeline.
    pipeline_opts = argparse.ArgumentParser(add_help=False, parents=[trace_opts])
    pipeline_opts.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="pipeline artifact cache directory "
        "(defaults to $REPRO_CACHE_DIR when set)",
    )
    pipeline_opts.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel workers (0 = one per CPU)",
    )

    sub.add_parser("platforms", help="list testbed platforms")

    p_topo = sub.add_parser("topo", help="render a platform topology")
    p_topo.add_argument("platform", choices=platform_names())

    p_sweep = sub.add_parser(
        "sweep", parents=[trace_opts], help="run the benchmark sweep"
    )
    p_sweep.add_argument("platform", choices=platform_names())
    p_sweep.add_argument(
        "--placement",
        nargs=2,
        type=int,
        metavar=("M_COMP", "M_COMM"),
        help="single placement (defaults to the full grid)",
    )
    p_sweep.add_argument("--csv", type=Path, help="write curves to CSV")

    p_cal = sub.add_parser(
        "calibrate", parents=[pipeline_opts], help="print calibrated parameters"
    )
    p_cal.add_argument("platform", choices=platform_names())

    p_comp = sub.add_parser(
        "compile", parents=[pipeline_opts],
        help="compile a calibrated model into a dense lookup artifact",
    )
    p_comp.add_argument("platform", choices=platform_names())
    p_comp.add_argument(
        "--n-max", type=int, default=None,
        help="largest core count covered by the compiled tables "
        "(default: 256, covering every archived platform)",
    )
    p_comp.add_argument(
        "--force", action="store_true",
        help="discard any stored compiled artifact and recompile",
    )

    p_pred = sub.add_parser(
        "predict", parents=[pipeline_opts], help="predict one configuration"
    )
    p_pred.add_argument("platform", choices=platform_names())
    p_pred.add_argument("-n", "--cores", type=int, required=True)
    p_pred.add_argument("--comp", type=int, required=True, metavar="M_COMP")
    p_pred.add_argument("--comm", type=int, required=True, metavar="M_COMM")
    p_pred.add_argument(
        "--backend",
        default=None,
        metavar="BACKEND",
        help="answer with a registered model backend, or 'tournament' "
        "for the per-regime winner (default: the threshold model)",
    )

    p_tour = sub.add_parser(
        "tournament",
        help="cross-model tournament: score every backend per regime",
    )
    tsub_t = p_tour.add_subparsers(dest="tournament_command", required=True)
    t_run = tsub_t.add_parser(
        "run", parents=[pipeline_opts],
        help="calibrate every backend and emit the per-regime winner table",
    )
    t_run.add_argument(
        "platforms",
        nargs="*",
        metavar="PLATFORM",
        help="platforms to contest (default: every archived platform)",
    )
    t_rep = tsub_t.add_parser(
        "report", parents=[pipeline_opts],
        help="render the winner table from stored tournament artifacts",
    )
    t_rep.add_argument(
        "platforms",
        nargs="*",
        metavar="PLATFORM",
        help="platforms to report (default: every archived platform)",
    )

    p_fig = sub.add_parser(
        "figure", parents=[pipeline_opts], help="regenerate a paper figure"
    )
    p_fig.add_argument(
        "figure_id",
        choices=[k for k in EXPERIMENTS if k.startswith("fig")],
    )
    p_fig.add_argument("--csv", type=Path, help="write figure series to CSV")
    p_fig.add_argument("--svg", type=Path, help="render the figure to an SVG file")

    sub.add_parser("table1", help="regenerate Table I")
    sub.add_parser(
        "table2", parents=[pipeline_opts], help="regenerate Table II"
    )

    p_adv = sub.add_parser(
        "advise", parents=[pipeline_opts], help="recommend cores and placement"
    )
    p_adv.add_argument("platform", choices=platform_names())
    p_adv.add_argument("--comp-bytes", type=float)
    p_adv.add_argument("--comm-bytes", type=float)
    p_adv.add_argument("--top", type=int, default=5)
    p_adv.add_argument(
        "--victim",
        action="store_true",
        help="rank communication-data placements by worst-case "
        "degradation under noisy co-tenants instead of by workload "
        "makespan (--comp-bytes/--comm-bytes do not apply)",
    )

    p_ovl = sub.add_parser(
        "overlap", parents=[pipeline_opts], help="estimate overlap efficiency"
    )
    p_ovl.add_argument("platform", choices=platform_names())
    p_ovl.add_argument("-n", "--cores", type=int, required=True)
    p_ovl.add_argument("--comp", type=int, required=True, metavar="M_COMP")
    p_ovl.add_argument("--comm", type=int, required=True, metavar="M_COMM")
    p_ovl.add_argument("--comp-bytes", type=float, required=True)
    p_ovl.add_argument("--comm-bytes", type=float, required=True)

    p_bot = sub.add_parser("bottleneck", help="locate the contention bottleneck")
    p_bot.add_argument("platform", choices=platform_names())
    p_bot.add_argument("-n", "--cores", type=int, required=True)
    p_bot.add_argument("--comp", type=int, required=True, metavar="M_COMP")
    p_bot.add_argument("--comm", type=int, required=True, metavar="M_COMM")

    p_sens = sub.add_parser(
        "sensitivity", parents=[pipeline_opts],
        help="rank parameters by prediction influence",
    )
    p_sens.add_argument("platform", choices=platform_names())

    p_diag = sub.add_parser(
        "diagnose", parents=[pipeline_opts],
        help="model-limits diagnosis for a platform",
    )
    p_diag.add_argument("platform", choices=platform_names())

    p_int = sub.add_parser(
        "intensity", help="contention vs kernel arithmetic intensity"
    )
    p_int.add_argument("platform", choices=platform_names())
    p_int.add_argument("-n", "--cores", type=int, default=None)

    p_exp = sub.add_parser(
        "export-platform", help="save a platform description as JSON"
    )
    p_exp.add_argument("platform", choices=platform_names())
    p_exp.add_argument("--output", type=Path, help="write to file instead of stdout")

    sub.add_parser(
        "check", parents=[pipeline_opts],
        help="verify structural claims vs the paper",
    )

    p_rep = sub.add_parser(
        "report", parents=[pipeline_opts], help="generate EXPERIMENTS.md"
    )
    p_rep.add_argument("--output", type=Path, help="write to file instead of stdout")

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the pipeline artifact cache"
    )
    cache_opts = argparse.ArgumentParser(add_help=False)
    cache_opts.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="pipeline artifact cache directory "
        "(defaults to $REPRO_CACHE_DIR when set)",
    )
    csub = p_cache.add_subparsers(dest="cache_command", required=True)
    csub.add_parser("ls", parents=[cache_opts], help="list cached artifacts")
    c_info = csub.add_parser(
        "info", parents=[cache_opts], help="show one entry's manifest"
    )
    c_info.add_argument(
        "entry_id", metavar="ENTRY_ID", help="an id printed by `cache ls`"
    )
    csub.add_parser(
        "clear", parents=[cache_opts], help="remove every cached artifact"
    )

    p_bench = sub.add_parser(
        "bench", help="performance-trajectory benchmarks and regression gate"
    )
    bench_opts = argparse.ArgumentParser(add_help=False)
    bench_opts.add_argument(
        "areas",
        nargs="*",
        metavar="AREA",
        help="benchmark areas (default: all registered areas)",
    )
    bench_opts.add_argument(
        "--baseline-dir",
        type=Path,
        default=Path("."),
        help="directory of the committed BENCH_<area>.json baselines "
        "(default: current directory)",
    )
    bench_opts.add_argument(
        "--band",
        type=float,
        default=None,
        help="default relative noise band for metrics that do not carry "
        "their own (default: 0.25)",
    )
    bsub = p_bench.add_subparsers(dest="bench_command", required=True)
    b_run = bsub.add_parser(
        "run", parents=[bench_opts],
        help="run the benchmarks and write fresh BENCH_<area>.json files",
    )
    b_run.add_argument(
        "--output-dir",
        type=Path,
        default=Path("bench-results"),
        help="where fresh reports are written (default: bench-results/)",
    )
    b_run.add_argument(
        "--compare",
        action="store_true",
        help="also diff the fresh run against the committed baselines "
        "and fail on out-of-band changes",
    )
    b_run.add_argument(
        "--bless",
        action="store_true",
        help="write the fresh run over the committed baselines instead",
    )
    b_cmp = bsub.add_parser(
        "compare", parents=[bench_opts],
        help="run the benchmarks and gate against the committed baselines",
    )
    b_cmp.add_argument(
        "--fresh-dir",
        type=Path,
        default=None,
        help="compare previously saved BENCH_<area>.json files from this "
        "directory instead of re-running the benchmarks",
    )
    b_cmp.add_argument(
        "--markdown",
        action="store_true",
        help="emit the per-metric verdict table as GitHub-flavored "
        "markdown (for CI to post as a PR comment)",
    )

    p_trace = sub.add_parser(
        "trace", help="inspect structured traces written by --trace"
    )
    tsub = p_trace.add_subparsers(dest="trace_command", required=True)
    t_sum = tsub.add_parser(
        "summarize", help="per-span time/percentage table of a trace file"
    )
    t_sum.add_argument(
        "trace_file", type=Path, metavar="PATH",
        help="a JSONL or Chrome trace file written by --trace",
    )

    p_serve = sub.add_parser(
        "serve", parents=[trace_opts],
        help="run the contention-prediction service",
    )
    p_serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="back calibrations with a pipeline artifact cache "
        "(defaults to $REPRO_CACHE_DIR when set)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8080, help="0 picks an ephemeral port"
    )
    p_serve.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout (s)"
    )
    p_serve.add_argument(
        "--max-concurrency", type=int, default=64,
        help="in-flight requests beyond this are answered 503",
    )
    p_serve.add_argument(
        "--no-batching", action="store_true",
        help="disable coalescing of concurrent scalar predictions",
    )
    p_serve.add_argument(
        "--preload",
        action="append",
        default=[],
        metavar="PLATFORM[:SEED]",
        help="hydrate a model before accepting traffic (repeatable); "
        "with --cache-dir this is a warm start from the artifact store",
    )
    p_serve.add_argument(
        "--prefetch-artifact",
        action="append",
        default=[],
        metavar="ENTRY_ID",
        help="fault a stored artifact (backend calibration, tournament "
        "table) into the cache before preloading (repeatable); missing "
        "entries are skipped — the cluster supervisor passes each "
        "worker its shard-assigned backend artifacts this way",
    )

    p_cluster = sub.add_parser(
        "cluster", help="sharded multi-worker serving tier"
    )
    clsub = p_cluster.add_subparsers(dest="cluster_command", required=True)
    cl_serve = clsub.add_parser(
        "serve", help="run N supervised workers behind a sharding router"
    )
    cl_serve.add_argument("--host", default="127.0.0.1")
    cl_serve.add_argument(
        "--port", type=int, default=8080,
        help="router port (0 picks an ephemeral port)",
    )
    cl_serve.add_argument(
        "--workers", type=int, default=3, help="worker process count"
    )
    cl_serve.add_argument(
        "--replication", type=int, default=2,
        help="owners per (platform, seed) shard key",
    )
    cl_serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="shared pipeline artifact cache (required: it is the "
        "warm-restart medium; defaults to $REPRO_CACHE_DIR when set)",
    )
    cl_serve.add_argument(
        "--preload",
        action="append",
        default=[],
        metavar="PLATFORM[:SEED]",
        help="models each owning worker hydrates before taking traffic "
        "(repeatable)",
    )
    cl_serve.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request timeout inside each worker (s)",
    )
    cl_serve.add_argument(
        "--max-concurrency", type=int, default=64,
        help="per-worker in-flight limit; beyond it workers shed with 503",
    )
    cl_serve.add_argument(
        "--max-restarts", type=int, default=3,
        help="restarts before a crash-looping worker is retired",
    )
    cl_status = clsub.add_parser(
        "status", help="summarize a running cluster via its router"
    )
    cl_status.add_argument("--host", default="127.0.0.1")
    cl_status.add_argument("--port", type=int, default=8080)
    cl_status.add_argument("--timeout", type=float, default=10.0)
    cl_load = clsub.add_parser(
        "loadgen", help="drive load at a service and grade it against an SLO"
    )
    cl_load.add_argument("--host", default="127.0.0.1")
    cl_load.add_argument("--port", type=int, default=8080)
    cl_load.add_argument(
        "--platform", default="occigen", choices=platform_names()
    )
    cl_load.add_argument(
        "--total", type=int, default=200, help="total requests to send"
    )
    cl_load.add_argument(
        "--concurrency", type=int, default=8, help="parallel request streams"
    )
    cl_load.add_argument("--timeout", type=float, default=30.0)
    cl_load.add_argument(
        "--p99-ms", type=float, default=250.0, help="SLO: p99 latency bound"
    )
    cl_load.add_argument(
        "--error-budget", type=float, default=0.01,
        help="SLO: tolerated failed-request fraction",
    )
    cl_load.add_argument(
        "--max-shed-rate", type=float, default=0.25,
        help="SLO: tolerated 503 (load-shed) fraction",
    )
    cl_load.add_argument(
        "--check", action="store_true",
        help="exit non-zero when the SLO verdict fails",
    )
    cl_load.add_argument(
        "--overload", action="store_true",
        help="deliberate-overload mode: grade shedding behaviour instead "
        "of the serving SLO (sheds must happen, failures must not)",
    )
    cl_load.add_argument(
        "--min-shed-rate", type=float, default=0.01,
        help="overload mode: the shed fraction the run must reach to "
        "prove back-pressure engaged",
    )

    p_query = sub.add_parser("query", help="query a running service")
    remote = argparse.ArgumentParser(add_help=False)
    remote.add_argument("--host", default="127.0.0.1")
    remote.add_argument("--port", type=int, default=8080)
    remote.add_argument("--timeout", type=float, default=30.0)
    qsub = p_query.add_subparsers(dest="query_command", required=True)
    qsub.add_parser("healthz", parents=[remote], help="service liveness")
    qsub.add_parser("metrics", parents=[remote], help="service metrics JSON")
    q_cal = qsub.add_parser(
        "calibrate", parents=[remote], help="calibrate (or hit the cache)"
    )
    q_cal.add_argument("platform", choices=platform_names())
    q_pred = qsub.add_parser(
        "predict", parents=[remote], help="predict one configuration"
    )
    q_pred.add_argument("platform", choices=platform_names())
    q_pred.add_argument("-n", "--cores", type=int, required=True)
    q_pred.add_argument("--comp", type=int, required=True, metavar="M_COMP")
    q_pred.add_argument("--comm", type=int, required=True, metavar="M_COMM")
    q_pred.add_argument(
        "--backend",
        default=None,
        metavar="BACKEND",
        help="server-side model backend, or 'tournament' for the "
        "per-regime winner (default: the threshold model)",
    )
    q_adv = qsub.add_parser(
        "advise", parents=[remote], help="recommend cores and placement"
    )
    q_adv.add_argument("platform", choices=platform_names())
    q_adv.add_argument("--comp-bytes", type=float)
    q_adv.add_argument("--comm-bytes", type=float)
    q_adv.add_argument("--top", type=int, default=5)
    q_adv.add_argument(
        "--victim",
        action="store_true",
        help="rank communication-data placements by worst-case "
        "degradation under noisy co-tenants",
    )
    q_adv.add_argument(
        "--backend",
        default=None,
        metavar="BACKEND",
        help="server-side model backend, or 'tournament' for the "
        "per-regime winner (default: the threshold model)",
    )

    return parser


def _cmd_platforms(_args: argparse.Namespace) -> str:
    return render_table1()


def _cmd_topo(args: argparse.Namespace) -> str:
    return render_text(get_platform(args.platform).machine)


def _cmd_sweep(args: argparse.Namespace) -> str:
    platform = get_platform(args.platform)
    config = SweepConfig(seed=args.seed)
    if args.placement:
        m_comp, m_comm = args.placement
        curves = measure_curves(
            platform.machine,
            platform.profile,
            m_comp=m_comp,
            m_comm=m_comm,
            config=config,
        )
        lines = [
            f"{'n':>3} {'comp_alone':>11} {'comm_alone':>11} "
            f"{'comp_par':>9} {'comm_par':>9}"
        ]
        for i, n in enumerate(curves.core_counts):
            lines.append(
                f"{int(n):>3} {curves.comp_alone[i]:>11.2f} "
                f"{curves.comm_alone[i]:>11.2f} {curves.comp_parallel[i]:>9.2f} "
                f"{curves.comm_parallel[i]:>9.2f}"
            )
        return "\n".join(lines)
    dataset = run_placement_grid(platform, config=config)
    if args.csv:
        args.csv.write_text(dataset.to_csv())
        return f"wrote {args.csv}"
    return dataset.to_csv()


def _cmd_calibrate(args: argparse.Namespace) -> str:
    platform = get_platform(args.platform)
    result = run_platform_experiment(
        platform, config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    return (
        f"platform {platform.name}\n"
        f"local : {result.model.local.summary()}\n"
        f"remote: {result.model.remote.summary()}"
    )


def _cmd_compile(args: argparse.Namespace) -> str:
    from repro.bench.config import SweepConfig
    from repro.core.compiled import (
        DEFAULT_N_MAX,
        compiled_key,
        load_compiled,
        load_or_compile,
    )
    from repro.evaluation.experiments import run_platform_experiment
    from repro.pipeline.fingerprint import config_fingerprint
    from repro.pipeline.store import ArtifactStore

    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        raise PipelineError(
            "compile needs an artifact store to publish into: pass "
            "--cache-dir or set $REPRO_CACHE_DIR"
        )
    n_max = DEFAULT_N_MAX if args.n_max is None else args.n_max
    config = SweepConfig(seed=args.seed)
    result = run_platform_experiment(
        args.platform, config=config, cache_dir=cache_dir, jobs=args.jobs
    )
    store = ArtifactStore(cache_dir)
    fingerprint = config_fingerprint(config)
    key = compiled_key(args.platform, fingerprint)
    if args.force:
        store.discard(key)
        cached = None
    else:
        cached = load_compiled(store, args.platform, fingerprint)
    reused = cached is not None and cached.n_max >= n_max
    compiled = load_or_compile(
        store,
        args.platform,
        fingerprint,
        result.model,
        n_max=n_max,
        error_average_pct=result.errors.average,
    )
    k = compiled.n_numa_nodes
    return (
        f"{'reused' if reused else 'compiled'} {args.platform} "
        f"(seed={args.seed}) -> {key.entry_id}\n"
        f"  tables: 3 curves x {k * k} placements x "
        f"{compiled.n_max + 1} core counts "
        f"({compiled.table_bytes} bytes)\n"
        f"  store: {store.root}"
    )


def _calibrated_backend_model(args: argparse.Namespace, result):
    """The ``--backend`` model of a local prediction command.

    ``tournament`` builds the per-regime winner router (calibrating the
    whole roster); any other name calibrates just that backend.  Both
    go through the artifact store when a cache dir is configured.
    """
    from repro.backends import get_backend, load_or_calibrate
    from repro.backends.tournament import (
        TournamentRouter,
        run_platform_tournament,
    )
    from repro.pipeline.fingerprint import config_fingerprint
    from repro.pipeline.store import ArtifactStore

    cache_dir = _resolve_cache_dir(args)
    store = ArtifactStore(cache_dir) if cache_dir is not None else None
    config = SweepConfig(seed=args.seed)
    if args.backend == "tournament":
        run = run_platform_tournament(result, config=config, store=store)
        return TournamentRouter(run.tournament, run.calibrated)
    backend = get_backend(args.backend)
    calibrated, _ = load_or_calibrate(
        store,
        backend,
        result.dataset,
        result.platform,
        config_fingerprint(config),
    )
    return calibrated


def _cmd_predict(args: argparse.Namespace) -> str:
    platform = get_platform(args.platform)
    result = run_platform_experiment(
        platform, config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    model = result.model
    note = ""
    if args.backend is not None and args.backend != "threshold":
        model = _calibrated_backend_model(args, result)
        note = f" [backend {args.backend}]"
        if args.backend == "tournament":
            winner = model.winner_for(args.cores, args.comp, args.comm)
            note = f" [backend tournament -> {winner}]"
    comp = model.comp_parallel(args.cores, args.comp, args.comm)
    comm = model.comm_parallel(args.cores, args.comp, args.comm)
    alone = model.comp_alone(args.cores, args.comp)
    return (
        f"{platform.name}: n={args.cores}, comp data on node {args.comp}, "
        f"comm data on node {args.comm}{note}\n"
        f"  predicted computation bandwidth (overlapped): {comp:.2f} GB/s\n"
        f"  predicted communication bandwidth (overlapped): {comm:.2f} GB/s\n"
        f"  predicted computation bandwidth (alone): {alone:.2f} GB/s"
    )


def _cmd_tournament(args: argparse.Namespace) -> str:
    from repro.backends import BACKENDS, render_winner_table
    from repro.backends.tournament import (
        load_tournament,
        run_tournament,
        tournament_fingerprint,
    )
    from repro.pipeline.fingerprint import config_fingerprint
    from repro.pipeline.store import ArtifactStore

    cache_dir = _resolve_cache_dir(args)
    config = SweepConfig(seed=args.seed)
    platforms = list(args.platforms) or list(platform_names())
    for name in platforms:
        if name not in platform_names():
            get_platform(name)  # raises TopologyError listing valid names

    if args.tournament_command == "run":
        runs = run_tournament(
            platforms=platforms,
            config=config,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
        )
        table = render_winner_table(runs)
        cached = sum(1 for run in runs.values() if run.cached)
        hits = sum(
            sum(1 for c in run.backend_cached.values() if c)
            for run in runs.values()
        )
        total = sum(len(run.backend_cached) for run in runs.values())
        status = (
            f"{len(runs)} platform(s), {len(BACKENDS)} backends; "
            f"{hits}/{total} calibrations and {cached}/{len(runs)} "
            f"winner tables served from the store"
            if cache_dir is not None
            else f"{len(runs)} platform(s), {len(BACKENDS)} backends "
            "(no --cache-dir: nothing persisted)"
        )
        return table + "\n" + status
    if args.tournament_command == "report":
        if cache_dir is None:
            raise PipelineError(
                "tournament report reads stored artifacts: pass "
                "--cache-dir or set $REPRO_CACHE_DIR"
            )
        store = ArtifactStore(cache_dir)
        fingerprint = tournament_fingerprint(
            config_fingerprint(config), BACKENDS
        )
        stored = {}
        for name in platforms:
            tournament = load_tournament(store, name, fingerprint)
            if tournament is not None:
                stored[name] = tournament
        if not stored:
            raise PipelineError(
                f"no stored tournament for seed {args.seed} in "
                f"{store.root}: run `repro tournament run --cache-dir "
                f"{cache_dir}` first"
            )
        missing = [name for name in platforms if name not in stored]
        table = render_winner_table(stored)
        if missing:
            table += "\nnot yet contested: " + ", ".join(missing)
        return table
    raise ModelError(
        f"unknown tournament command {args.tournament_command!r}"
    )


def _cmd_figure(args: argparse.Namespace) -> str:
    if args.figure_id == "fig2":
        result = run_platform_experiment(
            "henri-subnuma",
            config=SweepConfig(seed=args.seed),
            **_pipeline_kwargs(args),
        )
        from repro.evaluation.figures import ascii_chart, stacked_figure

        view = stacked_figure(result)
        chart = ascii_chart(
            view.core_counts,
            {
                "comp_par": view.comp_parallel,
                "stacked_total": view.stacked_top(),
                "comp_alone": view.comp_alone,
            },
            title="Figure 2 — stacked memory bandwidth (model view)",
        )
        points = "\n".join(
            f"  {label}: n={x:.0f}, {y:.1f} GB/s"
            for label, (x, y) in view.points.items()
        )
        return chart + "\nAnnotated points:\n" + points
    platform_name = figure_platform(args.figure_id)
    result = run_platform_experiment(
        platform_name, config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    if args.csv:
        args.csv.write_text(series_to_csv(figure_series(result)))
        return f"wrote {args.csv}"
    if args.svg:
        from repro.evaluation.svg import figure_svg

        args.svg.write_text(figure_svg(result))
        return f"wrote {args.svg}"
    return render_figure_ascii(result)


def _cmd_table1(_args: argparse.Namespace) -> str:
    return render_table1()


def _cmd_table2(args: argparse.Namespace) -> str:
    results = run_all_experiments(
        config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    return render_table2(results)


def _cmd_advise(args: argparse.Namespace) -> str:
    platform = get_platform(args.platform)
    if args.victim:
        if args.comp_bytes is not None or args.comm_bytes is not None:
            raise AdvisorError(
                "--comp-bytes/--comm-bytes do not apply to --victim "
                "(victim mode stress-tests placements, not a workload)"
            )
        from repro.advisor import advise_victim_placement

        placements = advise_victim_placement(
            platform.machine, platform.profile, top=args.top
        )
        lines = [
            f"Victim placements for {platform.name} "
            "(worst case over the stressor roster):"
        ]
        lines += [
            f"  {i + 1}. {p.describe()}" for i, p in enumerate(placements)
        ]
        return "\n".join(lines)
    if args.comp_bytes is None or args.comm_bytes is None:
        raise AdvisorError(
            "advise needs --comp-bytes and --comm-bytes (or --victim)"
        )
    result = run_platform_experiment(
        platform, config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    advisor = Advisor(result.model, platform.machine)
    workload = Workload(comp_bytes=args.comp_bytes, comm_bytes=args.comm_bytes)
    recs = advisor.recommend(workload, top=args.top)
    lines = [f"Top {len(recs)} configurations for {platform.name}:"]
    lines += [f"  {i + 1}. {rec.describe()}" for i, rec in enumerate(recs)]
    return "\n".join(lines)


def _cmd_overlap(args: argparse.Namespace) -> str:
    from repro.advisor import Workload, estimate_overlap

    platform = get_platform(args.platform)
    result = run_platform_experiment(
        platform, config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    estimate = estimate_overlap(
        result.model,
        Workload(comp_bytes=args.comp_bytes, comm_bytes=args.comm_bytes),
        n_cores=args.cores,
        m_comp=args.comp,
        m_comm=args.comm,
    )
    return (
        f"{platform.name}: {estimate.describe()}\n"
        f"  computation alone  {estimate.comp_alone_s * 1e3:8.2f} ms\n"
        f"  communication alone{estimate.comm_alone_s * 1e3:8.2f} ms\n"
        f"  serial             {estimate.serial_s * 1e3:8.2f} ms\n"
        f"  overlapped         {estimate.overlapped_s * 1e3:8.2f} ms\n"
        f"  savings            {estimate.savings_s * 1e3:8.2f} ms "
        f"({estimate.efficiency * 100:.0f} % of the hideable time)"
    )


def _cmd_bottleneck(args: argparse.Namespace) -> str:
    from repro.memsim import Scenario, bottleneck_report, solve_scenario

    platform = get_platform(args.platform)
    result = solve_scenario(
        platform.machine,
        platform.profile,
        Scenario(args.cores, args.comp, args.comm),
    )
    return bottleneck_report(result)


def _cmd_sensitivity(args: argparse.Namespace) -> str:
    import numpy as np

    from repro.core import parameter_sensitivity

    platform = get_platform(args.platform)
    result = run_platform_experiment(
        platform, config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    ns = np.arange(1, platform.cores_per_socket + 1)
    sensitivity = parameter_sensitivity(result.model.local, core_counts=ns)
    lines = [
        f"{platform.name}: prediction sensitivity to a "
        f"{sensitivity.relative_step * 100:.0f} % parameter perturbation",
        f"{'parameter':<12} {'comm curve':>11} {'comp curve':>11}",
    ]
    for name, comm_value in sensitivity.ranked(curve="comm"):
        comp_value = sensitivity.comp_sensitivity[name]
        lines.append(
            f"{name:<12} {comm_value * 100:>10.2f}% {comp_value * 100:>10.2f}%"
        )
    return "\n".join(lines)


def _cmd_diagnose(args: argparse.Namespace) -> str:
    from repro.evaluation import render_diagnosis

    result = run_platform_experiment(
        args.platform, config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    return render_diagnosis(result)


def _cmd_intensity(args: argparse.Namespace) -> str:
    from repro.kernels import intensity_sweep

    platform = get_platform(args.platform)
    n = args.cores if args.cores is not None else platform.cores_per_socket
    points = intensity_sweep(
        platform,
        intensities=[0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0],
        n_cores=n,
    )
    lines = [
        f"{platform.name}: contention vs arithmetic intensity ({n} cores, "
        "local/local placement)",
        f"{'flops/byte':>10} {'core GB/s':>10} {'comm kept':>10} {'comp kept':>10}",
    ]
    for p in points:
        lines.append(
            f"{p.intensity_flops_per_byte:>10.2f} "
            f"{p.per_core_demand_gbps:>10.2f} "
            f"{p.comm_retained * 100:>9.1f}% "
            f"{p.comp_retained * 100:>9.1f}%"
        )
    return "\n".join(lines)


def _cmd_export_platform(args: argparse.Namespace) -> str:
    from repro.topology import platform_to_json

    text = platform_to_json(get_platform(args.platform))
    if args.output:
        args.output.write_text(text)
        return f"wrote {args.output}"
    return text


def _cmd_check(args: argparse.Namespace) -> str:
    from repro.evaluation.compare import render_comparison

    results = run_all_experiments(
        config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    return render_comparison(results)


def _cmd_report(args: argparse.Namespace) -> str:
    results = run_all_experiments(
        config=SweepConfig(seed=args.seed), **_pipeline_kwargs(args)
    )
    report = generate_experiments_report(results)
    if args.output:
        args.output.write_text(report)
        return f"wrote {args.output}"
    return report


def _cmd_cache(args: argparse.Namespace) -> str:
    from repro.pipeline.store import ArtifactStore

    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        raise PipelineError(
            "no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR"
        )
    store = ArtifactStore(cache_dir)
    if args.cache_command == "ls":
        entries = store.entries()
        if not entries:
            return f"cache {store.root}: empty"
        lines = [
            f"cache {store.root}: {len(entries)} entries",
            f"{'entry':<56} {'files':>5} {'bytes':>9} {'hits':>5}",
        ]
        for info in entries:
            lines.append(
                f"{info.entry_id:<56} {info.n_files:>5} "
                f"{info.payload_bytes:>9} {info.hits:>5}"
            )
        return "\n".join(lines)
    if args.cache_command == "info":
        import json as _json

        key = store.find(args.entry_id)
        manifest = store.manifest(key)
        manifest["hits_recorded"] = store.hits_recorded(key)
        return _json.dumps(manifest, indent=2, sort_keys=True)
    if args.cache_command == "clear":
        removed = store.clear()
        return f"cache {store.root}: removed {removed} entries"
    raise PipelineError(f"unknown cache command {args.cache_command!r}")


def _cmd_bench(args: argparse.Namespace) -> str:
    from repro.benchtrack import (
        AREAS,
        DEFAULT_BAND,
        BenchReport,
        compare_reports,
        load_report,
        render_comparison,
        render_comparison_markdown,
        run_areas,
        write_report,
    )

    render = (
        render_comparison_markdown
        if getattr(args, "markdown", False)
        else render_comparison
    )

    if args.band is not None and args.band < 0:
        raise BenchTrackError(f"--band must be non-negative, got {args.band}")
    default_band = DEFAULT_BAND if args.band is None else args.band
    for area in args.areas:
        if area not in AREAS:
            raise BenchTrackError(
                f"unknown benchmark area {area!r} "
                f"(known: {', '.join(sorted(AREAS))})"
            )
    names = list(args.areas) or list(AREAS)

    def gate(fresh: dict) -> str:
        lines, failures = [], []
        for name, report in fresh.items():
            baseline_path = args.baseline_dir / BenchReport.filename(name)
            if not baseline_path.exists():
                write_report(report, baseline_path)
                lines.append(
                    f"{BenchReport.filename(name)}: no baseline yet — "
                    f"blessed this run as the first one ({baseline_path})"
                )
                continue
            comparison = compare_reports(
                load_report(baseline_path), report, default_band=default_band
            )
            lines.append(render(comparison))
            failures.extend(
                f"{name}:{diff.name} ({diff.status})"
                for diff in comparison.failures
            )
        if failures:
            # The per-metric report still reaches the user: the error
            # path prints only the exception message.
            print("\n".join(lines), flush=True)
            raise BenchTrackError(
                "benchmark gate failed: " + ", ".join(failures)
            )
        return "\n".join(lines)

    if args.bench_command == "run":
        fresh = run_areas(names)
        lines = []
        for name, report in fresh.items():
            path = write_report(
                report, args.output_dir / BenchReport.filename(name)
            )
            lines.append(f"wrote {path}")
            if args.bless:
                blessed = write_report(
                    report, args.baseline_dir / BenchReport.filename(name)
                )
                lines.append(f"blessed {blessed}")
        if args.compare:
            lines.append(gate(fresh))
        return "\n".join(lines)
    if args.bench_command == "compare":
        if args.fresh_dir is not None:
            fresh = {
                name: load_report(
                    args.fresh_dir / BenchReport.filename(name)
                )
                for name in names
            }
        else:
            fresh = run_areas(names)
        return gate(fresh)
    raise BenchTrackError(f"unknown bench command {args.bench_command!r}")


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.obs import summarize_trace_file

    if args.trace_command == "summarize":
        return summarize_trace_file(args.trace_file)
    raise ObsError(f"unknown trace command {args.trace_command!r}")


def _parse_preload_keys(values: list[str]) -> list[tuple[str, int]]:
    """``PLATFORM[:SEED]`` strings -> ``(platform, seed)`` keys."""
    keys: list[tuple[str, int]] = []
    for value in values:
        platform, _, seed_text = value.partition(":")
        if not platform:
            raise ServiceError(f"malformed --preload value {value!r}")
        try:
            seed = int(seed_text) if seed_text else 0
        except ValueError:
            raise ServiceError(
                f"malformed --preload seed in {value!r}"
            ) from None
        keys.append((platform, seed))
    return keys


def _prefetch_artifacts(
    cache_dir: Path | None, entry_ids: list[str]
) -> int:
    """Fault listed artifact entries into the store before preload.

    The cluster supervisor hands each worker the entry ids of its
    shard-assigned backend calibrations and tournament tables; reading
    them here warms the page cache (and records a store hit) so the
    subsequent ``--preload`` hydration is pure warm reads.  Missing
    entries are skipped: a first-boot fleet has nothing to prefetch.
    """
    from repro.errors import PipelineError as _PipelineError
    from repro.pipeline.store import ArtifactStore

    if not entry_ids:
        return 0
    if cache_dir is None:
        raise ServiceError(
            "--prefetch-artifact needs an artifact store: pass "
            "--cache-dir or set $REPRO_CACHE_DIR"
        )
    store = ArtifactStore(cache_dir)
    warmed = 0
    for entry_id in entry_ids:
        try:
            key = store.find(entry_id)
        except _PipelineError:
            continue  # not published yet; preload will calibrate it
        if store.load(key) is not None:
            warmed += 1
    return warmed


def _cmd_serve(args: argparse.Namespace) -> str:
    import asyncio
    import signal

    from repro.service.server import ContentionService

    cache_dir = _resolve_cache_dir(args)
    preload_keys = _parse_preload_keys(args.preload)
    if args.prefetch_artifact:
        warmed = _prefetch_artifacts(cache_dir, args.prefetch_artifact)
        print(
            f"prefetched {warmed}/{len(args.prefetch_artifact)} "
            "artifact(s)",
            flush=True,
        )

    async def _serve() -> None:
        service = ContentionService(
            host=args.host,
            port=args.port,
            request_timeout_s=args.timeout,
            max_concurrency=args.max_concurrency,
            batching=not args.no_batching,
            cache_dir=str(cache_dir) if cache_dir is not None else None,
        )
        if preload_keys:
            # Before start(): the first request must already be a hit.
            loaded = service.registry.preload(preload_keys)
            print(
                f"preloaded {len(loaded)} model(s): "
                + ", ".join(f"{p}:{s}" for p, s in preload_keys),
                flush=True,
            )
        await service.start()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, service.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix event loop; Ctrl-C still raises
        print(
            f"serving contention predictions on "
            f"http://{service.host}:{service.port} "
            f"(seed-keyed registry, batching "
            f"{'off' if args.no_batching else 'on'})",
            flush=True,
        )
        try:
            await service.run_until_shutdown()
        except KeyboardInterrupt:
            pass
        await service.shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return "shutdown complete"


def _cmd_cluster(args: argparse.Namespace) -> str:
    import json as _json

    if args.cluster_command == "serve":
        return _cmd_cluster_serve(args)
    if args.cluster_command == "status":
        from repro.service.client import ServiceClient

        client = ServiceClient(args.host, args.port, timeout=args.timeout)
        health = client.healthz()
        lines = [
            f"cluster at http://{args.host}:{args.port}: {health['status']} "
            f"({health['workers_alive']} alive, shard-map "
            f"v{health['shard_version']})",
            f"{'worker':<8} {'address':<22} {'pid':>7} {'state':<8} "
            f"{'restarts':>8}",
        ]
        for worker in health["workers"]:
            state = (
                "retired"
                if worker["retired"]
                else ("up" if worker["alive"] else "down")
            )
            lines.append(
                f"{worker['worker_id']:<8} "
                f"{worker['host']}:{worker['port']:<16} "
                f"{worker['pid'] or '-':>7} {state:<8} "
                f"{worker['restarts']:>8}"
            )
        return "\n".join(lines)
    if args.cluster_command == "loadgen":
        from repro.cluster import (
            OverloadTarget,
            PredictWorkload,
            SloTarget,
            run_load,
        )

        workload = PredictWorkload(
            host=args.host,
            port=args.port,
            platform=args.platform,
            seed=args.seed,
            timeout_s=args.timeout,
        )
        report = run_load(
            workload, total=args.total, concurrency=args.concurrency
        )
        if args.overload:
            label = "overload"
            verdict = report.overload_verdict(
                OverloadTarget(
                    min_shed_rate=args.min_shed_rate,
                    error_budget=args.error_budget,
                    p99_ms=args.p99_ms,
                )
            )
        else:
            label = "slo"
            verdict = report.slo_verdict(
                SloTarget(
                    p99_ms=args.p99_ms,
                    error_budget=args.error_budget,
                    max_shed_rate=args.max_shed_rate,
                )
            )
        output = _json.dumps(
            {"load": report.summary(), label: verdict}, indent=2
        )
        if args.check and not verdict["ok"]:
            print(output, flush=True)
            failed = [
                name
                for name, check in verdict["checks"].items()
                if not check["ok"]
            ]
            raise ClusterError(
                f"{label.upper()} violated: " + ", ".join(failed)
            )
        return output
    raise ClusterError(f"unknown cluster command {args.cluster_command!r}")


def _cmd_cluster_serve(args: argparse.Namespace) -> str:
    import asyncio
    import signal

    from repro.cluster import ClusterRouter, Supervisor

    cache_dir = _resolve_cache_dir(args)
    if cache_dir is None:
        raise ClusterError(
            "cluster serve needs a shared artifact cache: pass --cache-dir "
            "or set $REPRO_CACHE_DIR"
        )
    supervisor = Supervisor(
        workers=args.workers,
        replication=args.replication,
        cache_dir=cache_dir,
        host=args.host,
        preload=_parse_preload_keys(args.preload),
        request_timeout_s=args.timeout,
        max_concurrency=args.max_concurrency,
        max_restarts=args.max_restarts,
    )
    supervisor.start()
    try:
        supervisor.wait_ready()

        async def _serve() -> None:
            router = ClusterRouter(
                supervisor, host=args.host, port=args.port
            )
            await router.start()
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, router.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-Unix event loop; Ctrl-C still raises
            print(
                f"routing {len(supervisor.shardmap)} workers "
                f"(replication {args.replication}) on "
                f"http://{router.host}:{router.port}",
                flush=True,
            )
            try:
                await router.run_until_shutdown()
            except KeyboardInterrupt:
                pass
            await router.shutdown()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            pass
    finally:
        supervisor.stop()
    return "cluster shutdown complete"


def _cmd_query(args: argparse.Namespace) -> str:
    import json as _json

    from repro.service.client import ServiceClient

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    if args.query_command == "healthz":
        return _json.dumps(client.healthz(), indent=2)
    if args.query_command == "metrics":
        return _json.dumps(client.metrics(), indent=2)
    if args.query_command == "calibrate":
        result = client.calibrate(args.platform, seed=args.seed)
        return _json.dumps(result, indent=2)
    if args.query_command == "predict":
        result = client.predict(
            args.platform,
            n=args.cores,
            m_comp=args.comp,
            m_comm=args.comm,
            seed=args.seed,
            backend=args.backend,
        )
        note = f" [backend {args.backend}]" if args.backend else ""
        return (
            f"{args.platform}: n={args.cores}, comp data on node "
            f"{args.comp}, comm data on node {args.comm}{note}\n"
            f"  predicted computation bandwidth (overlapped): "
            f"{result['comp_parallel']:.2f} GB/s\n"
            f"  predicted communication bandwidth (overlapped): "
            f"{result['comm_parallel']:.2f} GB/s\n"
            f"  predicted computation bandwidth (alone): "
            f"{result['comp_alone']:.2f} GB/s"
        )
    if args.query_command == "advise":
        if args.victim:
            if args.comp_bytes is not None or args.comm_bytes is not None:
                raise ServiceError(
                    "--comp-bytes/--comm-bytes do not apply to --victim"
                )
            if args.backend is not None:
                raise ServiceError("--backend does not apply to --victim")
            result = client.advise(
                args.platform, victim=True, top=args.top, seed=args.seed
            )
            lines = [
                f"Victim placements for {args.platform} "
                "(worst case over the stressor roster):"
            ]
            for i, p in enumerate(result["placements"]):
                lines.append(
                    f"  {i + 1}. comm data on node {p['m_comm']}: worst case "
                    f"{p['worst_gbps']:.1f}/{p['baseline_gbps']:.1f} GB/s "
                    f"(-{p['degradation'] * 100.0:.0f}% under "
                    f"{p['worst_stressor']})"
                )
            return "\n".join(lines)
        if args.comp_bytes is None or args.comm_bytes is None:
            raise ServiceError(
                "query advise needs --comp-bytes and --comm-bytes "
                "(or --victim)"
            )
        result = client.advise(
            args.platform,
            comp_bytes=args.comp_bytes,
            comm_bytes=args.comm_bytes,
            top=args.top,
            seed=args.seed,
            backend=args.backend,
        )
        recs = result["recommendations"]
        lines = [f"Top {len(recs)} configurations for {args.platform}:"]
        for i, rec in enumerate(recs):
            lines.append(
                f"  {i + 1}. {rec['n_cores']} cores, comp data on node "
                f"{rec['m_comp']}, comm data on node {rec['m_comm']}: "
                f"makespan {rec['makespan_s'] * 1e3:.2f} ms "
                f"(comp {rec['comp_gbps']:.1f} GB/s, "
                f"comm {rec['comm_gbps']:.1f} GB/s)"
            )
        return "\n".join(lines)
    raise ServiceError(f"unknown query command {args.query_command!r}")


_COMMANDS = {
    "platforms": _cmd_platforms,
    "topo": _cmd_topo,
    "sweep": _cmd_sweep,
    "calibrate": _cmd_calibrate,
    "compile": _cmd_compile,
    "predict": _cmd_predict,
    "tournament": _cmd_tournament,
    "figure": _cmd_figure,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "advise": _cmd_advise,
    "overlap": _cmd_overlap,
    "bottleneck": _cmd_bottleneck,
    "sensitivity": _cmd_sensitivity,
    "diagnose": _cmd_diagnose,
    "intensity": _cmd_intensity,
    "export-platform": _cmd_export_platform,
    "check": _cmd_check,
    "report": _cmd_report,
    "bench": _cmd_bench,
    "cache": _cmd_cache,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "cluster": _cmd_cluster,
    "query": _cmd_query,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro import obs

    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        configure_logging(args.log_level)
    trace_path: Path | None = getattr(args, "trace", None)
    tracer = obs.enable() if trace_path is not None else None
    try:
        output = _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    finally:
        if tracer is not None:
            obs.disable()
            try:
                # Written even when the command failed: the trace of a
                # failed run is exactly what you want to look at.
                obs.write_trace(tracer, trace_path)
                print(f"wrote trace to {trace_path}", file=sys.stderr)
            except ReproError as exc:
                print(f"error: {exc}", file=sys.stderr)
    try:
        print(output)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
