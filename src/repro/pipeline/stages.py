"""The four concrete stages of the §IV pipeline.

measure → calibrate → predict → score, with the same semantics as
:func:`repro.evaluation.experiments.run_platform_experiment` (which is
now a consumer of this module):

* **measure** — the full simulated placement-grid sweep.  Expensive,
  cacheable; persisted as full-precision CSV so a reload is bit-exact.
* **calibrate** — §IV-A2 parameter extraction from the two sample
  placements.  Cacheable; persisted as the parameter JSON round trip.
* **predict** — every placement through the calibrated model.  Pure
  array lookups in the memoized evaluation layer, so it is cheaper to
  recompute than to read from disk: ``cacheable = False``.
* **score** — the Table II error breakdown.  Also derived and cheap.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Mapping

from repro.bench.results import PlatformDataset
from repro.bench.sweep import run_placement_grid, sample_placements
from repro.core.calibration import calibrate_placement_model
from repro.core.parameters import ModelParameters
from repro.core.placement import PlacementModel
from repro.errors import PipelineError
from repro.evaluation.metrics import placement_errors
from repro.pipeline.stage import Artifact, PipelineContext, Stage

__all__ = [
    "MeasureStage",
    "CalibrateStage",
    "PredictStage",
    "ScoreStage",
    "PIPELINE_STAGES",
]


def _artifact_value(
    inputs: Mapping[str, Artifact], name: str, stage: str
) -> object:
    try:
        return inputs[name].value
    except KeyError:
        raise PipelineError(
            f"stage {stage!r} needs the {name!r} artifact; got {sorted(inputs)}"
        ) from None


class MeasureStage(Stage):
    """Run the full placement-grid sweep (the simulated testbed)."""

    name = "measure"
    version = "1"
    inputs = ()
    cacheable = True

    def compute(
        self, ctx: PipelineContext, inputs: Mapping[str, Artifact]
    ) -> PlatformDataset:
        return run_placement_grid(
            ctx.platform,
            config=ctx.config,
            jobs=ctx.grid_jobs,
            executor_mode=ctx.executor_mode,
        )

    def serialize(self, value: object) -> dict[str, str]:
        assert isinstance(value, PlatformDataset)
        return {
            "dataset.csv": value.to_csv(full_precision=True),
            "dataset_meta.json": json.dumps(
                {
                    "platform": value.platform_name,
                    # from_csv does not round-trip the provenance
                    # mapping, so it rides along here.
                    "config": dict(value.config),
                },
                indent=2,
                sort_keys=True,
            ),
        }

    def deserialize(
        self, payloads: Mapping[str, str], ctx: PipelineContext
    ) -> PlatformDataset:
        meta = json.loads(payloads["dataset_meta.json"])
        if meta.get("platform") != ctx.platform.name:
            raise PipelineError(
                f"measure artifact is for {meta.get('platform')!r}, "
                f"not {ctx.platform.name!r}"
            )
        dataset = PlatformDataset.from_csv(payloads["dataset.csv"])
        if dataset.platform_name != ctx.platform.name:
            raise PipelineError(
                f"measure CSV is for {dataset.platform_name!r}, "
                f"not {ctx.platform.name!r}"
            )
        return replace(dataset, config=dict(meta.get("config", {})))


class CalibrateStage(Stage):
    """Extract the local/remote model parameters from the sample sweeps."""

    name = "calibrate"
    version = "1"
    inputs = ("measure",)
    cacheable = True

    def compute(
        self, ctx: PipelineContext, inputs: Mapping[str, Artifact]
    ) -> PlacementModel:
        dataset = _artifact_value(inputs, "measure", self.name)
        assert isinstance(dataset, PlatformDataset)
        return calibrate_placement_model(dataset, ctx.platform)

    def serialize(self, value: object) -> dict[str, str]:
        assert isinstance(value, PlacementModel)
        return {
            "model_local.json": value.local.to_json(),
            "model_remote.json": value.remote.to_json(),
            "model_meta.json": json.dumps(
                {
                    "nodes_per_socket": value.nodes_per_socket,
                    "n_numa_nodes": value.n_numa_nodes,
                },
                indent=2,
                sort_keys=True,
            ),
        }

    def deserialize(
        self, payloads: Mapping[str, str], ctx: PipelineContext
    ) -> PlacementModel:
        meta = json.loads(payloads["model_meta.json"])
        model = PlacementModel(
            local=ModelParameters.from_json(payloads["model_local.json"]),
            remote=ModelParameters.from_json(payloads["model_remote.json"]),
            nodes_per_socket=int(meta["nodes_per_socket"]),
            n_numa_nodes=int(meta["n_numa_nodes"]),
        )
        if (
            model.nodes_per_socket != ctx.platform.nodes_per_socket
            or model.n_numa_nodes != ctx.platform.machine.n_numa_nodes
        ):
            raise PipelineError(
                "calibrate artifact topology does not match platform "
                f"{ctx.platform.name!r}"
            )
        return model


class PredictStage(Stage):
    """Predict every measured placement over the measured core counts.

    One batched pass over the memoized evaluation layer — microseconds —
    so caching it would cost more than recomputing.
    """

    name = "predict"
    version = "1"
    inputs = ("measure", "calibrate")
    cacheable = False

    def compute(self, ctx: PipelineContext, inputs: Mapping[str, Artifact]):
        dataset = _artifact_value(inputs, "measure", self.name)
        model = _artifact_value(inputs, "calibrate", self.name)
        assert isinstance(dataset, PlatformDataset)
        assert isinstance(model, PlacementModel)
        first = next(iter(dataset.sweep))
        return model.predict_grid(
            dataset.sweep[first].core_counts, list(dataset.sweep)
        )


class ScoreStage(Stage):
    """The Table II error breakdown (derived, cheap, recomputed)."""

    name = "score"
    version = "1"
    inputs = ("measure", "calibrate")
    cacheable = False

    def compute(self, ctx: PipelineContext, inputs: Mapping[str, Artifact]):
        dataset = _artifact_value(inputs, "measure", self.name)
        model = _artifact_value(inputs, "calibrate", self.name)
        assert isinstance(dataset, PlatformDataset)
        assert isinstance(model, PlacementModel)
        return placement_errors(dataset, model, sample_placements(ctx.platform))


#: The §IV stage graph in topological order.
PIPELINE_STAGES: tuple[Stage, ...] = (
    MeasureStage(),
    CalibrateStage(),
    PredictStage(),
    ScoreStage(),
)
