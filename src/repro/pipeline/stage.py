"""Typed stage/artifact abstraction for the §IV pipeline.

A :class:`Stage` is one deterministic step of the pipeline — measure,
calibrate, predict, score — with explicit, hashable inputs: the
platform, the full sweep configuration, and the stage's own code
version.  Running a stage yields an :class:`Artifact`: the in-memory
value plus the key under which it can be persisted and provenance of
how it was obtained.

Cacheable stages must implement a *bit-identical* text round trip
(``serialize``/``deserialize``): reloading their payloads reconstructs
the exact value a cold run computes.  Cheap derived stages (prediction,
scoring) set ``cacheable = False`` and are recomputed from upstream
artifacts instead of occupying disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping

from repro.bench.config import SweepConfig
from repro.errors import PipelineError
from repro.pipeline.fingerprint import config_fingerprint

if TYPE_CHECKING:  # avoid a hard import cycle with repro.topology
    from repro.topology.platforms import Platform

__all__ = ["Artifact", "PipelineContext", "Stage", "StageKey"]


@dataclass(frozen=True)
class StageKey:
    """The full cache address of one stage instance.

    Two runs share a key iff nothing that can change the stage's output
    differs: same platform, same stage code version, same sweep-config
    fingerprint.
    """

    platform: str
    stage: str
    version: str
    fingerprint: str

    @property
    def entry_name(self) -> str:
        return f"{self.stage}-v{self.version}-{self.fingerprint}"

    @property
    def entry_id(self) -> str:
        """``<platform>/<stage>-v<version>-<fingerprint>`` — the id shown
        by ``repro cache ls`` and accepted by ``repro cache info``."""
        return f"{self.platform}/{self.entry_name}"


@dataclass(frozen=True)
class PipelineContext:
    """Everything a stage may depend on, fixed for one pipeline run."""

    platform: "Platform"
    config: SweepConfig
    #: Parallel workers for *intra*-stage fan-out (per-placement sweeps).
    grid_jobs: int = 1
    #: Executor flavour for that fan-out ("process" or "thread").
    executor_mode: str = "process"

    def key_for(self, stage: "Stage") -> StageKey:
        return StageKey(
            platform=self.platform.name,
            stage=stage.name,
            version=stage.version,
            fingerprint=config_fingerprint(self.config),
        )

    def serial(self) -> "PipelineContext":
        """The same context with intra-stage parallelism disabled."""
        return replace(self, grid_jobs=1)


@dataclass(frozen=True)
class Artifact:
    """One stage's output: the value, its address, and how it was obtained."""

    key: StageKey
    value: object
    #: True when served from the artifact store, False when computed.
    cached: bool = False
    provenance: Mapping[str, object] = field(default_factory=dict)


class Stage:
    """One composable pipeline step.

    Subclasses set ``name``/``version``/``inputs`` and implement
    :meth:`compute`; cacheable ones also implement the text round trip.
    ``version`` participates in the cache key: bump it whenever the
    stage's output changes for identical inputs, and stale entries
    invalidate themselves.
    """

    name: str = ""
    version: str = "1"
    #: Names of upstream stages whose artifacts ``compute`` receives.
    inputs: tuple[str, ...] = ()
    cacheable: bool = True

    def compute(
        self, ctx: PipelineContext, inputs: Mapping[str, Artifact]
    ) -> object:
        raise NotImplementedError

    def serialize(self, value: object) -> dict[str, str]:
        """Payload files (name → UTF-8 text) persisting ``value`` exactly."""
        raise PipelineError(f"stage {self.name!r} is not cacheable")

    def deserialize(
        self, payloads: Mapping[str, str], ctx: PipelineContext
    ) -> object:
        """Reconstruct the exact value :meth:`serialize` captured.

        Raise :class:`~repro.errors.ReproError` on any inconsistency;
        the runner treats that as a corrupt entry (discard + recompute),
        never as a fatal error.
        """
        raise PipelineError(f"stage {self.name!r} is not cacheable")
