"""Cached, parallel pipeline layer for the §IV evaluation.

The measure → calibrate → predict → score workflow is modelled as a DAG
of deterministic stages (:mod:`repro.pipeline.stages`) with explicit,
hashable inputs; expensive stage outputs are persisted in a
content-addressed artifact store (:mod:`repro.pipeline.store`) and
independent stage instances fan out across workers
(:mod:`repro.pipeline.executor`).  See ``docs/PIPELINE.md``.

Most callers never touch this package directly:
:func:`repro.evaluation.experiments.run_platform_experiment` and
:func:`~repro.evaluation.experiments.run_all_experiments` accept
``cache_dir``/``jobs`` and route through it.
"""

from repro.pipeline.executor import parallel_map, resolve_jobs
from repro.pipeline.fingerprint import config_fingerprint, fingerprint_mapping
from repro.pipeline.runner import (
    PipelineRun,
    PipelineStats,
    StageOutcome,
    run_all_pipelines,
    run_platform_pipeline,
)
from repro.pipeline.stage import Artifact, PipelineContext, Stage, StageKey
from repro.pipeline.stages import (
    PIPELINE_STAGES,
    CalibrateStage,
    MeasureStage,
    PredictStage,
    ScoreStage,
)
from repro.pipeline.store import ArtifactStore, EntryInfo, StoreStats

__all__ = [
    "Artifact",
    "ArtifactStore",
    "CalibrateStage",
    "EntryInfo",
    "MeasureStage",
    "PIPELINE_STAGES",
    "PipelineContext",
    "PipelineRun",
    "PipelineStats",
    "PredictStage",
    "ScoreStage",
    "Stage",
    "StageKey",
    "StageOutcome",
    "StoreStats",
    "config_fingerprint",
    "fingerprint_mapping",
    "parallel_map",
    "resolve_jobs",
    "run_all_pipelines",
    "run_platform_pipeline",
]
