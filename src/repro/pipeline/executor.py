"""Parallel execution of independent stage instances.

Independent units of pipeline work — one placement of a sweep, one
platform of ``run_all_experiments`` — share no state: measurement noise
is keyed by ``(seed, measurement key)``, never by call order, so the
numbers are bit-identical no matter how the units are scheduled.  This
module provides the one scheduling primitive the pipeline needs:
:func:`parallel_map`, an order-preserving map over
:mod:`concurrent.futures` executors.

``mode="process"`` sidesteps the GIL (the sweeps are Python-loop bound)
and is the default for ``jobs > 1``; it requires the callable and items
to be picklable, which every pipeline work unit is.  ``mode="thread"``
avoids pickling entirely and is useful for IO-bound work and for
exercising concurrency in tests.  ``jobs=1`` runs inline with no
executor at all, so the serial path stays the trivially debuggable one.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    FIRST_EXCEPTION,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import PipelineError

__all__ = ["parallel_map", "resolve_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")

_MODES = ("process", "thread")


def resolve_jobs(jobs: int | None) -> int:
    """Normalise a ``--jobs`` request to a concrete worker count.

    ``None`` and ``0`` mean "one worker per CPU"; negative counts are a
    caller bug.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise PipelineError(f"jobs must be an integer, got {jobs!r}")
    if jobs < 0:
        raise PipelineError(f"jobs must be >= 0 (0 = one per CPU), got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    jobs: int = 1,
    mode: str = "process",
) -> list[_R]:
    """``[fn(item) for item in items]``, possibly across workers.

    Results are returned in item order regardless of completion order.
    The first worker exception propagates to the caller unchanged (its
    siblings are cancelled where possible), so error behaviour matches
    the serial loop.
    """
    if mode not in _MODES:
        raise PipelineError(
            f"unknown executor mode {mode!r}; expected one of {_MODES}"
        )
    jobs = resolve_jobs(jobs)
    work: Sequence[_T] = list(items)
    if jobs == 1 or len(work) <= 1:
        return [fn(item) for item in work]

    executor_cls = ProcessPoolExecutor if mode == "process" else ThreadPoolExecutor
    with executor_cls(max_workers=min(jobs, len(work))) as executor:
        futures = [executor.submit(fn, item) for item in work]
        _, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        for future in not_done:
            future.cancel()
        # Raise the first *submitted* failure, not a CancelledError from
        # a sibling that was cancelled because of it.
        for future in futures:
            if future.done() and not future.cancelled():
                exc = future.exception()
                if exc is not None:
                    raise exc
        return [future.result() for future in futures]
