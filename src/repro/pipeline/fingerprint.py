"""Cache-key fingerprints for pipeline stages.

An artifact is reusable only if *everything* that influenced it is part
of its key:

* the platform name (topology + contention profile registry entry),
* the full :class:`~repro.bench.config.SweepConfig` (any field change —
  seed, message size, engine choice, even a label — must invalidate),
* the stage's code version (bumped whenever a stage's outputs change
  for the same inputs).

Fingerprints are hex prefixes of a SHA-256 over canonical JSON, so they
are stable across processes, platforms, and Python versions.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from repro.bench.config import SweepConfig

__all__ = ["config_fingerprint", "fingerprint_mapping"]

#: Length of the hex fingerprint kept in keys and directory names.  64
#: bits of a SHA-256 prefix: collisions would need ~10^9 distinct
#: configurations in one store.
_FINGERPRINT_HEX_CHARS = 16


def fingerprint_mapping(data: Mapping[str, Any]) -> str:
    """Canonical-JSON SHA-256 prefix of an arbitrary JSON-able mapping."""
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest[:_FINGERPRINT_HEX_CHARS]


def config_fingerprint(config: SweepConfig) -> str:
    """The fingerprint of one sweep configuration.

    Derived from every field of the config via
    :meth:`SweepConfig.to_dict`, so two configs share a fingerprint iff
    they are value-equal.
    """
    return fingerprint_mapping({"sweep_config": config.to_dict()})
