"""Content-addressed on-disk store for pipeline artifacts.

Layout: one directory per artifact, addressed by its
:class:`~repro.pipeline.stage.StageKey`::

    <root>/<platform>/<stage>-v<version>-<fingerprint>/
        manifest.json     # provenance: key, config, file checksums
        <payload files>   # whatever the stage serialised (CSV/JSON text)
        stats.json        # sidecar hit counter (not covered by checksums)

Guarantees:

* **Atomic writes** — payloads and manifest are written to a temporary
  directory under ``<root>/.tmp`` and renamed into place.  Readers never
  observe a half-written entry; when two writers race, the first rename
  wins and the loser quietly discards its copy (both computed the same
  bytes — keys are content fingerprints).
* **Verified reads** — a manifest that fails to parse, names a missing
  file, carries the wrong format/stage version, or whose payload
  checksums do not match is *never served*: the entry is logged,
  discarded, and the caller recomputes.  Corruption can cost time, not
  correctness.
* **Bit-identical reload** — payloads are UTF-8 text produced by the
  stages' full-precision serialisers (or raw bytes for binary
  artifacts such as compiled ``.npz`` tables), so a warm run
  reconstructs the exact float64 values of the cold run.
"""

from __future__ import annotations

import hashlib
import json
import logging
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import PipelineError
from repro.obs import counter, span
from repro.pipeline.stage import StageKey

try:  # POSIX; the hit counter degrades to best-effort elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = ["ArtifactStore", "EntryInfo", "StoreStats", "MANIFEST_VERSION"]

log = logging.getLogger("repro.pipeline")

#: Bumped whenever the manifest schema changes; older entries are
#: discarded and recomputed rather than misread.
MANIFEST_VERSION = 1

_MANIFEST = "manifest.json"
_STATS = "stats.json"
#: flock target serialising stats.json increments; the leading dot
#: keeps it out of the payload namespace (save() rejects dotted names).
_STATS_LOCK = ".stats.lock"
_TMP = ".tmp"


@dataclass
class StoreStats:
    """In-process counters of one store handle (not persisted)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    discards: int = 0
    #: Saves that lost the publish race to a concurrent writer.  Kept
    #: separate from ``stores`` so ``misses == stores + duplicates``
    #: still reconciles under concurrent writers.
    duplicates: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "discards": self.discards,
            "duplicates": self.duplicates,
        }


@dataclass(frozen=True)
class EntryInfo:
    """One stored artifact, as listed by ``repro cache ls``."""

    key: StageKey
    n_files: int
    payload_bytes: int
    hits: int
    created_unix: float

    @property
    def entry_id(self) -> str:
        return self.key.entry_id


def _sha256(data: str | bytes) -> str:
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def _as_raw(payload: str | bytes) -> bytes:
    return payload.encode("utf-8") if isinstance(payload, str) else payload


class ArtifactStore:
    """Content-addressed artifact cache rooted at one directory."""

    def __init__(self, root: Path | str) -> None:
        self._root = Path(root).expanduser()
        if self._root.exists() and not self._root.is_dir():
            raise PipelineError(
                f"artifact store root {self._root} exists and is not a directory"
            )
        try:
            self._root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise PipelineError(
                f"cannot create artifact store root {self._root}: {exc}"
            ) from exc
        self.stats = StoreStats()

    @property
    def root(self) -> Path:
        return self._root

    def _entry_dir(self, key: StageKey) -> Path:
        return self._root / key.platform / key.entry_name

    # ---- reads -----------------------------------------------------------------

    def load(self, key: StageKey) -> dict[str, str | bytes] | None:
        """The verified payloads of ``key``, or ``None`` to recompute.

        Text payloads (the default) come back as ``str``; payloads
        saved as ``bytes`` (manifest ``encoding: "binary"``) come back
        as ``bytes``.

        Never raises for a bad entry: corruption of any kind (unparsable
        or truncated manifest, missing payload file, checksum mismatch,
        wrong manifest/stage version, key mismatch) discards the entry
        and reports a miss.
        """
        entry = self._entry_dir(key)
        manifest_path = entry / _MANIFEST
        with span("store.load", entry=key.entry_id) as load_span:
            if not manifest_path.is_file():
                self.stats.misses += 1
                counter("store.miss", entry=key.entry_id)
                load_span.tag(outcome="miss")
                return None
            try:
                payloads = self._read_verified(entry, key)
            except (OSError, ValueError) as exc:
                log.warning(
                    "discarding corrupt cache entry %s: %s", key.entry_id, exc
                )
                self._discard_dir(entry)
                self.stats.discards += 1
                self.stats.misses += 1
                counter("store.discard", entry=key.entry_id)
                counter("store.miss", entry=key.entry_id)
                load_span.tag(outcome="corrupt")
                return None
            self.stats.hits += 1
            counter("store.hit", entry=key.entry_id)
            load_span.tag(outcome="hit")
            self._bump_hits(entry)
            return payloads

    def _read_verified(
        self, entry: Path, key: StageKey
    ) -> dict[str, str | bytes]:
        """Read and verify one entry; raises ValueError/OSError on any defect."""
        try:
            manifest = json.loads((entry / _MANIFEST).read_text("utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"manifest is not valid JSON ({exc})") from exc
        if not isinstance(manifest, dict):
            raise ValueError("manifest is not a JSON object")
        if manifest.get("manifest_version") != MANIFEST_VERSION:
            raise ValueError(
                f"manifest version {manifest.get('manifest_version')!r} != "
                f"{MANIFEST_VERSION}"
            )
        recorded = manifest.get("key", {})
        expected = {
            "platform": key.platform,
            "stage": key.stage,
            "stage_version": key.version,
            "fingerprint": key.fingerprint,
        }
        if recorded != expected:
            raise ValueError(f"manifest key {recorded!r} != {expected!r}")
        files = manifest.get("files")
        if not isinstance(files, dict) or not files:
            raise ValueError("manifest lists no payload files")
        payloads: dict[str, str | bytes] = {}
        for name, meta in files.items():
            path = entry / name
            if not path.is_file():
                raise ValueError(f"payload file {name!r} is missing")
            if not isinstance(meta, dict) or "sha256" not in meta:
                raise ValueError(f"payload file {name!r} has no checksum")
            # Exact bytes: universal-newline translation would silently
            # alter CSV payloads (csv emits \r\n) and break checksums.
            raw = path.read_bytes()
            if _sha256(raw) != meta["sha256"]:
                raise ValueError(f"payload file {name!r} fails its checksum")
            encoding = meta.get("encoding", "utf-8")
            if encoding == "binary":
                payloads[name] = raw
            elif encoding == "utf-8":
                payloads[name] = raw.decode("utf-8")
            else:
                raise ValueError(
                    f"payload file {name!r} has unknown encoding {encoding!r}"
                )
        return payloads

    # ---- writes ----------------------------------------------------------------

    def save(
        self,
        key: StageKey,
        payloads: Mapping[str, str | bytes],
        *,
        provenance: Mapping[str, Any] | None = None,
    ) -> None:
        """Atomically persist ``payloads`` under ``key``.

        A ``str`` payload is stored as UTF-8 text and reloads as
        ``str``; a ``bytes`` payload is stored verbatim (manifest
        ``encoding: "binary"``) and reloads as ``bytes``.

        ``provenance`` (e.g. the full sweep-config dict) is embedded in
        the manifest for humans and ``repro cache info``; it is not part
        of the address — the key already fingerprints it.
        """
        if not payloads:
            raise PipelineError(f"refusing to store empty artifact {key.entry_id}")
        for name in payloads:
            if "/" in name or name.startswith(".") or name in (_MANIFEST, _STATS):
                raise PipelineError(f"invalid payload file name {name!r}")
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "key": {
                "platform": key.platform,
                "stage": key.stage,
                "stage_version": key.version,
                "fingerprint": key.fingerprint,
            },
            "provenance": dict(provenance or {}),
            "created_unix": time.time(),
            "files": {
                name: {
                    "sha256": _sha256(payload),
                    "bytes": len(_as_raw(payload)),
                    "encoding": (
                        "binary" if isinstance(payload, bytes) else "utf-8"
                    ),
                }
                for name, payload in payloads.items()
            },
        }
        tmp_root = self._root / _TMP
        tmp_root.mkdir(parents=True, exist_ok=True)
        with span("store.save", entry=key.entry_id):
            tmp_dir = Path(tempfile.mkdtemp(dir=tmp_root, prefix=key.stage))
            try:
                for name, payload in payloads.items():
                    (tmp_dir / name).write_bytes(_as_raw(payload))
                (tmp_dir / _MANIFEST).write_bytes(
                    json.dumps(manifest, indent=2, sort_keys=True).encode(
                        "utf-8"
                    )
                )
                destination = self._entry_dir(key)
                destination.parent.mkdir(parents=True, exist_ok=True)
                try:
                    tmp_dir.rename(destination)
                except OSError:
                    if not destination.exists():
                        # The rename failed for a real reason — disk
                        # full, permissions, a cross-device move — not
                        # because someone else won the race.  Swallowing
                        # it here would silently drop the entry.
                        raise
                    # A concurrent writer already published this key.  Both
                    # computed the same content-addressed bytes: theirs is
                    # as good as ours.  Counted so the books still balance:
                    # every save is either a store or a duplicate.
                    shutil.rmtree(tmp_dir, ignore_errors=True)
                    self.stats.duplicates += 1
                    counter("store.duplicate", entry=key.entry_id)
                    return
            except Exception:
                shutil.rmtree(tmp_dir, ignore_errors=True)
                raise
            self.stats.stores += 1
            counter("store.store", entry=key.entry_id)

    def discard(self, key: StageKey) -> bool:
        """Remove one entry; True if it existed."""
        entry = self._entry_dir(key)
        existed = entry.exists()
        if existed:
            self._discard_dir(entry)
            self.stats.discards += 1
        return existed

    @staticmethod
    def _discard_dir(entry: Path) -> None:
        shutil.rmtree(entry, ignore_errors=True)

    # ---- persistent hit counter -------------------------------------------------

    def _bump_hits(self, entry: Path) -> None:
        """Atomic persistent hit counter, outside the checksummed set.

        The counter is evidence for smoke tests and ``repro cache info``
        ("did the second run actually hit?"), so it must survive racing
        readers: the read-modify-write is serialised by an ``flock`` on
        a sidecar lock file (one per entry, works across both threads
        and processes since every bump opens its own descriptor) and
        published by tmp+rename, so no increment is lost and no reader
        ever sees a torn ``stats.json``.  Where ``flock`` is missing
        the bump degrades to best-effort; it never raises — a counter
        may not cost a pipeline run.
        """
        stats_path = entry / _STATS
        try:
            with open(entry / _STATS_LOCK, "a") as lock_handle:
                if fcntl is not None:
                    fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
                try:
                    hits = self.entry_hits(entry)
                    with tempfile.NamedTemporaryFile(
                        "w",
                        dir=entry,
                        delete=False,
                        suffix=".tmp",
                        encoding="utf-8",
                    ) as handle:
                        json.dump({"hits": hits + 1}, handle)
                        temp_name = handle.name
                    Path(temp_name).replace(stats_path)
                finally:
                    if fcntl is not None:
                        fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
        except OSError:
            # The entry vanished under us (concurrent discard) or the
            # filesystem refused: drop the increment, not the run.
            pass

    @staticmethod
    def entry_hits(entry: Path) -> int:
        """The persisted hit count; a corrupt sidecar reads as 0.

        Corruption-tolerant by contract: non-JSON bytes, a non-object
        document (``[]``), a non-numeric ``hits`` (``null``, ``"x"``)
        and a missing file all reset the counter to 0 rather than
        raising — the sidecar is evidence, never load-bearing state.
        """
        try:
            data = json.loads((entry / _STATS).read_text("utf-8"))
            if not isinstance(data, dict):
                return 0
            return max(0, int(data.get("hits", 0)))
        except (OSError, ValueError, TypeError):
            return 0

    def hits_recorded(self, key: StageKey) -> int:
        """Persistent hit count of one entry (0 if absent)."""
        return self.entry_hits(self._entry_dir(key))

    # ---- inspection ------------------------------------------------------------

    def manifest(self, key: StageKey) -> dict[str, Any]:
        """The raw manifest of one entry (for ``repro cache info``)."""
        path = self._entry_dir(key) / _MANIFEST
        if not path.is_file():
            raise PipelineError(f"no cache entry {key.entry_id}")
        try:
            return json.loads(path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise PipelineError(
                f"cache entry {key.entry_id} has an unreadable manifest: {exc}"
            ) from exc

    def entries(self) -> list[EntryInfo]:
        """Every readable entry, sorted by id; unreadable ones are skipped."""
        found: list[EntryInfo] = []
        for manifest_path in sorted(self._root.glob(f"*/*/{_MANIFEST}")):
            entry = manifest_path.parent
            try:
                manifest = json.loads(manifest_path.read_text("utf-8"))
                recorded = manifest["key"]
                key = StageKey(
                    platform=recorded["platform"],
                    stage=recorded["stage"],
                    version=recorded["stage_version"],
                    fingerprint=recorded["fingerprint"],
                )
                files = manifest["files"]
                found.append(
                    EntryInfo(
                        key=key,
                        n_files=len(files),
                        payload_bytes=sum(
                            int(meta.get("bytes", 0)) for meta in files.values()
                        ),
                        hits=self.entry_hits(entry),
                        created_unix=float(manifest.get("created_unix", 0.0)),
                    )
                )
            except (OSError, ValueError, KeyError, TypeError):
                log.warning("skipping unreadable cache entry %s", entry)
        return found

    def find(self, entry_id: str) -> StageKey:
        """Resolve an id printed by ``repro cache ls`` back to a key."""
        for info in self.entries():
            if info.entry_id == entry_id:
                return info.key
        raise PipelineError(
            f"no cache entry {entry_id!r} in {self._root} "
            "(ids are printed by `repro cache ls`)"
        )

    def clear(self) -> int:
        """Remove every entry (and stray temp dirs); returns entries removed."""
        removed = 0
        for manifest_path in self._root.glob(f"*/*/{_MANIFEST}"):
            self._discard_dir(manifest_path.parent)
            removed += 1
        shutil.rmtree(self._root / _TMP, ignore_errors=True)
        for platform_dir in self._root.iterdir() if self._root.is_dir() else ():
            if platform_dir.is_dir() and not any(platform_dir.iterdir()):
                platform_dir.rmdir()
        self.stats.discards += removed
        return removed
