"""Composing, caching, and fanning out the pipeline stages.

:func:`run_platform_pipeline` executes the stage graph for one platform:
each cacheable stage is first looked up in the artifact store (when one
is configured); a verified hit is deserialised instead of computed, a
corrupt entry is discarded and recomputed, and fresh results are
persisted atomically.  The returned :class:`PipelineRun` carries the
familiar :class:`~repro.evaluation.experiments.ExperimentResult` plus a
:class:`PipelineStats` record proving which stages were served from
cache — the evidence the warm-run tests and the CI smoke job assert on.

:func:`run_all_pipelines` fans independent platforms out across workers
(processes by default — the sweeps are Python-loop bound).  Measurement
noise is keyed by ``(seed, measurement key)``, never by call order, so
parallel output is bit-identical to the serial path.
"""

from __future__ import annotations

import functools
import logging
from dataclasses import dataclass
from pathlib import Path

from repro.bench.config import SweepConfig
from repro.bench.sweep import sample_placements
from repro.errors import PipelineError, ReproError
from repro.evaluation.experiments import ExperimentResult
from repro.obs import span
from repro.pipeline.executor import parallel_map
from repro.pipeline.stage import Artifact, PipelineContext, Stage
from repro.pipeline.stages import PIPELINE_STAGES
from repro.pipeline.store import ArtifactStore
from repro.topology.platforms import Platform, get_platform, platform_names

__all__ = [
    "PipelineRun",
    "PipelineStats",
    "StageOutcome",
    "run_all_pipelines",
    "run_platform_pipeline",
]

log = logging.getLogger("repro.pipeline")


@dataclass(frozen=True)
class StageOutcome:
    """How one stage instance was satisfied."""

    stage: str
    #: "cached" (served from the store), "computed", or "derived"
    #: (non-cacheable stage, always recomputed).
    source: str


@dataclass(frozen=True)
class PipelineStats:
    """Per-stage provenance of one pipeline run — the skip-proof."""

    outcomes: tuple[StageOutcome, ...]

    def source_of(self, stage: str) -> str:
        for outcome in self.outcomes:
            if outcome.stage == stage:
                return outcome.source
        raise PipelineError(f"no outcome recorded for stage {stage!r}")

    @property
    def cached_stages(self) -> tuple[str, ...]:
        return tuple(o.stage for o in self.outcomes if o.source == "cached")

    @property
    def computed_stages(self) -> tuple[str, ...]:
        return tuple(o.stage for o in self.outcomes if o.source == "computed")


@dataclass(frozen=True)
class PipelineRun:
    """An experiment result plus the provenance of how it was produced."""

    result: ExperimentResult
    stats: PipelineStats


def _resolve_store(
    store: ArtifactStore | None, cache_dir: Path | str | None
) -> ArtifactStore | None:
    if store is not None and cache_dir is not None:
        raise PipelineError("pass either store or cache_dir, not both")
    if store is not None:
        return store
    if cache_dir is not None:
        return ArtifactStore(cache_dir)
    return None


def _run_stage(
    stage: Stage,
    ctx: PipelineContext,
    store: ArtifactStore | None,
    artifacts: dict[str, Artifact],
) -> tuple[Artifact, str]:
    """Execute one stage: cache lookup, compute fallback, persist."""
    key = ctx.key_for(stage)
    inputs = {name: artifacts[name] for name in stage.inputs}
    with span(
        f"pipeline.{stage.name}", platform=ctx.platform.name
    ) as stage_span:
        if not stage.cacheable:
            stage_span.tag(source="derived")
            return (
                Artifact(key=key, value=stage.compute(ctx, inputs)),
                "derived",
            )

        if store is not None:
            payloads = store.load(key)
            if payloads is not None:
                try:
                    value = stage.deserialize(payloads, ctx)
                    stage_span.tag(source="cached")
                    return (
                        Artifact(key=key, value=value, cached=True),
                        "cached",
                    )
                except ReproError as exc:
                    # A verified-checksum entry that still fails to
                    # deserialise (e.g. written for a different topology
                    # registry) is as good as corrupt: drop and recompute.
                    log.warning(
                        "cache entry %s failed to deserialise (%s); "
                        "recomputing",
                        key.entry_id,
                        exc,
                    )
                    store.discard(key)

        value = stage.compute(ctx, inputs)
        if store is not None:
            store.save(
                key,
                stage.serialize(value),
                provenance={"sweep_config": ctx.config.to_dict()},
            )
        stage_span.tag(source="computed")
        return Artifact(key=key, value=value), "computed"


def run_platform_pipeline(
    platform: Platform | str,
    *,
    config: SweepConfig | None = None,
    store: ArtifactStore | None = None,
    cache_dir: Path | str | None = None,
    jobs: int = 1,
    executor_mode: str = "process",
) -> PipelineRun:
    """The full measure→calibrate→predict→score pipeline for one platform.

    ``jobs`` parallelises the placement sweep inside the measure stage;
    ``store``/``cache_dir`` (mutually exclusive) enable the artifact
    cache.  With a warm cache the sweep and calibration never execute:
    their artifacts are reloaded bit-identically and only the cheap
    derived stages run.
    """
    if isinstance(platform, str):
        platform = get_platform(platform)
    ctx = PipelineContext(
        platform=platform,
        config=config or SweepConfig(),
        grid_jobs=jobs,
        executor_mode=executor_mode,
    )
    resolved = _resolve_store(store, cache_dir)

    artifacts: dict[str, Artifact] = {}
    outcomes: list[StageOutcome] = []
    with span(
        "pipeline.run",
        platform=ctx.platform.name,
        cached_store=resolved is not None,
        jobs=jobs,
    ):
        for stage in PIPELINE_STAGES:
            artifact, source = _run_stage(stage, ctx, resolved, artifacts)
            artifacts[stage.name] = artifact
            outcomes.append(StageOutcome(stage=stage.name, source=source))

    result = ExperimentResult(
        platform=platform,
        dataset=artifacts["measure"].value,  # type: ignore[arg-type]
        model=artifacts["calibrate"].value,  # type: ignore[arg-type]
        predictions=artifacts["predict"].value,  # type: ignore[arg-type]
        errors=artifacts["score"].value,  # type: ignore[arg-type]
        sample_keys=sample_placements(platform),
    )
    return PipelineRun(result=result, stats=PipelineStats(tuple(outcomes)))


def _platform_task(
    config: SweepConfig | None,
    cache_dir: str | None,
    executor_mode: str,
    name: str,
) -> PipelineRun:
    """Top-level (hence picklable) per-platform unit for process pools.

    Workers share the cache through the filesystem, not through the
    parent's store handle: the store's atomic rename discipline makes
    concurrent writers safe.
    """
    return run_platform_pipeline(
        name, config=config, cache_dir=cache_dir, executor_mode=executor_mode
    )


def run_all_pipelines(
    *,
    config: SweepConfig | None = None,
    store: ArtifactStore | None = None,
    cache_dir: Path | str | None = None,
    jobs: int = 1,
    executor_mode: str = "process",
) -> dict[str, PipelineRun]:
    """Every testbed platform, fanned out ``jobs`` wide, in Table I order.

    ``jobs`` parallelises *across platforms* (each platform's own sweep
    stays serial — no nested pools); output is bit-identical to
    ``jobs=1``.
    """
    names = platform_names()
    if jobs == 1 or len(names) <= 1:
        resolved = _resolve_store(store, cache_dir)
        return {
            name: run_platform_pipeline(
                name, config=config, store=resolved,
                executor_mode=executor_mode,
            )
            for name in names
        }
    if store is not None and cache_dir is None:
        # Worker processes cannot share an in-process handle; hand them
        # the store's root instead.
        cache_dir = store.root
    task = functools.partial(
        _platform_task,
        config,
        str(cache_dir) if cache_dir is not None else None,
        executor_mode,
    )
    runs = parallel_map(task, names, jobs=jobs, mode=executor_mode)
    return dict(zip(names, runs))
