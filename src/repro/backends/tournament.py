"""Cross-model tournament: score every backend on every regime.

A *regime* is one cell of the evaluation grid the service actually
routes queries into: ``platform × (m_comp, m_comm) placement ×
core-count band`` (``low``/``high`` — below and above the measured
sweep's median core count; saturation behaviour differs qualitatively
across that knee, and so do the backends' strengths).  The tournament

1. calibrates every registered backend from the archived sweep through
   the :class:`~repro.pipeline.store.ArtifactStore`
   (:func:`~repro.backends.store.load_or_calibrate` — second run: all
   cache hits),
2. scores each backend on each regime with the paper's Table II
   methodology (:func:`~repro.evaluation.metrics.mape`; the regime
   score is ``0.5·(comm MAPE + 0.5·(comp_par MAPE + comp_alone
   MAPE))``, lower is better),
3. emits a per-regime winner table, persisted as its own versioned
   artifact (stage ``"tournament"``, fingerprinted by the sweep config
   *and* the full roster, so adding a backend re-runs the tournament).

:class:`TournamentRouter` serves the result: a composite
:class:`~repro.backends.base.CalibratedBackend` that answers every
query with the winning backend of the query's regime — what the
service's ``backend=tournament`` mode runs on.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

import numpy as np

from repro.backends.base import CalibratedBackend, ModelBackend
from repro.backends.registry import BACKENDS
from repro.backends.store import load_or_calibrate
from repro.errors import ModelError, PlacementError
from repro.evaluation.metrics import mape

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.config import SweepConfig
    from repro.bench.results import ModeCurves
    from repro.core.placement import PlacementPrediction
    from repro.evaluation.experiments import ExperimentResult
    from repro.pipeline.stage import StageKey
    from repro.pipeline.store import ArtifactStore

__all__ = [
    "PlatformTournament",
    "RegimeScore",
    "TOURNAMENT_FORMAT_VERSION",
    "TOURNAMENT_STAGE",
    "TOURNAMENT_STAGE_VERSION",
    "TournamentRouter",
    "load_tournament",
    "render_winner_table",
    "run_tournament",
    "score_backends",
    "store_tournament",
    "tournament_fingerprint",
    "tournament_key",
]

log = logging.getLogger("repro.backends")

TOURNAMENT_FORMAT_VERSION = 1
TOURNAMENT_STAGE = "tournament"
TOURNAMENT_STAGE_VERSION = 1

_RESULT_FILE = "tournament.json"

BANDS = ("low", "high")


@dataclass(frozen=True)
class RegimeScore:
    """All backends' scores on one regime, and who won it.

    ``scores`` maps backend id to the regime error (percent, lower is
    better); an unscorable backend (a zero measured bandwidth makes the
    MAPE undefined) carries NaN and cannot win.
    """

    m_comp: int
    m_comm: int
    band: str
    n_min: int
    n_max: int
    scores: Mapping[str, float]
    winner: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "m_comp": self.m_comp,
            "m_comm": self.m_comm,
            "band": self.band,
            "n_min": self.n_min,
            "n_max": self.n_max,
            "scores": {
                k: (None if np.isnan(v) else v)
                for k, v in self.scores.items()
            },
            "winner": self.winner,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RegimeScore":
        try:
            scores = {
                str(k): (float("nan") if v is None else float(v))
                for k, v in dict(data["scores"]).items()
            }
            return cls(
                m_comp=int(data["m_comp"]),
                m_comm=int(data["m_comm"]),
                band=str(data["band"]),
                n_min=int(data["n_min"]),
                n_max=int(data["n_max"]),
                scores=scores,
                winner=str(data["winner"]),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ModelError(f"regime score is malformed: {exc}") from exc


@dataclass(frozen=True)
class PlatformTournament:
    """One platform's full tournament result."""

    platform: str
    roster: tuple[str, ...]
    regimes: tuple[RegimeScore, ...]

    def winners(self) -> dict[tuple[int, int, str], str]:
        """``(m_comp, m_comm, band) -> winning backend id``."""
        return {
            (r.m_comp, r.m_comm, r.band): r.winner for r in self.regimes
        }

    def win_counts(self) -> dict[str, int]:
        """Regimes won per backend (zero-filled over the roster)."""
        counts = {backend_id: 0 for backend_id in self.roster}
        for regime in self.regimes:
            counts[regime.winner] = counts.get(regime.winner, 0) + 1
        return counts

    # ---- serialization ---------------------------------------------------------

    def to_payloads(self) -> dict[str, str]:
        return {
            _RESULT_FILE: json.dumps(
                {
                    "format_version": TOURNAMENT_FORMAT_VERSION,
                    "platform": self.platform,
                    "roster": list(self.roster),
                    "regimes": [r.to_dict() for r in self.regimes],
                },
                indent=2,
                sort_keys=True,
            )
        }

    @classmethod
    def from_payloads(
        cls, payloads: Mapping[str, str | bytes]
    ) -> "PlatformTournament":
        raw = payloads.get(_RESULT_FILE)
        if not isinstance(raw, str):
            raise ModelError(
                f"tournament artifact must carry text {_RESULT_FILE!r}"
            )
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ModelError(
                f"tournament artifact is not valid JSON ({exc})"
            ) from exc
        if not isinstance(data, dict):
            raise ModelError("tournament artifact is not a JSON object")
        if data.get("format_version") != TOURNAMENT_FORMAT_VERSION:
            raise ModelError(
                f"tournament format version {data.get('format_version')!r} "
                f"!= {TOURNAMENT_FORMAT_VERSION}"
            )
        try:
            return cls(
                platform=str(data["platform"]),
                roster=tuple(str(b) for b in data["roster"]),
                regimes=tuple(
                    RegimeScore.from_dict(r) for r in data["regimes"]
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ModelError(
                f"tournament artifact is malformed: {exc}"
            ) from exc


# ---- scoring ----------------------------------------------------------------------


def _band_indices(core_counts: np.ndarray) -> dict[str, np.ndarray]:
    """Split a measured sweep into the low/high core-count bands.

    The low band is everything up to (and including) the median core
    count; a single-point sweep has only a low band.
    """
    median = float(np.median(core_counts))
    low = np.flatnonzero(core_counts <= median)
    high = np.flatnonzero(core_counts > median)
    bands = {"low": low}
    if high.size:
        bands["high"] = high
    return bands


def _regime_error(
    curves: "ModeCurves", pred: "PlacementPrediction", idx: np.ndarray
) -> float:
    """Table II weighting of one backend on one regime's points."""
    comm_err = mape(curves.comm_parallel[idx], pred.comm_parallel[idx])
    comp_err = 0.5 * (
        mape(curves.comp_parallel[idx], pred.comp_parallel[idx])
        + mape(curves.comp_alone[idx], pred.comp_alone[idx])
    )
    return 0.5 * (comm_err + comp_err)


def score_backends(
    result: "ExperimentResult",
    calibrated: Mapping[str, CalibratedBackend],
) -> PlatformTournament:
    """Score calibrated backends over every regime of one platform."""
    if not calibrated:
        raise ModelError("a tournament needs at least one backend")
    regimes: list[RegimeScore] = []
    dataset = result.dataset
    for key in dataset.sweep:
        curves = dataset.sweep[key]
        predictions = {}
        for backend_id, backend in calibrated.items():
            try:
                predictions[backend_id] = backend.predict(
                    curves.core_counts, *key
                )
            except ModelError as exc:
                log.warning(
                    "backend %s cannot predict placement %s on %s: %s",
                    backend_id,
                    key,
                    dataset.platform_name,
                    exc,
                )
                predictions[backend_id] = None
        for band, idx in _band_indices(curves.core_counts).items():
            scores: dict[str, float] = {}
            for backend_id, pred in predictions.items():
                if pred is None:
                    scores[backend_id] = float("nan")
                    continue
                try:
                    scores[backend_id] = _regime_error(curves, pred, idx)
                except ModelError:
                    # A zero measured bandwidth in this band: the
                    # paper's metric is undefined, nobody can win on it.
                    scores[backend_id] = float("nan")
            finite = {
                b: s for b, s in scores.items() if not np.isnan(s)
            }
            winner = (
                min(finite, key=finite.get)
                if finite
                else next(iter(calibrated))
            )
            regimes.append(
                RegimeScore(
                    m_comp=key[0],
                    m_comm=key[1],
                    band=band,
                    n_min=int(curves.core_counts[idx[0]]),
                    n_max=int(curves.core_counts[idx[-1]]),
                    scores=scores,
                    winner=winner,
                )
            )
    return PlatformTournament(
        platform=dataset.platform_name,
        roster=tuple(calibrated),
        regimes=tuple(regimes),
    )


# ---- artifact-store glue ----------------------------------------------------------


def tournament_fingerprint(
    config_fp: str, backends: Mapping[str, ModelBackend]
) -> str:
    """Sweep config + full roster (ids and code versions): any change
    to either re-runs the tournament."""
    from repro.pipeline.fingerprint import fingerprint_mapping

    return fingerprint_mapping(
        {
            "config_fp": config_fp,
            "roster": {b.backend_id: b.version for b in backends.values()},
        }
    )


def tournament_key(platform: str, fingerprint: str) -> "StageKey":
    from repro.pipeline.stage import StageKey

    return StageKey(
        platform=platform,
        stage=TOURNAMENT_STAGE,
        version=str(TOURNAMENT_STAGE_VERSION),
        fingerprint=fingerprint,
    )


def store_tournament(
    store: "ArtifactStore",
    fingerprint: str,
    tournament: PlatformTournament,
) -> None:
    store.save(
        tournament_key(tournament.platform, fingerprint),
        tournament.to_payloads(),
        provenance={
            "platform": tournament.platform,
            "roster": list(tournament.roster),
            "regimes": len(tournament.regimes),
        },
    )


def load_tournament(
    store: "ArtifactStore", platform: str, fingerprint: str
) -> PlatformTournament | None:
    key = tournament_key(platform, fingerprint)
    payloads = store.load(key)
    if payloads is None:
        return None
    try:
        return PlatformTournament.from_payloads(payloads)
    except ModelError as exc:
        log.warning(
            "discarding invalid tournament artifact %s: %s",
            key.entry_id,
            exc,
        )
        store.discard(key)
        return None


# ---- the runner -------------------------------------------------------------------


@dataclass(frozen=True)
class TournamentRun:
    """One platform's tournament plus how it was obtained."""

    tournament: PlatformTournament
    calibrated: Mapping[str, CalibratedBackend]
    #: backend id -> calibration served from the store
    backend_cached: Mapping[str, bool]
    #: the winner table itself came from the store
    cached: bool


def run_platform_tournament(
    result: "ExperimentResult",
    *,
    config: "SweepConfig | None" = None,
    store: "ArtifactStore | None" = None,
    backends: Mapping[str, ModelBackend] | None = None,
) -> TournamentRun:
    """Calibrate the roster and score it on one platform's archive.

    Every calibration and the winner table itself go through the
    artifact store when one is given; a second run over an unchanged
    archive is pure cache hits.
    """
    from repro.bench.config import SweepConfig
    from repro.pipeline.fingerprint import config_fingerprint

    roster = dict(backends if backends is not None else BACKENDS)
    config_fp = config_fingerprint(config or SweepConfig())
    platform = result.platform

    calibrated: dict[str, CalibratedBackend] = {}
    backend_cached: dict[str, bool] = {}
    for backend_id, backend in roster.items():
        calibrated[backend_id], backend_cached[backend_id] = (
            load_or_calibrate(
                store, backend, result.dataset, platform, config_fp
            )
        )

    fingerprint = tournament_fingerprint(config_fp, roster)
    if store is not None:
        stored = load_tournament(store, platform.name, fingerprint)
        if stored is not None and stored.roster == tuple(roster):
            return TournamentRun(
                tournament=stored,
                calibrated=calibrated,
                backend_cached=backend_cached,
                cached=True,
            )
    tournament = score_backends(result, calibrated)
    if store is not None:
        store_tournament(store, fingerprint, tournament)
    return TournamentRun(
        tournament=tournament,
        calibrated=calibrated,
        backend_cached=backend_cached,
        cached=False,
    )


def run_tournament(
    *,
    platforms: Sequence[str] | None = None,
    config: "SweepConfig | None" = None,
    cache_dir: "str | None" = None,
    store: "ArtifactStore | None" = None,
    backends: Mapping[str, ModelBackend] | None = None,
) -> dict[str, TournamentRun]:
    """The full tournament: every archived platform, every backend."""
    from repro.bench.config import SweepConfig
    from repro.evaluation.experiments import run_platform_experiment
    from repro.pipeline.store import ArtifactStore
    from repro.topology.platforms import platform_names

    if store is None and cache_dir is not None:
        store = ArtifactStore(cache_dir)
    config = config or SweepConfig()
    names = list(platforms) if platforms is not None else list(platform_names())
    runs: dict[str, TournamentRun] = {}
    for name in names:
        result = run_platform_experiment(name, config=config, store=store)
        runs[name] = run_platform_tournament(
            result, config=config, store=store, backends=backends
        )
    return runs


# ---- reporting --------------------------------------------------------------------


def render_winner_table(runs: Mapping[str, TournamentRun | PlatformTournament]) -> str:
    """The per-regime winner table, one row per regime."""
    header = (
        f"{'platform':<16} {'placement':<10} {'band':<5} "
        f"{'cores':<9} {'winner':<22} {'score%':>8}  margin"
    )
    lines = [header, "-" * len(header)]
    totals: dict[str, int] = {}
    n_regimes = 0
    for name in sorted(runs):
        run = runs[name]
        tournament = run.tournament if isinstance(run, TournamentRun) else run
        for regime in tournament.regimes:
            n_regimes += 1
            totals[regime.winner] = totals.get(regime.winner, 0) + 1
            finite = sorted(
                v for v in regime.scores.values() if not np.isnan(v)
            )
            best = regime.scores.get(regime.winner, float("nan"))
            margin = (
                f"+{finite[1] - finite[0]:.1f}" if len(finite) > 1 else "-"
            )
            placement = f"({regime.m_comp},{regime.m_comm})"
            cores = f"{regime.n_min}-{regime.n_max}"
            score = f"{best:.2f}" if not np.isnan(best) else "n/a"
            lines.append(
                f"{tournament.platform:<16} {placement:<10} "
                f"{regime.band:<5} {cores:<9} {regime.winner:<22} "
                f"{score:>8}  {margin}"
            )
    lines.append("")
    won = ", ".join(
        f"{backend}={count}"
        for backend, count in sorted(totals.items(), key=lambda kv: -kv[1])
    )
    lines.append(f"{n_regimes} regimes; wins: {won}")
    return "\n".join(lines)


# ---- the router -------------------------------------------------------------------


class TournamentRouter(CalibratedBackend):
    """A composite backend answering each query with its regime's winner.

    Built from one platform's tournament result plus the calibrated
    roster; per-query routing keys on the placement and on which side
    of the platform's band split the core count falls.  Query counts
    per routed backend accumulate in :attr:`route_counts` (the service
    merges them into ``/metrics``).
    """

    BACKEND_ID = "tournament"

    def __init__(
        self,
        tournament: PlatformTournament,
        calibrated: Mapping[str, CalibratedBackend],
    ) -> None:
        missing = [b for b in tournament.roster if b not in calibrated]
        if missing:
            raise ModelError(
                f"tournament roster lacks calibrated backends: {missing}"
            )
        some = next(iter(calibrated.values()))
        self._nodes_per_socket = some.nodes_per_socket
        self._n_numa_nodes = some.n_numa_nodes
        self._tournament = tournament
        self._calibrated = dict(calibrated)
        #: (m_comp, m_comm) -> (low_n_max, low_winner, high_winner|None)
        self._routes: dict[tuple[int, int], tuple[int, str, str | None]] = {}
        for regime in tournament.regimes:
            key = (regime.m_comp, regime.m_comm)
            low_max, low_w, high_w = self._routes.get(key, (0, "", None))
            if regime.band == "low":
                self._routes[key] = (regime.n_max, regime.winner, high_w)
            else:
                self._routes[key] = (low_max, low_w, regime.winner)
        #: fallback for unmeasured placements: the roster's overall
        #: most-winning backend.
        counts = tournament.win_counts()
        self._default = max(counts, key=counts.get)
        self.route_counts: dict[str, int] = {}

    @property
    def backend_id(self) -> str:
        return self.BACKEND_ID

    @property
    def tournament(self) -> PlatformTournament:
        return self._tournament

    @property
    def nodes_per_socket(self) -> int:
        return self._nodes_per_socket

    @property
    def n_numa_nodes(self) -> int:
        return self._n_numa_nodes

    # ---- routing ---------------------------------------------------------------

    def winner_for(self, n: int, m_comp: int, m_comm: int) -> str:
        """The backend id serving one ``(n, m_comp, m_comm)`` query."""
        route = self._routes.get((m_comp, m_comm))
        if route is None:
            return self._default
        low_n_max, low_winner, high_winner = route
        if high_winner is not None and n > low_n_max:
            return high_winner
        return low_winner or self._default

    def _backend_for(self, n: int, m_comp: int, m_comm: int) -> CalibratedBackend:
        winner = self.winner_for(n, m_comp, m_comm)
        self.route_counts[winner] = self.route_counts.get(winner, 0) + 1
        return self._calibrated[winner]

    # ---- query surface ---------------------------------------------------------

    def comp_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        return self._backend_for(n, m_comp, m_comm).comp_parallel(
            n, m_comp, m_comm
        )

    def comm_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        return self._backend_for(n, m_comp, m_comm).comm_parallel(
            n, m_comp, m_comm
        )

    def comp_alone(self, n: int, m_comp: int) -> float:
        return self._backend_for(n, m_comp, m_comp).comp_alone(n, m_comp)

    def comm_alone(self, m_comm: int) -> float:
        # n-independent: the low band's winner answers.
        return self._backend_for(0, m_comm, m_comm).comm_alone(m_comm)

    def predict(
        self,
        core_counts: "Sequence[int] | np.ndarray",
        m_comp: int,
        m_comm: int,
    ) -> "PlacementPrediction":
        """Sweep one placement, splicing the band winners' curves."""
        from repro.core.evaluation import as_core_counts
        from repro.core.placement import PlacementPrediction

        ns = as_core_counts(core_counts, error=PlacementError)
        self._check_node(m_comp)
        self._check_node(m_comm)
        winners = [self.winner_for(int(n), m_comp, m_comm) for n in ns]
        arrays = {
            "comp_parallel": np.empty(ns.size, dtype=np.float64),
            "comm_parallel": np.empty(ns.size, dtype=np.float64),
            "comp_alone": np.empty(ns.size, dtype=np.float64),
        }
        comm_alone = None
        for winner in dict.fromkeys(winners):
            idx = np.array(
                [i for i, w in enumerate(winners) if w == winner]
            )
            self.route_counts[winner] = (
                self.route_counts.get(winner, 0) + idx.size
            )
            pred = self._calibrated[winner].predict(ns[idx], m_comp, m_comm)
            arrays["comp_parallel"][idx] = pred.comp_parallel
            arrays["comm_parallel"][idx] = pred.comm_parallel
            arrays["comp_alone"][idx] = pred.comp_alone
            if comm_alone is None:
                comm_alone = float(pred.comm_alone)
        return PlacementPrediction(
            m_comp=m_comp,
            m_comm=m_comm,
            core_counts=ns,
            comp_parallel=arrays["comp_parallel"],
            comm_parallel=arrays["comm_parallel"],
            comp_alone=arrays["comp_alone"],
            comm_alone=float(comm_alone),
        )

    def state_dict(self) -> dict[str, Any]:
        raise ModelError(
            "the tournament router is derived state; persist the "
            "tournament artifact and the roster calibrations instead"
        )
