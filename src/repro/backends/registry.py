"""The backend registry: every contention model the suite knows.

The registry is the single source of truth for ``--backend`` CLI
flags, the service's ``backend=`` selector, and the tournament roster.
Registered ids (one :class:`~repro.backends.base.ModelBackend` each):

* ``threshold`` — the paper's §III model (the reference backend);
* ``naive`` / ``queueing-ps`` / ``langguth-threadfair`` — the §II-D /
  §V baselines behind the placement-selection adapter;
* ``overlap-afzal`` — Afzal/Hager/Wellein shared saturation curve;
* ``cxlmem-messagefree`` — CXL.mem-style leftover-bandwidth model.
"""

from __future__ import annotations

from repro.backends.base import ModelBackend
from repro.backends.baseline import baseline_backends
from repro.backends.cxlmem import CxlMemBackend
from repro.backends.overlap import OverlapBackend
from repro.backends.threshold import ThresholdBackend
from repro.errors import ModelError

__all__ = ["BACKENDS", "backend_ids", "get_backend"]


def _build_registry() -> dict[str, ModelBackend]:
    backends: dict[str, ModelBackend] = {}
    for backend in (
        ThresholdBackend(),
        *baseline_backends(),
        OverlapBackend(),
        CxlMemBackend(),
    ):
        if backend.backend_id in backends:
            raise ModelError(
                f"duplicate backend id {backend.backend_id!r}"
            )  # pragma: no cover - registry construction bug
        backends[backend.backend_id] = backend
    return backends


#: id -> backend, in registration order (threshold first).
BACKENDS: dict[str, ModelBackend] = _build_registry()


def backend_ids() -> tuple[str, ...]:
    """Every registered backend id, registration order."""
    return tuple(BACKENDS)


def get_backend(backend_id: str) -> ModelBackend:
    """Look a backend up by id, listing the valid ids on a miss."""
    try:
        return BACKENDS[backend_id]
    except KeyError:
        raise ModelError(
            f"unknown backend {backend_id!r}; registered: "
            f"{', '.join(BACKENDS)}"
        ) from None
