"""The §II-D / §V baseline predictors behind the backend protocol.

Each :class:`~repro.baselines.base.BaselinePredictor` models a *single*
placement; the adapter calibrates one predictor per sample placement
(local and remote, §IV-A2) plus equation 6's substituted middle case,
and lets :class:`~repro.backends.base.TwoInstantiationBackend` apply
the placement selection rules — so the baselines compete with the
paper's model on the full placement grid, not just the diagonal they
were historically scored on.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Mapping

from repro.backends.base import ModelBackend, TwoInstantiationBackend
from repro.baselines.base import (
    BaselineInputs,
    BaselinePredictor,
    calibrate_baseline,
)
from repro.baselines.langguth import LangguthModel
from repro.baselines.naive import NaiveModel
from repro.baselines.queueing import QueueingModel
from repro.bench.sweep import sample_placements
from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.results import PlatformDataset
    from repro.topology.platforms import Platform

__all__ = ["BaselineBackend", "CalibratedBaseline"]


class _Side:
    """One placement's predictor, exposing the side surface
    (``comp_parallel``/``comm_parallel``/``comp_alone``/``b_comm_seq``)."""

    __slots__ = ("_predictor",)

    def __init__(self, predictor: BaselinePredictor) -> None:
        self._predictor = predictor

    @property
    def b_comm_seq(self) -> float:
        return self._predictor.inputs.b_comm_seq

    def comp_parallel(self, n: int) -> float:
        return self._predictor.comp_parallel(n)

    def comm_parallel(self, n: int) -> float:
        return self._predictor.comm_parallel(n)

    def comp_alone(self, n: int) -> float:
        return self._predictor.comp_alone(n)


class CalibratedBaseline(TwoInstantiationBackend):
    """A baseline predictor calibrated for both sample placements."""

    def __init__(
        self,
        *,
        backend_id: str,
        predictor_cls: type[BaselinePredictor],
        local: BaselineInputs,
        remote: BaselineInputs,
        nodes_per_socket: int,
        n_numa_nodes: int,
    ) -> None:
        # Equation 6's middle case: local contention behaviour with the
        # remote network nominal substituted in.
        substituted = dataclasses.replace(local, b_comm_seq=remote.b_comm_seq)
        super().__init__(
            local=_Side(predictor_cls(local)),
            remote=_Side(predictor_cls(remote)),
            substituted=_Side(predictor_cls(substituted)),
            nodes_per_socket=nodes_per_socket,
            n_numa_nodes=n_numa_nodes,
        )
        self._backend_id = backend_id
        self._inputs_local = local
        self._inputs_remote = remote

    @property
    def backend_id(self) -> str:
        return self._backend_id

    def state_dict(self) -> dict[str, Any]:
        return {
            "local": dataclasses.asdict(self._inputs_local),
            "remote": dataclasses.asdict(self._inputs_remote),
            "nodes_per_socket": self.nodes_per_socket,
            "n_numa_nodes": self.n_numa_nodes,
        }


class BaselineBackend(ModelBackend):
    """Adapter turning one baseline predictor class into a backend."""

    def __init__(self, predictor_cls: type[BaselinePredictor]) -> None:
        self._predictor_cls = predictor_cls
        # BaselinePredictor.name is an instance property; probe it once
        # with throwaway inputs so the id never drifts from the class.
        probe = predictor_cls(
            BaselineInputs(
                bus_capacity_gbps=1.0,
                b_comp_seq=1.0,
                b_comm_seq=1.0,
                t_seq_max=1.0,
            )
        )
        self._backend_id = probe.name

    @property
    def backend_id(self) -> str:
        return self._backend_id

    @property
    def version(self) -> int:
        return 1

    def calibrate(
        self, dataset: "PlatformDataset", platform: "Platform"
    ) -> CalibratedBaseline:
        local_key, remote_key = sample_placements(platform)
        inputs = {}
        for side, key in (("local", local_key), ("remote", remote_key)):
            if key not in dataset.sweep:
                raise ModelError(
                    f"dataset for {dataset.platform_name!r} lacks the sample "
                    f"placement {key}; measured: {dataset.sweep.placements()}"
                )
            inputs[side] = calibrate_baseline(
                dataset.sweep[key],
                platform=dataset.platform_name,
                placement=key,
            )
        return CalibratedBaseline(
            backend_id=self._backend_id,
            predictor_cls=self._predictor_cls,
            local=inputs["local"],
            remote=inputs["remote"],
            nodes_per_socket=platform.nodes_per_socket,
            n_numa_nodes=platform.machine.n_numa_nodes,
        )

    def from_state(self, state: Mapping[str, Any]) -> CalibratedBaseline:
        try:
            local = BaselineInputs(**{
                k: float(v) for k, v in dict(state["local"]).items()
            })
            remote = BaselineInputs(**{
                k: float(v) for k, v in dict(state["remote"]).items()
            })
            return CalibratedBaseline(
                backend_id=self._backend_id,
                predictor_cls=self._predictor_cls,
                local=local,
                remote=remote,
                nodes_per_socket=int(state["nodes_per_socket"]),
                n_numa_nodes=int(state["n_numa_nodes"]),
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise ModelError(
                f"{self._backend_id} backend state is malformed: {exc}"
            ) from exc


def baseline_backends() -> tuple[BaselineBackend, ...]:
    """One adapter per shipped baseline predictor."""
    return (
        BaselineBackend(NaiveModel),
        BaselineBackend(QueueingModel),
        BaselineBackend(LangguthModel),
    )
