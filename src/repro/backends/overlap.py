"""Afzal-style overlap backend (arXiv 2011.00243).

Afzal, Hager and Wellein model concurrently running *memory-bound
kernels* through a shared saturating bandwidth curve: adding streams
moves the memory subsystem along one saturation characteristic instead
of splitting a fixed capacity.  Transplanted to this problem:

* the computation-alone curve is fitted with a rational saturation
  characteristic ``B(x) = B_sat * x / (x + n_half)`` (the classic
  single-knee bandwidth ramp; ``n_half`` is the core count at half
  saturation), via the linearized least-squares fit of ``1/B`` against
  ``1/n``;
* the communication stream counts as ``w = B_comm_seq / B_comp_seq``
  core-equivalents of pressure, so running both sides puts the system
  at ``B(n + w)`` on the same characteristic;
* below saturation nobody is slowed; past it, the achievable total is
  shared proportionally to demand (both kernels are memory-bound, and
  the overlap model knows no priority classes).

Where the paper's threshold model encodes priorities and a minimum
communication guarantee, this backend bets everything on the shape of
one saturation curve — the tournament shows on which regimes that bet
pays off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.backends.base import (
    ModelBackend,
    TwoInstantiationBackend,
    sample_curves,
)
from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.results import ModeCurves, PlatformDataset
    from repro.topology.platforms import Platform

__all__ = ["CalibratedOverlap", "OverlapBackend", "SaturationSide"]

OVERLAP_BACKEND_ID = "overlap-afzal"

_SIDE_FIELDS = ("b_sat", "n_half", "b_comp_seq", "b_comm_seq")


class SaturationSide:
    """One instantiation: a fitted saturation curve plus the stream weights."""

    __slots__ = ("b_sat", "n_half", "b_comp_seq", "b_comm_seq")

    def __init__(
        self,
        *,
        b_sat: float,
        n_half: float,
        b_comp_seq: float,
        b_comm_seq: float,
    ) -> None:
        if b_sat <= 0.0 or b_comp_seq <= 0.0 or b_comm_seq <= 0.0:
            raise ModelError(
                "saturation side needs positive b_sat, b_comp_seq and "
                f"b_comm_seq, got {b_sat}, {b_comp_seq}, {b_comm_seq}"
            )
        if n_half < 0.0 or not np.isfinite(n_half):
            raise ModelError(f"n_half must be finite and >= 0, got {n_half}")
        self.b_sat = float(b_sat)
        self.n_half = float(n_half)
        self.b_comp_seq = float(b_comp_seq)
        self.b_comm_seq = float(b_comm_seq)

    # ---- the characteristic ----------------------------------------------------

    def _sat(self, x: float) -> float:
        """``B(x)`` — achievable bandwidth at ``x`` core-equivalents."""
        if x <= 0.0:
            return 0.0
        return self.b_sat * x / (x + self.n_half)

    @property
    def comm_weight(self) -> float:
        """Core-equivalents of pressure one communication stream adds."""
        return self.b_comm_seq / self.b_comp_seq

    # ---- side surface ----------------------------------------------------------

    def comp_alone(self, n: int) -> float:
        self._check_n(n)
        # One core cannot exceed its own issue rate, however steep the
        # fitted characteristic starts.
        return min(self._sat(float(n)), n * self.b_comp_seq)

    def _shares(self, n: int) -> tuple[float, float]:
        comp_demand = self.comp_alone(n)
        comm_demand = self.b_comm_seq
        achievable = self._sat(float(n) + self.comm_weight)
        total = comp_demand + comm_demand
        if total <= achievable or total == 0.0:
            return comp_demand, comm_demand
        scale = achievable / total
        return comp_demand * scale, comm_demand * scale

    def comp_parallel(self, n: int) -> float:
        self._check_n(n)
        return self._shares(n)[0]

    def comm_parallel(self, n: int) -> float:
        self._check_n(n)
        return self._shares(n)[1]

    @staticmethod
    def _check_n(n: int) -> None:
        if n < 0:
            raise ModelError(f"core count must be >= 0, got {n}")

    # ---- calibration -----------------------------------------------------------

    @classmethod
    def fit(cls, curves: "ModeCurves", *, platform: str) -> "SaturationSide":
        """Fit the characteristic to one placement's measured curves."""
        ns = curves.core_counts.astype(float)
        ys = curves.comp_alone.astype(float)
        b_comm_seq = float(np.median(curves.comm_alone))
        b_comp_seq = float(ys[0]) / float(ns[0]) if ys[0] > 0.0 else 0.0
        if b_comm_seq <= 0.0 or b_comp_seq <= 0.0:
            raise ModelError(
                f"cannot fit the overlap model for platform {platform!r}: "
                "non-positive sequential bandwidths in the sample curves"
            )
        usable = ys > 0.0
        b_sat = float(np.max(ys))
        if int(np.count_nonzero(usable)) >= 2:
            # Linearized least squares: 1/y = 1/b_sat + (n_half/b_sat)/n.
            inv_n = 1.0 / ns[usable]
            inv_y = 1.0 / ys[usable]
            slope, intercept = np.polyfit(inv_n, inv_y, 1)
            if intercept > 0.0 and slope >= 0.0:
                b_sat = 1.0 / float(intercept)
                n_half = float(slope) * b_sat
                return cls(
                    b_sat=b_sat,
                    n_half=n_half,
                    b_comp_seq=b_comp_seq,
                    b_comm_seq=b_comm_seq,
                )
        # Degenerate fit (noise-free linear ramps make the intercept hit
        # zero): anchor the curve at the first measured point instead.
        y0 = float(ys[0])
        n_half = float(ns[0]) * max(b_sat - y0, 0.0) / y0
        return cls(
            b_sat=b_sat,
            n_half=n_half,
            b_comp_seq=b_comp_seq,
            b_comm_seq=b_comm_seq,
        )

    # ---- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in _SIDE_FIELDS}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SaturationSide":
        try:
            return cls(**{name: float(data[name]) for name in _SIDE_FIELDS})
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(
                f"overlap side state is malformed: {exc}"
            ) from exc


class CalibratedOverlap(TwoInstantiationBackend):
    """The overlap model calibrated for both sample placements."""

    def __init__(
        self,
        *,
        local: SaturationSide,
        remote: SaturationSide,
        nodes_per_socket: int,
        n_numa_nodes: int,
    ) -> None:
        substituted = SaturationSide(
            b_sat=local.b_sat,
            n_half=local.n_half,
            b_comp_seq=local.b_comp_seq,
            b_comm_seq=remote.b_comm_seq,
        )
        super().__init__(
            local=local,
            remote=remote,
            substituted=substituted,
            nodes_per_socket=nodes_per_socket,
            n_numa_nodes=n_numa_nodes,
        )

    @property
    def backend_id(self) -> str:
        return OVERLAP_BACKEND_ID

    def state_dict(self) -> dict[str, Any]:
        return {
            "local": self._local.to_dict(),
            "remote": self._remote.to_dict(),
            "nodes_per_socket": self.nodes_per_socket,
            "n_numa_nodes": self.n_numa_nodes,
        }


class OverlapBackend(ModelBackend):
    """Afzal/Hager/Wellein-style shared saturation characteristic."""

    @property
    def backend_id(self) -> str:
        return OVERLAP_BACKEND_ID

    @property
    def version(self) -> int:
        return 1

    def calibrate(
        self, dataset: "PlatformDataset", platform: "Platform"
    ) -> CalibratedOverlap:
        curves = sample_curves(dataset, platform)
        return CalibratedOverlap(
            local=SaturationSide.fit(
                curves["local"], platform=dataset.platform_name
            ),
            remote=SaturationSide.fit(
                curves["remote"], platform=dataset.platform_name
            ),
            nodes_per_socket=platform.nodes_per_socket,
            n_numa_nodes=platform.machine.n_numa_nodes,
        )

    def from_state(self, state: Mapping[str, Any]) -> CalibratedOverlap:
        try:
            return CalibratedOverlap(
                local=SaturationSide.from_dict(state["local"]),
                remote=SaturationSide.from_dict(state["remote"]),
                nodes_per_socket=int(state["nodes_per_socket"]),
                n_numa_nodes=int(state["n_numa_nodes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(
                f"overlap backend state is malformed: {exc}"
            ) from exc
