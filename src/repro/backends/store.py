"""Artifact-store glue for calibrated backends.

Each calibrated backend persists as one flat, versioned artifact
(``backend.json``) in the pipeline
:class:`~repro.pipeline.store.ArtifactStore`, under stage
``backend-<backend_id>`` with the backend's code version as the stage
version and a fingerprint combining the sweep-config fingerprint with
the backend's own config (see
:meth:`~repro.backends.base.ModelBackend.fingerprint`).  Exactly like
the ``"compiled"`` stage: a measurement or backend change
re-fingerprints, so a stale calibration can never be served; a corrupt
or version-mismatched artifact is logged, discarded and recalibrated.
"""

from __future__ import annotations

import json
import logging
from typing import TYPE_CHECKING

from repro.backends.base import CalibratedBackend, ModelBackend
from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.results import PlatformDataset
    from repro.pipeline.stage import StageKey
    from repro.pipeline.store import ArtifactStore
    from repro.topology.platforms import Platform

__all__ = [
    "BACKEND_FORMAT_VERSION",
    "backend_key",
    "backend_stage",
    "load_backend",
    "load_or_calibrate",
    "store_backend",
]

log = logging.getLogger("repro.backends")

#: Bumped whenever the artifact layout changes; older artifacts are
#: discarded and recalibrated rather than misread.
BACKEND_FORMAT_VERSION = 1

_STATE_FILE = "backend.json"


def backend_stage(backend_id: str) -> str:
    """The artifact-store stage one backend's calibrations live under."""
    return f"backend-{backend_id}"


def backend_key(
    platform: str, backend: ModelBackend, fingerprint: str
) -> "StageKey":
    """The store address of one backend's calibration for one platform."""
    from repro.pipeline.stage import StageKey

    return StageKey(
        platform=platform,
        stage=backend_stage(backend.backend_id),
        version=str(backend.version),
        fingerprint=backend.fingerprint(fingerprint),
    )


def store_backend(
    store: "ArtifactStore",
    platform: str,
    fingerprint: str,
    backend: ModelBackend,
    calibrated: CalibratedBackend,
) -> None:
    """Persist one calibrated backend, content-addressed."""
    payload = {
        "format_version": BACKEND_FORMAT_VERSION,
        "backend_id": backend.backend_id,
        "backend_version": backend.version,
        "state": calibrated.state_dict(),
    }
    store.save(
        backend_key(platform, backend, fingerprint),
        {_STATE_FILE: json.dumps(payload, indent=2, sort_keys=True)},
        provenance={"platform": platform, "backend": backend.backend_id},
    )


def load_backend(
    store: "ArtifactStore",
    platform: str,
    fingerprint: str,
    backend: ModelBackend,
) -> CalibratedBackend | None:
    """Load + validate one calibration; ``None`` means recalibrate."""
    key = backend_key(platform, backend, fingerprint)
    payloads = store.load(key)
    if payloads is None:
        return None
    try:
        raw = payloads.get(_STATE_FILE)
        if not isinstance(raw, str):
            raise ModelError(
                f"backend artifact must carry text {_STATE_FILE!r}"
            )
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ModelError(
                f"backend artifact is not valid JSON ({exc})"
            ) from exc
        if not isinstance(data, dict):
            raise ModelError("backend artifact is not a JSON object")
        if data.get("format_version") != BACKEND_FORMAT_VERSION:
            raise ModelError(
                f"backend format version {data.get('format_version')!r} "
                f"!= {BACKEND_FORMAT_VERSION}"
            )
        if data.get("backend_id") != backend.backend_id:
            raise ModelError(
                f"backend artifact carries id {data.get('backend_id')!r}, "
                f"expected {backend.backend_id!r}"
            )
        if data.get("backend_version") != backend.version:
            raise ModelError(
                f"backend code version {data.get('backend_version')!r} "
                f"!= {backend.version}"
            )
        state = data.get("state")
        if not isinstance(state, dict):
            raise ModelError("backend artifact lacks a state object")
        return backend.from_state(state)
    except ModelError as exc:
        log.warning(
            "discarding invalid backend artifact %s: %s", key.entry_id, exc
        )
        store.discard(key)
        return None


def load_or_calibrate(
    store: "ArtifactStore | None",
    backend: ModelBackend,
    dataset: "PlatformDataset",
    platform: "Platform",
    fingerprint: str,
) -> tuple[CalibratedBackend, bool]:
    """The calibrate-on-miss entry point.

    Returns ``(calibrated, cached)``; with a store, a miss publishes
    the fresh calibration so every other worker sharing the store gets
    a hit.
    """
    if store is not None:
        cached = load_backend(store, platform.name, fingerprint, backend)
        if cached is not None:
            return cached, True
    calibrated = backend.calibrate(dataset, platform)
    if store is not None:
        store_backend(store, platform.name, fingerprint, backend, calibrated)
    return calibrated, False
