"""CXL.mem-style message-free backend (arXiv 2512.08005).

The CXL.mem line of work treats communication as *message-free* load/
store traffic: plain memory accesses issued by cores, with no NIC
doorbells, descriptors or DMA engines competing for the bus.  The
modelling consequence transplanted here: computation — the side
actively issuing from many cores — is never slowed by the passive
communication stream, which instead scavenges whatever bus capacity
the computation leaves unused:

* ``comp_parallel(n) = comp_alone(n) = min(n * B_comp_seq, T_seq_max)``
  — computations are unaffected by communications, by assumption;
* ``comm_parallel(n) = clamp(B_cap - comp_alone(n), floor, B_comm_seq)``
  — communications get the leftover of the measured peak capacity,
  never more than the link nominal and never less than the worst
  observed parallel communication bandwidth (the floor keeps the
  prediction positive, matching the measured reality that transfers
  always make *some* progress).

This is the polar opposite of the paper's minimum-guarantee priority
treatment; on computation curves it is exact by construction, so it
punishes the other backends in computation-heavy regimes and loses
where communications visibly throttle computations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro.backends.base import (
    ModelBackend,
    TwoInstantiationBackend,
    sample_curves,
)
from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.results import ModeCurves, PlatformDataset
    from repro.topology.platforms import Platform

__all__ = ["CalibratedCxlMem", "CxlMemBackend", "LeftoverSide"]

CXLMEM_BACKEND_ID = "cxlmem-messagefree"

_SIDE_FIELDS = ("b_cap", "b_comp_seq", "b_comm_seq", "t_seq_max", "comm_floor")


class LeftoverSide:
    """One instantiation: priority computation + leftover communication."""

    __slots__ = ("b_cap", "b_comp_seq", "b_comm_seq", "t_seq_max", "comm_floor")

    def __init__(
        self,
        *,
        b_cap: float,
        b_comp_seq: float,
        b_comm_seq: float,
        t_seq_max: float,
        comm_floor: float,
    ) -> None:
        if min(b_cap, b_comp_seq, b_comm_seq, t_seq_max) <= 0.0:
            raise ModelError(
                "leftover side needs positive b_cap, b_comp_seq, "
                "b_comm_seq and t_seq_max"
            )
        if not 0.0 < comm_floor <= b_comm_seq:
            raise ModelError(
                f"comm_floor must be in (0, b_comm_seq], got {comm_floor}"
            )
        self.b_cap = float(b_cap)
        self.b_comp_seq = float(b_comp_seq)
        self.b_comm_seq = float(b_comm_seq)
        self.t_seq_max = float(t_seq_max)
        self.comm_floor = float(comm_floor)

    # ---- side surface ----------------------------------------------------------

    def comp_alone(self, n: int) -> float:
        self._check_n(n)
        if n == 0:
            return 0.0
        return min(n * self.b_comp_seq, self.t_seq_max)

    def comp_parallel(self, n: int) -> float:
        # The message-free assumption: computations never notice.
        return self.comp_alone(n)

    def comm_parallel(self, n: int) -> float:
        self._check_n(n)
        leftover = self.b_cap - self.comp_alone(n)
        return float(np.clip(leftover, self.comm_floor, self.b_comm_seq))

    @staticmethod
    def _check_n(n: int) -> None:
        if n < 0:
            raise ModelError(f"core count must be >= 0, got {n}")

    # ---- calibration -----------------------------------------------------------

    @classmethod
    def fit(cls, curves: "ModeCurves", *, platform: str) -> "LeftoverSide":
        b_comm_seq = float(np.median(curves.comm_alone))
        b_comp_seq = (
            float(curves.comp_alone[0]) / int(curves.core_counts[0])
            if curves.comp_alone[0] > 0.0
            else 0.0
        )
        if b_comm_seq <= 0.0 or b_comp_seq <= 0.0:
            raise ModelError(
                f"cannot fit the cxlmem model for platform {platform!r}: "
                "non-positive sequential bandwidths in the sample curves"
            )
        observed_floor = float(np.min(curves.comm_parallel))
        comm_floor = observed_floor if observed_floor > 0.0 else b_comm_seq * 1e-3
        return cls(
            b_cap=float(np.max(curves.total_parallel())),
            b_comp_seq=b_comp_seq,
            b_comm_seq=b_comm_seq,
            t_seq_max=float(np.max(curves.comp_alone)),
            comm_floor=min(comm_floor, b_comm_seq),
        )

    # ---- serialization ---------------------------------------------------------

    def to_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in _SIDE_FIELDS}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LeftoverSide":
        try:
            return cls(**{name: float(data[name]) for name in _SIDE_FIELDS})
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"cxlmem side state is malformed: {exc}") from exc


class CalibratedCxlMem(TwoInstantiationBackend):
    """The message-free model calibrated for both sample placements."""

    def __init__(
        self,
        *,
        local: LeftoverSide,
        remote: LeftoverSide,
        nodes_per_socket: int,
        n_numa_nodes: int,
    ) -> None:
        substituted = LeftoverSide(
            b_cap=local.b_cap,
            b_comp_seq=local.b_comp_seq,
            b_comm_seq=remote.b_comm_seq,
            t_seq_max=local.t_seq_max,
            comm_floor=min(local.comm_floor, remote.b_comm_seq),
        )
        super().__init__(
            local=local,
            remote=remote,
            substituted=substituted,
            nodes_per_socket=nodes_per_socket,
            n_numa_nodes=n_numa_nodes,
        )

    @property
    def backend_id(self) -> str:
        return CXLMEM_BACKEND_ID

    def state_dict(self) -> dict[str, Any]:
        return {
            "local": self._local.to_dict(),
            "remote": self._remote.to_dict(),
            "nodes_per_socket": self.nodes_per_socket,
            "n_numa_nodes": self.n_numa_nodes,
        }


class CxlMemBackend(ModelBackend):
    """Message-free load/store communication over leftover bandwidth."""

    @property
    def backend_id(self) -> str:
        return CXLMEM_BACKEND_ID

    @property
    def version(self) -> int:
        return 1

    def calibrate(
        self, dataset: "PlatformDataset", platform: "Platform"
    ) -> CalibratedCxlMem:
        curves = sample_curves(dataset, platform)
        return CalibratedCxlMem(
            local=LeftoverSide.fit(
                curves["local"], platform=dataset.platform_name
            ),
            remote=LeftoverSide.fit(
                curves["remote"], platform=dataset.platform_name
            ),
            nodes_per_socket=platform.nodes_per_socket,
            n_numa_nodes=platform.machine.n_numa_nodes,
        )

    def from_state(self, state: Mapping[str, Any]) -> CalibratedCxlMem:
        try:
            return CalibratedCxlMem(
                local=LeftoverSide.from_dict(state["local"]),
                remote=LeftoverSide.from_dict(state["remote"]),
                nodes_per_socket=int(state["nodes_per_socket"]),
                n_numa_nodes=int(state["n_numa_nodes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(
                f"cxlmem backend state is malformed: {exc}"
            ) from exc
