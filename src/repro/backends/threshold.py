"""The paper's threshold model as the reference backend.

A thin shell around :func:`~repro.core.calibration.calibrate_placement_model`
and :class:`~repro.core.placement.PlacementModel`: every query method
delegates verbatim to the live model, so routing through the backend
protocol is *bit-identical* to calling the model (and therefore to the
scalar :class:`~repro.core.oracle.ScalarOracle` — the property PR 1
established and ``tests/backends`` re-proves through this indirection).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.backends.base import CalibratedBackend, ModelBackend
from repro.core.parameters import ModelParameters
from repro.core.placement import (
    PlacementModel,
    PlacementPrediction,
    PointPrediction,
)
from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.results import PlatformDataset
    from repro.topology.platforms import Platform

__all__ = ["CalibratedThreshold", "ThresholdBackend"]

THRESHOLD_BACKEND_ID = "threshold"


class CalibratedThreshold(CalibratedBackend):
    """A calibrated :class:`PlacementModel` behind the backend surface."""

    def __init__(self, model: PlacementModel) -> None:
        self._model = model

    @property
    def backend_id(self) -> str:
        return THRESHOLD_BACKEND_ID

    @property
    def model(self) -> PlacementModel:
        """The live model (advisor/compiled consumers need evaluator access)."""
        return self._model

    # ---- topology --------------------------------------------------------------

    @property
    def nodes_per_socket(self) -> int:
        return self._model.nodes_per_socket

    @property
    def n_numa_nodes(self) -> int:
        return self._model.n_numa_nodes

    # ---- queries: verbatim delegation ------------------------------------------

    def comp_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        return self._model.comp_parallel(n, m_comp, m_comm)

    def comm_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        return self._model.comm_parallel(n, m_comp, m_comm)

    def comp_alone(self, n: int, m_comp: int) -> float:
        return self._model.comp_alone(n, m_comp)

    def comm_alone(self, m_comm: int) -> float:
        return self._model.comm_alone(m_comm)

    def predict(
        self,
        core_counts: Sequence[int] | np.ndarray,
        m_comp: int,
        m_comm: int,
    ) -> PlacementPrediction:
        return self._model.predict(core_counts, m_comp, m_comm)

    def predict_grid(
        self,
        core_counts: Sequence[int] | np.ndarray,
        placements: Iterable[tuple[int, int]] | None = None,
    ) -> dict[tuple[int, int], PlacementPrediction]:
        return self._model.predict_grid(core_counts, placements)

    def predict_batch(
        self, queries: Sequence[tuple[int, int, int]]
    ) -> list[PointPrediction]:
        return self._model.predict_batch(queries)

    # ---- serialization ---------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        return {
            "local": self._model.local.to_dict(),
            "remote": self._model.remote.to_dict(),
            "nodes_per_socket": self._model.nodes_per_socket,
            "n_numa_nodes": self._model.n_numa_nodes,
        }


class ThresholdBackend(ModelBackend):
    """The §III threshold model, calibrated per §IV-A2."""

    @property
    def backend_id(self) -> str:
        return THRESHOLD_BACKEND_ID

    @property
    def version(self) -> int:
        return 1

    def calibrate(
        self, dataset: "PlatformDataset", platform: "Platform"
    ) -> CalibratedThreshold:
        from repro.core.calibration import calibrate_placement_model

        return CalibratedThreshold(calibrate_placement_model(dataset, platform))

    def wrap(self, model: PlacementModel) -> CalibratedThreshold:
        """Adopt an already-calibrated model (the registry path: the
        pipeline calibrated once; re-wrapping must not re-measure)."""
        return CalibratedThreshold(model)

    def from_state(self, state: Mapping[str, Any]) -> CalibratedThreshold:
        try:
            model = PlacementModel(
                ModelParameters.from_dict(state["local"]),
                ModelParameters.from_dict(state["remote"]),
                nodes_per_socket=int(state["nodes_per_socket"]),
                n_numa_nodes=int(state["n_numa_nodes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"threshold backend state is malformed: {exc}") from exc
        return CalibratedThreshold(model)
