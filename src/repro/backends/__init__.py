"""Pluggable contention-model backends and the cross-model tournament.

Every analytic treatment of memory contention the suite knows — the
paper's threshold model, the §II-D / §V baselines, and competing
formulations from the literature — behind one protocol
(:class:`~repro.backends.base.ModelBackend` /
:class:`~repro.backends.base.CalibratedBackend`), with artifact-store
persistence (:mod:`repro.backends.store`), a registry
(:data:`~repro.backends.registry.BACKENDS`), and a per-regime
tournament (:mod:`repro.backends.tournament`).  See
``docs/BACKENDS.md``.
"""

from repro.backends.base import (
    CalibratedBackend,
    ModelBackend,
    TwoInstantiationBackend,
)
from repro.backends.registry import BACKENDS, backend_ids, get_backend
from repro.backends.store import (
    backend_key,
    load_backend,
    load_or_calibrate,
    store_backend,
)
from repro.backends.tournament import (
    PlatformTournament,
    RegimeScore,
    TournamentRouter,
    render_winner_table,
    run_tournament,
    score_backends,
)

__all__ = [
    "BACKENDS",
    "CalibratedBackend",
    "ModelBackend",
    "PlatformTournament",
    "RegimeScore",
    "TournamentRouter",
    "TwoInstantiationBackend",
    "backend_ids",
    "backend_key",
    "get_backend",
    "load_backend",
    "load_or_calibrate",
    "render_winner_table",
    "run_tournament",
    "score_backends",
    "store_backend",
]
