"""The pluggable model-backend protocol.

A *backend* is one analytic treatment of memory contention — the
paper's threshold model, a §II-D baseline, or a competing formulation
from the literature — packaged behind a uniform surface so everything
downstream (pipeline, tournament, service, advisor) can treat "which
model?" as a parameter:

* :class:`ModelBackend` — the uncalibrated family: a stable
  ``backend_id``, a code ``version`` (bumped whenever calibration or
  prediction changes for identical inputs), a config mapping folded
  into the artifact :meth:`~ModelBackend.fingerprint`, and
  ``calibrate(dataset, platform) -> CalibratedBackend``;
* :class:`CalibratedBackend` — one calibrated instance, answering the
  exact query surface of
  :class:`~repro.core.placement.PlacementModel` (``predict`` /
  ``predict_batch`` / ``predict_grid`` plus the scalar curve lookups),
  so the advisor and :func:`~repro.evaluation.metrics.placement_errors`
  work on any backend unchanged;
* :class:`TwoInstantiationBackend` — shared scaffolding for backends
  that, like the paper's model, calibrate a *local* and a *remote*
  instantiation and select between them per placement with the
  equations 6/7 rules.

Calibrated backends serialize to a JSON-able ``state_dict`` and
reconstruct via the owning backend's ``from_state`` — the round trip
the artifact store glue (:mod:`repro.backends.store`) relies on.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.evaluation import as_core_counts
from repro.core.placement import PlacementPrediction, PointPrediction
from repro.errors import ModelError, PlacementError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.bench.results import PlacementKey, PlatformDataset
    from repro.evaluation.metrics import ErrorBreakdown
    from repro.topology.platforms import Platform

__all__ = [
    "CalibratedBackend",
    "ModelBackend",
    "TwoInstantiationBackend",
    "sample_curves",
]


def sample_curves(
    dataset: "PlatformDataset", platform: "Platform"
) -> "dict[str, Any]":
    """The two calibration placements' curves (§IV-A2), keyed
    ``local``/``remote``.  Raises :class:`ModelError` naming the
    missing placement when the dataset lacks one."""
    from repro.bench.sweep import sample_placements

    local_key, remote_key = sample_placements(platform)
    out = {}
    for side, key in (("local", local_key), ("remote", remote_key)):
        if key not in dataset.sweep:
            raise ModelError(
                f"dataset for {dataset.platform_name!r} lacks the sample "
                f"placement {key}; measured: {dataset.sweep.placements()}"
            )
        out[side] = dataset.sweep[key]
    return out


class CalibratedBackend(abc.ABC):
    """One backend calibrated for one platform.

    Implementations must answer the scalar curve queries; the batched
    surfaces (``predict``/``predict_grid``/``predict_batch``) have
    default implementations built on them.  Backends with a faster
    native path (the threshold backend delegates to the vectorized
    :class:`~repro.core.placement.PlacementModel`) override them.
    """

    # ---- identity --------------------------------------------------------------

    @property
    @abc.abstractmethod
    def backend_id(self) -> str:
        """The owning backend's stable identifier."""

    # ---- topology --------------------------------------------------------------

    @property
    @abc.abstractmethod
    def nodes_per_socket(self) -> int:
        """The paper's ``#m``."""

    @property
    @abc.abstractmethod
    def n_numa_nodes(self) -> int:
        """NUMA nodes of the modelled machine."""

    def is_remote(self, m: int) -> bool:
        """``m >= #m`` — the comparison of equations 6 and 7."""
        self._check_node(m)
        return m >= self.nodes_per_socket

    def _check_node(self, m: int) -> None:
        if not isinstance(m, (int, np.integer)):
            raise PlacementError(
                f"NUMA node index must be an integer, got {m!r}"
            )
        if not 0 <= m < self.n_numa_nodes:
            raise PlacementError(
                f"NUMA node {m} out of range (machine has "
                f"{self.n_numa_nodes} nodes)"
            )

    # ---- scalar queries --------------------------------------------------------

    @abc.abstractmethod
    def comp_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        """Computation bandwidth with communications running (Eq. 7)."""

    @abc.abstractmethod
    def comm_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        """Communication bandwidth with ``n`` cores computing (Eq. 6)."""

    @abc.abstractmethod
    def comp_alone(self, n: int, m_comp: int) -> float:
        """Computation-alone bandwidth for a placement."""

    @abc.abstractmethod
    def comm_alone(self, m_comm: int) -> float:
        """Communication-alone bandwidth for a placement."""

    # ---- batched queries (defaults built on the scalars) -----------------------

    def predict(
        self,
        core_counts: Sequence[int] | np.ndarray,
        m_comp: int,
        m_comm: int,
    ) -> PlacementPrediction:
        """All curves of one placement over ``core_counts``."""
        ns = as_core_counts(core_counts, error=PlacementError)
        self._check_node(m_comp)
        self._check_node(m_comm)
        return PlacementPrediction(
            m_comp=m_comp,
            m_comm=m_comm,
            core_counts=ns,
            comp_parallel=np.array(
                [self.comp_parallel(int(n), m_comp, m_comm) for n in ns]
            ),
            comm_parallel=np.array(
                [self.comm_parallel(int(n), m_comp, m_comm) for n in ns]
            ),
            comp_alone=np.array(
                [self.comp_alone(int(n), m_comp) for n in ns]
            ),
            comm_alone=self.comm_alone(m_comm),
        )

    def predict_grid(
        self,
        core_counts: Sequence[int] | np.ndarray,
        placements: Iterable[tuple[int, int]] | None = None,
    ) -> dict[tuple[int, int], PlacementPrediction]:
        """Every placement (or the given ones) over ``core_counts``."""
        ns = as_core_counts(core_counts, error=PlacementError)
        if placements is None:
            nodes = range(self.n_numa_nodes)
            placements = [(mc, mm) for mc in nodes for mm in nodes]
        return {
            (m_comp, m_comm): self.predict(ns, m_comp, m_comm)
            for m_comp, m_comm in placements
        }

    def predict_batch(
        self, queries: Sequence[tuple[int, int, int]]
    ) -> list[PointPrediction]:
        """Heterogeneous scalar queries, grouped per placement."""
        groups: dict[tuple[int, int], list[int]] = {}
        for index, query in enumerate(queries):
            if len(query) != 3:
                raise PlacementError(
                    f"batch queries must be (n, m_comp, m_comm) triples, "
                    f"got {query!r}"
                )
            groups.setdefault((query[1], query[2]), []).append(index)
        results: dict[int, PointPrediction] = {}
        for (m_comp, m_comm), indices in groups.items():
            ns = as_core_counts(
                [queries[i][0] for i in indices], error=PlacementError
            )
            pred = self.predict(ns, m_comp, m_comm)
            for j, i in enumerate(indices):
                results[i] = PointPrediction(
                    n=int(ns[j]),
                    m_comp=m_comp,
                    m_comm=m_comm,
                    comp_parallel=float(pred.comp_parallel[j]),
                    comm_parallel=float(pred.comm_parallel[j]),
                    comp_alone=float(pred.comp_alone[j]),
                    comm_alone=float(pred.comm_alone),
                )
        return [results[i] for i in range(len(queries))]

    # ---- evaluation ------------------------------------------------------------

    def error_report(
        self,
        dataset: "PlatformDataset",
        sample_keys: "Iterable[PlacementKey]",
    ) -> "ErrorBreakdown":
        """The Table II error breakdown of this backend on a dataset."""
        from repro.evaluation.metrics import placement_errors

        return placement_errors(dataset, self, sample_keys)

    # ---- serialization ---------------------------------------------------------

    @abc.abstractmethod
    def state_dict(self) -> dict[str, Any]:
        """JSON-able state from which ``from_state`` rebuilds this
        instance exactly (the artifact-store round-trip contract)."""


class ModelBackend(abc.ABC):
    """One backend family, uncalibrated."""

    @property
    @abc.abstractmethod
    def backend_id(self) -> str:
        """Stable identifier — artifact keys and API selectors use it."""

    @property
    @abc.abstractmethod
    def version(self) -> int:
        """Bumped whenever calibration or prediction changes for
        identical inputs; participates in the artifact stage version."""

    def config(self) -> Mapping[str, Any]:
        """Backend configuration folded into :meth:`fingerprint`."""
        return {}

    def fingerprint(self, config_fp: str) -> str:
        """Artifact fingerprint: sweep-config fingerprint + backend config.

        Backend id and version live in the stage name / stage version
        of the :class:`~repro.pipeline.stage.StageKey`, so the
        fingerprint only has to capture what *else* influenced the
        calibration: the measurement config and the backend's own knobs.
        """
        from repro.pipeline.fingerprint import fingerprint_mapping

        return fingerprint_mapping(
            {"config_fp": config_fp, "backend_config": dict(self.config())}
        )

    @abc.abstractmethod
    def calibrate(
        self, dataset: "PlatformDataset", platform: "Platform"
    ) -> CalibratedBackend:
        """Calibrate from a platform's measured curves.

        Backends calibrate from the same two sample placements as the
        paper's model (§IV-A2); the rest of the dataset is evaluation
        data and must not leak into calibration.
        """

    @abc.abstractmethod
    def from_state(self, state: Mapping[str, Any]) -> CalibratedBackend:
        """Rebuild a calibrated instance from ``state_dict`` output.

        Raise :class:`~repro.errors.ModelError` on any defect so the
        store glue can discard + recalibrate instead of serving a
        corrupt artifact.
        """


# ---- shared two-instantiation scaffolding -----------------------------------------


class TwoInstantiationBackend(CalibratedBackend):
    """A calibrated backend made of local/remote instantiations.

    Mirrors the paper's placement selection (§III-C): *sides* are
    single-placement predictors exposing ``comp_parallel(n)`` /
    ``comm_parallel(n)`` / ``comp_alone(n)`` / ``b_comm_seq``; the
    equations 6/7 rules pick which side (and which computation curve)
    answers each ``(m_comp, m_comm)`` placement.  ``substituted`` is
    equation 6's middle case — the local side with the remote network
    nominal substituted in.
    """

    def __init__(
        self,
        *,
        local: Any,
        remote: Any,
        substituted: Any,
        nodes_per_socket: int,
        n_numa_nodes: int,
    ) -> None:
        if nodes_per_socket < 1:
            raise ModelError("nodes_per_socket must be >= 1")
        if n_numa_nodes <= nodes_per_socket:
            raise ModelError(
                "a two-instantiation backend needs at least two sockets' "
                f"worth of NUMA nodes, got {n_numa_nodes} with "
                f"{nodes_per_socket} per socket"
            )
        self._local = local
        self._remote = remote
        self._substituted = substituted
        self._nodes_per_socket = nodes_per_socket
        self._n_numa_nodes = n_numa_nodes

    @property
    def nodes_per_socket(self) -> int:
        return self._nodes_per_socket

    @property
    def n_numa_nodes(self) -> int:
        return self._n_numa_nodes

    # ---- equation 6 ------------------------------------------------------------

    def _comm_side(self, m_comp: int, m_comm: int) -> Any:
        if self.is_remote(m_comp) and m_comp == m_comm:
            return self._remote
        if self.is_remote(m_comm):
            return self._substituted
        return self._local

    def comm_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        self._check_node(m_comp)
        self._check_node(m_comm)
        return float(self._comm_side(m_comp, m_comm).comm_parallel(n))

    def comm_alone(self, m_comm: int) -> float:
        self._check_node(m_comm)
        side = self._remote if self.is_remote(m_comm) else self._local
        return float(side.b_comm_seq)

    # ---- equation 7 ------------------------------------------------------------

    def comp_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        self._check_node(m_comp)
        self._check_node(m_comm)
        side = self._remote if self.is_remote(m_comp) else self._local
        if m_comp == m_comm:
            return float(side.comp_parallel(n))
        return float(side.comp_alone(n))

    def comp_alone(self, n: int, m_comp: int) -> float:
        self._check_node(m_comp)
        side = self._remote if self.is_remote(m_comp) else self._local
        return float(side.comp_alone(n))
