"""Parameter sensitivity analysis.

The paper argues for its threshold model partly on interpretability:
parameters "with a physical meaning, well-known units".  This module
makes that concrete by quantifying how much each parameter influences
the predictions: perturb one parameter at a time by a relative step and
measure the mean absolute relative change of the predicted curves.

Useful to see, e.g., that communication predictions hinge on ``alpha``
and ``b_comm_seq`` while ``delta_r`` barely matters below the socket
size — i.e. which calibration measurements deserve the most care.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.evaluation import as_core_counts, sweep_curves
from repro.core.parameters import ModelParameters
from repro.errors import ModelError

__all__ = ["SensitivityResult", "parameter_sensitivity"]

#: Parameters that can be perturbed multiplicatively.
_FLOAT_FIELDS = (
    "t_par_max",
    "t_seq_max",
    "t_par_max2",
    "delta_l",
    "delta_r",
    "b_comp_seq",
    "b_comm_seq",
    "alpha",
)
_INT_FIELDS = ("n_par_max", "n_seq_max")


@dataclass(frozen=True)
class SensitivityResult:
    """Mean relative prediction change per perturbed parameter."""

    relative_step: float
    #: parameter name -> mean |Δ prediction| / prediction, per curve.
    comm_sensitivity: Mapping[str, float]
    comp_sensitivity: Mapping[str, float]

    def ranked(self, *, curve: str = "comm") -> list[tuple[str, float]]:
        """Parameters ordered by influence on one curve family."""
        table = {
            "comm": self.comm_sensitivity,
            "comp": self.comp_sensitivity,
        }.get(curve)
        if table is None:
            raise ModelError(f"curve must be 'comm' or 'comp', got {curve!r}")
        return sorted(table.items(), key=lambda kv: -kv[1])


def _perturbed(params: ModelParameters, field: str, step: float) -> ModelParameters | None:
    """Perturb one field; None when the perturbation is invalid."""
    if field in _INT_FIELDS:
        value = getattr(params, field) + (1 if step > 0 else -1)
    else:
        value = getattr(params, field) * (1.0 + step)
    try:
        return dataclasses.replace(params, **{field: value})
    except ModelError:
        return None  # e.g. alpha > 1, n_par > n_seq: skip this direction


def parameter_sensitivity(
    params: ModelParameters,
    *,
    core_counts: Sequence[int] | np.ndarray,
    relative_step: float = 0.05,
) -> SensitivityResult:
    """Measure prediction sensitivity to each model parameter.

    For each parameter the result is the larger (over the +step and
    -step directions) of the mean relative change of the predicted
    curve over ``core_counts``.  Integer parameters move by ±1 core.
    """
    if relative_step <= 0:
        raise ModelError("relative_step must be positive")
    ns = as_core_counts(core_counts, error=ModelError)

    base = sweep_curves(params, ns)
    comm_sens: dict[str, float] = {}
    comp_sens: dict[str, float] = {}

    for field in _FLOAT_FIELDS + _INT_FIELDS:
        comm_changes: list[float] = []
        comp_changes: list[float] = []
        for step in (relative_step, -relative_step):
            perturbed = _perturbed(params, field, step)
            if perturbed is None:
                continue
            swept = sweep_curves(perturbed, ns)
            with np.errstate(divide="ignore", invalid="ignore"):
                comm_rel = np.abs(swept["comm_par"] - base["comm_par"]) / np.maximum(
                    base["comm_par"], 1e-12
                )
                comp_rel = np.abs(swept["comp_par"] - base["comp_par"]) / np.maximum(
                    base["comp_par"], 1e-12
                )
            comm_changes.append(float(np.mean(comm_rel)))
            comp_changes.append(float(np.mean(comp_rel)))
        comm_sens[field] = max(comm_changes) if comm_changes else 0.0
        comp_sens[field] = max(comp_changes) if comp_changes else 0.0

    return SensitivityResult(
        relative_step=relative_step,
        comm_sensitivity=comm_sens,
        comp_sensitivity=comp_sens,
    )
