"""Stacked-bandwidth representation (the paper's Figure 2).

"A convenient way to understand how bandwidths ... evolve is to sum
memory bandwidths for computations and communications and visualize
them by stacking them."  :func:`stacked_view` produces the series and
the annotated points of that figure for a calibrated model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ContentionModel
from repro.core.parameters import ModelParameters
from repro.errors import ModelError

__all__ = ["StackedView", "stacked_view"]


@dataclass(frozen=True)
class StackedView:
    """Series and annotations of a Figure-2-style stacked plot."""

    core_counts: np.ndarray
    #: Bottom band: computation bandwidth in parallel of communications.
    comp_parallel: np.ndarray
    #: Top band, stacked above ``comp_parallel``.
    comm_parallel: np.ndarray
    #: Reference line: computation bandwidth executed alone (green curve).
    comp_alone: np.ndarray
    #: Annotated points, keyed by the paper's labels.
    points: dict[str, tuple[float, float]]

    def stacked_top(self) -> np.ndarray:
        """Upper envelope of the stacked bands."""
        return self.comp_parallel + self.comm_parallel


def stacked_view(
    params: ModelParameters, *, max_cores: int | None = None
) -> StackedView:
    """Build the Figure-2 view of one model instantiation.

    ``max_cores`` defaults to a few cores past ``n_seq_max`` so the
    ``δr`` region is visible, as in the paper's figure.
    """
    if max_cores is None:
        max_cores = params.n_seq_max + max(4, params.n_seq_max // 3)
    if max_cores < params.n_seq_max:
        raise ModelError(
            f"max_cores={max_cores} hides the inflexion point at "
            f"n_seq_max={params.n_seq_max}"
        )
    model = ContentionModel(params)
    ns = np.arange(1, max_cores + 1)
    curves = model.sweep(ns)
    points = {
        "(1, Bcomp_seq)": (1.0, params.b_comp_seq),
        "(Npar_max, Tpar_max)": (float(params.n_par_max), params.t_par_max),
        "(Nseq_max, Tseq_max)": (float(params.n_seq_max), params.t_seq_max),
        "(Nseq_max, Tpar_max2)": (float(params.n_seq_max), params.t_par_max2),
    }
    return StackedView(
        core_counts=ns,
        comp_parallel=curves["comp_par"],
        comm_parallel=curves["comm_par"],
        comp_alone=curves["comp_alone"],
        points=points,
    )
