"""Compiled prediction kernel: the model as a flat columnar artifact.

The threshold model is piecewise-linear in ``n``, so a calibrated
:class:`~repro.core.placement.PlacementModel` admits a *finite,
precomputable* answer set: every curve × every placement × every core
count up to the platform limit.  :class:`CompiledModel` materializes
that set once — through the exact same equation-6/7 selection path the
live model uses, so the tables are bit-identical to both
:class:`~repro.core.evaluation.ModelEvaluator` and the scalar
:class:`~repro.core.oracle.ScalarOracle` — and then answers hot-path
queries by pure fancy-indexed lookup:

* ``predict`` / ``predict_batch`` — :class:`PointPrediction` results,
  bit-identical to the live model, no evaluator probe per query;
* ``predict_columns`` — the zero-object columnar path: one vectorized
  validation pass + four fancy-indexed gathers, returning raw arrays
  (what the service bulk endpoint serializes from);
* ``predict_grid`` — per-placement rows sliced straight out of the
  table.

Queries beyond the compiled ``n_max`` fall back transparently to a
reconstructed live model, so compilation is a pure optimisation, never
a behaviour change.

The on-disk form is one flat, versioned artifact: ``tables.npz``
(dense float64 arrays) + ``compiled.json`` (format version, the two
parameter sets, topology, table bounds).  Stored content-addressed in
the pipeline :class:`~repro.pipeline.store.ArtifactStore` under stage
``"compiled"`` with the *same* config fingerprint as the calibration
that produced it — a parameter change produces a new fingerprint, so a
stale compiled table can never be served for fresh parameters.  A
corrupted or version-mismatched artifact is logged, discarded, and
recompiled (see :func:`load_compiled` / :func:`load_or_compile`).
"""

from __future__ import annotations

import io
import json
import logging
import zipfile
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.evaluation import as_core_counts
from repro.core.parameters import ModelParameters
from repro.core.placement import (
    PlacementModel,
    PlacementPrediction,
    PointPrediction,
)
from repro.errors import ModelError, PlacementError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.pipeline.stage import StageKey
    from repro.pipeline.store import ArtifactStore

__all__ = [
    "COMPILED_FORMAT_VERSION",
    "COMPILED_STAGE",
    "COMPILED_STAGE_VERSION",
    "CompiledModel",
    "compiled_key",
    "load_compiled",
    "load_or_compile",
    "store_compiled",
]

log = logging.getLogger("repro.core")

#: Bumped whenever the artifact layout changes; older artifacts are
#: discarded and recompiled rather than misread.
COMPILED_FORMAT_VERSION = 1

#: The artifact-store stage name compiled models live under.
COMPILED_STAGE = "compiled"
COMPILED_STAGE_VERSION = 1

#: Dense tables cover at least this many core counts.  Every archived
#: platform tops out at 64 physical cores, so the default table covers
#: any plausible query while staying ~100 KB per model.
DEFAULT_N_MAX = 256

_TABLES_FILE = "tables.npz"
_MANIFEST_FILE = "compiled.json"

#: Row order of the 3-D table's leading axis.  ``comm_alone`` is
#: constant in ``n`` and stored as its own per-placement vector.
_CURVES = ("comp_parallel", "comm_parallel", "comp_alone")


class CompiledModel:
    """Dense per-placement answer tables for one calibrated model.

    ``tables`` has shape ``(3, n_placements, n_max + 1)`` — curve ×
    placement × core count — and ``comm_alone`` shape
    ``(n_placements,)``.  Placements are ordered row-major:
    ``index = m_comp * n_numa_nodes + m_comm``.
    """

    __slots__ = (
        "_local",
        "_remote",
        "_nodes_per_socket",
        "_n_numa_nodes",
        "_n_max",
        "_tables",
        "_comm_alone",
        "_error_average_pct",
        "_live",
    )

    def __init__(
        self,
        *,
        local: ModelParameters,
        remote: ModelParameters,
        nodes_per_socket: int,
        n_numa_nodes: int,
        n_max: int,
        tables: np.ndarray,
        comm_alone: np.ndarray,
        error_average_pct: float = float("nan"),
    ) -> None:
        expected = (len(_CURVES), n_numa_nodes * n_numa_nodes, n_max + 1)
        if tables.shape != expected or tables.dtype != np.float64:
            raise ModelError(
                f"compiled tables must be float64 of shape {expected}, got "
                f"{tables.dtype} {tables.shape}"
            )
        if comm_alone.shape != (expected[1],) or comm_alone.dtype != np.float64:
            raise ModelError(
                f"compiled comm_alone must be float64 of shape ({expected[1]},), "
                f"got {comm_alone.dtype} {comm_alone.shape}"
            )
        self._local = local
        self._remote = remote
        self._nodes_per_socket = nodes_per_socket
        self._n_numa_nodes = n_numa_nodes
        self._n_max = n_max
        self._tables = tables
        self._comm_alone = comm_alone
        self._error_average_pct = float(error_average_pct)
        self._live: PlacementModel | None = None

    # ---- construction ----------------------------------------------------------

    @classmethod
    def compile(
        cls,
        model: PlacementModel,
        *,
        n_max: int = DEFAULT_N_MAX,
        error_average_pct: float = float("nan"),
    ) -> "CompiledModel":
        """Materialize ``model`` into dense tables.

        Each placement row is produced by :meth:`PlacementModel.predict`
        itself — the same equation-6/7 selection every live query takes
        — so the compiled answers are bit-identical to the live model
        (and therefore to the scalar oracle) by construction.
        """
        if n_max < 1:
            raise ModelError(f"compiled n_max must be >= 1, got {n_max}")
        k = model.n_numa_nodes
        ns = np.arange(n_max + 1, dtype=np.int64)
        tables = np.empty((len(_CURVES), k * k, n_max + 1), dtype=np.float64)
        comm_alone = np.empty(k * k, dtype=np.float64)
        for m_comp in range(k):
            for m_comm in range(k):
                row = m_comp * k + m_comm
                pred = model.predict(ns, m_comp, m_comm)
                tables[0, row] = pred.comp_parallel
                tables[1, row] = pred.comm_parallel
                tables[2, row] = pred.comp_alone
                comm_alone[row] = pred.comm_alone
        compiled = cls(
            local=model.local,
            remote=model.remote,
            nodes_per_socket=model.nodes_per_socket,
            n_numa_nodes=k,
            n_max=n_max,
            tables=tables,
            comm_alone=comm_alone,
            error_average_pct=error_average_pct,
        )
        compiled._live = model
        return compiled

    # ---- accessors -------------------------------------------------------------

    @property
    def local(self) -> ModelParameters:
        return self._local

    @property
    def remote(self) -> ModelParameters:
        return self._remote

    @property
    def nodes_per_socket(self) -> int:
        return self._nodes_per_socket

    @property
    def n_numa_nodes(self) -> int:
        return self._n_numa_nodes

    @property
    def n_max(self) -> int:
        """Largest core count answered from the table."""
        return self._n_max

    @property
    def error_average_pct(self) -> float:
        return self._error_average_pct

    @property
    def table_bytes(self) -> int:
        return self._tables.nbytes + self._comm_alone.nbytes

    def placements(self) -> list[tuple[int, int]]:
        """Every ``(m_comp, m_comm)`` pair, in table row order."""
        k = self._n_numa_nodes
        return [(mc, mm) for mc in range(k) for mm in range(k)]

    def placement_model(self) -> PlacementModel:
        """The live model this artifact compiles (reconstructed lazily).

        Used for queries the table cannot answer (``n > n_max``) and by
        consumers that need evaluator access (advise, sensitivity).
        """
        if self._live is None:
            self._live = PlacementModel(
                self._local,
                self._remote,
                nodes_per_socket=self._nodes_per_socket,
                n_numa_nodes=self._n_numa_nodes,
            )
        return self._live

    # ---- hot-path lookups ------------------------------------------------------

    def _coerce_queries(
        self, queries: Sequence[tuple[int, int, int]]
    ) -> tuple[np.ndarray, np.ndarray, bool]:
        """Vectorized validation of a query batch.

        Returns ``(ns, rows, in_table)`` where ``rows`` are placement
        row indices and ``in_table`` is False when any ``n`` exceeds
        the compiled range (caller falls back to the live model).
        """
        arr = np.asarray(queries)
        if arr.ndim != 2 or arr.shape[1] != 3 or arr.shape[0] == 0:
            raise PlacementError(
                "batch queries must be a non-empty sequence of "
                "(n, m_comp, m_comm) triples"
            )
        if arr.dtype == np.bool_ or arr.dtype == object:
            raise PlacementError(
                "batch queries must be integer (n, m_comp, m_comm) triples"
            )
        if np.issubdtype(arr.dtype, np.floating):
            bad = ~np.isfinite(arr) | (arr != np.floor(arr))
            if np.any(bad):
                index = int(np.nonzero(bad.any(axis=1))[0][0])
                raise PlacementError(
                    f"batch query {index}: values must be integral, got "
                    f"{tuple(arr[index])!r}"
                )
            arr = arr.astype(np.int64)
        elif not np.issubdtype(arr.dtype, np.integer):
            raise PlacementError(
                f"batch queries must be integers, got dtype {arr.dtype}"
            )
        ns = arr[:, 0].astype(np.int64)
        m_comp = arr[:, 1].astype(np.int64)
        m_comm = arr[:, 2].astype(np.int64)
        if np.any(ns < 0):
            index = int(np.nonzero(ns < 0)[0][0])
            raise PlacementError(
                f"batch query {index}: core count must be >= 0, "
                f"got {int(ns[index])}"
            )
        k = self._n_numa_nodes
        bad_node = (m_comp < 0) | (m_comp >= k) | (m_comm < 0) | (m_comm >= k)
        if np.any(bad_node):
            index = int(np.nonzero(bad_node)[0][0])
            raise PlacementError(
                f"batch query {index}: NUMA node out of range "
                f"(machine has {k} nodes), got "
                f"({int(m_comp[index])}, {int(m_comm[index])})"
            )
        return ns, m_comp * k + m_comm, bool(np.all(ns <= self._n_max))

    def predict(self, n: int, m_comp: int, m_comm: int) -> PointPrediction:
        """One scalar query, answered from the table."""
        return self.predict_batch([(n, m_comp, m_comm)])[0]

    def predict_batch(
        self, queries: Sequence[tuple[int, int, int]]
    ) -> list[PointPrediction]:
        """Bulk scalar queries, each one a table lookup.

        Bit-identical to :meth:`PlacementModel.predict_batch`; queries
        beyond ``n_max`` delegate the whole batch to the live model.
        """
        ns, rows, in_table = self._coerce_queries(queries)
        if not in_table:
            return self.placement_model().predict_batch(
                [(int(n), int(r) // self._n_numa_nodes,
                  int(r) % self._n_numa_nodes)
                 for n, r in zip(ns, rows)]
            )
        t = self._tables
        comp_par = t[0, rows, ns]
        comm_par = t[1, rows, ns]
        comp_alone = t[2, rows, ns]
        comm_alone = self._comm_alone[rows]
        k = self._n_numa_nodes
        return [
            PointPrediction(
                n=int(ns[i]),
                m_comp=int(rows[i]) // k,
                m_comm=int(rows[i]) % k,
                comp_parallel=float(comp_par[i]),
                comm_parallel=float(comm_par[i]),
                comp_alone=float(comp_alone[i]),
                comm_alone=float(comm_alone[i]),
            )
            for i in range(len(ns))
        ]

    def predict_columns(
        self, queries: Sequence[tuple[int, int, int]]
    ) -> dict[str, np.ndarray]:
        """The zero-object columnar path: raw answer arrays, no
        :class:`PointPrediction` objects on the hot path.

        Returns ``n``/``m_comp``/``m_comm`` echo columns plus the four
        answer columns, all 1-D arrays in query order — exactly the
        values :meth:`predict_batch` would wrap, produced by four
        fancy-indexed gathers.
        """
        ns, rows, in_table = self._coerce_queries(queries)
        if not in_table:
            points = self.predict_batch(queries)
            return {
                "n": np.array([p.n for p in points], dtype=np.int64),
                "m_comp": np.array([p.m_comp for p in points], dtype=np.int64),
                "m_comm": np.array([p.m_comm for p in points], dtype=np.int64),
                "comp_parallel": np.array(
                    [p.comp_parallel for p in points]
                ),
                "comm_parallel": np.array(
                    [p.comm_parallel for p in points]
                ),
                "comp_alone": np.array([p.comp_alone for p in points]),
                "comm_alone": np.array([p.comm_alone for p in points]),
            }
        t = self._tables
        k = self._n_numa_nodes
        return {
            "n": ns,
            "m_comp": rows // k,
            "m_comm": rows % k,
            "comp_parallel": t[0, rows, ns],
            "comm_parallel": t[1, rows, ns],
            "comp_alone": t[2, rows, ns],
            "comm_alone": self._comm_alone[rows],
        }

    def predict_grid(
        self,
        core_counts: Sequence[int] | np.ndarray,
        placements: Iterable[tuple[int, int]] | None = None,
    ) -> dict[tuple[int, int], PlacementPrediction]:
        """Grid sweep served by row slicing; falls back past ``n_max``."""
        ns = as_core_counts(core_counts, error=PlacementError)
        if int(ns.max()) > self._n_max:
            return self.placement_model().predict_grid(ns, placements)
        k = self._n_numa_nodes
        if placements is None:
            placements = self.placements()
        out: dict[tuple[int, int], PlacementPrediction] = {}
        for m_comp, m_comm in placements:
            if not (0 <= m_comp < k and 0 <= m_comm < k):
                raise PlacementError(
                    f"NUMA node out of range (machine has {k} nodes): "
                    f"({m_comp}, {m_comm})"
                )
            row = m_comp * k + m_comm
            out[(m_comp, m_comm)] = PlacementPrediction(
                m_comp=m_comp,
                m_comm=m_comm,
                core_counts=ns,
                comp_parallel=self._tables[0, row, ns],
                comm_parallel=self._tables[1, row, ns],
                comp_alone=self._tables[2, row, ns],
                comm_alone=float(self._comm_alone[row]),
            )
        return out

    # ---- serialization ---------------------------------------------------------

    def to_payloads(self) -> dict[str, str | bytes]:
        """The flat artifact: ``compiled.json`` text + ``tables.npz`` bytes."""
        buffer = io.BytesIO()
        np.savez(buffer, tables=self._tables, comm_alone=self._comm_alone)
        manifest = {
            "format_version": COMPILED_FORMAT_VERSION,
            "local": self._local.to_dict(),
            "remote": self._remote.to_dict(),
            "nodes_per_socket": self._nodes_per_socket,
            "n_numa_nodes": self._n_numa_nodes,
            "n_max": self._n_max,
            "curves": list(_CURVES),
            "error_average_pct": (
                None
                if np.isnan(self._error_average_pct)
                else self._error_average_pct
            ),
        }
        return {
            _MANIFEST_FILE: json.dumps(manifest, indent=2, sort_keys=True),
            _TABLES_FILE: buffer.getvalue(),
        }

    @classmethod
    def from_payloads(
        cls, payloads: dict[str, str | bytes]
    ) -> "CompiledModel":
        """Reconstruct a compiled model, validating everything.

        Raises :class:`ModelError` on any defect — missing file, bad
        JSON, format-version mismatch, wrong array shape or dtype —
        so callers can log + recompile instead of serving stale or
        corrupt tables.
        """
        manifest_text = payloads.get(_MANIFEST_FILE)
        tables_raw = payloads.get(_TABLES_FILE)
        if not isinstance(manifest_text, str) or not isinstance(
            tables_raw, bytes
        ):
            raise ModelError(
                f"compiled artifact must carry text {_MANIFEST_FILE!r} and "
                f"binary {_TABLES_FILE!r}"
            )
        try:
            manifest = json.loads(manifest_text)
        except json.JSONDecodeError as exc:
            raise ModelError(
                f"compiled manifest is not valid JSON ({exc})"
            ) from exc
        if not isinstance(manifest, dict):
            raise ModelError("compiled manifest is not a JSON object")
        if manifest.get("format_version") != COMPILED_FORMAT_VERSION:
            raise ModelError(
                f"compiled format version {manifest.get('format_version')!r} "
                f"!= {COMPILED_FORMAT_VERSION}"
            )
        if manifest.get("curves") != list(_CURVES):
            raise ModelError(
                f"compiled curve order {manifest.get('curves')!r} != "
                f"{list(_CURVES)}"
            )
        try:
            local = ModelParameters.from_dict(manifest["local"])
            remote = ModelParameters.from_dict(manifest["remote"])
            nodes_per_socket = int(manifest["nodes_per_socket"])
            n_numa_nodes = int(manifest["n_numa_nodes"])
            n_max = int(manifest["n_max"])
            error_pct = manifest.get("error_average_pct")
        except (KeyError, TypeError, ValueError) as exc:
            raise ModelError(f"compiled manifest is malformed: {exc}") from exc
        try:
            # A truncated .npz surfaces as zipfile.BadZipFile.
            with np.load(io.BytesIO(tables_raw), allow_pickle=False) as npz:
                tables = npz["tables"]
                comm_alone = npz["comm_alone"]
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
            raise ModelError(f"compiled tables are unreadable: {exc}") from exc
        return cls(
            local=local,
            remote=remote,
            nodes_per_socket=nodes_per_socket,
            n_numa_nodes=n_numa_nodes,
            n_max=n_max,
            tables=tables,
            comm_alone=comm_alone,
            error_average_pct=(
                float("nan") if error_pct is None else float(error_pct)
            ),
        )


# ---- artifact-store glue ---------------------------------------------------------
#
# The store lives one layer up (repro.pipeline); imports are deferred so
# repro.core keeps no import-time dependency on it.


def compiled_key(platform: str, fingerprint: str) -> "StageKey":
    """The store address of a compiled model.

    Keyed by the *same* config fingerprint as the calibration that
    produced the parameters: a sweep-config change re-fingerprints and
    therefore recompiles — stale tables can never be served.
    """
    from repro.pipeline.stage import StageKey

    return StageKey(
        platform=platform,
        stage=COMPILED_STAGE,
        version=COMPILED_STAGE_VERSION,
        fingerprint=fingerprint,
    )


def store_compiled(
    store: "ArtifactStore",
    platform: str,
    fingerprint: str,
    compiled: CompiledModel,
) -> None:
    """Persist one compiled model, content-addressed."""
    store.save(
        compiled_key(platform, fingerprint),
        compiled.to_payloads(),
        provenance={
            "platform": platform,
            "n_max": compiled.n_max,
            "table_bytes": compiled.table_bytes,
        },
    )


def load_compiled(
    store: "ArtifactStore", platform: str, fingerprint: str
) -> CompiledModel | None:
    """Load + validate one compiled model; ``None`` means recompile.

    Store-level corruption (checksums, manifest) is already handled by
    the store; this adds the compiled-format validation pass on top.  A
    decodable-but-invalid artifact is logged and discarded so the next
    save replaces it.
    """
    key = compiled_key(platform, fingerprint)
    payloads = store.load(key)
    if payloads is None:
        return None
    try:
        return CompiledModel.from_payloads(payloads)
    except ModelError as exc:
        log.warning(
            "discarding invalid compiled artifact %s: %s", key.entry_id, exc
        )
        store.discard(key)
        return None


def load_or_compile(
    store: "ArtifactStore | None",
    platform: str,
    fingerprint: str,
    model: PlacementModel,
    *,
    n_max: int = DEFAULT_N_MAX,
    error_average_pct: float = float("nan"),
) -> CompiledModel:
    """The compile-on-calibrate entry point.

    Serves the stored artifact when one is present and valid *and*
    large enough, otherwise compiles from ``model`` and (when a store
    is given) publishes the result for every other worker sharing it.
    """
    if store is not None:
        cached = load_compiled(store, platform, fingerprint)
        if cached is not None:
            if cached.n_max >= n_max:
                return cached
            # Too small for the requested range: replace it, or the
            # save below would lose the publish race to the old entry.
            store.discard(compiled_key(platform, fingerprint))
    compiled = CompiledModel.compile(
        model, n_max=n_max, error_average_pct=error_average_pct
    )
    if store is not None:
        store_compiled(store, platform, fingerprint, compiled)
    return compiled
