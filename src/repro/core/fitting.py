"""Least-squares refinement of the model parameters.

The paper extracts parameters with a cheap curve analysis (minima,
maxima, two-point slopes — §IV-A2), arguing the model "has the
advantage of requiring few application runs to calibrate".  A natural
question it leaves open: *how much accuracy does the cheap extraction
leave on the table?*  This module answers it by fitting the same model
family to the same curves with a proper optimiser
(:func:`scipy.optimize.minimize`, Nelder–Mead over the continuous
parameters with the integer knees scanned exhaustively), then the
ablation benchmark compares the two calibrations against ground truth.

The refined fit is an *upper bound* on what the model family can do on
one placement — the paper's heuristic typically lands within a couple
of percent of it, which is the quantified version of the paper's
"accurate enough for our needs" judgement.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.bench.results import ModeCurves
from repro.core.calibration import calibrate
from repro.core.evaluation import sweep_curves
from repro.core.parameters import ModelParameters
from repro.errors import CalibrationError, ModelError

__all__ = ["refine_parameters", "fit_quality"]


def fit_quality(params: ModelParameters, curves: ModeCurves) -> float:
    """Mean relative error of a parameter set against measured curves.

    Averages the relative error of the three predicted curves
    (comm/comp in parallel, comp alone) — the quantity the refinement
    minimises.  Goes through the vectorized evaluation layer: this runs
    inside the optimiser's objective, thousands of times per refinement.
    """
    ns = curves.core_counts
    swept = sweep_curves(params, ns)
    total = 0.0
    for predicted, measured in (
        (swept["comm_par"], curves.comm_parallel),
        (swept["comp_par"], curves.comp_parallel),
        (swept["comp_alone"], curves.comp_alone),
    ):
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = np.abs(predicted - measured) / np.maximum(measured, 1e-9)
        total += float(np.mean(rel))
    return total / 3.0


def _vector_to_params(
    x: np.ndarray, n_par: int, n_seq: int
) -> ModelParameters | None:
    """Decode an optimiser vector; None when the decoding is invalid."""
    t_par, t_seq, t_par2, delta_l, delta_r, b_comp, b_comm, alpha = x
    try:
        return ModelParameters(
            n_par_max=n_par,
            t_par_max=float(t_par),
            n_seq_max=n_seq,
            t_seq_max=float(t_seq),
            t_par_max2=float(min(t_par2, t_par)),
            delta_l=float(max(delta_l, 0.0)),
            delta_r=float(max(delta_r, 0.0)),
            b_comp_seq=float(b_comp),
            b_comm_seq=float(b_comm),
            alpha=float(np.clip(alpha, 1e-6, 1.0)),
        )
    except ModelError:
        # Out-of-range values the optimiser wandered into: a rejected
        # candidate, not a failure.  Anything else (TypeError,
        # AttributeError, ...) is a genuine bug and must propagate —
        # swallowing it here used to misreport bugs as "calibration
        # failed".
        return None


def refine_parameters(
    curves: ModeCurves,
    *,
    initial: ModelParameters | None = None,
    knee_radius: int = 2,
    maxiter: int = 400,
) -> ModelParameters:
    """Refine a calibration by direct optimisation against the curves.

    ``initial`` defaults to the paper's heuristic extraction.  The
    integer knees (``n_par_max``, ``n_seq_max``) are scanned within
    ``knee_radius`` of the initial values; the eight continuous
    parameters are optimised per knee pair.
    """
    if knee_radius < 0:
        raise CalibrationError("knee_radius must be >= 0")
    start = initial if initial is not None else calibrate(curves)
    n_max = int(curves.core_counts[-1])

    x0 = np.array(
        [
            start.t_par_max,
            start.t_seq_max,
            start.t_par_max2,
            start.delta_l,
            start.delta_r,
            start.b_comp_seq,
            start.b_comm_seq,
            start.alpha,
        ]
    )

    best_params = start
    best_quality = fit_quality(start, curves)

    for n_par in range(
        max(1, start.n_par_max - knee_radius),
        min(n_max, start.n_par_max + knee_radius) + 1,
    ):
        for n_seq in range(
            max(n_par, start.n_seq_max - knee_radius),
            min(n_max, start.n_seq_max + knee_radius) + 1,
        ):

            def objective(x: np.ndarray) -> float:
                params = _vector_to_params(x, n_par, n_seq)
                if params is None:
                    return 1e6
                return fit_quality(params, curves)

            result = minimize(
                objective,
                x0,
                method="Nelder-Mead",
                options={"maxiter": maxiter, "xatol": 1e-4, "fatol": 1e-7},
            )
            candidate = _vector_to_params(result.x, n_par, n_seq)
            if candidate is None:
                continue
            quality = fit_quality(candidate, curves)
            if quality < best_quality:
                best_quality = quality
                best_params = candidate

    return best_params
