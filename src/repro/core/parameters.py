"""Model parameters (paper §III-A).

One :class:`ModelParameters` instance describes the behaviour of the
memory system for one data-locality class (local or remote accesses).
The notation maps to the paper as follows:

=====================  =========================================================
attribute               paper notation and meaning
=====================  =========================================================
``n_par_max``           :math:`N^{max}_{par}` — cores at which the *parallel*
                        total bandwidth peaks
``t_par_max``           :math:`T^{max}_{par}` — that peak total bandwidth
``n_seq_max``           :math:`N^{max}_{seq}` — cores at which the
                        *computation-alone* bandwidth peaks
``t_seq_max``           :math:`T^{max}_{seq}` — that peak bandwidth
``t_par_max2``          :math:`T^{max2}_{par}` — parallel total bandwidth with
                        exactly :math:`N^{max}_{seq}` computing cores
``delta_l``             :math:`\\delta_l` — total bandwidth lost per extra core
                        between :math:`N^{max}_{par}` and :math:`N^{max}_{seq}`
``delta_r``             :math:`\\delta_r` — total bandwidth lost per extra core
                        beyond :math:`N^{max}_{seq}`
``b_comp_seq``          :math:`B^{comp}_{seq}` — one core's memory bandwidth
``b_comm_seq``          :math:`B^{comm}_{seq}` — communication bandwidth alone
``alpha``               :math:`\\alpha` — worst-case fraction of
                        :math:`B^{comm}_{seq}` left to communications
=====================  =========================================================

All bandwidths are in GB/s.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from repro.errors import ModelError

__all__ = ["ModelParameters"]


@dataclass(frozen=True)
class ModelParameters:
    """Parameter set of one model instantiation (§III-A)."""

    n_par_max: int
    t_par_max: float
    n_seq_max: int
    t_seq_max: float
    t_par_max2: float
    delta_l: float
    delta_r: float
    b_comp_seq: float
    b_comm_seq: float
    alpha: float

    def __post_init__(self) -> None:
        if self.n_par_max < 1:
            raise ModelError(f"n_par_max must be >= 1, got {self.n_par_max}")
        if self.n_seq_max < self.n_par_max:
            raise ModelError(
                "n_seq_max must be >= n_par_max (contention starts earlier "
                f"with communications running): got n_seq_max={self.n_seq_max} "
                f"< n_par_max={self.n_par_max}"
            )
        for name in ("t_par_max", "t_seq_max", "t_par_max2", "b_comp_seq", "b_comm_seq"):
            value = getattr(self, name)
            if value <= 0.0:
                raise ModelError(f"{name} must be positive, got {value}")
        if self.delta_l < 0.0 or self.delta_r < 0.0:
            raise ModelError(
                f"slopes must be non-negative, got delta_l={self.delta_l}, "
                f"delta_r={self.delta_r}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ModelError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.t_par_max2 > self.t_par_max + 1e-9:
            raise ModelError(
                "t_par_max2 (total bandwidth at n_seq_max cores) cannot exceed "
                f"the parallel peak t_par_max: {self.t_par_max2} > {self.t_par_max}"
            )

    # ---- convenience ----------------------------------------------------------

    def with_comm_nominal(self, b_comm_seq: float) -> "ModelParameters":
        """Copy with a substituted nominal network bandwidth.

        Implements the locality-sensitive-NIC rule of equation 6: "we
        use the local model, but with the nominal network performances
        when data are located on remote memory, i.e. the
        :math:`B^{comm}_{seq}` of :math:`M_{remote}`".
        """
        return replace(self, b_comm_seq=b_comm_seq)

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelParameters":
        expected = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(data) - expected
        if unknown:
            raise ModelError(f"unknown parameter fields: {sorted(unknown)}")
        missing = expected - set(data)
        if missing:
            raise ModelError(f"missing parameter fields: {sorted(missing)}")
        return cls(**{k: data[k] for k in expected})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ModelParameters":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ModelError(f"invalid parameter JSON: {exc}") from exc
        return cls.from_dict(data)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Npar={self.n_par_max} Tpar={self.t_par_max:.1f} "
            f"Nseq={self.n_seq_max} Tseq={self.t_seq_max:.1f} "
            f"Tpar2={self.t_par_max2:.1f} dl={self.delta_l:.2f} "
            f"dr={self.delta_r:.2f} Bcomp={self.b_comp_seq:.2f} "
            f"Bcomm={self.b_comm_seq:.2f} alpha={self.alpha:.2f}"
        )
