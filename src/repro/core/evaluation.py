"""Vectorized, memoized evaluation layer for the contention model.

Every consumer of the model — calibration, placement prediction,
sensitivity analysis, the advisor, all figure/table benchmarks —
ultimately evaluates equations 1–5 and 8 over many core counts.  Doing
that one ``n`` at a time in Python, recomputing the saturation frontier
(an O(``n_seq_max``) scan) inside every ``alpha_factor`` call, makes a
full sweep O(n²).

This module evaluates the whole piecewise-linear family as closed-form
NumPy array expressions instead:

* :class:`ModelEvaluator` — one per :class:`ModelParameters`, caching
  the saturation frontier (computed once) and a dense table of every
  curve over a hot window of core counts.  Scalar queries become O(1)
  table lookups; sweeps become fancy-indexing.
* :func:`evaluator_for` — the per-parameter-set memo.  Keyed by the
  frozen dataclass itself, so value-equal parameter sets share one
  evaluator and any mutation-by-replacement naturally invalidates.
* :func:`sweep_curves` — convenience: validated, vectorized sweep for
  one parameter set.
* :func:`as_core_counts` — the integer-core-count contract shared by
  every array entry point (``sweep``, ``predict``, the measurement
  runners): non-integral core counts are rejected, never truncated.

The scalar implementation in :mod:`repro.core.oracle` is kept verbatim
as the reference oracle; the property suite asserts the arrays produced
here match it bit for bit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Type

import numpy as np

from repro.core.parameters import ModelParameters
from repro.errors import ModelError, ReproError

__all__ = [
    "ModelEvaluator",
    "as_core_counts",
    "evaluator_for",
    "sweep_curves",
]

#: Largest core count covered by the dense hot table.  Queries beyond it
#: fall back to the same closed-form array expressions, evaluated on the
#: requested points only, so absurdly large ``n`` cannot balloon memory.
_HOT_LIMIT = 65_536

#: Bounded memo of evaluators, LRU-evicted.
_EVALUATORS: "OrderedDict[ModelParameters, ModelEvaluator]" = OrderedDict()
_EVALUATORS_MAX = 128

#: The four curves of one sweep, in the order the figures stack them.
_CURVES = ("total", "comp_par", "comm_par", "comp_alone")


def as_core_counts(
    core_counts: object, *, error: Type[ReproError] = ModelError
) -> np.ndarray:
    """Validate and convert core counts to a 1-D ``int64`` array.

    Integral floats (e.g. ``np.arange(1.0, 5.0)``) are accepted;
    non-integral values raise ``error`` instead of being silently
    truncated — ``2.7`` cores is a caller bug, not 2 cores.
    """
    arr = np.asarray(core_counts)
    if arr.ndim != 1 or arr.size == 0:
        raise error("core_counts must be a non-empty 1-D sequence")
    if np.issubdtype(arr.dtype, np.integer):
        ns = arr.astype(np.int64)
    elif np.issubdtype(arr.dtype, np.floating):
        if not np.all(np.isfinite(arr)) or np.any(arr != np.floor(arr)):
            bad = arr[~np.isfinite(arr) | (arr != np.floor(arr))][:3]
            raise error(
                "core counts must be integral, got "
                f"{', '.join(repr(float(b)) for b in bad)}"
            )
        ns = arr.astype(np.int64)
    else:
        raise error(f"core counts must be integers, got dtype {arr.dtype}")
    if np.any(ns < 0):
        raise error(f"core counts must be >= 0, got {int(ns.min())}")
    return ns


class ModelEvaluator:
    """Closed-form array evaluation of equations 1–5 and 8.

    All array methods accept a 1-D non-negative ``int64`` array (as
    produced by :func:`as_core_counts`) and return ``float64`` arrays
    that match :class:`repro.core.oracle.ScalarOracle` bit for bit.

    ``frontier_scans`` and ``table_builds`` count the expensive
    operations actually performed — the memoization tests assert they
    stay at one regardless of how many queries are made.
    """

    __slots__ = (
        "_p",
        "_last_unsat",
        "_hot",
        "_hot_cap",
        "frontier_scans",
        "table_builds",
    )

    def __init__(self, params: ModelParameters) -> None:
        self._p = params
        self._last_unsat: int | None = None
        self._hot: dict[str, np.ndarray] | None = None
        self._hot_cap = -1
        self.frontier_scans = 0
        self.table_builds = 0

    @property
    def params(self) -> ModelParameters:
        return self._p

    # ---- closed-form array expressions -----------------------------------------

    def total(self, ns: np.ndarray) -> np.ndarray:
        """``T(n)`` (Eq. 1) over an array of core counts."""
        p = self._p
        mid = p.t_par_max - p.delta_l * (ns - p.n_par_max)
        right = p.t_par_max2 - p.delta_r * (ns - p.n_seq_max)
        out = np.where(ns < p.n_seq_max, mid, right)
        out = np.where(ns == p.n_seq_max, p.t_par_max2, out)
        out = np.where(ns <= p.n_par_max, p.t_par_max, out)
        return np.maximum(out, 0.0)

    def requested(self, ns: np.ndarray) -> np.ndarray:
        """``R(n)`` (Eq. 2) over an array of core counts."""
        p = self._p
        return ns * p.b_comp_seq + p.alpha * p.b_comm_seq

    def saturated(self, ns: np.ndarray) -> np.ndarray:
        """``R(n) >= T(n)`` over an array of core counts."""
        return self.requested(ns) >= self.total(ns)

    @property
    def last_unsaturated(self) -> int:
        """The saturation frontier ``i = max{j | R(j) < T(j)}``, cached.

        ``j = 0`` (communications alone) always fits, so the frontier
        always exists.  Computed once per parameter set.
        """
        if self._last_unsat is None:
            p = self._p
            js = np.arange(p.n_seq_max + 1, dtype=np.int64)
            unsat = self.requested(js) < self.total(js)
            unsat[0] = True
            self._last_unsat = int(np.nonzero(unsat)[0][-1])
            self.frontier_scans += 1
        return self._last_unsat

    def alpha(self, ns: np.ndarray) -> np.ndarray:
        """``α(n)`` (Eq. 5) over an array of core counts."""
        p = self._p
        out = np.full(ns.shape, p.alpha, dtype=float)
        if p.n_seq_max - p.n_par_max <= 1:
            return out
        i = self.last_unsaturated
        if i >= p.n_seq_max:
            return out
        if i > 0:
            total_i = float(self.total(np.asarray([i], dtype=np.int64))[0])
            comm_at_i = min(total_i - i * p.b_comp_seq, p.b_comm_seq)
        else:
            comm_at_i = p.b_comm_seq
        ratio_i = comm_at_i / p.b_comm_seq
        slope = (ratio_i - p.alpha) / (p.n_seq_max - i)
        factor = ratio_i - slope * (ns - i)
        interp = np.minimum(np.maximum(factor, p.alpha), 1.0)
        return np.where(ns < p.n_seq_max, interp, out)

    def comm_parallel(self, ns: np.ndarray) -> np.ndarray:
        """``B_comm_par(n)`` (Eq. 4) over an array of core counts."""
        return self.curves(ns)["comm_par"]

    def comp_parallel(self, ns: np.ndarray) -> np.ndarray:
        """``B_comp_par(n)`` (Eq. 3) over an array of core counts."""
        return self.curves(ns)["comp_par"]

    def comp_alone(self, ns: np.ndarray) -> np.ndarray:
        """``B_comp_seq(n)`` (Eq. 8) over an array of core counts."""
        p = self._p
        total = self.total(ns)
        out = np.minimum(np.minimum(ns * p.b_comp_seq, total), p.t_seq_max)
        return np.where(ns == 0, 0.0, out)

    def curves(self, ns: np.ndarray) -> dict[str, np.ndarray]:
        """All four curves in one pass (shared ``T``/saturation work)."""
        p = self._p
        total = self.total(ns)
        sat = self.requested(ns) >= total
        demand = ns * p.b_comp_seq
        comm_unsat = np.minimum(total - demand, p.b_comm_seq)
        comm_sat = np.minimum(self.alpha(ns) * p.b_comm_seq, total)
        comm = np.where(sat, comm_sat, comm_unsat)
        comm = np.where(ns == 0, p.b_comm_seq, comm)
        comp = np.where(sat, total - comm, demand)
        comp = np.where(ns == 0, 0.0, comp)
        alone = np.where(
            ns == 0, 0.0, np.minimum(np.minimum(demand, total), p.t_seq_max)
        )
        return {
            "total": total,
            "comp_par": comp,
            "comm_par": comm,
            "comp_alone": alone,
        }

    # ---- memoized table --------------------------------------------------------

    def _ensure_hot(self, n_max: int) -> None:
        if n_max <= self._hot_cap:
            return
        cap = min(max(n_max, self._p.n_seq_max + 16, 2 * self._hot_cap), _HOT_LIMIT)
        self._hot = self.curves(np.arange(cap + 1, dtype=np.int64))
        self._hot_cap = cap
        self.table_builds += 1

    def sweep(self, ns: np.ndarray) -> dict[str, np.ndarray]:
        """The four curves over ``ns``, served from the hot table.

        ``ns`` must already be validated (:func:`as_core_counts`).
        Fancy indexing copies, so callers may mutate the result freely.
        """
        n_max = int(ns.max())
        if n_max <= _HOT_LIMIT:
            self._ensure_hot(n_max)
            assert self._hot is not None
            return {name: self._hot[name][ns] for name in _CURVES}
        return self.curves(ns)

    def scalar(self, curve: str, n: int) -> float:
        """One point of one curve — an O(1) lookup after the first call."""
        if n <= _HOT_LIMIT:
            self._ensure_hot(n)
            assert self._hot is not None
            return float(self._hot[curve][n])
        point = np.asarray([n], dtype=np.int64)
        return float(self.curves(point)[curve][0])

    def alpha_scalar(self, n: int) -> float:
        """``α(n)`` for one core count, without re-scanning the frontier."""
        return float(self.alpha(np.asarray([n], dtype=np.int64))[0])


def evaluator_for(params: ModelParameters) -> ModelEvaluator:
    """The memoized evaluator of one parameter set.

    Keyed by the frozen dataclass: value-equal parameter sets share one
    evaluator (and its tables); any change produces a new key.  The
    memo is LRU-bounded so optimizer loops generating thousands of
    candidate parameter sets cannot grow it without bound.
    """
    evaluator = _EVALUATORS.get(params)
    if evaluator is None:
        evaluator = ModelEvaluator(params)
        _EVALUATORS[params] = evaluator
        while len(_EVALUATORS) > _EVALUATORS_MAX:
            _EVALUATORS.popitem(last=False)
    else:
        _EVALUATORS.move_to_end(params)
    return evaluator


def sweep_curves(
    params: ModelParameters,
    core_counts: object,
    *,
    error: Type[ReproError] = ModelError,
) -> dict[str, np.ndarray]:
    """Validated, vectorized sweep of one parameter set."""
    ns = as_core_counts(core_counts, error=error)
    return evaluator_for(params).sweep(ns)
