"""The paper's primary contribution: the memory-contention model.

* :mod:`repro.core.parameters` — the model's parameter set (§III-A);
* :mod:`repro.core.model` — a single model instantiation: equations
  1–5 and 8 (§III-B);
* :mod:`repro.core.calibration` — extracting parameters from benchmark
  curves (§IV-A2);
* :mod:`repro.core.placement` — combining the local and remote
  instantiations to predict every placement: equations 6 and 7 (§III-C);
* :mod:`repro.core.stacked` — the stacked-bandwidth representation of
  Figure 2.
"""

from repro.core.calibration import calibrate, calibrate_placement_model
from repro.core.fitting import fit_quality, refine_parameters
from repro.core.model import ContentionModel
from repro.core.parameters import ModelParameters
from repro.core.placement import PlacementModel, PlacementPrediction
from repro.core.sensitivity import SensitivityResult, parameter_sensitivity
from repro.core.stacked import StackedView, stacked_view

__all__ = [
    "ContentionModel",
    "ModelParameters",
    "PlacementModel",
    "PlacementPrediction",
    "StackedView",
    "SensitivityResult",
    "calibrate",
    "calibrate_placement_model",
    "fit_quality",
    "parameter_sensitivity",
    "refine_parameters",
    "stacked_view",
]
