"""The paper's primary contribution: the memory-contention model.

* :mod:`repro.core.parameters` — the model's parameter set (§III-A);
* :mod:`repro.core.model` — a single model instantiation: equations
  1–5 and 8 (§III-B);
* :mod:`repro.core.evaluation` — the vectorized, memoized evaluation
  layer every consumer goes through;
* :mod:`repro.core.oracle` — the scalar reference implementation the
  vectorized layer is tested against;
* :mod:`repro.core.calibration` — extracting parameters from benchmark
  curves (§IV-A2);
* :mod:`repro.core.placement` — combining the local and remote
  instantiations to predict every placement: equations 6 and 7 (§III-C);
* :mod:`repro.core.compiled` — the compiled prediction kernel: dense
  per-placement answer tables served by pure table lookup;
* :mod:`repro.core.stacked` — the stacked-bandwidth representation of
  Figure 2.
"""

from repro.core.calibration import calibrate, calibrate_placement_model
from repro.core.compiled import (
    CompiledModel,
    compiled_key,
    load_compiled,
    load_or_compile,
    store_compiled,
)
from repro.core.evaluation import (
    ModelEvaluator,
    as_core_counts,
    evaluator_for,
    sweep_curves,
)
from repro.core.fitting import fit_quality, refine_parameters
from repro.core.model import ContentionModel
from repro.core.oracle import ScalarOracle
from repro.core.parameters import ModelParameters
from repro.core.placement import PlacementModel, PlacementPrediction
from repro.core.sensitivity import SensitivityResult, parameter_sensitivity
from repro.core.stacked import StackedView, stacked_view

__all__ = [
    "CompiledModel",
    "ContentionModel",
    "ModelEvaluator",
    "ModelParameters",
    "PlacementModel",
    "PlacementPrediction",
    "ScalarOracle",
    "StackedView",
    "SensitivityResult",
    "as_core_counts",
    "calibrate",
    "calibrate_placement_model",
    "compiled_key",
    "evaluator_for",
    "load_compiled",
    "load_or_compile",
    "store_compiled",
    "fit_quality",
    "parameter_sensitivity",
    "refine_parameters",
    "stacked_view",
    "sweep_curves",
]
