"""Scalar reference oracle for equations 1–5 and 8.

This is the original one-``n``-at-a-time implementation of the model,
kept verbatim as the ground truth the vectorized evaluation layer
(:mod:`repro.core.evaluation`) is tested against bit for bit.  It is
deliberately *not* memoized: ``alpha_factor`` re-derives the saturation
frontier on every call, exactly as the equations are written, so the
microbenchmark can also quantify what the memoized layer buys.

Production code should use :class:`repro.core.model.ContentionModel`,
which serves the same values from the cached tables.
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import ModelParameters
from repro.errors import ModelError

__all__ = ["ScalarOracle"]


class ScalarOracle:
    """Literal scalar evaluation of the paper's equations (§III-B)."""

    def __init__(self, params: ModelParameters) -> None:
        self._p = params

    @property
    def params(self) -> ModelParameters:
        return self._p

    # ---- equation 1 -----------------------------------------------------------

    def total_bandwidth(self, n: int) -> float:
        """``T(n)`` — total bandwidth the memory system supports (Eq. 1)."""
        p = self._p
        self._check_n(n)
        if n <= p.n_par_max:
            return p.t_par_max
        if n == p.n_seq_max:
            # T(N_seq_max) *is* the parameter T_par_max2 by definition.
            value = p.t_par_max2
        elif n < p.n_seq_max:
            value = p.t_par_max - p.delta_l * (n - p.n_par_max)
        else:
            value = p.t_par_max2 - p.delta_r * (n - p.n_seq_max)
        return max(value, 0.0)

    # ---- equation 2 -----------------------------------------------------------

    def requested_bandwidth(self, n: int) -> float:
        """``R(n)`` — bandwidth needed to satisfy everyone (Eq. 2)."""
        p = self._p
        self._check_n(n)
        return n * p.b_comp_seq + p.alpha * p.b_comm_seq

    def saturated(self, n: int) -> bool:
        """True when the requested bandwidth no longer fits (``R(n) >= T(n)``)."""
        return self.requested_bandwidth(n) >= self.total_bandwidth(n)

    # ---- equation 5 -----------------------------------------------------------

    def alpha_factor(self, n: int) -> float:
        """``α(n)`` — communication degradation factor (Eq. 5)."""
        p = self._p
        self._check_n(n)
        if not (p.n_seq_max - p.n_par_max > 1 and n < p.n_seq_max):
            return p.alpha
        i = self._last_unsaturated()
        if i is None or i >= p.n_seq_max:
            return p.alpha
        # Communication share at i cores, from the unsaturated branch of Eq. 4.
        comm_at_i = min(
            self.total_bandwidth(i) - i * p.b_comp_seq if i > 0 else p.b_comm_seq,
            p.b_comm_seq,
        )
        ratio_i = comm_at_i / p.b_comm_seq
        slope = (ratio_i - p.alpha) / (p.n_seq_max - i)
        factor = ratio_i - slope * (n - i)
        # Clamp so out-of-domain evaluations cannot extrapolate past the
        # physical bounds.
        return float(min(max(factor, p.alpha), 1.0))

    def _last_unsaturated(self) -> int | None:
        """``i = max{j | R(j) < T(j)}`` over 0..n_seq_max, or None."""
        p = self._p
        for j in range(p.n_seq_max, -1, -1):
            if j == 0:
                # Zero computing cores always fit (communications alone).
                return 0
            if self.requested_bandwidth(j) < self.total_bandwidth(j):
                return j
        return None

    # ---- equations 3 and 4 ------------------------------------------------------

    def comp_parallel(self, n: int) -> float:
        """``B_comp_par(n)`` — computation bandwidth under overlap (Eq. 3)."""
        p = self._p
        self._check_n(n)
        if n == 0:
            return 0.0
        if not self.saturated(n):
            return n * p.b_comp_seq
        return self.total_bandwidth(n) - self.comm_parallel(n)

    def comm_parallel(self, n: int) -> float:
        """``B_comm_par(n)`` — communication bandwidth under overlap (Eq. 4)."""
        p = self._p
        self._check_n(n)
        if n == 0:
            return p.b_comm_seq
        if not self.saturated(n):
            return min(
                self.total_bandwidth(n) - n * p.b_comp_seq, p.b_comm_seq
            )
        # Guarded by T(n) against degenerate parameter sets.
        return min(self.alpha_factor(n) * p.b_comm_seq, self.total_bandwidth(n))

    # ---- equation 8 -----------------------------------------------------------

    def comp_alone(self, n: int) -> float:
        """``B_comp_seq(n)`` — computation bandwidth without communications (Eq. 8)."""
        p = self._p
        self._check_n(n)
        if n == 0:
            return 0.0
        return min(n * p.b_comp_seq, self.total_bandwidth(n), p.t_seq_max)

    def comm_alone(self) -> float:
        return self._p.b_comm_seq

    # ---- loops -----------------------------------------------------------------

    def sweep(self, core_counts: "np.ndarray | list[int]") -> dict[str, np.ndarray]:
        """The original per-``n`` Python loop over all four curves."""
        ns = np.asarray(core_counts, dtype=int)
        if ns.ndim != 1 or ns.size == 0:
            raise ModelError("core_counts must be a non-empty 1-D sequence")
        return {
            "total": np.array([self.total_bandwidth(int(n)) for n in ns]),
            "comp_par": np.array([self.comp_parallel(int(n)) for n in ns]),
            "comm_par": np.array([self.comm_parallel(int(n)) for n in ns]),
            "comp_alone": np.array([self.comp_alone(int(n)) for n in ns]),
        }

    # ---- helpers --------------------------------------------------------------

    @staticmethod
    def _check_n(n: int) -> None:
        if not isinstance(n, (int, np.integer)):
            raise ModelError(f"core count must be an integer, got {n!r}")
        if n < 0:
            raise ModelError(f"core count must be >= 0, got {n}")
