"""Extracting model parameters from benchmark curves (§IV-A2).

The paper instantiates the model from the measured bandwidth curves of
two placements: "the evolution of the bandwidths over the number of
computing cores is analyzed (it mostly looks for minima and maxima) and
the parameters of the model are computed".  This module implements that
analysis:

* ``T_seq_max`` / ``N_seq_max`` — maximum of the computation-alone curve;
* ``T_par_max`` / ``N_par_max`` — maximum of the stacked parallel curve;
* ``T_par_max2`` — stacked parallel bandwidth at ``N_seq_max`` cores;
* ``δl`` — from the drop between the two maxima;
* ``δr`` — least-squares slope of the stacked curve past ``N_seq_max``
  (more robust to measurement noise than the two-point formula, and
  identical on noiseless data);
* ``B_comp_seq`` — per-core bandwidth at the smallest measured count;
* ``B_comm_seq`` — median of the communication-alone measurements;
* ``α`` — worst observed ``B_comm_par / B_comm_seq`` ratio.
"""

from __future__ import annotations

import logging
import numpy as np

from repro.bench.results import ModeCurves, PlatformDataset
from repro.core.parameters import ModelParameters
from repro.core.placement import PlacementModel
from repro.errors import CalibrationError
from repro.topology.platforms import Platform

log = logging.getLogger("repro.core")

__all__ = ["calibrate", "calibrate_placement_model"]


def calibrate(curves: ModeCurves) -> ModelParameters:
    """Extract a :class:`ModelParameters` set from one placement's curves."""
    ns = curves.core_counts
    if ns.size < 3:
        raise CalibrationError(
            f"calibration needs at least 3 core counts, got {ns.size}"
        )

    comp_alone = curves.comp_alone
    stacked = curves.total_parallel()

    # --- communication nominal bandwidth and worst-case factor -------------
    b_comm_seq = float(np.median(curves.comm_alone))
    if b_comm_seq <= 0.0:
        raise CalibrationError("communication-alone bandwidth is zero")
    alpha = float(np.min(curves.comm_parallel) / b_comm_seq)
    alpha = float(np.clip(alpha, 1e-6, 1.0))

    # --- per-core computation bandwidth --------------------------------------
    n0 = int(ns[0])
    b_comp_seq = float(comp_alone[0]) / n0
    if b_comp_seq <= 0.0:
        raise CalibrationError("per-core computation bandwidth is zero")

    # --- maxima ----------------------------------------------------------------
    i_seq = int(np.argmax(comp_alone))
    n_seq_max = int(ns[i_seq])
    t_seq_max = float(comp_alone[i_seq])

    i_par = int(np.argmax(stacked))
    n_par_max = int(ns[i_par])
    t_par_max = float(stacked[i_par])

    if n_par_max > n_seq_max:
        # Measurement noise can push the parallel peak past the
        # computation-alone peak; the model requires N_par <= N_seq.
        n_par_max = n_seq_max
        i_par = i_seq
        t_par_max = float(stacked[i_par])

    t_par_max2 = float(stacked[i_seq])
    t_par_max2 = min(t_par_max2, t_par_max)  # guard against noise inversions

    # --- slopes ------------------------------------------------------------------
    if n_seq_max > n_par_max:
        delta_l = (t_par_max - t_par_max2) / (n_seq_max - n_par_max)
    else:
        delta_l = 0.0
    delta_l = max(delta_l, 0.0)

    tail = ns >= n_seq_max
    if int(np.count_nonzero(tail)) >= 3:
        slope = np.polyfit(ns[tail].astype(float), stacked[tail], 1)[0]
        delta_r = max(-float(slope), 0.0)
    elif int(np.count_nonzero(tail)) == 2:
        xs = ns[tail].astype(float)
        ys = stacked[tail]
        delta_r = max(-(float(ys[1] - ys[0]) / float(xs[1] - xs[0])), 0.0)
    else:
        delta_r = 0.0

    return ModelParameters(
        n_par_max=n_par_max,
        t_par_max=t_par_max,
        n_seq_max=n_seq_max,
        t_seq_max=t_seq_max,
        t_par_max2=t_par_max2,
        delta_l=delta_l,
        delta_r=delta_r,
        b_comp_seq=b_comp_seq,
        b_comm_seq=b_comm_seq,
        alpha=alpha,
    )


def calibrate_placement_model(
    dataset: PlatformDataset, platform: Platform
) -> PlacementModel:
    """Calibrate the local and remote models from a platform dataset.

    The dataset must contain the two sample placements of §IV-A2
    (local/local on the first node of socket 0, remote/remote on the
    first node of socket 1); any additional placements are ignored —
    they are evaluation data, not calibration data.
    """
    local_node = platform.sample_local_node()
    remote_node = platform.sample_remote_node()
    local_key = (local_node, local_node)
    remote_key = (remote_node, remote_node)
    for key in (local_key, remote_key):
        if key not in dataset.sweep:
            raise CalibrationError(
                f"dataset for {dataset.platform_name!r} lacks the sample "
                f"placement {key}; measured: {dataset.sweep.placements()}"
            )
    log.debug(
        "calibrating %s from sample placements %s and %s",
        dataset.platform_name,
        local_key,
        remote_key,
    )
    return PlacementModel(
        local=calibrate(dataset.sweep[local_key]),
        remote=calibrate(dataset.sweep[remote_key]),
        nodes_per_socket=platform.nodes_per_socket,
        n_numa_nodes=platform.machine.n_numa_nodes,
    )
