"""One model instantiation: equations 1–5 and 8 of the paper (§III-B).

A :class:`ContentionModel` predicts, for every number ``n`` of
computing cores on one socket:

* the total memory bandwidth the system can support, ``T(n)`` (Eq. 1);
* how that total splits between computations, ``B_comp_par(n)``
  (Eq. 3), and communications, ``B_comm_par(n)`` (Eq. 4), including the
  interpolated degradation factor ``α(n)`` (Eq. 5);
* the bandwidth of computations running *alone*, ``B_comp_seq(n)``
  (Eq. 8).

The implementation follows the equations literally — including the
behaviour the paper itself flags as imperfect (e.g. the split "more in
favour of computations as in reality" before the threshold): the whole
point of the evaluation is to measure those imperfections against the
simulated ground truth.

Since the vectorized-evaluation PR, all values are served by the
memoized array layer (:mod:`repro.core.evaluation`): scalar queries are
O(1) table lookups after the first call (the saturation-frontier scan
runs once per parameter set, not once per ``alpha_factor`` call), and
:meth:`ContentionModel.sweep` is pure array indexing.  The one-``n``-
at-a-time reference implementation lives on as
:class:`repro.core.oracle.ScalarOracle`, which the tests hold this
class bit-for-bit equal to.
"""

from __future__ import annotations

import numpy as np

from repro.core.evaluation import as_core_counts, evaluator_for
from repro.core.parameters import ModelParameters
from repro.errors import ModelError

__all__ = ["ContentionModel"]


class ContentionModel:
    """Evaluates the paper's equations for one parameter set."""

    def __init__(self, params: ModelParameters) -> None:
        self._p = params
        self._eval = evaluator_for(params)

    @property
    def params(self) -> ModelParameters:
        return self._p

    # ---- equation 1 -----------------------------------------------------------

    def total_bandwidth(self, n: int) -> float:
        """``T(n)`` — total bandwidth the memory system supports (Eq. 1).

        The linear branches are evaluated literally, with a floor at
        zero: far beyond the measured range the declining branch would
        otherwise predict negative bandwidth, which is meaningless.
        """
        self._check_n(n)
        return self._eval.scalar("total", int(n))

    # ---- equation 2 -----------------------------------------------------------

    def requested_bandwidth(self, n: int) -> float:
        """``R(n)`` — bandwidth needed to satisfy everyone (Eq. 2).

        ``n`` cores at their solo rate plus the communications'
        guaranteed minimum.
        """
        p = self._p
        self._check_n(n)
        return n * p.b_comp_seq + p.alpha * p.b_comm_seq

    def saturated(self, n: int) -> bool:
        """True when the requested bandwidth no longer fits (``R(n) >= T(n)``)."""
        return self.requested_bandwidth(n) >= self.total_bandwidth(n)

    # ---- equation 5 -----------------------------------------------------------

    def alpha_factor(self, n: int) -> float:
        """``α(n)`` — communication degradation factor (Eq. 5).

        Interpolates linearly between the last unsaturated core count
        ``i`` (where communications still fit) and ``n_seq_max`` (where
        they are down to the guaranteed minimum ``α``).  ``i`` is cached
        on the parameter set, so repeated queries do not re-scan.
        """
        self._check_n(n)
        return self._eval.alpha_scalar(int(n))

    def _last_unsaturated(self) -> int | None:
        """``i = max{j | R(j) < T(j)}`` over 0..n_seq_max (cached)."""
        return self._eval.last_unsaturated

    # ---- equations 3 and 4 ------------------------------------------------------

    def comp_parallel(self, n: int) -> float:
        """``B_comp_par(n)`` — computation bandwidth under overlap (Eq. 3)."""
        self._check_n(n)
        return self._eval.scalar("comp_par", int(n))

    def comm_parallel(self, n: int) -> float:
        """``B_comm_par(n)`` — communication bandwidth under overlap (Eq. 4)."""
        self._check_n(n)
        return self._eval.scalar("comm_par", int(n))

    # ---- equation 8 -----------------------------------------------------------

    def comp_alone(self, n: int) -> float:
        """``B_comp_seq(n)`` — computation bandwidth without communications (Eq. 8)."""
        self._check_n(n)
        return self._eval.scalar("comp_alone", int(n))

    def comm_alone(self) -> float:
        """Communication bandwidth without computations (the ``B_comm_seq`` parameter)."""
        return self._p.b_comm_seq

    # ---- vectorised sweeps -------------------------------------------------------

    def sweep(self, core_counts: "np.ndarray | list[int]") -> dict[str, np.ndarray]:
        """Evaluate all curves over ``core_counts``.

        Returns arrays keyed ``total``, ``comp_par``, ``comm_par``,
        ``comp_alone`` — the four series of one subplot in the paper's
        figures.  Core counts must be integral (integral floats are
        accepted); non-integral values raise :class:`ModelError` rather
        than being truncated.
        """
        ns = as_core_counts(core_counts, error=ModelError)
        return self._eval.sweep(ns)

    # ---- helpers --------------------------------------------------------------

    @staticmethod
    def _check_n(n: int) -> None:
        if not isinstance(n, (int, np.integer)):
            raise ModelError(f"core count must be an integer, got {n!r}")
        if n < 0:
            raise ModelError(f"core count must be >= 0, got {n}")
