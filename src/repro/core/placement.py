"""Combining the local and remote models across placements (§III-C).

Two calibrated instantiations — ``M_local`` (computation and
communication data both on the first NUMA node of socket 0) and
``M_remote`` (both on the first node of socket 1) — predict *every*
``(m_comp, m_comm)`` placement through the selection rules of equations
6 and 7.

Index convention: NUMA nodes are numbered socket-major, computing cores
sit on socket 0, so a node ``m < #m`` (``nodes_per_socket``) is local
and ``m >= #m`` is remote — exactly the comparisons written in the
paper's equations.

The selection rules depend only on the placement, never on ``n``: once
the instantiation is chosen, a whole core-count sweep is one array
lookup in the memoized evaluation layer.  :meth:`PlacementModel.predict`
exploits that, and :meth:`PlacementModel.predict_grid` batches it over
every placement of a machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.evaluation import ModelEvaluator, as_core_counts, evaluator_for
from repro.core.model import ContentionModel
from repro.core.parameters import ModelParameters
from repro.errors import PlacementError

__all__ = ["PlacementModel", "PlacementPrediction", "PointPrediction"]


@dataclass(frozen=True)
class PointPrediction:
    """Model predictions for one ``(n, m_comp, m_comm)`` query."""

    n: int
    m_comp: int
    m_comm: int
    comp_parallel: float
    comm_parallel: float
    comp_alone: float
    comm_alone: float

    def to_dict(self) -> dict:
        return {
            "n": self.n,
            "m_comp": self.m_comp,
            "m_comm": self.m_comm,
            "comp_parallel": self.comp_parallel,
            "comm_parallel": self.comm_parallel,
            "comp_alone": self.comp_alone,
            "comm_alone": self.comm_alone,
        }


@dataclass(frozen=True)
class PlacementPrediction:
    """Model predictions for one placement over a range of core counts."""

    m_comp: int
    m_comm: int
    core_counts: np.ndarray
    comp_parallel: np.ndarray
    comm_parallel: np.ndarray
    comp_alone: np.ndarray
    comm_alone: float

    def total_parallel(self) -> np.ndarray:
        return self.comp_parallel + self.comm_parallel


class PlacementModel:
    """The full model of one machine: ``M_local`` + ``M_remote`` + topology."""

    def __init__(
        self,
        local: ModelParameters,
        remote: ModelParameters,
        *,
        nodes_per_socket: int,
        n_numa_nodes: int,
    ) -> None:
        if nodes_per_socket < 1:
            raise PlacementError("nodes_per_socket must be >= 1")
        if n_numa_nodes <= nodes_per_socket:
            raise PlacementError(
                "the placement model needs at least two sockets' worth of "
                f"NUMA nodes, got {n_numa_nodes} with {nodes_per_socket} per socket"
            )
        self._local = ContentionModel(local)
        self._remote = ContentionModel(remote)
        # Equation 6's middle case: the local model with the remote
        # nominal network bandwidth substituted in.
        self._local_remote_nominal = ContentionModel(
            local.with_comm_nominal(remote.b_comm_seq)
        )
        self._nodes_per_socket = nodes_per_socket
        self._n_numa_nodes = n_numa_nodes

    # ---- accessors -------------------------------------------------------------

    @property
    def local(self) -> ModelParameters:
        return self._local.params

    @property
    def remote(self) -> ModelParameters:
        return self._remote.params

    @property
    def nodes_per_socket(self) -> int:
        """The paper's ``#m``."""
        return self._nodes_per_socket

    @property
    def n_numa_nodes(self) -> int:
        return self._n_numa_nodes

    def is_remote(self, m: int) -> bool:
        """``m >= #m`` — the comparison used by equations 6 and 7."""
        self._check_node(m)
        return m >= self._nodes_per_socket

    # ---- equation 6 ------------------------------------------------------------

    def _comm_evaluator(self, m_comp: int, m_comm: int) -> ModelEvaluator:
        """The instantiation equation 6 selects for one placement."""
        if self.is_remote(m_comp) and m_comp == m_comm:
            return evaluator_for(self._remote.params)
        if self.is_remote(m_comm):
            return evaluator_for(self._local_remote_nominal.params)
        return evaluator_for(self._local.params)

    def comm_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        """``B_comm_par(n, m_comp, m_comm)`` (Eq. 6)."""
        self._check_node(m_comp)
        self._check_node(m_comm)
        if self.is_remote(m_comp) and m_comp == m_comm:
            return self._remote.comm_parallel(n)
        if self.is_remote(m_comm):
            return self._local_remote_nominal.comm_parallel(n)
        return self._local.comm_parallel(n)

    # ---- equation 7 ------------------------------------------------------------

    def _comp_selection(self, m_comp: int, m_comm: int) -> tuple[ModelEvaluator, str]:
        """Equation 7: which instantiation, and which of its curves."""
        model = self._remote if self.is_remote(m_comp) else self._local
        curve = "comp_par" if m_comp == m_comm else "comp_alone"
        return evaluator_for(model.params), curve

    def comp_parallel(self, n: int, m_comp: int, m_comm: int) -> float:
        """``B_comp_par(n, m_comp, m_comm)`` (Eq. 7)."""
        self._check_node(m_comp)
        self._check_node(m_comm)
        if not self.is_remote(m_comp):
            if m_comp == m_comm:
                return self._local.comp_parallel(n)
            return self._local.comp_alone(n)
        if m_comp == m_comm:
            return self._remote.comp_parallel(n)
        return self._remote.comp_alone(n)

    # ---- alone predictions --------------------------------------------------------

    def comp_alone(self, n: int, m_comp: int) -> float:
        """Computation-alone bandwidth for a placement (Eq. 8 on the
        instantiation selected by ``m_comp``)."""
        self._check_node(m_comp)
        model = self._remote if self.is_remote(m_comp) else self._local
        return model.comp_alone(n)

    def comm_alone(self, m_comm: int) -> float:
        """Communication-alone bandwidth for a placement."""
        self._check_node(m_comm)
        if self.is_remote(m_comm):
            return self._remote.params.b_comm_seq
        return self._local.params.b_comm_seq

    # ---- sweeps ----------------------------------------------------------------

    def predict(
        self,
        core_counts: Sequence[int] | np.ndarray,
        m_comp: int,
        m_comm: int,
    ) -> PlacementPrediction:
        """Predict all curves of one placement over ``core_counts``.

        Core counts must be integral (integral floats are accepted);
        non-integral values raise :class:`PlacementError` rather than
        being truncated.
        """
        ns = as_core_counts(core_counts, error=PlacementError)
        self._check_node(m_comp)
        self._check_node(m_comm)
        comm_eval = self._comm_evaluator(m_comp, m_comm)
        comp_eval, comp_curve = self._comp_selection(m_comp, m_comm)
        alone_model = self._remote if self.is_remote(m_comp) else self._local
        alone_eval = evaluator_for(alone_model.params)
        return PlacementPrediction(
            m_comp=m_comp,
            m_comm=m_comm,
            core_counts=ns,
            comp_parallel=comp_eval.sweep(ns)[comp_curve],
            comm_parallel=comm_eval.sweep(ns)["comm_par"],
            comp_alone=alone_eval.sweep(ns)["comp_alone"],
            comm_alone=self.comm_alone(m_comm),
        )

    def predict_grid(
        self,
        core_counts: Sequence[int] | np.ndarray,
        placements: Iterable[tuple[int, int]] | None = None,
    ) -> dict[tuple[int, int], PlacementPrediction]:
        """Predict every placement (or the given ones) over ``core_counts``.

        The per-parameter-set tables are built at most once and shared
        across the whole grid, so a full ``k × k`` prediction costs a
        handful of array copies.
        """
        ns = as_core_counts(core_counts, error=PlacementError)
        if placements is None:
            nodes = range(self._n_numa_nodes)
            placements = [(mc, mm) for mc in nodes for mm in nodes]
        return {
            (m_comp, m_comm): self.predict(ns, m_comp, m_comm)
            for m_comp, m_comm in placements
        }

    def predict_batch(
        self, queries: Sequence[tuple[int, int, int]]
    ) -> list[PointPrediction]:
        """Answer heterogeneous scalar ``(n, m_comp, m_comm)`` queries in bulk.

        Queries are grouped by placement and each distinct placement is
        evaluated once through :meth:`predict` over its core counts, so
        a batch of scalar queries reuses the same memoized tables as a
        grid sweep.  Results are returned in query order and are
        bit-identical to issuing the scalar queries one at a time.
        """
        groups: dict[tuple[int, int], list[int]] = {}
        for index, query in enumerate(queries):
            if len(query) != 3:
                raise PlacementError(
                    f"batch queries must be (n, m_comp, m_comm) triples, "
                    f"got {query!r}"
                )
            n, m_comp, m_comm = query
            self._check_batch_count(n, index)
            groups.setdefault((m_comp, m_comm), []).append(index)
        results: dict[int, PointPrediction] = {}
        for (m_comp, m_comm), indices in groups.items():
            ns = as_core_counts(
                [queries[i][0] for i in indices], error=PlacementError
            )
            pred = self.predict(ns, m_comp, m_comm)
            for j, i in enumerate(indices):
                results[i] = PointPrediction(
                    n=int(ns[j]),
                    m_comp=m_comp,
                    m_comm=m_comm,
                    comp_parallel=float(pred.comp_parallel[j]),
                    comm_parallel=float(pred.comm_parallel[j]),
                    comp_alone=float(pred.comp_alone[j]),
                    comm_alone=float(pred.comm_alone),
                )
        return [results[i] for i in range(len(queries))]

    @staticmethod
    def _check_batch_count(n: object, index: int) -> None:
        """Validate one query's core count, naming the offending query.

        Booleans are rejected explicitly: ``True`` is an ``int`` in
        Python and would otherwise silently mean 1 core.
        """
        if isinstance(n, (bool, np.bool_)):
            raise PlacementError(
                f"batch query {index}: core count must be an integer, "
                f"got {n!r}"
            )
        if isinstance(n, (float, np.floating)):
            if not (np.isfinite(n) and float(n) == int(n)):
                raise PlacementError(
                    f"batch query {index}: core count must be integral, "
                    f"got {n!r}"
                )
            n = int(n)
        if not isinstance(n, (int, np.integer)):
            raise PlacementError(
                f"batch query {index}: core count must be an integer, "
                f"got {n!r}"
            )
        if n < 0:
            raise PlacementError(
                f"batch query {index}: core count must be >= 0, got {int(n)}"
            )

    # ---- helpers --------------------------------------------------------------

    def _check_node(self, m: int) -> None:
        if not isinstance(m, (int, np.integer)):
            raise PlacementError(f"NUMA node index must be an integer, got {m!r}")
        if not 0 <= m < self._n_numa_nodes:
            raise PlacementError(
                f"NUMA node {m} out of range (machine has "
                f"{self._n_numa_nodes} nodes)"
            )
