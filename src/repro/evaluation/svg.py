"""Pure-Python SVG rendering of the paper's figures.

No plotting library is needed: the figures of the paper are simple
enough (line + marker series over core counts) that a small SVG writer
reproduces their layout faithfully:

* :func:`figure_svg` — Figures 3–8: a grid of subplots, one per
  placement (rows = communication data node, columns = computation
  data node, as in the paper), each with the network bandwidth on the
  left axis (blue) and the memory bandwidth for computations on the
  right axis (orange); measurements as markers, model predictions as
  lines; calibration samples framed bold;
* :func:`stacked_svg` — Figure 2: the stacked bandwidth view with the
  annotated calibration points.

The output is standalone SVG text — write it to a ``.svg`` file and
open it in any browser.
"""

from __future__ import annotations

import html
from typing import Iterable, Sequence

import numpy as np

from repro.core.stacked import StackedView
from repro.errors import ReproError
from repro.evaluation.experiments import ExperimentResult

__all__ = ["figure_svg", "stacked_svg"]

# Paper-like colours: blue = communications, orange = computations.
COMM_COLOR = "#1f77b4"
COMP_COLOR = "#ff7f0e"
ALONE_DASH = "4,3"

_PANEL_W = 260
_PANEL_H = 190
_MARGIN_L = 46
_MARGIN_R = 46
_MARGIN_T = 30
_MARGIN_B = 34


def _scale(values: Sequence[float], lo: float, hi: float, out_lo: float, out_hi: float):
    span = hi - lo if hi > lo else 1.0
    return [
        out_lo + (v - lo) / span * (out_hi - out_lo) for v in values
    ]


def _polyline(xs, ys, color, *, dash: str | None = None, width: float = 1.6) -> str:
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
    return (
        f'<polyline fill="none" stroke="{color}" stroke-width="{width}"'
        f'{dash_attr} points="{points}"/>'
    )


def _markers(xs, ys, color, *, shape: str = "circle", size: float = 2.6) -> str:
    out = []
    for x, y in zip(xs, ys):
        if shape == "circle":
            out.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{size}" fill="{color}"/>'
            )
        else:  # triangle, the paper's "in parallel" marker
            out.append(
                f'<polygon fill="{color}" points="'
                f"{x - size:.1f},{y - size:.1f} {x + size:.1f},{y - size:.1f} "
                f'{x:.1f},{y + size:.1f}"/>'
            )
    return "".join(out)


def _text(x, y, content, *, size=9, anchor="middle", color="#333", rotate=None):
    transform = (
        f' transform="rotate({rotate} {x} {y})"' if rotate is not None else ""
    )
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" fill="{color}" '
        f'text-anchor="{anchor}" font-family="sans-serif"{transform}>'
        f"{html.escape(str(content))}</text>"
    )


def _nice_max(value: float) -> float:
    if value <= 0:
        return 1.0
    magnitude = 10 ** np.floor(np.log10(value))
    for mult in (1, 2, 2.5, 5, 10):
        if value <= mult * magnitude:
            return float(mult * magnitude)
    return float(10 * magnitude)


def _panel(
    ox: float,
    oy: float,
    ns: np.ndarray,
    bundle: dict[str, np.ndarray],
    *,
    title: str,
    is_sample: bool,
    comm_max: float,
    comp_max: float,
) -> str:
    """One placement subplot at SVG offset (ox, oy)."""
    x0, x1 = ox + _MARGIN_L, ox + _PANEL_W - _MARGIN_R
    y0, y1 = oy + _PANEL_H - _MARGIN_B, oy + _MARGIN_T  # y grows downward
    parts: list[str] = []

    frame_w = 2.4 if is_sample else 0.8
    parts.append(
        f'<rect x="{x0}" y="{y1}" width="{x1 - x0}" height="{y0 - y1}" '
        f'fill="none" stroke="#333" stroke-width="{frame_w}"/>'
    )
    weight = " font-weight='bold'" if is_sample else ""
    parts.append(
        f'<text x="{(x0 + x1) / 2:.1f}" y="{oy + 16:.1f}" font-size="9.5" '
        f'text-anchor="middle" font-family="sans-serif"{weight}>'
        f"{html.escape(title)}</text>"
    )

    xs = _scale(ns.astype(float), float(ns[0]), float(ns[-1]), x0, x1)

    def comm_y(values):
        return _scale(values, 0.0, comm_max, y0, y1)

    def comp_y(values):
        return _scale(values, 0.0, comp_max, y0, y1)

    # Model lines.
    parts.append(_polyline(xs, comm_y(bundle["model_comm_parallel"]), COMM_COLOR))
    parts.append(_polyline(xs, comp_y(bundle["model_comp_parallel"]), COMP_COLOR))
    parts.append(
        _polyline(
            xs, comp_y(bundle["model_comp_alone"]), COMP_COLOR, dash=ALONE_DASH
        )
    )
    # Measurement markers.
    parts.append(
        _markers(xs, comm_y(bundle["meas_comm_parallel"]), COMM_COLOR, shape="tri")
    )
    parts.append(
        _markers(xs, comm_y(bundle["meas_comm_alone"]), COMM_COLOR, shape="circle")
    )
    parts.append(
        _markers(xs, comp_y(bundle["meas_comp_parallel"]), COMP_COLOR, shape="tri")
    )
    parts.append(
        _markers(xs, comp_y(bundle["meas_comp_alone"]), COMP_COLOR, shape="circle")
    )

    # Axes: left (comm), right (comp), bottom (cores).
    for frac in (0.0, 0.5, 1.0):
        y = y0 + (y1 - y0) * frac
        parts.append(
            _text(x0 - 4, y + 3, f"{comm_max * frac:.0f}", anchor="end", color=COMM_COLOR)
        )
        parts.append(
            _text(x1 + 4, y + 3, f"{comp_max * frac:.0f}", anchor="start", color=COMP_COLOR)
        )
    for n in (int(ns[0]), int(ns[len(ns) // 2]), int(ns[-1])):
        idx = int(np.argmin(np.abs(ns - n)))
        parts.append(_text(xs[idx], y0 + 12, n))
    return "".join(parts)


def figure_svg(result: ExperimentResult) -> str:
    """Render a platform figure (Figures 3–8 layout) as SVG text."""
    from repro.evaluation.figures import figure_series

    series = figure_series(result)
    nodes = sorted({k[0] for k in series})
    n_cols = len(nodes)
    n_rows = len(nodes)
    width = n_cols * _PANEL_W + 40
    height = n_rows * _PANEL_H + 70

    comm_max = _nice_max(
        max(float(b["meas_comm_alone"].max()) for b in series.values()) * 1.1
    )
    comp_max = _nice_max(
        max(float(b["meas_comp_alone"].max()) for b in series.values()) * 1.1
    )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        _text(
            width / 2,
            20,
            f"{result.platform.name}: measured (markers) vs model (lines) — "
            "blue: network GB/s (left), orange: computation GB/s (right)",
            size=12,
        ),
    ]
    for (m_comp, m_comm), bundle in series.items():
        col = nodes.index(m_comp)
        row = nodes.index(m_comm)
        parts.append(
            _panel(
                20 + col * _PANEL_W,
                36 + row * _PANEL_H,
                bundle["n"].astype(int),
                bundle,
                title=f"comp data: node {m_comp} — comm data: node {m_comm}",
                is_sample=(m_comp, m_comm) in result.sample_keys,
                comm_max=comm_max,
                comp_max=comp_max,
            )
        )
    parts.append(
        _text(
            width / 2,
            height - 10,
            "number of computing cores  —  circles: alone, triangles: in "
            "parallel, dashed: computation-alone model",
            size=10,
        )
    )
    parts.append("</svg>")
    return "".join(parts)


def stacked_svg(view: StackedView, *, title: str = "Figure 2") -> str:
    """Render the stacked-bandwidth view (Figure 2) as SVG text."""
    width, height = 560, 360
    x0, x1 = 60, width - 30
    y0, y1 = height - 50, 40
    ns = view.core_counts.astype(float)
    top = view.stacked_top()
    y_max = _nice_max(float(max(top.max(), view.comp_alone.max())) * 1.08)

    xs = _scale(ns, float(ns[0]), float(ns[-1]), x0, x1)

    def sy(values):
        return _scale(values, 0.0, y_max, y0, y1)

    comp_y = sy(view.comp_parallel)
    top_y = sy(top)

    def area(upper, lower, color, opacity=0.55):
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, upper))
        pts_back = " ".join(
            f"{x:.1f},{y:.1f}" for x, y in zip(reversed(xs), reversed(lower))
        )
        return (
            f'<polygon fill="{color}" fill-opacity="{opacity}" stroke="none" '
            f'points="{pts} {pts_back}"/>'
        )

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        _text(width / 2, 22, f"{title} — stacked memory bandwidth", size=13),
        area(comp_y, [y0] * len(xs), COMP_COLOR),
        area(top_y, comp_y, COMM_COLOR),
        _polyline(xs, sy(view.comp_alone), "#2ca02c", width=2.0),
        f'<rect x="{x0}" y="{y1}" width="{x1 - x0}" height="{y0 - y1}" '
        'fill="none" stroke="#333" stroke-width="1"/>',
    ]
    for label, (px, py) in view.points.items():
        cx = _scale([px], float(ns[0]), float(ns[-1]), x0, x1)[0]
        cy = sy([py])[0]
        parts.append(f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="4" fill="#d62728"/>')
        parts.append(_text(cx + 6, cy - 6, label, size=8.5, anchor="start"))
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y = y0 + (y1 - y0) * frac
        parts.append(_text(x0 - 6, y + 3, f"{y_max * frac:.0f}", anchor="end"))
    for n in (int(ns[0]), int(ns[-1] // 2), int(ns[-1])):
        idx = int(np.argmin(np.abs(ns - n)))
        parts.append(_text(xs[idx], y0 + 16, n))
    parts.append(_text((x0 + x1) / 2, height - 12, "number of computing cores", size=10))
    parts.append(
        _text(
            x0 + 8,
            y1 + 14,
            "orange: computations · blue: communications · green: computations alone",
            size=9,
            anchor="start",
        )
    )
    parts.append("</svg>")
    return "".join(parts)
