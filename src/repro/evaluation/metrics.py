"""Prediction-error metrics (the paper's Table II methodology).

The paper reports the mean absolute percentage error
(:func:`mape`, :math:`\\frac{100}{n}\\sum_k |a_k - p_k| / |a_k|`) for
communications and computations separately, split by whether the
placement was used to instantiate the model ("samples") or not
("non-samples").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.bench.results import PlacementKey, PlatformDataset
from repro.core.placement import PlacementModel
from repro.errors import ModelError

__all__ = ["mape", "ErrorBreakdown", "placement_errors"]


def mape(actual: Sequence[float] | np.ndarray, predicted: Sequence[float] | np.ndarray) -> float:
    """Mean absolute percentage error, in percent.

    Raises :class:`~repro.errors.ModelError` on shape mismatch or when
    an actual value is zero (the paper's metric is undefined there).
    """
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ModelError(f"shape mismatch: actual {a.shape} vs predicted {p.shape}")
    if a.size == 0:
        raise ModelError("mape needs at least one point")
    if np.any(a == 0.0):
        raise ModelError("mape undefined for zero actual values")
    return float(100.0 * np.mean(np.abs((a - p) / a)))


@dataclass(frozen=True)
class ErrorBreakdown:
    """One platform's row of Table II."""

    platform_name: str
    comm_samples: float
    comm_non_samples: float
    comm_all: float
    comp_samples: float
    comp_non_samples: float
    comp_all: float

    @property
    def average(self) -> float:
        """The table's final column: mean of the comm and comp overall errors."""
        return 0.5 * (self.comm_all + self.comp_all)

    def as_row(self) -> tuple[float, ...]:
        return (
            self.comm_samples,
            self.comm_non_samples,
            self.comm_all,
            self.comp_samples,
            self.comp_non_samples,
            self.comp_all,
            self.average,
        )


def placement_errors(
    dataset: PlatformDataset,
    model: PlacementModel,
    sample_keys: Iterable[PlacementKey],
) -> ErrorBreakdown:
    """Compute the Table II error breakdown for one platform.

    For every measured placement, the model predicts the parallel
    communication and computation curves and (for computations) the
    computation-alone curve; each placement contributes its own MAPE,
    and groups are averaged per the paper's samples / non-samples /
    all split.
    """
    samples = set(sample_keys)
    groups: Mapping[str, list[float]] = {
        "comm_s": [],
        "comm_ns": [],
        "comp_s": [],
        "comp_ns": [],
    }
    for key in dataset.sweep:
        curves = dataset.sweep[key]
        prediction = model.predict(curves.core_counts, *key)
        comm_err = mape(curves.comm_parallel, prediction.comm_parallel)
        # Computations are evaluated on both execution modes, like the
        # figures: the model predicts the alone curve too (Eq. 8).
        comp_err = 0.5 * (
            mape(curves.comp_parallel, prediction.comp_parallel)
            + mape(curves.comp_alone, prediction.comp_alone)
        )
        tag = "s" if key in samples else "ns"
        groups[f"comm_{tag}"].append(comm_err)
        groups[f"comp_{tag}"].append(comp_err)

    def _mean(values: list[float]) -> float:
        return float(np.mean(values)) if values else float("nan")

    comm_all = groups["comm_s"] + groups["comm_ns"]
    comp_all = groups["comp_s"] + groups["comp_ns"]
    return ErrorBreakdown(
        platform_name=dataset.platform_name,
        comm_samples=_mean(groups["comm_s"]),
        comm_non_samples=_mean(groups["comm_ns"]),
        comm_all=_mean(comm_all),
        comp_samples=_mean(groups["comp_s"]),
        comp_non_samples=_mean(groups["comp_ns"]),
        comp_all=_mean(comp_all),
    )
