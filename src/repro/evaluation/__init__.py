"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.evaluation.metrics` — MAPE and the sample/non-sample
  error split of Table II;
* :mod:`repro.evaluation.experiments` — per-platform experiment runs
  (benchmark → calibrate → predict → error) and the figure registry;
* :mod:`repro.evaluation.tables` — text renderers for Tables I and II;
* :mod:`repro.evaluation.figures` — data series and ASCII rendering for
  Figures 2–8;
* :mod:`repro.evaluation.report` — the EXPERIMENTS.md generator.
"""

from repro.evaluation.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_all_experiments,
    run_platform_experiment,
)
from repro.evaluation.diagnostics import (
    PlacementDiagnosis,
    diagnose,
    render_diagnosis,
)
from repro.evaluation.archive import load_experiment, save_experiment
from repro.evaluation.compare import compare_to_paper, render_comparison
from repro.evaluation.metrics import ErrorBreakdown, mape, placement_errors
from repro.evaluation.svg import figure_svg, stacked_svg
from repro.evaluation.tables import render_table1, render_table2
from repro.evaluation.figures import figure_series, render_figure_ascii

__all__ = [
    "EXPERIMENTS",
    "ErrorBreakdown",
    "ExperimentResult",
    "PlacementDiagnosis",
    "compare_to_paper",
    "diagnose",
    "figure_svg",
    "load_experiment",
    "figure_series",
    "mape",
    "placement_errors",
    "render_figure_ascii",
    "render_comparison",
    "render_diagnosis",
    "render_table1",
    "render_table2",
    "run_all_experiments",
    "run_platform_experiment",
    "save_experiment",
    "stacked_svg",
]
