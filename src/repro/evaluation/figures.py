"""Figure data generators and terminal rendering.

Each figure of the paper is regenerated as *data series* (measured
curves + model predictions per placement) plus an ASCII rendering for
terminals, and CSV export for external plotting.
"""

from __future__ import annotations

import io
from typing import Mapping, Sequence

import numpy as np

from repro.bench.results import PlacementKey
from repro.core.stacked import StackedView, stacked_view
from repro.errors import ReproError
from repro.evaluation.experiments import ExperimentResult

__all__ = [
    "figure_series",
    "stacked_figure",
    "render_figure_ascii",
    "series_to_csv",
    "ascii_chart",
]


def figure_series(
    result: ExperimentResult,
) -> dict[PlacementKey, dict[str, np.ndarray]]:
    """All series of one platform figure (Figures 3–8).

    For each placement: the four measured curves and the three model
    prediction curves, keyed exactly as plotted in the paper
    (measurement markers vs model lines).
    """
    out: dict[PlacementKey, dict[str, np.ndarray]] = {}
    for key in result.dataset.sweep:
        curves = result.dataset.sweep[key]
        pred = result.predictions[key]
        out[key] = {
            "n": curves.core_counts.astype(float),
            "meas_comp_alone": curves.comp_alone,
            "meas_comm_alone": curves.comm_alone,
            "meas_comp_parallel": curves.comp_parallel,
            "meas_comm_parallel": curves.comm_parallel,
            "model_comp_alone": pred.comp_alone,
            "model_comp_parallel": pred.comp_parallel,
            "model_comm_parallel": pred.comm_parallel,
            "model_comm_alone": np.full(
                curves.core_counts.shape, pred.comm_alone
            ),
        }
    return out


def stacked_figure(result: ExperimentResult) -> StackedView:
    """Figure 2: the stacked view of the platform's local model."""
    return stacked_view(result.model.local)


def series_to_csv(
    series: Mapping[PlacementKey, Mapping[str, np.ndarray]],
) -> str:
    """Serialise figure series to CSV (long format)."""
    out = io.StringIO()
    out.write("m_comp,m_comm,series,n,gbps\n")
    for (m_comp, m_comm), bundle in sorted(series.items()):
        ns = bundle["n"]
        for name, values in bundle.items():
            if name == "n":
                continue
            for n, v in zip(ns, values):
                out.write(f"{m_comp},{m_comm},{name},{int(n)},{v:.6f}\n")
    return out.getvalue()


def ascii_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Minimal ASCII line chart: one glyph per series, shared axes."""
    if not series:
        raise ReproError("ascii_chart needs at least one series")
    xs = np.asarray(xs, dtype=float)
    glyphs = "ox*+#@%&"
    all_values = np.concatenate([np.asarray(v, dtype=float) for v in series.values()])
    y_max = float(all_values.max())
    y_min = 0.0
    if y_max <= y_min:
        y_max = y_min + 1.0
    grid = [[" "] * width for _ in range(height)]

    def col(x: float) -> int:
        if xs.max() == xs.min():
            return 0
        return int(round((x - xs.min()) / (xs.max() - xs.min()) * (width - 1)))

    def row(y: float) -> int:
        return int(round((y_max - y) / (y_max - y_min) * (height - 1)))

    for glyph, (name, values) in zip(glyphs, series.items()):
        for x, y in zip(xs, np.asarray(values, dtype=float)):
            r, c = row(float(y)), col(float(x))
            if 0 <= r < height and 0 <= c < width:
                grid[r][c] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:8.1f} ┤" + "".join(grid[0]))
    for r in range(1, height - 1):
        lines.append(" " * 8 + " │" + "".join(grid[r]))
    lines.append(f"{y_min:8.1f} ┤" + "".join(grid[height - 1]))
    lines.append(
        " " * 8 + " └" + "─" * width
    )
    lines.append(
        " " * 10 + f"{xs.min():<10.0f}{'cores':^{max(width - 20, 5)}}{xs.max():>10.0f}"
    )
    legend = "   ".join(
        f"{glyph}={name}" for glyph, name in zip(glyphs, series.keys())
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def render_figure_ascii(
    result: ExperimentResult,
    *,
    placements: Sequence[PlacementKey] | None = None,
    width: int = 64,
    height: int = 14,
) -> str:
    """Render a platform figure as stacked ASCII subplots."""
    series = figure_series(result)
    keys = list(placements) if placements is not None else sorted(series)
    blocks: list[str] = [
        f"Platform {result.platform.name}: measured (markers) vs model (lines)"
    ]
    for key in keys:
        if key not in series:
            raise ReproError(f"no series for placement {key}")
        bundle = series[key]
        title = (
            f"-- comp data on node {key[0]}, comm data on node {key[1]}"
            + (" [calibration sample]" if key in result.sample_keys else "")
        )
        blocks.append(
            ascii_chart(
                bundle["n"],
                {
                    "comm_par(meas)": bundle["meas_comm_parallel"],
                    "comm_par(model)": bundle["model_comm_parallel"],
                    "comp_par(meas)": bundle["meas_comp_parallel"],
                    "comp_par(model)": bundle["model_comp_parallel"],
                    "comp_alone(meas)": bundle["meas_comp_alone"],
                },
                width=width,
                height=height,
                title=title,
            )
        )
    return "\n\n".join(blocks)
