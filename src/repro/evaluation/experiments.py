"""Experiment registry: one entry per paper artefact.

:func:`run_platform_experiment` is the full §IV pipeline for one
platform: measure every placement on the simulated testbed, calibrate
the model from the two sample placements only, predict every placement,
and score the predictions.  Both runners are thin consumers of the
staged pipeline layer (:mod:`repro.pipeline`): pass ``cache_dir`` to
reuse sweep/calibration artifacts across runs and ``jobs`` to fan
independent work out across workers.  The :data:`EXPERIMENTS` registry
maps each figure/table of the paper to what regenerates it.
"""

from __future__ import annotations

import logging

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.bench.config import SweepConfig
from repro.bench.results import PlacementKey, PlatformDataset
from repro.core.placement import PlacementModel, PlacementPrediction
from repro.errors import ReproError
from repro.evaluation.metrics import ErrorBreakdown
from repro.topology.platforms import Platform

log = logging.getLogger("repro.evaluation")

if TYPE_CHECKING:
    from repro.pipeline.store import ArtifactStore

__all__ = [
    "ExperimentResult",
    "run_platform_experiment",
    "run_all_experiments",
    "EXPERIMENTS",
]


@dataclass(frozen=True)
class ExperimentResult:
    """Everything produced by one platform's evaluation run."""

    platform: Platform
    dataset: PlatformDataset
    model: PlacementModel
    predictions: Mapping[PlacementKey, PlacementPrediction]
    errors: ErrorBreakdown
    sample_keys: tuple[PlacementKey, PlacementKey]


def run_platform_experiment(
    platform: Platform | str,
    *,
    config: SweepConfig | None = None,
    cache_dir: Path | str | None = None,
    store: "ArtifactStore | None" = None,
    jobs: int = 1,
    executor_mode: str = "process",
) -> ExperimentResult:
    """Run the full §IV pipeline for one platform.

    With ``cache_dir`` (or an explicit ``store``) the sweep and
    calibration artifacts are reused across runs — a warm run skips
    both and is bit-identical to a cold one.  ``jobs > 1`` measures
    placements concurrently.
    """
    # Imported here: repro.pipeline composes the stages defined around
    # this module, so the dependency must stay one-way at import time.
    from repro.pipeline.runner import run_platform_pipeline

    return run_platform_pipeline(
        platform,
        config=config,
        cache_dir=cache_dir,
        store=store,
        jobs=jobs,
        executor_mode=executor_mode,
    ).result


def run_all_experiments(
    *,
    config: SweepConfig | None = None,
    cache_dir: Path | str | None = None,
    store: "ArtifactStore | None" = None,
    jobs: int = 1,
    executor_mode: str = "process",
) -> dict[str, ExperimentResult]:
    """Run every testbed platform (the full Table II), in Table I order.

    ``jobs`` fans platforms out across workers; the output is
    bit-identical to the serial path regardless of ``jobs``.
    """
    from repro.pipeline.runner import run_all_pipelines

    log.debug("running all platform experiments (jobs=%s)", jobs)
    runs = run_all_pipelines(
        config=config,
        cache_dir=cache_dir,
        store=store,
        jobs=jobs,
        executor_mode=executor_mode,
    )
    return {name: run.result for name, run in runs.items()}


@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry tying a paper artefact to its reproduction."""

    experiment_id: str
    paper_artefact: str
    platform_name: str | None  # None = all platforms
    description: str
    bench_target: str


#: Every table and figure of the paper's evaluation, with the benchmark
#: target that regenerates it (DESIGN.md §4).
EXPERIMENTS: dict[str, ExperimentSpec] = {
    "fig2": ExperimentSpec(
        "fig2",
        "Figure 2",
        "henri-subnuma",
        "Stacked memory bandwidth with the model's annotated points "
        "(the top-left subplot of Figure 4, stacked)",
        "benchmarks/bench_fig2_stacked.py",
    ),
    "fig3": ExperimentSpec(
        "fig3",
        "Figure 3",
        "henri",
        "Measured vs predicted bandwidths on henri (Intel, InfiniBand), "
        "4 placements",
        "benchmarks/bench_fig3_henri.py",
    ),
    "fig4": ExperimentSpec(
        "fig4",
        "Figure 4",
        "henri-subnuma",
        "Measured vs predicted bandwidths on henri-subnuma, 16 placements",
        "benchmarks/bench_fig4_henri_subnuma.py",
    ),
    "fig5": ExperimentSpec(
        "fig5",
        "Figure 5",
        "diablo",
        "Measured vs predicted bandwidths on diablo (AMD, locality-"
        "sensitive NIC)",
        "benchmarks/bench_fig5_diablo.py",
    ),
    "fig6": ExperimentSpec(
        "fig6",
        "Figure 6",
        "occigen",
        "Measured vs predicted bandwidths on occigen (old Intel, "
        "computations-only impact)",
        "benchmarks/bench_fig6_occigen.py",
    ),
    "fig7": ExperimentSpec(
        "fig7",
        "Figure 7",
        "pyxis",
        "Measured vs predicted bandwidths on pyxis (ARM, unstable network)",
        "benchmarks/bench_fig7_pyxis.py",
    ),
    "fig8": ExperimentSpec(
        "fig8",
        "Figure 8",
        "dahu",
        "Measured vs predicted bandwidths on dahu (Intel, Omni-Path)",
        "benchmarks/bench_fig8_dahu.py",
    ),
    "table1": ExperimentSpec(
        "table1",
        "Table I",
        None,
        "Characteristics of testbed platforms",
        "benchmarks/bench_table1_platforms.py",
    ),
    "table2": ExperimentSpec(
        "table2",
        "Table II",
        None,
        "Model prediction errors (MAPE) on all platforms, split by "
        "samples/non-samples and communications/computations",
        "benchmarks/bench_table2_errors.py",
    ),
}


def figure_platform(experiment_id: str) -> str:
    """Platform name of a figure experiment, validating the id."""
    try:
        spec = EXPERIMENTS[experiment_id]
    except KeyError:
        raise ReproError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}"
        ) from None
    if spec.platform_name is None:
        raise ReproError(
            f"experiment {experiment_id!r} spans all platforms; "
            "use run_all_experiments()"
        )
    return spec.platform_name
