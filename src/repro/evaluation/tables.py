"""Text renderers for the paper's tables."""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.evaluation.experiments import ExperimentResult
from repro.evaluation.metrics import ErrorBreakdown
from repro.topology.platforms import Platform, get_platform, platform_names

__all__ = ["render_table1", "render_table2", "table2_rows"]


def render_table1(platforms: Iterable[Platform] | None = None) -> str:
    """Render Table I — characteristics of testbed platforms."""
    if platforms is None:
        platforms = [get_platform(name) for name in platform_names()]
    header = f"{'Name':<15} {'Processor':<45} {'Memory':<28} {'Network':<12}"
    lines = [
        "TABLE I — CHARACTERISTICS OF TESTBED PLATFORMS",
        header,
        "-" * len(header),
    ]
    for platform in platforms:
        meta = platform.machine.metadata
        lines.append(
            f"{platform.name:<15} "
            f"{meta.get('processor', platform.machine.sockets[0].name):<45} "
            f"{meta.get('memory', ''):<28} "
            f"{meta.get('network', platform.machine.nic.name):<12}"
        )
    return "\n".join(lines)


def table2_rows(
    results: Mapping[str, ExperimentResult],
) -> list[ErrorBreakdown]:
    """Table II rows in platform order, from experiment results."""
    return [results[name].errors for name in results]


def render_table2(results: Mapping[str, ExperimentResult]) -> str:
    """Render Table II — model errors on testbed platforms."""
    rows = table2_rows(results)
    header = (
        f"{'Platform':<15} | {'Comm S':>7} {'Comm NS':>8} {'Comm all':>9} | "
        f"{'Comp S':>7} {'Comp NS':>8} {'Comp all':>9} | {'Average':>8}"
    )
    lines = [
        "TABLE II — MODEL ERRORS ON TESTBED PLATFORMS "
        "(mean absolute percentage error)",
        header,
        "-" * len(header),
    ]
    for row in rows:
        lines.append(
            f"{row.platform_name:<15} | "
            f"{row.comm_samples:>6.2f}% {row.comm_non_samples:>7.2f}% "
            f"{row.comm_all:>8.2f}% | "
            f"{row.comp_samples:>6.2f}% {row.comp_non_samples:>7.2f}% "
            f"{row.comp_all:>8.2f}% | {row.average:>7.2f}%"
        )
    if rows:
        avg = [float(np.mean([r.as_row()[i] for r in rows])) for i in range(7)]
        lines.append("-" * len(header))
        lines.append(
            f"{'Average':<15} | "
            f"{avg[0]:>6.2f}% {avg[1]:>7.2f}% {avg[2]:>8.2f}% | "
            f"{avg[3]:>6.2f}% {avg[4]:>7.2f}% {avg[5]:>8.2f}% | {avg[6]:>7.2f}%"
        )
    return "\n".join(lines)
