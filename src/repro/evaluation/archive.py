"""Experiment archives: persist a full evaluation run to disk.

The paper ships a companion repository so its study can be re-run and
re-checked; this module provides the equivalent for any experiment run
here: one directory per platform containing

* ``dataset.csv`` — every measured curve (the ground truth),
* ``model_local.json`` / ``model_remote.json`` — calibrated parameters,
* ``errors.json`` — the Table II row,
* ``meta.json`` — platform name, sample placements, format version.

Archives reload into the same objects; predictions are *recomputed*
from the stored parameters (they are derived data), and the round trip
is exact because the model is deterministic.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.results import PlatformDataset
from repro.core.parameters import ModelParameters
from repro.core.placement import PlacementModel
from repro.errors import ReproError
from repro.evaluation.experiments import ExperimentResult
from repro.evaluation.metrics import ErrorBreakdown, placement_errors
from repro.topology.platforms import get_platform

__all__ = ["save_experiment", "load_experiment"]

_FORMAT_VERSION = 1
_FILES = (
    "dataset.csv",
    "model_local.json",
    "model_remote.json",
    "errors.json",
    "meta.json",
)

#: Keys every archived Table II row must carry.
_ERROR_KEYS = (
    "platform",
    "comm_samples",
    "comm_non_samples",
    "comm_all",
    "comp_samples",
    "comp_non_samples",
    "comp_all",
    "average",
)


def save_experiment(result: ExperimentResult, directory: Path | str) -> Path:
    """Write ``result`` under ``directory`` (created if needed).

    The dataset is archived at full float precision (the same
    round-trip contract the pipeline artifact store relies on), so
    recalibrating from an archive reproduces the model bit for bit.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "dataset.csv").write_text(
        result.dataset.to_csv(full_precision=True)
    )
    (directory / "model_local.json").write_text(result.model.local.to_json())
    (directory / "model_remote.json").write_text(result.model.remote.to_json())
    errors = result.errors
    (directory / "errors.json").write_text(
        json.dumps(
            {
                "platform": errors.platform_name,
                "comm_samples": errors.comm_samples,
                "comm_non_samples": errors.comm_non_samples,
                "comm_all": errors.comm_all,
                "comp_samples": errors.comp_samples,
                "comp_non_samples": errors.comp_non_samples,
                "comp_all": errors.comp_all,
                "average": errors.average,
            },
            indent=2,
        )
    )
    (directory / "meta.json").write_text(
        json.dumps(
            {
                "format_version": _FORMAT_VERSION,
                "platform": result.platform.name,
                "sample_keys": [list(k) for k in result.sample_keys],
                "nodes_per_socket": result.platform.nodes_per_socket,
                "n_numa_nodes": result.platform.machine.n_numa_nodes,
            },
            indent=2,
        )
    )
    return directory


def load_experiment(directory: Path | str) -> ExperimentResult:
    """Reload an archive written by :func:`save_experiment`.

    The platform is re-instantiated from the registry by name; archives
    of custom platforms must be reloaded with their own factories (use
    :mod:`repro.topology.serialize` to ship the platform alongside).

    ``errors.json`` is part of the round trip: it must be present,
    carry the full Table II row, and agree with ``meta.json`` on the
    platform.  The error breakdown itself is still *recomputed* from
    the reloaded curves (it is derived data).
    """
    directory = Path(directory)
    missing = [f for f in _FILES if not (directory / f).exists()]
    if missing:
        raise ReproError(
            f"incomplete experiment archive {directory}: missing {missing}"
        )
    meta = json.loads((directory / "meta.json").read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported archive version {meta.get('format_version')!r}"
        )

    stored_errors = json.loads((directory / "errors.json").read_text())
    missing_keys = [k for k in _ERROR_KEYS if k not in stored_errors]
    if missing_keys:
        raise ReproError(
            f"corrupt errors.json in {directory}: missing keys {missing_keys}"
        )
    if stored_errors["platform"] != meta["platform"]:
        raise ReproError(
            f"archive {directory} is inconsistent: errors.json is for "
            f"{stored_errors['platform']!r} but meta.json says "
            f"{meta['platform']!r}"
        )

    platform = get_platform(meta["platform"])
    dataset = PlatformDataset.from_csv((directory / "dataset.csv").read_text())
    model = PlacementModel(
        local=ModelParameters.from_json(
            (directory / "model_local.json").read_text()
        ),
        remote=ModelParameters.from_json(
            (directory / "model_remote.json").read_text()
        ),
        nodes_per_socket=int(meta["nodes_per_socket"]),
        n_numa_nodes=int(meta["n_numa_nodes"]),
    )
    sample_keys = tuple(tuple(k) for k in meta["sample_keys"])
    first = next(iter(dataset.sweep))
    predictions = model.predict_grid(
        dataset.sweep[first].core_counts, list(dataset.sweep)
    )
    errors: ErrorBreakdown = placement_errors(dataset, model, sample_keys)
    return ExperimentResult(
        platform=platform,
        dataset=dataset,
        model=model,
        predictions=predictions,
        errors=errors,
        sample_keys=sample_keys,  # type: ignore[arg-type]
    )
