"""Model-limits diagnostics (the paper's §IV-C1 discussion, quantified).

The paper localises its model's weaknesses qualitatively: the
communication drop is predicted "too late" (henri), errors concentrate
where the bus transitions into saturation, and unstable networks break
the locality heuristic.  This module turns those observations into
measurable diagnostics for any experiment run:

* :func:`comm_drop_onset` — at how many cores the communication curve
  starts to fall, measured vs predicted (the henri flaw is
  ``measured < predicted``);
* :func:`region_errors` — the communication MAPE split by model regime
  (pre-saturation plateau / transition between the two maxima /
  post-saturation floor);
* :func:`diagnose` — the full per-placement diagnosis of one platform
  experiment, with a text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.bench.results import ModeCurves, PlacementKey
from repro.core.parameters import ModelParameters
from repro.core.placement import PlacementPrediction
from repro.errors import ModelError
from repro.evaluation.experiments import ExperimentResult
from repro.evaluation.metrics import mape

__all__ = [
    "OnsetComparison",
    "RegionErrors",
    "PlacementDiagnosis",
    "comm_drop_onset",
    "region_errors",
    "diagnose",
    "render_diagnosis",
]

#: Relative drop below the few-core communication level that counts as
#: "the curve started falling".
_DROP_THRESHOLD = 0.97


@dataclass(frozen=True)
class OnsetComparison:
    """Where the communication drop starts: measured vs predicted."""

    measured_onset: int | None  # None: never drops within the sweep
    predicted_onset: int | None

    @property
    def model_is_late(self) -> bool:
        """The paper's henri flaw: reality drops before the model does."""
        if self.measured_onset is None or self.predicted_onset is None:
            return False
        return self.measured_onset < self.predicted_onset

    @property
    def lateness_cores(self) -> int:
        if self.measured_onset is None or self.predicted_onset is None:
            return 0
        return self.predicted_onset - self.measured_onset


def _onset(ns: np.ndarray, curve: np.ndarray) -> int | None:
    if curve.size == 0:
        raise ModelError("empty curve")
    reference = float(curve[0])
    if reference <= 0.0:
        raise ModelError("communication curve starts at zero")
    hits = np.flatnonzero(curve < _DROP_THRESHOLD * reference)
    return int(ns[hits[0]]) if hits.size else None


def comm_drop_onset(
    curves: ModeCurves, prediction: PlacementPrediction
) -> OnsetComparison:
    """Compare measured and predicted communication-drop onsets."""
    ns = curves.core_counts
    return OnsetComparison(
        measured_onset=_onset(ns, curves.comm_parallel),
        predicted_onset=_onset(ns, prediction.comm_parallel),
    )


@dataclass(frozen=True)
class RegionErrors:
    """Communication MAPE per model regime (NaN when a region is empty)."""

    plateau: float  # n <= N_par_max: everyone at nominal speed
    transition: float  # N_par_max < n <= N_seq_max: the contested band
    floor: float  # n > N_seq_max: communications at alpha

    def worst_region(self) -> str:
        values = {
            "plateau": self.plateau,
            "transition": self.transition,
            "floor": self.floor,
        }
        finite = {k: v for k, v in values.items() if not np.isnan(v)}
        if not finite:
            raise ModelError("all regions are empty")
        return max(finite, key=finite.get)


def region_errors(
    curves: ModeCurves,
    prediction: PlacementPrediction,
    params: ModelParameters,
) -> RegionErrors:
    """Split the communication error by the model's own regimes."""
    ns = curves.core_counts

    def _mape_where(mask: np.ndarray) -> float:
        if not np.any(mask):
            return float("nan")
        return mape(curves.comm_parallel[mask], prediction.comm_parallel[mask])

    return RegionErrors(
        plateau=_mape_where(ns <= params.n_par_max),
        transition=_mape_where(
            (ns > params.n_par_max) & (ns <= params.n_seq_max)
        ),
        floor=_mape_where(ns > params.n_seq_max),
    )


@dataclass(frozen=True)
class PlacementDiagnosis:
    """Full diagnosis of one placement."""

    placement: PlacementKey
    onset: OnsetComparison
    regions: RegionErrors
    comm_mape: float
    comp_mape: float


def diagnose(result: ExperimentResult) -> dict[PlacementKey, PlacementDiagnosis]:
    """Diagnose every placement of a platform experiment."""
    out: dict[PlacementKey, PlacementDiagnosis] = {}
    for key in result.dataset.sweep:
        curves = result.dataset.sweep[key]
        prediction = result.predictions[key]
        params = (
            result.model.remote
            if result.model.is_remote(key[0]) and key[0] == key[1]
            else result.model.local
        )
        out[key] = PlacementDiagnosis(
            placement=key,
            onset=comm_drop_onset(curves, prediction),
            regions=region_errors(curves, prediction, params),
            comm_mape=mape(curves.comm_parallel, prediction.comm_parallel),
            comp_mape=mape(curves.comp_parallel, prediction.comp_parallel),
        )
    return out


def render_diagnosis(result: ExperimentResult) -> str:
    """Text rendering of a platform's model-limits diagnosis."""
    diagnoses = diagnose(result)
    lines = [
        f"model-limits diagnosis for {result.platform.name} "
        f"(threshold for 'drop': {100 * (1 - _DROP_THRESHOLD):.0f} % below "
        "the few-core level)",
        f"{'placement':<10} {'meas onset':>10} {'pred onset':>10} "
        f"{'plateau':>8} {'transit':>8} {'floor':>8} {'comm':>7} {'comp':>7}",
    ]

    def fmt(value: float) -> str:
        return "    --" if np.isnan(value) else f"{value:5.1f}%"

    for key, diag in sorted(diagnoses.items()):
        onset = diag.onset
        lines.append(
            f"{str(key):<10} "
            f"{onset.measured_onset if onset.measured_onset else '--':>10} "
            f"{onset.predicted_onset if onset.predicted_onset else '--':>10} "
            f"{fmt(diag.regions.plateau):>8} "
            f"{fmt(diag.regions.transition):>8} "
            f"{fmt(diag.regions.floor):>8} "
            f"{diag.comm_mape:6.2f}% {diag.comp_mape:6.2f}%"
        )
    late = [d for d in diagnoses.values() if d.onset.model_is_late]
    if late:
        lines.append(
            f"model predicts the communication drop too late on "
            f"{len(late)}/{len(diagnoses)} placements "
            "(the paper's §IV-B a observation)"
        )
    return "\n".join(lines)
