"""Side-by-side comparison against the paper's published Table II.

Absolute numbers cannot match (the substrate is synthetic); what must
match is the *structure*: the platform ordering, the grouping effects,
and the error magnitudes staying in the same bands.  This module scores
a reproduction run against the published table along exactly those
axes, and is what EXPERIMENTS.md's claim list distils.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ReproError
from repro.evaluation.experiments import ExperimentResult
from repro.evaluation.report import PAPER_TABLE2

__all__ = ["ClaimCheck", "compare_to_paper", "render_comparison"]


@dataclass(frozen=True)
class ClaimCheck:
    """One structural claim, checked."""

    claim: str
    holds: bool
    detail: str


def _averages(results: Mapping[str, ExperimentResult]) -> dict[str, float]:
    return {name: r.errors.average for name, r in results.items()}


def compare_to_paper(
    results: Mapping[str, ExperimentResult],
) -> list[ClaimCheck]:
    """Check every structural Table II claim on a reproduction run.

    Requires all six testbed platforms; raises otherwise (a partial run
    cannot support ordering claims).
    """
    expected = set(PAPER_TABLE2) - {"Average"}
    if set(results) != expected:
        raise ReproError(
            f"comparison needs all platforms {sorted(expected)}, "
            f"got {sorted(results)}"
        )
    averages = _averages(results)
    rows = {name: r.errors for name, r in results.items()}
    checks: list[ClaimCheck] = []

    overall = float(np.mean(list(averages.values())))
    checks.append(
        ClaimCheck(
            claim="average prediction error lower than 4 % (abstract)",
            holds=overall < 4.0,
            detail=f"measured {overall:.2f} % (paper: 2.51 %)",
        )
    )

    comm = float(np.mean([r.comm_all for r in rows.values()]))
    comp = float(np.mean([r.comp_all for r in rows.values()]))
    checks.append(
        ClaimCheck(
            claim="computations better predicted than communications",
            holds=comp < comm,
            detail=f"comp {comp:.2f} % vs comm {comm:.2f} % "
            "(paper: 1.94 % vs 3.09 %)",
        )
    )

    comm_s = float(np.mean([r.comm_samples for r in rows.values()]))
    comm_ns = float(np.mean([r.comm_non_samples for r in rows.values()]))
    checks.append(
        ClaimCheck(
            claim="sample placements beat non-samples (communications)",
            holds=comm_s < comm_ns,
            detail=f"samples {comm_s:.2f} % vs non-samples {comm_ns:.2f} % "
            "(paper: 1.96 % vs 4.09 %)",
        )
    )

    best = min(averages, key=averages.get)
    worst = max(averages, key=averages.get)
    checks.append(
        ClaimCheck(
            claim="occigen is the most accurate platform",
            holds=best == "occigen",
            detail=f"best here: {best} ({averages[best]:.2f} %)",
        )
    )
    checks.append(
        ClaimCheck(
            claim="pyxis is the least accurate platform",
            holds=worst == "pyxis",
            detail=f"worst here: {worst} ({averages[worst]:.2f} %)",
        )
    )
    checks.append(
        ClaimCheck(
            claim="pyxis non-sample communication error is double-digit",
            holds=rows["pyxis"].comm_non_samples >= 10.0,
            detail=f"measured {rows['pyxis'].comm_non_samples:.2f} % "
            "(paper: 13.32 %)",
        )
    )

    # Paper ordering by average: occigen < diablo < henri < dahu <
    # henri-subnuma < pyxis.  Rank correlation must be strongly positive.
    paper_rank = {
        name: rank
        for rank, name in enumerate(
            sorted(expected, key=lambda n: PAPER_TABLE2[n][-1])
        )
    }
    ours_rank = {
        name: rank
        for rank, name in enumerate(sorted(expected, key=averages.get))
    }
    n = len(expected)
    d2 = sum((paper_rank[p] - ours_rank[p]) ** 2 for p in expected)
    spearman = 1.0 - 6.0 * d2 / (n * (n**2 - 1))
    checks.append(
        ClaimCheck(
            claim="platform difficulty ordering matches the paper",
            holds=spearman >= 0.7,
            detail=f"Spearman rank correlation {spearman:.2f}",
        )
    )
    return checks


def render_comparison(results: Mapping[str, ExperimentResult]) -> str:
    """Human-readable claim-check report."""
    checks = compare_to_paper(results)
    lines = ["Structural claims vs the paper's Table II:"]
    for check in checks:
        mark = "PASS" if check.holds else "FAIL"
        lines.append(f"  [{mark}] {check.claim}")
        lines.append(f"         {check.detail}")
    passed = sum(c.holds for c in checks)
    lines.append(f"{passed}/{len(checks)} structural claims hold")
    return "\n".join(lines)
