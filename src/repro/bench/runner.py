"""Benchmark runners.

Two implementations of the paper's measurement loop:

* :func:`measure_curves` — fast path: queries the arbiter's steady
  state directly for each (mode, core count).  Exact for the paper's
  setting, where both activities run long enough to reach steady state.
* :func:`measure_curves_engine` — high-fidelity path: replays the
  paper's actual methodology on the fluid engine.  Each core writes its
  working set; the NIC receives back-to-back 64 MB messages until the
  computation finishes; bandwidths are derived from observed transfer
  durations ("Memory bandwidth for computations is computed from the
  duration of the memset instructions").  Includes the edge effects of
  flows not finishing simultaneously.

Both apply the platform's seeded measurement noise unless the
configuration disables it.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.config import SweepConfig
from repro.bench.results import ModeCurves
from repro.core.evaluation import as_core_counts
from repro.errors import BenchmarkError
from repro.memsim.arbiter import Arbiter
from repro.memsim.engine import Engine
from repro.memsim.noise import NoiseModel
from repro.memsim.paths import build_resources
from repro.memsim.profile import ContentionProfile
from repro.memsim.scenario import Scenario, build_streams, solve_scenario
from repro.topology.objects import Machine

__all__ = ["measure_curves", "measure_curves_engine", "default_core_counts"]


def default_core_counts(machine: Machine) -> np.ndarray:
    """1..cores-per-socket, the sweep range of the paper's harness."""
    return np.arange(1, machine.cores_per_socket + 1)


def _noisy(
    noise: NoiseModel | None,
    sigma: float,
    value: float,
    key: tuple[object, ...],
    repetitions: int,
) -> float:
    """Median of ``repetitions`` noisy observations of ``value``."""
    if noise is None or sigma == 0.0:
        return value
    if repetitions == 1:
        return noise.perturb(value, sigma, *key)
    samples = [
        noise.perturb(value, sigma, *key, rep) for rep in range(repetitions)
    ]
    return float(np.median(samples))


def measure_curves(
    machine: Machine,
    profile: ContentionProfile,
    *,
    m_comp: int,
    m_comm: int,
    config: SweepConfig | None = None,
    core_counts: Sequence[int] | None = None,
) -> ModeCurves:
    """Measure the four bandwidth curves for one placement (steady state)."""
    config = config or SweepConfig()
    ns = (
        as_core_counts(core_counts, error=BenchmarkError)
        if core_counts is not None
        else default_core_counts(machine)
    )

    resource_map = build_resources(machine, profile)
    arbiter = Arbiter(resource_map, profile)
    noise = None if config.noiseless else NoiseModel(config.seed)

    comp_alone = np.empty(ns.size)
    comm_alone = np.empty(ns.size)
    comp_par = np.empty(ns.size)
    comm_par = np.empty(ns.size)

    for i, n in enumerate(ns):
        n = int(n)
        alone = solve_scenario(
            machine, profile, Scenario(n, m_comp, None), arbiter=arbiter
        )
        silent = solve_scenario(
            machine, profile, Scenario(0, None, m_comm), arbiter=arbiter
        )
        par = solve_scenario(
            machine, profile, Scenario(n, m_comp, m_comm), arbiter=arbiter
        )
        base_key = (machine.name, m_comp, m_comm, n)
        comp_alone[i] = _noisy(
            noise, profile.comp_noise_sigma, alone.comp_total_gbps,
            base_key + ("comp_alone",), config.repetitions,
        )
        comm_alone[i] = _noisy(
            noise, profile.comm_noise_sigma, silent.comm_gbps,
            base_key + ("comm_alone",), config.repetitions,
        )
        comp_par[i] = _noisy(
            noise, profile.comp_noise_sigma, par.comp_total_gbps,
            base_key + ("comp_par",), config.repetitions,
        )
        comm_par[i] = _noisy(
            noise, profile.comm_noise_sigma, par.comm_gbps,
            base_key + ("comm_par",), config.repetitions,
        )

    return ModeCurves(
        core_counts=ns,
        comp_alone=comp_alone,
        comm_alone=comm_alone,
        comp_parallel=comp_par,
        comm_parallel=comm_par,
    )


# ---- engine-based (duration-derived) measurement --------------------------------


def _engine_comp_alone(
    machine: Machine,
    profile: ContentionProfile,
    n: int,
    m_comp: int,
    config: SweepConfig,
) -> float:
    engine = Engine(machine, profile)
    streams = build_streams(machine, profile, Scenario(n, m_comp, None))
    flows = [engine.submit(s, config.bytes_per_core) for s in streams]
    engine.run()
    return sum(f.observed_gbps() for f in flows)


def _engine_comm_alone(
    machine: Machine,
    profile: ContentionProfile,
    m_comm: int,
    config: SweepConfig,
) -> float:
    engine = Engine(machine, profile)
    (nic_stream,) = build_streams(machine, profile, Scenario(0, None, m_comm))
    flow = engine.submit(nic_stream, config.message_bytes)
    engine.run()
    return flow.observed_gbps()


def _engine_parallel(
    machine: Machine,
    profile: ContentionProfile,
    n: int,
    m_comp: int,
    m_comm: int,
    config: SweepConfig,
) -> tuple[float, float]:
    """Computation and communication bandwidths measured in parallel.

    Back-to-back messages are received while the cores write their
    working sets; the communication bandwidth is averaged over the
    messages that completed during the overlap window, matching the
    paper's receive-side measurement.
    """
    engine = Engine(machine, profile)
    streams = build_streams(machine, profile, Scenario(n, m_comp, m_comm))
    cpu_streams = [s for s in streams if s.is_cpu]
    (nic_stream,) = [s for s in streams if s.is_dma]

    comp_flows = [engine.submit(s, config.bytes_per_core) for s in cpu_streams]
    message_flows = [engine.submit(nic_stream, config.message_bytes)]

    max_messages = 10_000
    while not all(f.done for f in comp_flows):
        completed = engine.step()
        if engine.active_count == 0 and not all(f.done for f in comp_flows):
            # The engine has nothing left to simulate (no active and no
            # pending flows) while a computation flow still holds bytes:
            # without this guard the loop would spin on no-op steps
            # forever.
            raise BenchmarkError(
                "engine went idle with unfinished computation flows "
                f"(n={n}, m_comp={m_comp}, m_comm={m_comm}); the "
                "simulation cannot make progress"
            )
        if any(f.stream.stream_id == "nic" and f.done for f in completed):
            if len(message_flows) >= max_messages:
                raise BenchmarkError(
                    "computation outlasted 10k messages; bytes_per_core is "
                    "implausibly large relative to message_bytes"
                )
            message_flows.append(engine.submit(nic_stream, config.message_bytes))
    engine.run()  # drain the trailing message

    comp_gbps = sum(f.observed_gbps() for f in comp_flows)
    comp_end = max(f.finished_at for f in comp_flows)
    overlapped = [
        f for f in message_flows if f.done and f.finished_at <= comp_end
    ]
    if overlapped:
        comm_gbps = float(np.mean([f.observed_gbps() for f in overlapped]))
    else:
        # The first message outlived the computation: report its average.
        engine_flow = message_flows[0]
        comm_gbps = engine_flow.observed_gbps()
    return comp_gbps, comm_gbps


def measure_curves_engine(
    machine: Machine,
    profile: ContentionProfile,
    *,
    m_comp: int,
    m_comm: int,
    config: SweepConfig | None = None,
    core_counts: Sequence[int] | None = None,
) -> ModeCurves:
    """Measure the four curves by replaying transfers on the fluid engine."""
    config = config or SweepConfig()
    ns = (
        as_core_counts(core_counts, error=BenchmarkError)
        if core_counts is not None
        else default_core_counts(machine)
    )
    noise = None if config.noiseless else NoiseModel(config.seed)

    comp_alone = np.empty(ns.size)
    comm_alone = np.empty(ns.size)
    comp_par = np.empty(ns.size)
    comm_par = np.empty(ns.size)

    for i, n in enumerate(ns):
        n = int(n)
        ca = _engine_comp_alone(machine, profile, n, m_comp, config)
        na = _engine_comm_alone(machine, profile, m_comm, config)
        cp, np_ = _engine_parallel(machine, profile, n, m_comp, m_comm, config)
        base_key = (machine.name, m_comp, m_comm, n, "engine")
        comp_alone[i] = _noisy(
            noise, profile.comp_noise_sigma, ca, base_key + ("comp_alone",),
            config.repetitions,
        )
        comm_alone[i] = _noisy(
            noise, profile.comm_noise_sigma, na, base_key + ("comm_alone",),
            config.repetitions,
        )
        comp_par[i] = _noisy(
            noise, profile.comp_noise_sigma, cp, base_key + ("comp_par",),
            config.repetitions,
        )
        comm_par[i] = _noisy(
            noise, profile.comm_noise_sigma, np_, base_key + ("comm_par",),
            config.repetitions,
        )

    return ModeCurves(
        core_counts=ns,
        comp_alone=comp_alone,
        comm_alone=comm_alone,
        comp_parallel=comp_par,
        comm_parallel=comm_par,
    )
