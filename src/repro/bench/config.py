"""Benchmark sweep configuration."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any

from repro.errors import BenchmarkError
from repro.units import MB, MiB

__all__ = ["SweepConfig"]


@dataclass(frozen=True)
class SweepConfig:
    """Configuration of one benchmark sweep.

    Defaults follow the paper: 64 MB messages ("communication
    performances are measured with the bandwidth observed to receive
    messages of 64 MB"), weak scaling with a fixed working set per core,
    one dedicated communication core, threads bound to physical cores.
    """

    #: Message size received from the peer machine (bytes).
    message_bytes: int = 64 * MB
    #: Working set written by each computing core (bytes, weak scaling).
    bytes_per_core: int = 512 * MiB
    #: Measurement noise seed (see :class:`repro.memsim.NoiseModel`).
    seed: int = 0
    #: Disable measurement noise entirely (exact steady-state values).
    noiseless: bool = False
    #: Use the event-driven engine instead of the steady-state solver.
    #: Slower, but measures bandwidths from actual transfer durations —
    #: the paper's methodology — including edge effects when flows do
    #: not finish simultaneously.
    use_engine: bool = False
    #: Repetitions per measurement point (median is reported), mimicking
    #: the paper's repeated runs.  Only meaningful with noise enabled.
    repetitions: int = 1
    #: Extra metadata recorded alongside results.
    labels: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.message_bytes <= 0:
            raise BenchmarkError("message_bytes must be positive")
        if self.bytes_per_core <= 0:
            raise BenchmarkError("bytes_per_core must be positive")
        if self.repetitions < 1:
            raise BenchmarkError("repetitions must be >= 1")

    def to_dict(self) -> dict[str, Any]:
        """Every field, JSON-serialisable, for cache fingerprinting.

        Any field change — including a label change — must change the
        returned mapping, because the pipeline's artifact keys are
        derived from it (:func:`repro.pipeline.fingerprint.config_fingerprint`).
        """
        data = asdict(self)
        data["labels"] = {str(k): str(v) for k, v in self.labels.items()}
        return data
