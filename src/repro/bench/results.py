"""Benchmark result containers.

The data model mirrors the paper's figures:

* :class:`ModeCurves` — one subplot: the four bandwidth curves
  (computation alone / in parallel, communication alone / in parallel)
  over the number of computing cores, for one placement;
* :class:`PlacementSweep` — the full grid of subplots of one platform
  (every ``(m_comp, m_comm)`` combination);
* :class:`PlatformDataset` — a sweep plus its provenance (platform
  name, configuration), with CSV round-trip for archival.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np

from repro.errors import BenchmarkError

__all__ = ["PlacementKey", "ModeCurves", "PlacementSweep", "PlatformDataset"]

#: ``(m_comp, m_comm)`` — NUMA nodes of computation and communication data.
PlacementKey = tuple[int, int]


@dataclass(frozen=True)
class ModeCurves:
    """Measured bandwidth curves for one placement.

    All arrays are indexed by position in ``core_counts``.
    ``comm_alone`` is measured once per core count too (the paper's
    harness re-measures it in every step), hence an array.
    """

    core_counts: np.ndarray
    comp_alone: np.ndarray
    comm_alone: np.ndarray
    comp_parallel: np.ndarray
    comm_parallel: np.ndarray

    def __post_init__(self) -> None:
        arrays = {
            "core_counts": self.core_counts,
            "comp_alone": self.comp_alone,
            "comm_alone": self.comm_alone,
            "comp_parallel": self.comp_parallel,
            "comm_parallel": self.comm_parallel,
        }
        length = None
        for name, arr in arrays.items():
            if not isinstance(arr, np.ndarray):
                raise BenchmarkError(f"{name} must be a numpy array")
            if arr.ndim != 1:
                raise BenchmarkError(f"{name} must be 1-D, got shape {arr.shape}")
            if length is None:
                length = arr.size
            elif arr.size != length:
                raise BenchmarkError(
                    f"curve arrays must share a length: {name} has {arr.size}, "
                    f"expected {length}"
                )
        if length == 0:
            raise BenchmarkError("curves must contain at least one point")
        if not np.all(np.diff(self.core_counts) > 0):
            raise BenchmarkError("core_counts must be strictly increasing")
        if self.core_counts[0] < 1:
            raise BenchmarkError("core_counts must start at >= 1")
        for name in ("comp_alone", "comm_alone", "comp_parallel", "comm_parallel"):
            if np.any(arrays[name] < 0):
                raise BenchmarkError(f"{name} contains negative bandwidths")

    @property
    def n_points(self) -> int:
        return int(self.core_counts.size)

    def total_parallel(self) -> np.ndarray:
        """Stacked total bandwidth (computation + communication in parallel)."""
        return self.comp_parallel + self.comm_parallel

    def at(self, n_cores: int) -> dict[str, float]:
        """All four measurements at one core count."""
        idx = np.flatnonzero(self.core_counts == n_cores)
        if idx.size == 0:
            raise BenchmarkError(
                f"no measurement at {n_cores} cores "
                f"(have {self.core_counts.tolist()})"
            )
        i = int(idx[0])
        return {
            "comp_alone": float(self.comp_alone[i]),
            "comm_alone": float(self.comm_alone[i]),
            "comp_parallel": float(self.comp_parallel[i]),
            "comm_parallel": float(self.comm_parallel[i]),
        }


@dataclass(frozen=True)
class PlacementSweep:
    """Curves for every measured placement of one platform."""

    curves: Mapping[PlacementKey, ModeCurves]

    def __post_init__(self) -> None:
        if not self.curves:
            raise BenchmarkError("a placement sweep needs at least one placement")

    def __getitem__(self, key: PlacementKey) -> ModeCurves:
        try:
            return self.curves[key]
        except KeyError:
            raise BenchmarkError(
                f"no curves for placement {key}; "
                f"measured: {sorted(self.curves)}"
            ) from None

    def __contains__(self, key: PlacementKey) -> bool:
        return key in self.curves

    def __iter__(self) -> Iterator[PlacementKey]:
        return iter(sorted(self.curves))

    def __len__(self) -> int:
        return len(self.curves)

    def placements(self) -> tuple[PlacementKey, ...]:
        return tuple(sorted(self.curves))


@dataclass(frozen=True)
class PlatformDataset:
    """A placement sweep plus provenance."""

    platform_name: str
    sweep: PlacementSweep
    config: Mapping[str, object] = field(default_factory=dict)

    # ---- CSV round-trip --------------------------------------------------------

    _FIELDS = (
        "platform",
        "m_comp",
        "m_comm",
        "n_cores",
        "comp_alone",
        "comm_alone",
        "comp_parallel",
        "comm_parallel",
    )

    def to_csv(self, *, full_precision: bool = False) -> str:
        """Serialise all curves to CSV (one row per core count per placement).

        The default 6-decimal format is human-friendly but lossy.  With
        ``full_precision=True`` bandwidths are written as their shortest
        round-tripping ``repr``, so :meth:`from_csv` reconstructs every
        float64 bit for bit — the contract the pipeline artifact store
        relies on for warm runs being identical to cold runs.
        """

        def fmt(x: float) -> str:
            return repr(float(x)) if full_precision else f"{x:.6f}"

        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(self._FIELDS)
        for key in self.sweep:
            curves = self.sweep[key]
            for i in range(curves.n_points):
                writer.writerow(
                    [
                        self.platform_name,
                        key[0],
                        key[1],
                        int(curves.core_counts[i]),
                        fmt(curves.comp_alone[i]),
                        fmt(curves.comm_alone[i]),
                        fmt(curves.comp_parallel[i]),
                        fmt(curves.comm_parallel[i]),
                    ]
                )
        return out.getvalue()

    @classmethod
    def from_csv(cls, text: str) -> "PlatformDataset":
        """Parse a dataset serialised by :meth:`to_csv`."""
        reader = csv.DictReader(io.StringIO(text))
        if reader.fieldnames is None or tuple(reader.fieldnames) != cls._FIELDS:
            raise BenchmarkError(
                f"unexpected CSV header {reader.fieldnames}; expected {cls._FIELDS}"
            )
        rows_by_key: dict[PlacementKey, list[dict[str, str]]] = {}
        platform = None
        for row in reader:
            if platform is None:
                platform = row["platform"]
            elif platform != row["platform"]:
                raise BenchmarkError(
                    f"mixed platforms in CSV: {platform!r} and {row['platform']!r}"
                )
            key = (int(row["m_comp"]), int(row["m_comm"]))
            rows_by_key.setdefault(key, []).append(row)
        if platform is None:
            raise BenchmarkError("CSV contains no data rows")

        curves: dict[PlacementKey, ModeCurves] = {}
        for key, rows in rows_by_key.items():
            rows.sort(key=lambda r: int(r["n_cores"]))
            curves[key] = ModeCurves(
                core_counts=np.array([int(r["n_cores"]) for r in rows]),
                comp_alone=np.array([float(r["comp_alone"]) for r in rows]),
                comm_alone=np.array([float(r["comm_alone"]) for r in rows]),
                comp_parallel=np.array([float(r["comp_parallel"]) for r in rows]),
                comm_parallel=np.array([float(r["comm_parallel"]) for r in rows]),
            )
        return cls(platform_name=platform, sweep=PlacementSweep(curves=curves))
