"""The paper's benchmarking suite (§IV-A1), on the simulated testbed.

For every number of computing cores the suite measures:

1. computations alone,
2. communications alone,
3. both in parallel,

for a given placement of computation data (``m_comp``) and
communication data (``m_comm``) on NUMA nodes.  Computing cores perform
non-temporal memset streams (weak scaling); communications receive
64 MB messages on the NIC.

* :mod:`repro.bench.config` — sweep configuration;
* :mod:`repro.bench.results` — curve containers with CSV round-trip;
* :mod:`repro.bench.runner` — steady-state and engine-based runners;
* :mod:`repro.bench.sweep` — full placement-grid sweeps for a platform.
"""

from repro.bench.config import SweepConfig
from repro.bench.results import (
    ModeCurves,
    PlacementKey,
    PlacementSweep,
    PlatformDataset,
)
from repro.bench.message_size import effective_message_bandwidth, message_size_contention
from repro.bench.runner import measure_curves, measure_curves_engine
from repro.bench.sampling import AdaptiveSweepResult, run_adaptive_calibration
from repro.bench.sweep import run_placement_grid, run_sample_sweeps

__all__ = [
    "ModeCurves",
    "PlacementKey",
    "PlacementSweep",
    "PlatformDataset",
    "SweepConfig",
    "AdaptiveSweepResult",
    "effective_message_bandwidth",
    "measure_curves",
    "measure_curves_engine",
    "message_size_contention",
    "run_adaptive_calibration",
    "run_placement_grid",
    "run_sample_sweeps",
]
