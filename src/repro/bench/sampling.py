"""Adaptive calibration sweeps (the paper's footnote 2).

"This process can be optimized: once the maxima of bandwidth
T_par_max and T_seq_max are found, one can skip executions with number
of computing cores greater than N_seq_max, except the execution with
all cores of the first socket, required to compute δr."

:func:`run_adaptive_calibration` implements that optimisation: it
measures core counts incrementally, stops once both maxima have clearly
passed (``patience`` consecutive non-improving points on both curves),
then jumps straight to the full socket.  The resulting sparse curves
calibrate to (nearly) the same parameters as the full sweep at a
fraction of the measurements — the benchmark suite's analogue of
saving testbed hours.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.config import SweepConfig
from repro.bench.results import ModeCurves
from repro.bench.runner import measure_curves
from repro.errors import BenchmarkError
from repro.memsim.profile import ContentionProfile
from repro.topology.objects import Machine

__all__ = ["AdaptiveSweepResult", "run_adaptive_calibration"]


@dataclass(frozen=True)
class AdaptiveSweepResult:
    """Sparse calibration curves plus bookkeeping."""

    curves: ModeCurves
    measured_core_counts: tuple[int, ...]
    full_sweep_size: int

    @property
    def measurements_saved(self) -> int:
        return self.full_sweep_size - len(self.measured_core_counts)


def run_adaptive_calibration(
    machine: Machine,
    profile: ContentionProfile,
    *,
    m_comp: int,
    m_comm: int,
    config: SweepConfig | None = None,
    patience: int = 3,
    tolerance: float = 0.005,
) -> AdaptiveSweepResult:
    """Measure one placement adaptively.

    ``patience`` is how many consecutive core counts must fail to
    improve *both* the computation-alone maximum and the stacked
    parallel maximum (by more than ``tolerance`` relative) before the
    sweep stops and jumps to the full socket.
    """
    if patience < 1:
        raise BenchmarkError("patience must be >= 1")
    if tolerance < 0.0:
        raise BenchmarkError("tolerance must be non-negative")
    config = config or SweepConfig()
    max_cores = machine.cores_per_socket

    measured: list[int] = []
    points: list[ModeCurves] = []
    best_alone = 0.0
    best_stacked = 0.0
    stale = 0

    def measure_one(n: int) -> ModeCurves:
        return measure_curves(
            machine,
            profile,
            m_comp=m_comp,
            m_comm=m_comm,
            config=config,
            core_counts=[n],
        )

    for n in range(1, max_cores + 1):
        point = measure_one(n)
        measured.append(n)
        points.append(point)
        alone = float(point.comp_alone[0])
        stacked = float(point.comp_parallel[0] + point.comm_parallel[0])
        improved = False
        if alone > best_alone * (1.0 + tolerance):
            best_alone = alone
            improved = True
        if stacked > best_stacked * (1.0 + tolerance):
            best_stacked = stacked
            improved = True
        stale = 0 if improved else stale + 1
        if stale >= patience and n < max_cores:
            break

    if measured[-1] != max_cores:
        # The paper's exception: the full-socket point is required to
        # compute delta_r.
        measured.append(max_cores)
        points.append(measure_one(max_cores))

    curves = ModeCurves(
        core_counts=np.array(measured),
        comp_alone=np.array([float(p.comp_alone[0]) for p in points]),
        comm_alone=np.array([float(p.comm_alone[0]) for p in points]),
        comp_parallel=np.array([float(p.comp_parallel[0]) for p in points]),
        comm_parallel=np.array([float(p.comm_parallel[0]) for p in points]),
    )
    return AdaptiveSweepResult(
        curves=curves,
        measured_core_counts=tuple(measured),
        full_sweep_size=max_cores,
    )
